"""InferenceSession tests: the model-like API over compiled workloads."""

import numpy as np
import pytest

from repro.compiler import Graph, lower
from repro.core.executor import run_reference
from repro.core.store import TensorStore
from repro.runtime import InferenceSession

from conftest import tiny_machine


def small_net():
    g = Graph("sess")
    x = g.input("img", (2, 8, 8, 2))
    h = g.conv2d(x, 4, 3, padding=1, activation="relu")
    h = g.maxpool(h, 2)
    h = g.flatten(h)
    g.output(g.dense(h, 3))
    return lower(g)


@pytest.fixture
def session():
    s = InferenceSession(small_net(), machine=tiny_machine())
    s.initialize_parameters(seed=1)
    return s


class TestParameters:
    def test_initialize_covers_all(self, session):
        assert set(session._params) == set(session.workload.params)
        assert session.parameter_names

    def test_initialization_deterministic(self):
        w = small_net()
        a = InferenceSession(w, tiny_machine())
        b = InferenceSession(w, tiny_machine())
        a.initialize_parameters(seed=5)
        b.initialize_parameters(seed=5)
        for name in a._params:
            np.testing.assert_array_equal(a._params[name], b._params[name])

    def test_load_validates_names_and_shapes(self, session):
        with pytest.raises(KeyError):
            session.load_parameters({"nope": np.zeros(3)})
        name = session.parameter_names[0]
        with pytest.raises(ValueError):
            session.load_parameters({name: np.zeros((1, 1))})

    def test_run_without_parameters_raises(self):
        s = InferenceSession(small_net(), tiny_machine())
        with pytest.raises(RuntimeError):
            s(img=np.zeros((2, 8, 8, 2)))


class TestExecution:
    def test_call_returns_outputs(self, session, rng):
        out = session(img=rng.normal(size=(2, 8, 8, 2)))
        assert len(out) == 1
        (logits,) = out.values()
        assert logits.shape == (2, 3)

    def test_matches_reference(self, session, rng):
        image = rng.normal(size=(2, 8, 8, 2))
        out = session(img=image)
        (got,) = out.values()
        # replay with the reference kernels
        store = TensorStore()
        for full, t in session.workload.inputs.items():
            store.bind(t, image)
        for name, t in session.workload.params.items():
            store.bind(t, session._params[name])
        for inst in session.workload.program:
            run_reference(inst, store)
        (out_tensor,) = session.workload.outputs.values()
        np.testing.assert_allclose(got, store.read(out_tensor.region()),
                                   atol=1e-8)

    def test_repeated_calls_independent(self, session, rng):
        a = rng.normal(size=(2, 8, 8, 2))
        b = rng.normal(size=(2, 8, 8, 2))
        out_a1 = list(session(img=a).values())[0]
        _ = session(img=b)
        out_a2 = list(session(img=a).values())[0]
        np.testing.assert_array_equal(out_a1, out_a2)

    def test_input_validation(self, session):
        with pytest.raises(KeyError):
            session(bogus=np.zeros((2, 8, 8, 2)))
        with pytest.raises(ValueError):
            session(img=np.zeros((1, 8, 8, 2)))

    def test_missing_input_detected(self):
        g = Graph("two-in")
        a = g.input("a", (4, 4))
        b = g.input("b", (4, 4))
        g.output(g.add(a, b))
        s = InferenceSession(lower(g), tiny_machine())
        with pytest.raises(ValueError, match="missing"):
            s(a=np.zeros((4, 4)))
