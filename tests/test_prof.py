"""Sampling profiler tests: attribution, overhead budget, merge, flame CLI.

Covers the acceptance criteria of the profiler PR: sampler attribution
correctness against a synthetic workload with known hot frames, the <5%
overhead budget (disabled AND enabled), worker-profile merge determinism,
profile-document validation, the flamegraph/top renderers, and the
``repro flame`` / ``repro flame-diff`` exit-code contracts.
"""

import json
import time

import pytest

from repro import obs, telemetry
from repro.cli import main
from repro.obs import prof as prof_mod
from repro.obs.flame import (
    diff_profiles,
    format_top_table,
    render_flamegraph_html,
    top_table,
)
from repro.obs.prof import (
    SamplingProfiler,
    collapsed_lines,
    merge_profiles,
    profile_summary,
    validate_profile,
)

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _no_leaked_profiler():
    """Every test must leave the process without an active profiler."""
    yield
    leaked = prof_mod.get_profiler()
    if leaked is not None:
        leaked.stop()
        pytest.fail("test leaked an active SamplingProfiler")


def _hot(deadline: float) -> int:
    """A known-hot frame: burn CPU until ``deadline`` (perf_counter)."""
    x = 0
    while time.perf_counter() < deadline:
        for i in range(2000):
            x += i * i
    return x


def _sample_hot(seconds: float = 0.3, hz: float = 500.0, tracer=None,
                setup=None):
    profiler = SamplingProfiler(hz=hz, tracer=tracer)
    with profiler:
        if setup is None:
            _hot(time.perf_counter() + seconds)
        else:
            setup(seconds)
    return profiler


class TestSampler:
    def test_known_hot_frame_dominates(self):
        profiler = _sample_hot()
        doc = profiler.to_doc()
        assert validate_profile(doc) == []
        assert doc["samples"] >= 20  # 500 Hz * 0.3 s, generous floor
        self_counts = {}
        for stack in doc["stacks"]:
            leaf = stack["frames"][-1]
            self_counts[leaf] = self_counts.get(leaf, 0) + stack["count"]
        hottest = max(self_counts, key=self_counts.get)
        assert hottest == "test_prof:_hot"
        assert self_counts[hottest] >= doc["samples"] * 0.8

    def test_span_attribution(self):
        tracer = telemetry.get_tracer()
        tracer.reset()
        tracer.enable()
        try:
            def body(seconds):
                with tracer.span("hot.section", cat="test"):
                    _hot(time.perf_counter() + seconds)
            profiler = _sample_hot(tracer=tracer, setup=body)
        finally:
            tracer.disable()
        doc = profiler.to_doc()
        spans = doc["attribution"]["spans"]
        assert spans.get("hot.section", 0) >= doc["samples"] * 0.8

    def test_step_attribution_opcode_and_level(self):
        def body(seconds):
            with prof_mod.step_scope("MatMul", 2):
                _hot(time.perf_counter() + seconds)
        profiler = _sample_hot(setup=body)
        doc = profiler.to_doc()
        assert doc["attribution"]["opcodes"].get("MatMul", 0) >= \
            doc["samples"] * 0.8
        assert doc["attribution"]["levels"].get("2", 0) >= \
            doc["samples"] * 0.8

    def test_set_step_is_noop_without_profiler(self):
        assert prof_mod.get_profiler() is None
        prof_mod.set_step("MatMul", 1)
        assert prof_mod.current_step() is None  # nothing was published
        prof_mod.clear_step()

    def test_step_scope_restores_previous(self):
        profiler = SamplingProfiler(hz=50.0)
        with profiler:
            prof_mod.set_step("outer", 0)
            with prof_mod.step_scope("inner", 1):
                assert prof_mod.current_step() == ("inner", 1)
            assert prof_mod.current_step() == ("outer", 0)
        assert prof_mod.current_step() is None  # stop() clears the map

    def test_single_profiler_per_process(self):
        with SamplingProfiler(hz=50.0):
            with pytest.raises(RuntimeError):
                SamplingProfiler(hz=50.0).start()

    def test_bad_hz_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)

    def test_distinct_stack_cap_counts_drops(self):
        profiler = SamplingProfiler(hz=50.0, max_stacks=1)
        profiler._add((("a:f",), None, None, None, None), 3)
        profiler._add((("b:g",), None, None, None, None), 2)  # over the cap
        doc = profiler.to_doc()
        assert doc["samples"] == 3
        assert doc["samples_dropped"] == 2
        assert validate_profile(doc) == []


class TestOverhead:
    def test_disabled_hooks_are_cheap(self):
        """The null-object path: set_step/clear_step without a profiler."""
        assert prof_mod.get_profiler() is None
        t0 = time.perf_counter()
        for _ in range(100_000):
            prof_mod.set_step("MatMul", 1)
        elapsed = time.perf_counter() - t0
        # One global None-check per call; 5 us/call is ~50x headroom.
        assert elapsed < 0.5, f"disabled set_step too slow: {elapsed:.3f}s"

    def test_overhead_budget_on_numpy_workload(self):
        """Enabled sampling stays inside the documented <5% budget."""
        import numpy as np

        a = np.random.default_rng(0).normal(size=(384, 384))

        def work():
            x = a
            for _ in range(12):
                x = x @ a
            return x

        def best(reps=5):
            times = []
            for _ in range(reps):
                t0 = time.perf_counter()
                work()
                times.append(time.perf_counter() - t0)
            return min(times)

        work()  # warm numpy
        baseline = best()
        profiler = SamplingProfiler(hz=200.0)
        with profiler:
            profiled = best()
        # min-of-reps on a GIL-releasing workload; small absolute fudge
        # keeps sub-100ms baselines from flaking on a noisy CI box.
        assert profiled <= baseline * 1.05 + 0.010, (
            f"sampling overhead {profiled / baseline - 1:.1%} "
            f"exceeds the 5% budget ({baseline:.4f}s -> {profiled:.4f}s)")


def _synthetic_doc(worker=None, counts=(5, 3)):
    stacks = [
        {"frames": ["main:run", "ops:dispatch", "linalg:matmul"],
         "count": counts[0], "span": "executor.replay", "opcode": "MatMul",
         "level": 2},
        {"frames": ["main:run", "plan:compile"], "count": counts[1]},
    ]
    doc = {
        "schema": "repro.obs.profile", "v": 1, "hz": 200.0,
        "duration_s": 1.0, "ticks": sum(counts),
        "samples": sum(counts), "samples_dropped": 0,
        "stacks": stacks,
        "attribution": prof_mod.attribution_tables(stacks),
    }
    if worker is not None:
        doc["worker"] = worker
    return doc


class TestDocument:
    def test_validate_catches_sum_mismatch(self):
        doc = _synthetic_doc()
        assert validate_profile(doc) == []
        doc["samples"] = 99
        assert any("sum of stack counts" in p for p in validate_profile(doc))

    def test_validate_catches_future_version_and_shape(self):
        doc = _synthetic_doc()
        doc["v"] = 99
        assert any("future" in p for p in validate_profile(doc))
        assert validate_profile({"schema": "nope", "v": 1, "stacks": "x"})

    def test_collapsed_lines(self):
        lines = collapsed_lines(_synthetic_doc())
        assert "main:run;ops:dispatch;linalg:matmul 5" in lines

    def test_profile_summary_is_small(self):
        summary = profile_summary(_synthetic_doc())
        assert summary["samples"] == 8
        assert summary["top_self"][0]["frame"] == "linalg:matmul"
        assert summary["top_spans"] == [
            {"span": "executor.replay", "samples": 5}]

    def test_merge_is_deterministic_and_order_insensitive(self):
        docs = [_synthetic_doc(worker=0, counts=(5, 3)),
                _synthetic_doc(worker=1, counts=(2, 7))]
        a = merge_profiles(docs)
        b = merge_profiles(list(reversed(docs)))
        a.pop("created"), b.pop("created")
        assert a == b
        assert a["samples"] == 17
        assert a["merged_from"] == 2
        assert a["attribution"]["workers"] == {"0": 8, "1": 9}
        assert validate_profile(dict(a, created="x")) == []

    def test_ingest_tags_workers(self):
        profiler = SamplingProfiler(hz=50.0)
        profiler.ingest(_synthetic_doc(), worker=3)
        doc = profiler.to_doc()
        assert doc["attribution"]["workers"] == {"3": 8}
        assert validate_profile(doc) == []


class TestFlame:
    def test_flamegraph_html_is_self_contained(self):
        html_text = render_flamegraph_html(_synthetic_doc(), title="t")
        assert html_text.startswith("<!DOCTYPE html>")
        assert "linalg:matmul" in html_text
        assert "ops:dispatch" in html_text
        for external in ("http://", "https://", "<script", "src="):
            assert external not in html_text

    def test_top_table_self_and_cumulative(self):
        rows = top_table(_synthetic_doc())
        by_frame = {r["frame"]: r for r in rows}
        assert by_frame["linalg:matmul"]["self"] == 5
        assert by_frame["main:run"]["self"] == 0
        assert by_frame["main:run"]["cum"] == 8
        text = format_top_table(_synthetic_doc())
        assert "frame" in text and "linalg:matmul" in text

    def test_diff_gates_on_share_growth(self):
        base = _synthetic_doc(counts=(5, 5))
        cand = _synthetic_doc(counts=(9, 1))  # MatMul 50% -> 90%
        result = diff_profiles(base, cand, threshold=0.05)
        assert result.exit_code == 3
        regressed = {e.path for e in result.regressions}
        assert "opcodes.MatMul" in regressed
        assert "frames.linalg:matmul" in regressed
        doc = result.to_json_obj()
        assert doc["schema"] == "repro.obs.profile_diff" and doc["v"] == 1
        assert doc["exit_code"] == 3
        assert "REGRESSION" in result.format_table()

    def test_diff_passes_identical_profiles(self):
        doc = _synthetic_doc()
        result = diff_profiles(doc, doc, threshold=0.05)
        assert result.exit_code == 0
        assert result.regressions == []

    def test_diff_threshold_loosens_gate(self):
        base = _synthetic_doc(counts=(5, 5))
        cand = _synthetic_doc(counts=(6, 4))  # +10 points
        assert diff_profiles(base, cand, threshold=0.05).exit_code == 3
        assert diff_profiles(base, cand, threshold=0.5).exit_code == 0


class TestWorkerShipping:
    def test_worker_capture_ships_profile(self):
        from repro.obs.worker import worker_capture
        wire = {"trace": {"trace_id": "t" * 32, "span_id": "s" * 16},
                "worker": 2, "profile_hz": 400.0}
        with worker_capture(wire) as holder:
            _hot(time.perf_counter() + 0.15)
        wt = holder.telemetry
        assert wt.profile is not None
        assert wt.profile["worker"] == 2
        assert wt.profile["trace_id"] == "t" * 32
        assert validate_profile(wt.profile) == []
        assert prof_mod.get_profiler() is None  # child profiler stopped

    def test_worker_capture_stops_profiler_on_error(self):
        from repro.obs.worker import worker_capture
        wire = {"trace": {}, "worker": 0, "profile_hz": 100.0}
        with pytest.raises(RuntimeError, match="boom"):
            with worker_capture(wire):
                raise RuntimeError("boom")
        assert prof_mod.get_profiler() is None

    def test_merge_worker_telemetry_ingests_into_parent(self):
        from repro.obs.worker import WorkerTelemetry, merge_worker_telemetry
        wt = WorkerTelemetry(worker=1, trace_id="t" * 32, span_id="s" * 16,
                             profile=_synthetic_doc())
        parent = SamplingProfiler(hz=50.0)
        with parent:
            merge_worker_telemetry(wt)
        doc = parent.to_doc()
        assert doc["attribution"]["workers"] == {"1": 8}

    def test_fork_reset_clears_inherited_profiler(self):
        """A forked pool child inherits _ACTIVE but not its sampler thread;
        the at-fork hook must clear it so worker_capture can start the
        cell's own profiler (the parent's stop() stays unaffected)."""
        parent = SamplingProfiler(hz=50.0)
        with parent:
            prof_mod.set_step("MatMul", 1)
            prof_mod._after_fork_in_child()  # what the child observes
            assert prof_mod.get_profiler() is None
            assert prof_mod.current_step() is None
            child = SamplingProfiler(hz=50.0)
            with child:  # worker_capture's guard now passes
                assert prof_mod.get_profiler() is child
            parent.stop()  # parent-side stop is still clean

    def test_build_wire_carries_profile_hz(self):
        from repro.obs.trace import TraceContext
        from repro.obs.worker import build_wire
        ctx = TraceContext(trace_id="t" * 32, span_id="s" * 16)
        assert build_wire(ctx, 0)["profile_hz"] is None
        with SamplingProfiler(hz=123.0):
            assert build_wire(ctx, 0)["profile_hz"] == 123.0


class TestJoins:
    def test_crash_bundle_includes_inflight_profile(self, tmp_path):
        recorder = obs.FlightRecorder(event_log=obs.EventLog())
        with SamplingProfiler(hz=100.0):
            bundle = recorder.dump(str(tmp_path), reason="prof-test")
        prof_path = bundle / "profile.json"
        assert prof_path.exists()
        doc = json.loads(prof_path.read_text())
        assert doc["schema"] == "repro.obs.profile"

    def test_run_report_notes_profile(self):
        with SamplingProfiler(hz=100.0):
            _hot(time.perf_counter() + 0.1)
            report = telemetry.build_run_report(benchmark="x", machine="y")
        profile = report.notes.get("profile")
        assert profile is not None and profile["hz"] == 100.0

    def test_record_profile_lands_in_ledger(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path))
        prof_mod.record_profile(_synthetic_doc(), path="p.json",
                                command="test")
        ledger = obs.get_ledger()
        rows = [r for r in ledger.rows() if r.get("kind") == "profile"]
        assert rows and rows[-1]["artifact"] == "p.json"
        assert rows[-1]["profile"]["samples"] == 8


class TestTracerSelfTime:
    def test_rollups_report_exclusive_time(self):
        tracer = telemetry.get_tracer()
        tracer.reset()
        tracer.enable()
        try:
            with tracer.span("outer"):
                time.sleep(0.02)
                with tracer.span("inner"):
                    time.sleep(0.04)
        finally:
            tracer.disable()
        rollups = tracer.rollups()
        outer, inner = rollups["outer"], rollups["inner"]
        assert inner["self_total_s"] == pytest.approx(inner["total_s"])
        # outer's inclusive time covers inner; its self time must not.
        assert outer["total_s"] >= 0.055
        assert outer["self_total_s"] < outer["total_s"] - 0.03
        assert outer["self_total_s"] >= 0.015

    def test_current_span_name_tracks_stack(self):
        tracer = telemetry.get_tracer()
        tracer.reset()
        tracer.enable()
        try:
            assert tracer.current_span_name() is None
            with tracer.span("a"):
                with tracer.span("b"):
                    assert tracer.current_span_name() == "b"
                assert tracer.current_span_name() == "a"
            assert tracer.current_span_name() is None
        finally:
            tracer.disable()


class TestSatelliteCli:
    def test_flame_json_contract(self, capsys, tmp_path):
        out = tmp_path / "p.json"
        code = main(["flame", "mm_fc", "--hz", "400", "--iterations", "3",
                     "-o", str(out), "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_profile(doc) == []
        assert doc["benchmark"] == "mm_fc"
        assert doc["meta"]["runs"] == 3
        assert json.loads(out.read_text()) == doc
        # plan-step attribution reached the document
        assert "opcodes" in doc["attribution"]

    def test_flame_unknown_benchmark_exits_2(self, capsys):
        assert main(["flame", "nope"]) == 2

    def test_flame_writes_html(self, tmp_path, capsys):
        out, html_out = tmp_path / "p.json", tmp_path / "f.html"
        code = main(["flame", "mm_fc", "--hz", "300", "--iterations", "2",
                     "-o", str(out), "--html", str(html_out)])
        assert code == 0
        assert html_out.read_text().startswith("<!DOCTYPE html>")

    def test_flame_diff_exit_codes(self, tmp_path, capsys):
        base, cand = tmp_path / "b.json", tmp_path / "c.json"
        base.write_text(json.dumps(_synthetic_doc(counts=(5, 5))))
        cand.write_text(json.dumps(_synthetic_doc(counts=(9, 1))))
        assert main(["flame-diff", str(base), str(base)]) == 0
        assert main(["flame-diff", str(base), str(cand)]) == 3
        assert main(["flame-diff", str(base), str(tmp_path / "nope.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{\"schema\": \"wrong\"}")
        assert main(["flame-diff", str(base), str(bad)]) == 2
        capsys.readouterr()
        assert main(["flame-diff", str(base), str(cand), "--json"]) == 3
        doc = json.loads(capsys.readouterr().out)
        assert doc["exit_code"] == 3

    def test_events_tail_grep(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        records = [
            {"schema": "repro.obs.event", "v": 1, "seq": 1, "ts": 1.0,
             "subsystem": "executor", "event": "replay.start",
             "severity": "info", "steps": 42},
            {"schema": "repro.obs.event", "v": 1, "seq": 2, "ts": 2.0,
             "subsystem": "sim", "event": "cache.hit", "severity": "debug"},
        ]
        events.write_text("".join(json.dumps(r) + "\n" for r in records))
        code = main(["events", "tail", str(events), "--grep", "replay\\."])
        assert code == 0
        out = capsys.readouterr().out
        assert "replay.start" in out and "cache.hit" not in out
        # bad regex is a usage error
        assert main(["events", "tail", str(events), "--grep", "("]) == 2

    def test_filter_events_grep_composes(self):
        records = [
            {"event": "replay.start", "subsystem": "executor",
             "severity": "info"},
            {"event": "replay.fail", "subsystem": "executor",
             "severity": "error"},
            {"event": "kernel.fail", "subsystem": "ops", "severity": "error"},
        ]
        picked = obs.filter_events(records, min_severity="error",
                                   pattern="replay")
        assert [e["event"] for e in picked] == ["replay.fail"]

    def test_top_json_frame_doc(self):
        from repro.obs.top import frame_doc, parse_exposition
        text = ("repro_executor_kernel_calls_total 5\n"
                "repro_sim_busy_seconds_total{level=\"0\"} 1.5\n")
        samples = parse_exposition(text)
        doc = frame_doc(samples, url="127.0.0.1:9")
        assert doc["schema"] == "repro.obs.top" and doc["v"] == 1
        assert doc["samples"]["repro_executor_kernel_calls_total"] == 5
        prev = dict(samples)
        samples[("repro_executor_kernel_calls_total", ())] = 9.0
        doc2 = frame_doc(samples, prev=prev, interval=1.0)
        assert doc2["movers"] == {"repro_executor_kernel_calls_total": 4.0}
