"""SVG rendering tests: every figure must be well-formed XML with the
expected structure."""

import xml.etree.ElementTree as ET

import pytest

from repro import Instruction, Opcode, Tensor, custom_machine
from repro.core.machine import KB, MB
from repro.sim import FractalSimulator
from repro.viz import (
    LineChart,
    ScatterChart,
    SVGDocument,
    render_fig1,
    render_fig10,
    render_fig13,
    render_fig15,
    render_fig16,
)
from repro.viz.svg import Scale, fmt_tick

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


def tags(svg: str, tag: str):
    return parse(svg).iter(SVG_NS + tag)


class TestSVGDocument:
    def test_renders_valid_xml(self):
        doc = SVGDocument(100, 80)
        doc.rect(1, 2, 3, 4)
        doc.line(0, 0, 10, 10)
        doc.circle(5, 5)
        doc.text(10, 10, "hi <&> there")
        root = parse(doc.render())
        assert root.tag == SVG_NS + "svg"

    def test_escapes_text(self):
        doc = SVGDocument(50, 50)
        doc.text(0, 0, "<script>")
        assert "<script>" not in doc.render()
        assert "&lt;script&gt;" in doc.render()

    def test_negative_sizes_clamped(self):
        doc = SVGDocument(50, 50)
        doc.rect(0, 0, -5, 10)
        rect = list(tags(doc.render(), "rect"))[-1]
        assert float(rect.get("width")) == 0.0

    def test_write(self, tmp_path):
        path = tmp_path / "x.svg"
        SVGDocument(10, 10).write(str(path))
        assert path.read_text().startswith("<svg")


class TestScale:
    def test_linear(self):
        s = Scale(0, 10, 100, 200)
        assert s(0) == 100 and s(10) == 200 and s(5) == 150

    def test_log(self):
        s = Scale(1, 100, 0, 100, log=True)
        assert s(10) == pytest.approx(50)

    def test_log_requires_positive(self):
        with pytest.raises(ValueError):
            Scale(0, 10, 0, 1, log=True)

    def test_bad_domain(self):
        with pytest.raises(ValueError):
            Scale(5, 5, 0, 1)

    def test_log_ticks_are_decades(self):
        assert Scale(1, 1000, 0, 1, log=True).ticks() == [1, 10, 100, 1000]

    def test_fmt_tick(self):
        assert fmt_tick(0) == "0"
        assert fmt_tick(2e12) == "2T"
        assert fmt_tick(1500) == "1.5k"
        assert fmt_tick(0.001) == "1.0e-03"


class TestCharts:
    def test_line_chart_structure(self):
        c = LineChart("t", "x", "y")
        c.add_series("a", [(0, 1), (1, 2), (2, 4)])
        svg = c.render()
        assert len(list(tags(svg, "polyline"))) >= 1
        assert len(list(tags(svg, "circle"))) == 3
        assert any(el.text == "a" for el in tags(svg, "text"))

    def test_scatter_chart(self):
        c = ScatterChart("t", "x", "y")
        c.add_series("pts", [(1, 1), (2, 3)])
        assert len(list(tags(c.render(), "circle"))) == 2

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            LineChart("t", "x", "y").add_series("a", [])

    def test_hline_rendered(self):
        c = LineChart("t", "x", "y")
        c.add_series("a", [(0, 1), (1, 2)])
        c.add_hline(1.5, "roof")
        assert any(el.text == "roof" for el in tags(c.render(), "text"))

    def test_log_axes(self):
        c = LineChart("t", "x", "y", x_log=True, y_log=True)
        c.add_series("a", [(1, 1), (100, 10000)])
        parse(c.render())  # must not raise


class TestFigures:
    def test_fig1(self):
        svg = render_fig1()
        parse(svg)
        assert "TOPS/W" in svg

    def test_fig10(self):
        svg = render_fig10(sizes=[256 << 10, 1 << 20, 4 << 20])
        parse(svg)
        assert "MatMul measured" in svg

    def test_fig16(self):
        svg = render_fig16()
        parse(svg)
        assert "CUDA cores" in svg

    def test_fig13_from_simulation(self):
        m = custom_machine("viz", [2, 2], [4 * MB, MB, 128 * KB],
                           [32e9] * 3, core_peak_ops=100e9)
        a, b = Tensor("a", (256, 256)), Tensor("b", (256, 256))
        c = Tensor("c", (256, 256))
        inst = Instruction(Opcode.MATMUL, (a.region(), b.region()),
                           (c.region(),))
        rep = FractalSimulator(m, collect_profiles=True).simulate([inst])
        svg = render_fig13(rep, m)
        parse(svg)
        assert "timeline" in svg

    def test_fig15_from_simulation(self):
        from repro import cambricon_f1
        from repro.model.gpu import GTX1080TI
        from repro.workloads import small_benchmark
        m = cambricon_f1()
        points = {}
        for name in ("K-NN", "SVM"):
            w = small_benchmark(name)
            points[name] = FractalSimulator(
                m, collect_profiles=False).simulate(w.program)
        svg = render_fig15(points, m, GTX1080TI)
        parse(svg)
        assert "roofline" in svg
