"""Functional fractal executor tests: end-to-end numerical equivalence on
every opcode and a variety of machine shapes."""

import numpy as np
import pytest

from repro import FractalExecutor, Instruction, Opcode, Tensor, TensorStore, custom_machine
from repro.core.executor import run_reference

from conftest import assert_fractal_matches, tiny_machine


def _instr(opcode, shapes, out_shape, attrs=None, rng=None):
    rng = rng or np.random.default_rng(7)
    regions, arrays = [], {}
    for i, shape in enumerate(shapes):
        t = Tensor(f"in{i}", shape)
        regions.append(t.region())
        arrays[t.region()] = rng.normal(size=shape)
    out = Tensor("out", out_shape)
    inst = Instruction(opcode, tuple(regions), (out.region(),), attrs or {})
    return inst, arrays


ALL_OPCODE_CASES = [
    (Opcode.MATMUL, [(13, 9), (9, 11)], (13, 11), {}),
    (Opcode.CV2D, [(2, 8, 8, 3), (3, 3, 3, 4)], (2, 6, 6, 4), {"stride": 1}),
    (Opcode.CV2D, [(1, 9, 9, 2), (3, 3, 2, 4)], (1, 4, 4, 4), {"stride": 2}),
    (Opcode.CV3D, [(1, 5, 6, 6, 2), (2, 3, 3, 2, 3)], (1, 4, 4, 4, 3), {}),
    (Opcode.MAX2D, [(2, 8, 8, 3)], (2, 4, 4, 3), {"kh": 2, "kw": 2}),
    (Opcode.MIN2D, [(2, 8, 8, 3)], (2, 4, 4, 3), {"kh": 2, "kw": 2}),
    (Opcode.AVG2D, [(2, 9, 9, 3)], (2, 4, 4, 3),
     {"kh": 3, "kw": 3, "sh": 2, "sw": 2}),
    (Opcode.LRN, [(2, 4, 4, 8)], (2, 4, 4, 8), {"size": 5}),
    (Opcode.EUCLIDIAN1D, [(10, 7), (6, 7)], (10, 6), {}),
    (Opcode.SORT1D, [(37,)], (37,), {}),
    (Opcode.COUNT1D, [(50,)], (1,), {}),
    (Opcode.ADD1D, [(23,), (23,)], (23,), {}),
    (Opcode.SUB1D, [(23,), (23,)], (23,), {}),
    (Opcode.MUL1D, [(23,), (23,)], (23,), {}),
    (Opcode.ACT1D, [(19,)], (19,), {"func": "relu"}),
    (Opcode.HSUM1D, [(41,)], (1,), {}),
    (Opcode.HPROD1D, [(11,)], (1,), {}),
]


@pytest.mark.parametrize("opcode,shapes,out_shape,attrs", ALL_OPCODE_CASES,
                         ids=lambda v: getattr(v, "value", None) or str(v)[:18])
def test_every_opcode_fractal_equals_reference(opcode, shapes, out_shape, attrs):
    inst, arrays = _instr(opcode, shapes, out_shape, attrs)
    assert_fractal_matches(inst, arrays, atol=1e-8)


def test_merge_opcode_fractal(rng):
    parts = []
    arrays = {}
    for i, n in enumerate((9, 5, 12, 7)):
        t = Tensor(f"p{i}", (n,))
        parts.append(t.region())
        arrays[t.region()] = np.sort(rng.normal(size=n))
    out = Tensor("out", (33,))
    inst = Instruction(Opcode.MERGE1D, tuple(parts), (out.region(),))
    assert_fractal_matches(inst, arrays)


class TestMachineShapes:
    """Correctness must hold regardless of the hierarchy."""

    @pytest.mark.parametrize("fanouts", [(2,), (8,), (2, 2, 2), (4, 3), (1, 4)])
    def test_matmul_on_varied_hierarchies(self, rng, fanouts):
        inst, arrays = _instr(Opcode.MATMUL, [(12, 10), (10, 8)], (12, 8))
        mems = [1 << (16 - 2 * i) for i in range(len(fanouts) + 1)]
        machine = custom_machine("m", list(fanouts), mems,
                                 [1e9] * (len(fanouts) + 1))
        assert_fractal_matches(inst, arrays, machine)

    def test_fanout_one_inherits_whole(self, rng):
        inst, arrays = _instr(Opcode.CV2D, [(1, 6, 6, 2), (3, 3, 2, 2)],
                              (1, 4, 4, 2), {"stride": 1})
        machine = custom_machine("deep1", [1, 2], [1 << 16, 1 << 14, 1 << 12],
                                 [1e9] * 3)
        assert_fractal_matches(inst, arrays, machine)

    def test_tight_memory_forces_sequential_decomposition(self, rng):
        inst, arrays = _instr(Opcode.MATMUL, [(16, 16), (16, 16)], (16, 16))
        machine = custom_machine("tight", [2], [600, 300], [1e9, 1e9])
        store = TensorStore()
        for r, arr in arrays.items():
            store.bind(r.tensor, arr)
        ex = FractalExecutor(machine, store)
        ex.run(inst)
        assert ex.stats.kernel_calls > 4  # heavy decomposition happened
        ref = TensorStore()
        for r, arr in arrays.items():
            ref.bind(r.tensor, arr)
        run_reference(inst, ref)
        np.testing.assert_allclose(store.read(inst.outputs[0]),
                                   ref.read(inst.outputs[0]), atol=1e-9)

    def test_without_sequential_decomposition(self, rng):
        inst, arrays = _instr(Opcode.MATMUL, [(8, 8), (8, 8)], (8, 8))
        store = TensorStore()
        for r, arr in arrays.items():
            store.bind(r.tensor, arr)
        ex = FractalExecutor(tiny_machine(), store, apply_sequential=False)
        ex.run(inst)
        ref = TensorStore()
        for r, arr in arrays.items():
            ref.bind(r.tensor, arr)
        run_reference(inst, ref)
        np.testing.assert_allclose(store.read(inst.outputs[0]),
                                   ref.read(inst.outputs[0]), atol=1e-9)


class TestPrograms:
    def test_chained_instructions(self, rng):
        """conv -> relu -> pool as a program, intermediates flowing through."""
        x = Tensor("x", (1, 8, 8, 2))
        w = Tensor("w", (3, 3, 2, 4))
        c = Tensor("c", (1, 6, 6, 4))
        r = Tensor("r", (1, 6, 6, 4))
        p = Tensor("p", (1, 3, 3, 4))
        program = [
            Instruction(Opcode.CV2D, (x.region(), w.region()), (c.region(),),
                        {"stride": 1}),
            Instruction(Opcode.ACT1D, (c.region(),), (r.region(),),
                        {"func": "relu"}),
            Instruction(Opcode.MAX2D, (r.region(),), (p.region(),),
                        {"kh": 2, "kw": 2}),
        ]
        frac, ref = TensorStore(), TensorStore()
        for t in (x, w):
            arr = rng.normal(size=t.shape)
            frac.bind(t, arr)
            ref.bind(t, arr)
        for inst in program:
            run_reference(inst, ref)
        FractalExecutor(tiny_machine(), frac).run_program(program)
        np.testing.assert_allclose(frac.read(p.region()), ref.read(p.region()),
                                   atol=1e-9)

    def test_stats_collected(self, rng):
        inst, arrays = _instr(Opcode.MATMUL, [(8, 8), (8, 8)], (8, 8))
        store = TensorStore()
        for r, arr in arrays.items():
            store.bind(r.tensor, arr)
        ex = FractalExecutor(tiny_machine(), store)
        ex.run(inst)
        assert ex.stats.kernel_calls > 0
        assert ex.stats.instructions_per_level[0] == 1
        assert ex.stats.max_depth_reached == 2


class TestStore:
    def test_bind_shape_check(self):
        t = Tensor("t", (4, 4))
        with pytest.raises(ValueError):
            TensorStore().bind(t, np.ones((3, 3)))

    def test_write_reshapes_flat_results(self):
        t = Tensor("t", (2, 3))
        store = TensorStore()
        store.write(t.region(), np.arange(6.0))
        assert store.read(t.region()).shape == (2, 3)

    def test_write_rejects_wrong_size(self):
        t = Tensor("t", (2, 3))
        with pytest.raises(ValueError):
            TensorStore().write(t.region(), np.arange(5.0))

    def test_accumulate(self):
        t = Tensor("t", (4,))
        store = TensorStore()
        store.write(t.region(), np.ones(4))
        store.write_accumulate(t.region(), 2 * np.ones(4))
        np.testing.assert_allclose(store.read(t.region()), 3.0)

    def test_read_returns_copy(self):
        t = Tensor("t", (4,))
        store = TensorStore()
        store.write(t.region(), np.ones(4))
        view = store.read(t.region())
        view[0] = 99
        assert store.read(t.region())[0] == 1.0
