"""Machine model tests: level specs, construction, validation, rates."""

import pytest

from repro.core.machine import (
    CORE_PEAK_OPS,
    GB,
    KB,
    MB,
    LevelSpec,
    Machine,
    cambricon_f1,
    cambricon_f100,
    custom_machine,
)


class TestLevelSpec:
    def test_leaf_detection(self):
        assert LevelSpec("Core", 0, 0, 1024, 1e9, 1e9).is_leaf
        assert not LevelSpec("FMP", 4, 0, 1024, 1e9, 1e9).is_leaf


class TestMachineValidation:
    def _leaf(self):
        return LevelSpec("Core", 0, 0, 1024, 1e9, 1e9)

    def test_needs_levels(self):
        with pytest.raises(ValueError):
            Machine("m", [])

    def test_last_must_be_leaf(self):
        with pytest.raises(ValueError):
            Machine("m", [LevelSpec("A", 2, 0, 1024, 1e9, 1e9)])

    def test_leaf_only_at_bottom(self):
        with pytest.raises(ValueError):
            Machine("m", [self._leaf(), self._leaf()])

    def test_single_leaf_machine_valid(self):
        m = Machine("solo", [self._leaf()])
        assert m.depth == 1
        assert m.total_cores == 1


class TestStructure:
    def test_nodes_at(self):
        m = cambricon_f100()
        assert m.nodes_at(0) == 1
        assert m.nodes_at(1) == 4
        assert m.nodes_at(2) == 8
        assert m.nodes_at(3) == 64
        assert m.nodes_at(4) == 2048

    def test_peak_consistency(self):
        """Every level's quoted peak equals its subtree's core total."""
        m = cambricon_f100()
        for i, spec in enumerate(m.levels):
            cores_below = m.total_cores // m.nodes_at(i)
            assert spec.peak_ops == pytest.approx(
                cores_below * CORE_PEAK_OPS, rel=1e-6), spec.name

    def test_with_features_is_copy(self):
        base = cambricon_f1()
        variant = base.with_features(use_ttt=False)
        assert base.use_ttt and not variant.use_ttt
        assert base.levels == variant.levels


class TestCustomMachine:
    def test_basic_build(self):
        m = custom_machine("c", [4, 8], [16 * MB, MB, 64 * KB],
                           [1e9, 1e9, 1e9])
        assert m.depth == 3
        assert m.total_cores == 32
        assert m.level(1).fanout == 8

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            custom_machine("c", [4], [MB], [1e9])

    def test_custom_lfus(self):
        m = custom_machine("c", [4], [MB, KB], [1e9, 1e9], n_lfus=[2, 0])
        assert m.level(0).n_lfus == 2

    def test_default_lfus_half_fanout(self):
        m = custom_machine("c", [8], [MB, KB], [1e9, 1e9])
        assert m.level(0).n_lfus == 4

    def test_core_peak_override(self):
        m = custom_machine("c", [2], [MB, KB], [1e9, 1e9],
                           core_peak_ops=5e9)
        assert m.peak_ops == pytest.approx(1e10)


class TestDescribe:
    def test_mentions_every_level(self):
        text = cambricon_f100().describe()
        for name in ("Server", "Card", "Chip", "FMP", "Core"):
            assert name in text

    def test_units_format(self):
        text = cambricon_f1().describe()
        assert "GB" in text and "KB" in text
