"""Cross-validation: the closed-form pipeline recurrence vs the explicit
discrete-event simulation must agree on arbitrary stage streams."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.eventsim import EventDrivenPipeline, cross_validate
from repro.sim.pipeline import StageTimes, schedule_pipeline

durations = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


def stage_strategy(max_inst=8):
    return st.lists(
        st.builds(
            StageTimes,
            decode=durations,
            load=durations,
            exec=durations,
            reduce=durations,
            writeback=durations,
            exec_fill=st.floats(0.0, 3.0),
            pre_assignable=st.booleans(),
        ),
        min_size=0, max_size=max_inst,
    )


class TestAgreement:
    def test_simple_stream(self):
        stages = [StageTimes(decode=1, load=2, exec=3, reduce=1, writeback=2)
                  for _ in range(4)]
        agree, closed, des = cross_validate(stages)
        assert agree, (closed, des)

    def test_with_stalls(self):
        stages = [
            StageTimes(load=1, exec=2, writeback=3),
            StageTimes(load=1, exec=2, stall_on=0),
            StageTimes(load=1, exec=2, stall_on=1, writeback=1),
        ]
        agree, closed, des = cross_validate(stages)
        assert agree, (closed, des)

    def test_with_concatenation(self):
        stages = [StageTimes(load=1, exec=4, exec_fill=2, pre_assignable=True)
                  for _ in range(5)]
        for concat in (True, False):
            agree, closed, des = cross_validate(stages, concat)
            assert agree, (concat, closed, des)

    def test_empty(self):
        agree, closed, des = cross_validate([])
        assert agree and closed == 0.0 and des == 0.0

    def test_placements_match_closed_form(self):
        stages = [StageTimes(decode=0.5, load=1, exec=2, reduce=0.5,
                             writeback=1) for _ in range(3)]
        closed = schedule_pipeline(stages, True)
        placements = EventDrivenPipeline(stages, True).run()
        for i, sched in enumerate(closed.instructions):
            assert placements[(i, "ld")] == pytest.approx(
                (sched.ld_iv.start, sched.ld_iv.end))
            assert placements[(i, "ex")] == pytest.approx(
                (sched.ex_iv.start, sched.ex_iv.end))
            assert placements[(i, "wb")] == pytest.approx(
                (sched.wb_iv.start, sched.wb_iv.end))


@settings(deadline=None, max_examples=150)
@given(stages=stage_strategy(), concat=st.booleans())
def test_schedulers_agree_on_random_streams(stages, concat):
    agree, closed, des = cross_validate(stages, concat)
    assert agree, (closed, des)


@settings(deadline=None, max_examples=60)
@given(stages=stage_strategy(), stall_gap=st.integers(1, 3),
       concat=st.booleans())
def test_schedulers_agree_with_random_stalls(stages, stall_gap, concat):
    for i in range(stall_gap, len(stages)):
        stages[i].stall_on = i - stall_gap
    agree, closed, des = cross_validate(stages, concat)
    assert agree, (closed, des)
