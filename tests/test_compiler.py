"""Graph compiler tests: shape inference, passes, lowering, end-to-end
execution of compiled networks."""

import numpy as np
import pytest

from repro import FractalExecutor, TensorStore
from repro.compiler import (
    Graph,
    GraphError,
    common_subexpression_elimination,
    dead_code_elimination,
    fold_pads,
    lower,
    optimize,
)
from repro.core.executor import run_reference

from conftest import tiny_machine


def small_cnn():
    g = Graph("cnn")
    x = g.input("img", (1, 16, 16, 3))
    h = g.conv2d(x, 8, 3, padding=1, activation="relu")
    h = g.maxpool(h, 2)
    h = g.flatten(h)
    y = g.dense(h, 10)
    g.output(y)
    return g


class TestShapeInference:
    def test_conv_shapes(self):
        g = Graph()
        x = g.input("x", (2, 16, 16, 3))
        c = g.conv2d(x, 8, 3, stride=1, padding=1)
        assert g.shape(c) == (2, 16, 16, 8)
        c2 = g.conv2d(c, 4, 3, stride=2)
        assert g.shape(c2) == (2, 7, 7, 4)

    def test_pool_shapes(self):
        g = Graph()
        x = g.input("x", (1, 8, 8, 4))
        assert g.shape(g.maxpool(x, 2)) == (1, 4, 4, 4)
        assert g.shape(g.avgpool(x, 3, stride=1)) == (1, 6, 6, 4)

    def test_flatten_dense(self):
        g = Graph()
        x = g.input("x", (2, 4, 4, 3))
        f = g.flatten(x)
        assert g.shape(f) == (2, 48)
        assert g.shape(g.dense(f, 7)) == (2, 7)

    def test_oversized_kernel_rejected(self):
        g = Graph()
        x = g.input("x", (1, 4, 4, 1))
        with pytest.raises(GraphError):
            g.conv2d(x, 2, 5)

    def test_add_shape_mismatch(self):
        g = Graph()
        a = g.input("a", (1, 4, 4, 2))
        b = g.input("b", (1, 4, 4, 3))
        with pytest.raises(GraphError):
            g.add(a, b)

    def test_rank_check(self):
        g = Graph()
        x = g.input("x", (4, 8))
        with pytest.raises(GraphError):
            g.conv2d(x, 2, 3)

    def test_unknown_input_node(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.activation("nope")

    def test_validate_requires_output(self):
        g = Graph()
        g.input("x", (1, 4))
        with pytest.raises(GraphError):
            g.validate()


class TestPasses:
    def test_dce_removes_dangling(self):
        g = Graph()
        x = g.input("x", (1, 8, 8, 2))
        used = g.conv2d(x, 2, 3)
        g.conv2d(x, 4, 3)  # dead
        g.output(used)
        out, removed = dead_code_elimination(g)
        assert removed == 1
        assert len(out) == len(g) - 1

    def test_dce_noop_when_all_live(self):
        g = small_cnn()
        _, removed = dead_code_elimination(g)
        assert removed == 0

    def test_cse_merges_duplicates(self):
        g = Graph()
        x = g.input("x", (1, 8, 8, 2))
        a = g.activation(x, "relu")
        bb = g.activation(x, "relu")  # identical
        y = g.add(a, bb)
        g.output(y)
        out, merged = common_subexpression_elimination(g)
        assert merged == 1
        add_node = next(n for n in out.topological() if n.op == "add")
        assert add_node.inputs[0] == add_node.inputs[1]

    def test_cse_keeps_distinct_params(self):
        g = Graph()
        x = g.input("x", (1, 4))
        g.output(g.add(g.activation(x, "relu"), g.activation(x, "tanh")))
        _, merged = common_subexpression_elimination(g)
        assert merged == 0

    def test_fold_pad_into_conv(self):
        g = Graph()
        x = g.input("x", (1, 8, 8, 2))
        p = g.pad(x, 1)
        c = g.conv2d(p, 4, 3)
        g.output(c)
        out, folded = fold_pads(g)
        assert folded == 1
        conv = next(n for n in out.topological() if n.op == "conv2d")
        assert conv.param_dict["padding"] == 1
        assert all(n.op != "pad" for n in out.topological())

    def test_fold_pad_skips_shared(self):
        g = Graph()
        x = g.input("x", (1, 8, 8, 2))
        p = g.pad(x, 1)
        g.output(g.conv2d(p, 2, 3))
        g.output(g.maxpool(p, 2))
        _, folded = fold_pads(g)
        assert folded == 0  # two consumers: cannot fold

    def test_optimize_fixpoint(self):
        g = Graph()
        x = g.input("x", (1, 8, 8, 2))
        p1 = g.pad(x, 1)
        p2 = g.pad(x, 1)  # duplicate of p1
        a = g.conv2d(p1, 2, 3)
        b = g.conv2d(p2, 2, 3)  # CSE collapses after pad folding
        g.conv2d(x, 7, 3)  # dead
        g.output(g.add(a, b))
        out, stats = optimize(g)
        assert stats["dce"] >= 1
        assert stats["cse"] + stats["pad_fold"] >= 2

    def test_passes_preserve_semantics(self, rng):
        """Optimized graph computes the same numbers as the naive one."""
        g = Graph("semantics")
        x = g.input("img", (1, 8, 8, 2))
        p = g.pad(x, 1)
        c = g.conv2d(p, 4, 3, activation="relu")
        g.conv2d(x, 3, 3)  # dead branch
        g.output(c)
        opt, _ = optimize(g)
        image = rng.normal(size=(1, 8, 8, 2))
        outs = []
        for graph in (g, opt):
            w = lower(graph)
            store = TensorStore()
            for t in w.inputs.values():
                store.bind(t, image)
            # parameters must match across both compilations: seed per-shape
            for t in w.params.values():
                store.bind(t, 0.1 * np.random.default_rng(
                    sum(t.shape)).normal(size=t.shape))
            for inst in w.program:
                run_reference(inst, store)
            out = list(w.outputs.values())[0]
            outs.append(store.read(out.region()))
        np.testing.assert_allclose(outs[0], outs[1], atol=1e-9)


class TestLowering:
    def test_cnn_lowers_and_runs(self, rng):
        w = lower(small_cnn())
        assert len(w.program) > 4
        store = TensorStore()
        for t in list(w.inputs.values()) + list(w.params.values()):
            store.bind(t, 0.1 * rng.normal(size=t.shape))
        ref = TensorStore()
        for t in list(w.inputs.values()) + list(w.params.values()):
            ref.bind(t, store.read(t.region()))
        for inst in w.program:
            run_reference(inst, ref)
        FractalExecutor(tiny_machine(), store).run_program(w.program)
        out = list(w.outputs.values())[0]
        np.testing.assert_allclose(store.read(out.region()),
                                   ref.read(out.region()), atol=1e-8)

    def test_lowered_shapes_match_graph(self):
        g = small_cnn()
        w = lower(g)
        out_tensor = list(w.outputs.values())[0]
        assert out_tensor.shape == g.shape(g.outputs[0])

    def test_residual_block_lowers(self, rng):
        g = Graph("res")
        x = g.input("x", (1, 8, 8, 4))
        h = g.conv2d(x, 4, 3, padding=1, activation="relu")
        h = g.conv2d(h, 4, 3, padding=1)
        y = g.activation(g.add(h, x), "relu")
        g.output(y)
        w = lower(g)
        store = TensorStore()
        for t in list(w.inputs.values()) + list(w.params.values()):
            store.bind(t, 0.1 * rng.normal(size=t.shape))
        FractalExecutor(tiny_machine(), store).run_program(w.program)
        out = list(w.outputs.values())[0]
        assert np.all(store.read(out.region()) >= 0)  # final relu

    def test_lrn_lowering(self):
        g = Graph()
        x = g.input("x", (1, 4, 4, 8))
        g.output(g.lrn(x, size=5))
        w = lower(g)
        from repro.core.isa import Opcode
        assert any(i.opcode is Opcode.LRN for i in w.program)

    def test_metadata(self):
        w = lower(small_cnn())
        assert w.meta["compiled_from"] == "cnn"
        assert w.meta["nodes"] == len(small_cnn())
