"""Cost model tests: calibration against the paper's published silicon
numbers, design-space orderings, survey growth rates."""

import pytest

from repro import cambricon_f1, cambricon_f100
from repro.cost.compare import ACCELERATOR_CHIPS, fractal_chips
from repro.cost.dse import TABLE4_HIERARCHIES, build_design, explore_design_space, mboi_ref
from repro.cost.edram import (
    edram_area_mm2,
    edram_bandwidth,
    edram_power_mw,
)
from repro.cost.layout import (
    CORE_AREA_UM2,
    CORE_POWER_MW,
    chip_cost,
    core_cost,
    table7_rows,
)
from repro.cost.survey import (
    ACCELERATOR_EFFICIENCY_TREND,
    NVIDIA_GPU_TREND,
    annual_growth,
    efficiency_growth,
    gpu_bandwidth_growth,
    gpu_core_growth,
)

MB = 1 << 20


class TestEDRAM:
    def test_anchor_point(self):
        """The 256 KB leaf macro must match Table 7 exactly."""
        assert edram_area_mm2(256 << 10) == pytest.approx(201_588 / 1e6, rel=1e-3)
        assert edram_power_mw(256 << 10) == pytest.approx(16.15, rel=1e-3)

    def test_monotone(self):
        assert edram_area_mm2(8 * MB) > edram_area_mm2(MB)
        assert edram_power_mw(8 * MB) > edram_power_mw(MB)

    def test_sublinear_power(self):
        p1, p64 = edram_power_mw(MB), edram_power_mw(64 * MB)
        assert p64 < 64 * p1

    def test_zero_capacity(self):
        assert edram_area_mm2(0) == 0.0
        assert edram_power_mw(0) == 0.0

    def test_bandwidth_saturates(self):
        assert edram_bandwidth(MB) == edram_bandwidth(256 * MB)
        assert edram_bandwidth(256 << 10) < edram_bandwidth(MB)


class TestLayoutCalibration:
    """Model totals must land near the published Table-7 values."""

    def test_core_matches_table7(self):
        c = core_cost()
        assert c.area_mm2 == pytest.approx(CORE_AREA_UM2 / 1e6)
        assert c.power_w == pytest.approx(CORE_POWER_MW / 1e3)
        assert c.area_mm2 == pytest.approx(0.4263, rel=1e-3)
        assert c.power_w == pytest.approx(0.07518, rel=0.02)

    def test_f1_chip_within_10pct(self):
        got = chip_cost(cambricon_f1(), "FMP")
        assert got.area_mm2 == pytest.approx(29.206, rel=0.10)
        assert got.power_w == pytest.approx(4.935, rel=0.10)

    def test_f100_chip_within_10pct(self):
        got = chip_cost(cambricon_f100(), "Chip")
        assert got.area_mm2 == pytest.approx(415.1, rel=0.10)
        assert got.power_w == pytest.approx(42.87, rel=0.10)

    def test_unknown_level(self):
        with pytest.raises(KeyError):
            chip_cost(cambricon_f1(), "Nope")

    def test_table7_rows_render(self):
        rows = table7_rows(cambricon_f1(), cambricon_f100())
        assert any("Cambricon-F100" in r for r in rows)


class TestTable8:
    def test_f1_efficiency_near_paper(self):
        f1 = fractal_chips()[0]
        assert f1.power_efficiency == pytest.approx(3.02, rel=0.08)
        assert f1.area_efficiency == pytest.approx(0.51, rel=0.10)

    def test_f100_efficiency_near_paper(self):
        f100 = fractal_chips()[1]
        assert f100.power_efficiency == pytest.approx(2.78, rel=0.10)
        assert f100.area_efficiency == pytest.approx(0.29, rel=0.15)

    def test_fractal_beats_published_asics(self):
        """Headline: Cam-F1 has the best power and area efficiency."""
        f1 = fractal_chips()[0]
        for spec in ACCELERATOR_CHIPS.values():
            if spec.power_efficiency:
                assert f1.power_efficiency > spec.power_efficiency
            if spec.area_efficiency:
                assert f1.area_efficiency > spec.area_efficiency


class TestDesignSpace:
    def test_hierarchies_all_512_cores(self):
        for name, fanouts in TABLE4_HIERARCHIES.items():
            cores = 1
            for f in fanouts:
                cores *= f
            assert cores == 512, name

    def test_mboi_ref_monotone(self):
        assert mboi_ref(64 * MB) > mboi_ref(MB)

    def test_flat_design_is_worst(self):
        """Table 4's point: the flat 1-512 design pays far more area and
        power than any layered design."""
        points = {p.hierarchy: p for p in explore_design_space()}
        flat = points["1-512"]
        for name, p in points.items():
            if name != "1-512":
                assert flat.area_mm2 > 2 * p.area_mm2
                assert flat.power_w > 2 * p.power_w

    def test_design_memories_shrink_with_depth(self):
        m = build_design("1-2-16-512", [2, 8, 32])
        mems = [lv.mem_bytes for lv in m.levels]
        assert mems[0] >= mems[-1]

    def test_design_peak_is_iso_capability(self):
        for name, fanouts in TABLE4_HIERARCHIES.items():
            m = build_design(name, fanouts)
            assert m.peak_ops == pytest.approx(512 * 466.8e9, rel=1e-6)


class TestSurvey:
    def test_fig1_growth_rate(self):
        """Paper: ~3.2x per year.  Our endpoint fit gives >2x per year."""
        assert efficiency_growth() > 2.0

    def test_fig1_total_improvement(self):
        first = ACCELERATOR_EFFICIENCY_TREND[0]
        last = ACCELERATOR_EFFICIENCY_TREND[-1]
        assert last.tops_per_watt / first.tops_per_watt > 100  # paper: 1213x

    def test_fig16_core_growth_slowdown(self):
        """Paper: 67.6%/yr during 2009-2013 vs 8.8%/yr for the last 5."""
        early = gpu_core_growth(2009, 2013)
        late = gpu_core_growth(2013, 2018)
        assert early > 1.5
        assert late < 1.15
        assert early > late

    def test_fig16_bandwidth_slow(self):
        g = gpu_bandwidth_growth()
        assert 1.05 < g < 1.30  # ~15% annually

    def test_annual_growth_validation(self):
        with pytest.raises(ValueError):
            annual_growth([(2010, 1.0)])
        with pytest.raises(ValueError):
            annual_growth([(2010, 1.0), (2010, 2.0)])

    def test_trend_data_sorted_sane(self):
        years = [p.year for p in NVIDIA_GPU_TREND]
        assert years == sorted(years)
        assert all(p.cores > 0 and p.bandwidth_gb_s > 0 for p in NVIDIA_GPU_TREND)
