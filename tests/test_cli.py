"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestSpecs:
    def test_prints_both_instances(self, capsys):
        code, out = run_cli(capsys, "specs")
        assert code == 0
        assert "Cambricon-F100" in out and "Cambricon-F1" in out
        assert "2048 cores" in out


class TestSimulate:
    def test_knn_on_f1(self, capsys):
        code, out = run_cli(capsys, "simulate", "-m", "f1", "-b", "K-NN")
        assert code == 0
        assert "attained" in out and "ops/B" in out

    def test_flags_accepted(self, capsys):
        code, out = run_cli(capsys, "simulate", "-m", "f1", "-b", "K-NN",
                            "--no-ttt", "--no-broadcast")
        assert code == 0

    def test_unknown_benchmark(self, capsys):
        with pytest.raises(KeyError):
            run_cli(capsys, "simulate", "-b", "nope")

    def test_unknown_machine_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "simulate", "-m", "tpu", "-b", "K-NN")


class TestTimeline:
    def test_renders(self, capsys):
        code, out = run_cli(capsys, "timeline", "-m", "f1", "-b", "K-NN",
                            "--width", "60")
        assert code == 0
        assert "timeline" in out and "|" in out


class TestJsonOutput:
    """--json on simulate/timeline emits a machine-readable RunReport."""

    def _load(self, out):
        import json

        from repro.telemetry import SCHEMA, SCHEMA_VERSION, validate_document
        doc = json.loads(out)
        assert doc["schema"] == SCHEMA
        assert doc["schema_version"] == SCHEMA_VERSION
        assert validate_document(doc) == []
        return doc

    def test_simulate_json(self, capsys):
        code, out = run_cli(capsys, "simulate", "-m", "f1", "-b", "K-NN",
                            "--json")
        assert code == 0
        doc = self._load(out)
        assert doc["benchmark"] == "K-NN"
        assert doc["machine"] == "Cambricon-F1"
        sim = doc["simulator"]
        assert sim["total_time_s"] > 0
        assert sim["work_ops"] > 0
        assert "cache" in sim and sim["cache"]["nodes_simulated"] > 0
        assert doc["notes"]["command"] == "simulate"

    def test_timeline_json(self, capsys):
        code, out = run_cli(capsys, "timeline", "-m", "f1", "-b", "K-NN",
                            "--json")
        assert code == 0
        doc = self._load(out)
        assert doc["notes"]["command"] == "timeline"
        assert doc["simulator"]["total_time_s"] > 0

    def test_json_is_pure(self, capsys):
        """The --json output must be parseable as-is (no banner lines)."""
        import json
        code, out = run_cli(capsys, "simulate", "-m", "f1", "-b", "K-NN",
                            "--json")
        assert code == 0
        json.loads(out)  # would raise on stray human-readable text


class TestProfile:
    def test_profile_writes_run_report(self, capsys, tmp_path):
        import json
        rr = tmp_path / "rr.json"
        code, out = run_cli(capsys, "profile", "mm_fc", "-o", str(rr))
        assert code == 0 and rr.exists()
        doc = json.loads(rr.read_text())

        from repro.telemetry import validate_document
        assert validate_document(doc) == []
        # executor counters, sim cache stats and span rollups all present
        counters = doc["counters"]
        assert any(k.startswith("executor.instructions") for k in counters)
        assert any(k.startswith("sim.sig_cache.") for k in counters)
        assert doc["spans"]  # rollups non-empty
        assert any(n.startswith("inst:") for n in doc["spans"])
        assert doc["notes"]["program_instructions"] >= 3

    def test_profile_trace_and_spans(self, capsys, tmp_path):
        import json
        rr = tmp_path / "rr.json"
        tr = tmp_path / "trace.json"
        sp = tmp_path / "spans.jsonl"
        code, out = run_cli(capsys, "profile", "mm_fc", "-o", str(rr),
                            "--trace", str(tr), "--spans", str(sp))
        assert code == 0
        trace = json.loads(tr.read_text())

        from repro.sim.chrometrace import FUNCTIONAL_PID
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert FUNCTIONAL_PID in pids          # merged functional spans
        assert pids - {FUNCTIONAL_PID}         # plus simulator tracks
        depths = {e["args"]["depth"] for e in trace["traceEvents"]
                  if e["pid"] == FUNCTIONAL_PID and e["ph"] == "X"}
        assert len(depths) >= 2                # >= 2 nested track levels
        lines = sp.read_text().strip().splitlines()
        assert lines and all(json.loads(ln) for ln in lines)

    def test_unknown_benchmark_exit_2(self, capsys):
        code, out = run_cli(capsys, "profile", "nope")
        assert code == 2
        assert "unknown" in out.lower() or "choices" in out.lower()

    def test_unknown_benchmark_lists_valid_names(self, capsys):
        from repro.workloads import profile_benchmark_names
        code, out = run_cli(capsys, "profile", "nope")
        assert code == 2
        for name in profile_benchmark_names():
            assert name in out  # the message names every valid subject

    def test_benchmark_name_case_insensitive(self, capsys, tmp_path):
        rr = tmp_path / "rr.json"
        code, out = run_cli(capsys, "profile", "MM_FC", "-o", str(rr))
        assert code == 0 and rr.exists()
        assert "mm_fc" in out  # resolved to the canonical suite key

    def test_profile_json_emits_current_report(self, capsys, tmp_path):
        """Acceptance: repro profile mm_fc --json is a RunReport v3 whose
        attribution fractions sum to the makespan."""
        import json
        rr = tmp_path / "rr.json"
        code, out = run_cli(capsys, "profile", "mm_fc", "-o", str(rr),
                            "--json")
        assert code == 0
        doc = json.loads(out)  # stdout is the document, nothing else
        from repro.telemetry import validate_document
        assert doc["schema_version"] == 3
        assert validate_document(doc) == []
        attr = doc["attribution"]
        total = sum(sum(cats.values())
                    for cats in attr["per_level_s"].values())
        assert total == pytest.approx(attr["makespan_s"], rel=1e-9)
        assert abs(sum(attr["fractions"].values()) - 1.0) < 1e-9

    def test_profile_summary_names_bottleneck(self, capsys, tmp_path):
        rr = tmp_path / "rr.json"
        code, out = run_cli(capsys, "profile", "mm_fc", "-o", str(rr))
        assert code == 0
        assert "bottleneck" in out and "-bound" in out


class TestDSE:
    def test_prints_all_hierarchies(self, capsys):
        code, out = run_cli(capsys, "dse")
        assert code == 0
        for name in ("1-512", "1-2-16-512", "1-4-16-64-512"):
            assert name in out


class TestVerifyAndCost:
    def test_verify_suite_passes(self, capsys):
        code, out = run_cli(capsys, "verify", "-m", "f1")
        assert code == 0
        assert out.count("PASS") == 7
        assert "FAIL" not in out

    def test_cost_breakdown(self, capsys):
        code, out = run_cli(capsys, "cost", "-m", "f100")
        assert code == 0
        assert "Chip" in out and "cross-check" in out


class TestAssemblerPipeline:
    SOURCE = """
    input a 6 4
    input b 4 5
    tensor c 6 5
    MatMul c, a, b
    output c
    """

    def test_assemble_disasm_run(self, capsys, tmp_path):
        src = tmp_path / "prog.fisa"
        src.write_text(self.SOURCE)
        binary = tmp_path / "prog.bin"

        code, out = run_cli(capsys, "assemble", str(src), "-o", str(binary))
        assert code == 0 and binary.exists()
        assert "1 instructions" in out

        code, out = run_cli(capsys, "disasm", str(binary))
        assert code == 0
        assert "MatMul" in out

        code, out = run_cli(capsys, "run", str(src))
        assert code == 0
        assert "ran 1 instructions" in out
        assert "shape (6, 5)" in out

    def test_trace_command(self, capsys, tmp_path):
        out = tmp_path / "t.json"
        code, text = run_cli(capsys, "trace", "-m", "f1", "-b", "K-NN",
                             "-o", str(out), "--depth", "1")
        assert code == 0 and out.exists()
        import json
        assert json.loads(out.read_text())["traceEvents"]

    def test_figures_command(self, capsys, tmp_path, monkeypatch):
        # patch render_all to avoid the heavy full-figure sweep
        import repro.viz as viz
        monkeypatch.setattr(viz, "render_all",
                            lambda out: {"fig": f"{out}/fig.svg"})
        code, out = run_cli(capsys, "figures", "-o", str(tmp_path))
        assert code == 0
        assert "wrote" in out


class TestCompileCommand:
    def test_compile_prints_plan_stats(self, capsys):
        code, out = run_cli(capsys, "compile", "mm_fc")
        assert code == 0
        assert "steps" in out and "compile time" in out
        assert "program signature" in out

    def test_compile_verify(self, capsys):
        code, out = run_cli(capsys, "compile", "mm_fc", "--verify")
        assert code == 0
        assert "bit-identical" in out

    def test_compile_plan_cache_persists(self, capsys, tmp_path):
        cache = tmp_path / "plans"
        code, out = run_cli(capsys, "compile", "mm_fc",
                            "--plan-cache", str(cache))
        assert code == 0
        assert list(cache.glob("plan-v*.json"))

    def test_compile_unknown_benchmark(self, capsys):
        assert main(["compile", "nope"]) == 2

    def test_run_repeat_replays_plan(self, capsys, tmp_path):
        src = tmp_path / "prog.fisa"
        src.write_text(TestAssemblerPipeline.SOURCE)
        code, out = run_cli(capsys, "run", str(src), "--repeat", "3")
        assert code == 0
        assert "replayed plan" in out
        assert "shape (6, 5)" in out


class TestObservabilityCLI:
    """serve-metrics, events tail, and the --serve/--events/--crash-dir
    flags (docs/OBSERVABILITY.md)."""

    def test_profile_unwritable_out_exits_2(self, capsys, tmp_path):
        code, out = run_cli(capsys, "profile", "mm_fc",
                            "-o", str(tmp_path / "no-such-dir" / "rr.json"))
        assert code == 2
        err = capsys.readouterr().err  # message went to stderr pre-run
        # run_cli drained stdout; the check happens before any run output
        assert out == ""

    def test_profile_unwritable_trace_exits_2(self, capsys, tmp_path):
        code, _ = run_cli(capsys, "profile", "mm_fc",
                          "-o", str(tmp_path / "rr.json"),
                          "--trace", str(tmp_path / "nope" / "t.json"))
        assert code == 2
        assert not (tmp_path / "rr.json").exists()  # checked before running

    def test_profile_directory_target_exits_2(self, capsys, tmp_path):
        code, _ = run_cli(capsys, "profile", "mm_fc", "-o", str(tmp_path))
        assert code == 2

    def test_profile_events_stream_and_tail(self, capsys, tmp_path):
        import json
        events = tmp_path / "events.jsonl"
        code, _ = run_cli(capsys, "profile", "mm_fc",
                          "-o", str(tmp_path / "rr.json"),
                          "--events", str(events))
        assert code == 0 and events.exists()
        doc = json.loads((tmp_path / "rr.json").read_text())
        assert doc["schema_version"] == 3
        assert doc["events"]["total"] > 0
        assert doc["health"]["healthy"] is True

        code, out = run_cli(capsys, "events", "tail", str(events),
                            "-s", "executor", "--severity", "info")
        assert code == 0
        assert "program.start" in out and "program.end" in out

    def test_events_tail_missing_target_exits_2(self, capsys, tmp_path):
        code, out = run_cli(capsys, "events", "tail",
                            str(tmp_path / "missing.jsonl"))
        assert code == 2

    def test_events_tail_json_mode_roundtrips(self, capsys, tmp_path):
        import json
        events = tmp_path / "e.jsonl"
        events.write_text(json.dumps(
            {"schema": "repro.obs.event", "v": 1, "seq": 1, "ts": 0.0,
             "subsystem": "sim", "event": "simulate.end",
             "severity": "info"}) + "\ngarbage-line\n")
        code, out = run_cli(capsys, "events", "tail", str(events), "--json")
        assert code == 0
        (line,) = out.strip().splitlines()
        assert json.loads(line)["event"] == "simulate.end"

    def test_serve_metrics_runs_and_scrapes(self, capsys, tmp_path):
        import urllib.request

        from repro import obs

        scraped = {}
        real_start = obs.MetricsServer.start

        def start_and_scrape(self):
            real_start(self)
            scraped["url"] = self.url
            return self

        # scrape while the server is live: patch stop to fetch first
        real_stop = obs.MetricsServer.stop

        def scrape_then_stop(self):
            if self._httpd is not None and "url" in scraped:
                with urllib.request.urlopen(
                        scraped["url"] + "/metrics", timeout=5) as resp:
                    scraped["metrics"] = resp.read().decode()
                with urllib.request.urlopen(
                        scraped["url"] + "/healthz", timeout=5) as resp:
                    scraped["health"] = resp.status
            real_stop(self)

        obs.MetricsServer.start = start_and_scrape
        obs.MetricsServer.stop = scrape_then_stop
        try:
            code, out = run_cli(capsys, "serve-metrics", "mm_fc",
                                "--port", "0", "--iterations", "2")
        finally:
            obs.MetricsServer.start = real_start
            obs.MetricsServer.stop = real_stop
        assert code == 0
        assert "served 2 iteration(s)" in out
        assert scraped["health"] == 200
        assert obs.check_openmetrics(scraped["metrics"]) == []
        assert "repro_executor_kernel_calls" in scraped["metrics"]
        assert "repro_sim_" in scraped["metrics"]

    def test_serve_metrics_unknown_benchmark_exits_2(self, capsys):
        code, _ = run_cli(capsys, "serve-metrics", "definitely-not-a-bench",
                          "--port", "0")
        assert code == 2

    def test_simulate_with_crash_dir_stays_clean_on_success(self, capsys,
                                                            tmp_path):
        crash = tmp_path / "bundles"
        code, out = run_cli(capsys, "simulate", "-b", "K-NN",
                            "--crash-dir", str(crash))
        assert code == 0
        assert not crash.exists() or list(crash.iterdir()) == []

    def test_events_tail_follow_picks_up_appends(self, capsys, tmp_path,
                                                 monkeypatch):
        import json
        events = tmp_path / "e.jsonl"

        def rec(seq, name):
            return json.dumps({"schema": "repro.obs.event", "v": 1,
                               "seq": seq, "ts": float(seq),
                               "subsystem": "sim", "event": name,
                               "severity": "info"}) + "\n"

        events.write_text(rec(1, "first"))

        from repro import obs
        real_follow = obs.follow_events

        def append_second(_s):
            # fires on the first idle poll, like a live writer flushing
            with open(events, "a", encoding="utf-8") as fh:
                fh.write(rec(2, "second"))

        def follow_with_append(target, **kwargs):
            kwargs["_sleep"] = append_second
            return real_follow(target, **kwargs)

        monkeypatch.setattr(obs, "follow_events", follow_with_append)
        code, out = run_cli(capsys, "events", "tail", str(events),
                            "--follow", "--poll", "0.01", "--follow-max", "1")
        assert code == 0
        assert "first" in out and "second" in out

    def test_events_tail_follow_waits_for_missing_file(self, capsys,
                                                       tmp_path, monkeypatch):
        import json
        events = tmp_path / "late.jsonl"

        from repro import obs
        real_follow = obs.follow_events

        def follow_with_create(target, **kwargs):
            events.write_text(json.dumps(
                {"schema": "repro.obs.event", "v": 1, "seq": 1, "ts": 0.0,
                 "subsystem": "sim", "event": "born",
                 "severity": "info"}) + "\n")
            kwargs["_sleep"] = lambda _s: None
            kwargs["start_at_end"] = False
            return real_follow(target, **kwargs)

        monkeypatch.setattr(obs, "follow_events", follow_with_create)
        code, out = run_cli(capsys, "events", "tail", str(events),
                            "--follow", "--follow-max", "1")
        assert code == 0
        assert "born" in out

    def test_top_renders_one_frame_against_live_server(self, capsys):
        from repro import obs, telemetry
        telemetry.enable()
        try:
            reg = telemetry.get_registry()
            reg.count("sim.busy_seconds", 1.0, {"level": "0",
                                                "stage": "compute"})
            with obs.MetricsServer(registry=reg, port=0) as server:
                code, out = run_cli(capsys, "top",
                                    f"127.0.0.1:{server.port}",
                                    "--iterations", "1", "--no-clear")
        finally:
            telemetry.disable()
            telemetry.reset()
        assert code == 0
        assert "repro top" in out
        assert "level" in out and "utilization" in out

    def test_top_unreachable_endpoint_exits_2(self, capsys):
        code, out = run_cli(capsys, "top", "127.0.0.1:9",  # discard port
                            "--iterations", "1", "--no-clear")
        assert code == 2


class TestLintJson:
    """`repro lint --json` emits a schema-versioned repro.diag document
    that round-trips through results_from_document (docs/ANALYSIS.md)."""

    def test_clean_program_document(self, capsys):
        import json

        from repro.analysis import (
            DIAG_SCHEMA,
            DIAG_SCHEMA_VERSION,
            results_from_document,
        )
        code, out = run_cli(capsys, "lint", "examples/programs/knn.fisa",
                            "--json")
        assert code == 0
        doc = json.loads(out)
        assert doc["schema"] == DIAG_SCHEMA
        assert doc["version"] == DIAG_SCHEMA_VERSION
        assert doc["tool"] == "lint"
        results = results_from_document(doc)
        assert len(results) == 1
        assert results[0].diagnostics == []

    def test_negative_fixture_round_trips_diagnostics(self, capsys):
        import json

        from repro.analysis import results_from_document
        code, out = run_cli(capsys, "lint",
                            "tests/fixtures/overlap_hazard.fisa", "--json")
        assert code == 1
        doc = json.loads(out)
        (result,) = results_from_document(doc)
        assert result.diagnostics
        # Round-trip is lossless: re-serializing gives the same document.
        redoc = json.loads(json.dumps(doc))
        (again,) = results_from_document(redoc)
        assert [d.to_doc() for d in again.diagnostics] == \
            [d.to_doc() for d in result.diagnostics]


class TestPlanLint:
    """`repro plan-lint` exit-code contract: 0 clean, 1 findings, 2 corrupt
    (docs/ANALYSIS.md)."""

    def _write_plan_doc(self, tmp_path, mutate=None):
        import json

        from repro import cambricon_f1
        from repro.plan import compile_program
        from repro.workloads.suite import PROFILE_BENCHMARKS

        w = PROFILE_BENCHMARKS["mm_fc"]()
        plan = compile_program(cambricon_f1(), w.program)
        doc = plan.to_doc()
        if mutate is not None:
            mutate(doc)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(doc))
        return path

    def test_clean_benchmark_exits_0(self, capsys):
        code, out = run_cli(capsys, "plan-lint", "mm_fc")
        assert code == 0
        assert "fusion group" in out
        assert "peak live bytes" in out

    def test_unknown_target_exits_2(self, capsys):
        code, _ = run_cli(capsys, "plan-lint", "definitely-not-a-bench")
        assert code == 2

    def test_clean_plan_file_exits_0(self, capsys, tmp_path):
        path = self._write_plan_doc(tmp_path)
        code, _ = run_cli(capsys, "plan-lint", str(path))
        assert code == 0

    def test_garbage_file_exits_2(self, capsys, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        code, _ = run_cli(capsys, "plan-lint", str(path))
        assert code == 2

    def test_tampered_safe_flag_exits_2(self, capsys, tmp_path):
        def flip(doc):
            doc["steps"][0]["safe"] = not doc["steps"][0]["safe"]
        path = self._write_plan_doc(tmp_path, mutate=flip)
        code, _ = run_cli(capsys, "plan-lint", str(path))
        assert code == 2

    def test_injected_race_exits_1_with_stable_code(self, capsys, tmp_path):
        import json

        from repro import Instruction, Opcode, Tensor
        from repro.core.tensor import Region
        from repro.plan import FractalPlan, PlanStats, PlanStep, annotate_plan

        x = Tensor("x", (8, 8))
        y = Tensor("y", (8, 8))
        steps = [
            PlanStep.from_instruction("kernel", Instruction(
                Opcode.ACT1D,
                (Region(x, ((0, 4), (0, 8))),),
                (Region(y, ((0, 4), (0, 8))),), {}), 1),
            PlanStep.from_instruction("kernel", Instruction(
                Opcode.ACT1D,
                (Region(x, ((4, 8), (0, 8))),),
                (Region(y, ((0, 4), (0, 8))),), {}), 1),
        ]
        plan = FractalPlan(machine_fingerprint=("test",),
                           signature_digest="f" * 64, steps=steps,
                           stats=PlanStats(), externals=[x, y])
        annotate_plan(plan)  # digest matches the raced plan -> not "corrupt"
        path = tmp_path / "raced.json"
        path.write_text(json.dumps(plan.to_doc()))
        code, out = run_cli(capsys, "plan-lint", str(path))
        assert code == 1
        assert "P100" in out

    def test_json_document_shape(self, capsys):
        import json

        from repro.analysis import DIAG_SCHEMA, results_from_document
        code, out = run_cli(capsys, "plan-lint", "mm_fc", "--json")
        assert code == 0
        doc = json.loads(out)
        assert doc["schema"] == DIAG_SCHEMA
        assert doc["tool"] == "plan-lint"
        (result,) = results_from_document(doc)
        assert result.diagnostics == []
        plan_info = doc["plan"]
        assert plan_info["steps"] > 0
        assert plan_info["fusion_groups"] > 0
        assert plan_info["safe_zero_copy_steps"] == plan_info["steps"]
        assert plan_info["peak_live_bytes"] > 0
