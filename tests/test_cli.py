"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestSpecs:
    def test_prints_both_instances(self, capsys):
        code, out = run_cli(capsys, "specs")
        assert code == 0
        assert "Cambricon-F100" in out and "Cambricon-F1" in out
        assert "2048 cores" in out


class TestSimulate:
    def test_knn_on_f1(self, capsys):
        code, out = run_cli(capsys, "simulate", "-m", "f1", "-b", "K-NN")
        assert code == 0
        assert "attained" in out and "ops/B" in out

    def test_flags_accepted(self, capsys):
        code, out = run_cli(capsys, "simulate", "-m", "f1", "-b", "K-NN",
                            "--no-ttt", "--no-broadcast")
        assert code == 0

    def test_unknown_benchmark(self, capsys):
        with pytest.raises(KeyError):
            run_cli(capsys, "simulate", "-b", "nope")

    def test_unknown_machine_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "simulate", "-m", "tpu", "-b", "K-NN")


class TestTimeline:
    def test_renders(self, capsys):
        code, out = run_cli(capsys, "timeline", "-m", "f1", "-b", "K-NN",
                            "--width", "60")
        assert code == 0
        assert "timeline" in out and "|" in out


class TestDSE:
    def test_prints_all_hierarchies(self, capsys):
        code, out = run_cli(capsys, "dse")
        assert code == 0
        for name in ("1-512", "1-2-16-512", "1-4-16-64-512"):
            assert name in out


class TestVerifyAndCost:
    def test_verify_suite_passes(self, capsys):
        code, out = run_cli(capsys, "verify", "-m", "f1")
        assert code == 0
        assert out.count("PASS") == 7
        assert "FAIL" not in out

    def test_cost_breakdown(self, capsys):
        code, out = run_cli(capsys, "cost", "-m", "f100")
        assert code == 0
        assert "Chip" in out and "cross-check" in out


class TestAssemblerPipeline:
    SOURCE = """
    input a 6 4
    input b 4 5
    tensor c 6 5
    MatMul c, a, b
    output c
    """

    def test_assemble_disasm_run(self, capsys, tmp_path):
        src = tmp_path / "prog.fisa"
        src.write_text(self.SOURCE)
        binary = tmp_path / "prog.bin"

        code, out = run_cli(capsys, "assemble", str(src), "-o", str(binary))
        assert code == 0 and binary.exists()
        assert "1 instructions" in out

        code, out = run_cli(capsys, "disasm", str(binary))
        assert code == 0
        assert "MatMul" in out

        code, out = run_cli(capsys, "run", str(src))
        assert code == 0
        assert "ran 1 instructions" in out
        assert "shape (6, 5)" in out

    def test_trace_command(self, capsys, tmp_path):
        out = tmp_path / "t.json"
        code, text = run_cli(capsys, "trace", "-m", "f1", "-b", "K-NN",
                             "-o", str(out), "--depth", "1")
        assert code == 0 and out.exists()
        import json
        assert json.loads(out.read_text())["traceEvents"]

    def test_figures_command(self, capsys, tmp_path, monkeypatch):
        # patch render_all to avoid the heavy full-figure sweep
        import repro.viz as viz
        monkeypatch.setattr(viz, "render_all",
                            lambda out: {"fig": f"{out}/fig.svg"})
        code, out = run_cli(capsys, "figures", "-o", str(tmp_path))
        assert code == 0
        assert "wrote" in out
