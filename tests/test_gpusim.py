"""Kernel-level GPU simulator tests."""

import pytest

from repro.core.isa import Instruction, Opcode
from repro.core.tensor import Tensor
from repro.gpusim import (
    GPUSimulator,
    GTX_1080TI_DEVICE,
    V100_DEVICE,
    lower_to_kernels,
)
from repro.gpusim.kernels import lower_instruction
from repro.workloads import small_benchmark


def matmul_inst(m, k, n):
    a, b, c = Tensor("a", (m, k)), Tensor("b", (k, n)), Tensor("c", (m, n))
    return Instruction(Opcode.MATMUL, (a.region(), b.region()), (c.region(),))


def eltwise_inst(n):
    a, b, o = (Tensor(s, (n,)) for s in "abo")
    return Instruction(Opcode.ADD1D, (a.region(), b.region()), (o.region(),))


class TestKernelLowering:
    def test_matmul_is_one_gemm(self):
        kernels = lower_instruction(matmul_inst(256, 256, 256),
                                    GTX_1080TI_DEVICE)
        assert len(kernels) == 1
        assert kernels[0].kind == "gemm"
        assert kernels[0].flops == 2 * 256 ** 3

    def test_gemm_traffic_below_naive(self):
        """Shared-memory tiling must beat the no-reuse traffic bound."""
        (k,) = lower_instruction(matmul_inst(2048, 2048, 2048),
                                 GTX_1080TI_DEVICE)
        naive = 4 * (2048 ** 2 * 2048) * 2  # every element re-read
        assert k.dram_bytes < naive / 10

    def test_sort_is_multi_launch(self):
        x, o = Tensor("x", (1 << 20,)), Tensor("o", (1 << 20,))
        inst = Instruction(Opcode.SORT1D, (x.region(),), (o.region(),))
        (k,) = lower_instruction(inst, GTX_1080TI_DEVICE)
        assert k.launches > 4  # radix passes

    def test_eltwise_is_stream(self):
        (k,) = lower_instruction(eltwise_inst(4096), GTX_1080TI_DEVICE)
        assert k.kind == "stream"

    def test_program_lowering_covers_all(self):
        w = small_benchmark("K-NN")
        kernels = lower_to_kernels(w.program, GTX_1080TI_DEVICE)
        assert len(kernels) >= len(w.program)


class TestTiming:
    def test_large_gemm_near_library_efficiency(self):
        rep = GPUSimulator(GTX_1080TI_DEVICE).simulate(
            [matmul_inst(8192, 8192, 8192)])
        frac = rep.attained_ops / GTX_1080TI_DEVICE.peak_ops
        assert 0.6 < frac <= GTX_1080TI_DEVICE.gemm_efficiency + 0.01

    def test_eltwise_bandwidth_bound(self):
        rep = GPUSimulator(GTX_1080TI_DEVICE).simulate(
            [eltwise_inst(1 << 24)])
        assert rep.memory_time > rep.compute_time

    def test_launch_overhead_dominates_tiny_kernels(self):
        """A stream of tiny kernels is launch-bound -- the paper's
        control-flow collapse mechanism."""
        program = [eltwise_inst(128) for _ in range(200)]
        rep = GPUSimulator(GTX_1080TI_DEVICE).simulate(program)
        assert rep.launch_fraction > 0.9

    def test_multi_gpu_scales_device_work(self):
        prog = [matmul_inst(8192, 8192, 8192)]
        one = GPUSimulator(V100_DEVICE, n_gpus=1).simulate(prog)
        eight = GPUSimulator(V100_DEVICE, n_gpus=8).simulate(prog)
        assert eight.total_time < one.total_time
        assert eight.attained_ops > 4 * one.attained_ops

    def test_host_link_binds_when_present(self):
        big = 1 << 26
        prog = [eltwise_inst(big)]
        free = GPUSimulator(V100_DEVICE, n_gpus=8).simulate(prog)
        tied = GPUSimulator(V100_DEVICE, n_gpus=8,
                            host_bandwidth=84.24 * 2 ** 30).simulate(prog)
        assert tied.total_time > free.total_time
        assert tied.host_transfer_time > 0

    def test_launches_not_scaled_by_gpus(self):
        program = [eltwise_inst(128) for _ in range(50)]
        one = GPUSimulator(V100_DEVICE, 1).simulate(program)
        eight = GPUSimulator(V100_DEVICE, 8).simulate(program)
        assert one.launch_time == pytest.approx(eight.launch_time)

    def test_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            GPUSimulator(V100_DEVICE, n_gpus=0)

    def test_report_bookkeeping(self):
        rep = GPUSimulator(GTX_1080TI_DEVICE).simulate(
            [matmul_inst(512, 512, 512), eltwise_inst(4096)])
        assert rep.kernel_count >= 2
        assert set(rep.by_kind) == {"gemm", "stream"}
        assert rep.work == 2 * 512 ** 3 + 4096


class TestCrossCheck:
    """The kernel simulator must agree in *direction* with the calibrated
    roofline baselines and with Fig 15's verdict."""

    def test_fractal_wins_everywhere(self):
        from repro import cambricon_f1
        from repro.sim import FractalSimulator
        from repro.workloads import paper_benchmark

        gtx = GPUSimulator(GTX_1080TI_DEVICE)
        f1 = cambricon_f1()
        for name in ("K-NN", "K-Means", "LVQ"):
            w = paper_benchmark(name)
            frac = FractalSimulator(f1, collect_profiles=False) \
                .simulate(w.program)
            gpu = gtx.simulate(w.program)
            assert frac.attained_ops > gpu.attained_ops, name

    def test_gemm_agrees_with_calibrated_model(self):
        from repro.model.gpu import GTX1080TI
        rep = GPUSimulator(GTX_1080TI_DEVICE).simulate(
            [matmul_inst(8192, 8192, 8192)])
        calibrated = GTX1080TI.attained("MATMUL")
        assert rep.attained_ops == pytest.approx(calibrated, rel=0.25)
