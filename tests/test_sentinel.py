"""Perf-trend sentinel tests: run history, detector math, SLO alerts.

The PR 9 acceptance scenarios live here: ``repro sentinel`` exits 3 on a
synthetically injected >= 3-sigma makespan regression over a 10-run
seeded history and 0 without the injection; ``/alerts`` serves an active
alert (visible in ``repro top`` and as an ``alert`` event) while a
rule's bound is violated, and clears after recovery.  All series are
seeded/deterministic -- no wall-clock dependence in any verdict.
"""

import json

import numpy as np
import pytest

from repro import obs, telemetry
from repro.cli import main
from repro.obs import (
    MetricsServer,
    RunHistory,
    SentinelConfig,
    SLOEngine,
    Watchdog,
    analyze_history,
    detect_series,
    metric_polarity,
    parse_since,
    parse_slo_rule,
    sentinel_document,
)
from repro.obs.sentinel import POLARITY_TABLE
from repro.telemetry.counters import CounterRegistry

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def clean_global_obs():
    log = obs.get_event_log()
    log.disable()
    log.reset()
    log.close_sink()
    obs.install_watchdog(None)
    telemetry.disable()
    telemetry.reset()
    yield
    log = obs.get_event_log()
    log.disable()
    log.reset()
    log.close_sink()
    obs.install_watchdog(None)
    telemetry.disable()
    telemetry.reset()


def seeded_history(tmp_path, values, metric="makespan_s",
                   benchmark="mm_fc", machine="Cambricon-F1"):
    """A RunHistory holding one deterministic series."""
    history = RunHistory(tmp_path)
    history.append([
        {"benchmark": benchmark, "machine": machine, "metric": metric,
         "value": float(v), "ts": 1000.0 + i, "source": "test"}
        for i, v in enumerate(values)
    ])
    return history


def noisy_series(n=10, base=0.01, jitter=0.0005, seed=7):
    rng = np.random.default_rng(seed)
    return list(base + rng.uniform(-jitter, jitter, size=n))


# ---------------------------------------------------------------------------
# Run-history store
# ---------------------------------------------------------------------------


class TestRunHistory:
    def test_append_stamps_schema_and_groups_series(self, tmp_path):
        history = seeded_history(tmp_path, [1.0, 2.0])
        points = list(history.iter_points())
        assert all(p["schema"] == obs.HISTORY_SCHEMA for p in points)
        series = history.series()
        key = ("mm_fc", "Cambricon-F1", "makespan_s")
        assert [v for _, v in series[key]] == [1.0, 2.0]

    def test_non_finite_and_non_numeric_points_skipped(self, tmp_path):
        history = RunHistory(tmp_path)
        rows = history.append([
            {"benchmark": "b", "machine": "m", "metric": "x", "value": 1.0},
            {"benchmark": "b", "machine": "m", "metric": "x",
             "value": float("nan")},
            {"benchmark": "b", "machine": "m", "metric": "x", "value": "no"},
            {"benchmark": "b", "machine": "m", "metric": "x", "value": True},
        ])
        assert len(rows) == 1

    def test_index_tracks_counts_and_rebuilds_when_corrupt(self, tmp_path):
        history = seeded_history(tmp_path, [1.0, 2.0, 3.0])
        idx = history.index()
        assert idx["points"] == 3
        entry = idx["series"]["mm_fc\tCambricon-F1\tmakespan_s"]
        assert entry["points"] == 3 and entry["last_value"] == 3.0
        history.index_path.write_text("{ not json !!!")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            idx = history.index()
        assert idx["points"] == 3

    def test_torn_final_line_skipped(self, tmp_path):
        history = seeded_history(tmp_path, [1.0])
        with open(history.points_path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": "repro.obs.history", "v": 1, "val')
        assert len(list(history.iter_points())) == 1

    @pytest.mark.parametrize("value", ["off", "0", "none", "disabled"])
    def test_off_values_disable(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_HISTORY", value)
        assert not obs.history_enabled()
        assert obs.get_history() is None
        assert obs.record_points([{"benchmark": "b", "machine": "m",
                                   "metric": "x", "value": 1.0}]) == 0

    def test_defaults_to_ledger_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_HISTORY", raising=False)
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger"))
        assert obs.default_history_dir() == tmp_path / "ledger"

    def test_record_run_hook_distills_numeric_fields(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path))
        monkeypatch.delenv("REPRO_HISTORY", raising=False)
        obs.record_run("profile", benchmark="mm_fc", machine="tiny",
                       makespan_s=0.5, classification="compute")
        series = RunHistory(tmp_path).series()
        assert [v for _, v in series[("mm_fc", "tiny", "makespan_s")]] == [0.5]
        # non-numeric fields don't become series
        assert not any(k[2] == "classification" for k in series)

    def test_record_report_distills_once_not_twice(self, tmp_path,
                                                   monkeypatch):
        """record_report writes report-grade history and suppresses the
        row-level hook -- one makespan point per run, not two."""
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path))
        monkeypatch.delenv("REPRO_HISTORY", raising=False)
        telemetry.enable()
        report = telemetry.build_run_report(
            benchmark="mm_fc", machine="tiny",
            registry=telemetry.get_registry(),
            notes={"benchmarks": {"VGG-16": {"total_time_s": 1.5,
                                             "attained_ops": 2e12,
                                             "peak_fraction": 0.8}}})
        obs.record_report(report, kind="bench-suite")
        series = RunHistory(tmp_path).series()
        sub = series[("VGG-16", "tiny", "makespan_s")]
        assert [v for _, v in sub] == [1.5]
        assert [v for _, v in series[("VGG-16", "tiny", "peak_fraction")]] \
            == [0.8]

    def test_points_from_report_extracts_rates(self):
        doc = {
            "benchmark": "mm_fc", "machine": "tiny",
            "simulator": {"total_time_s": 0.25, "attained_ops": 1e12},
            "attribution": {"totals_s": {"compute": 0.2, "dma": 0.05}},
            "counters": {
                "sim.sig_cache.hits{machine=tiny}": 30,
                "sim.sig_cache.misses{machine=tiny}": 10,
                "store.zero_copy_reads": 8,
                "store.copied_reads": 2,
                "plan.peak_live_bytes": 4096,
            },
            "notes": {},
        }
        points = {p["metric"]: p["value"] for p in obs.points_from_report(doc)}
        assert points["makespan_s"] == 0.25
        assert points["sig_cache_hit_rate"] == pytest.approx(0.75)
        assert points["zero_copy_rate"] == pytest.approx(0.8)
        assert points["peak_live_bytes"] == 4096
        assert points["attr_compute_s"] == pytest.approx(0.2)

    def test_record_points_fail_soft_on_unwritable_dir(self, tmp_path):
        target = tmp_path / "file-not-dir"
        target.write_text("x")
        assert obs.record_points(
            [{"benchmark": "b", "machine": "m", "metric": "x", "value": 1.0}],
            directory=target / "sub") == 0


# ---------------------------------------------------------------------------
# Detector math (seeded, deterministic)
# ---------------------------------------------------------------------------


class TestDetectorMath:
    CONFIG = SentinelConfig(window=10, threshold=3.0, min_points=5)

    def test_step_change_flags_at_documented_threshold(self):
        """A 30% step on a low-noise series blows far past z=3."""
        values = noisy_series(10, jitter=0.0001) + [0.013]
        verdict = detect_series(values, self.CONFIG)
        assert verdict["status"] == "high"
        assert abs(verdict["step_z"]) > self.CONFIG.threshold

    def test_gradual_drift_flags_via_drift_detector(self):
        """A steady ramp never trips the step z (the MAD inflates with
        the drift) but accumulates in the half-vs-half drift score."""
        values = [0.01 * (1 + 0.03 * i) for i in range(12)]
        verdict = detect_series(values, self.CONFIG)
        assert verdict["status"] == "high"
        assert abs(verdict["drift_z"]) > self.CONFIG.threshold

    def test_noisy_but_stationary_does_not_flag(self):
        values = noisy_series(24, jitter=0.001, seed=11)
        verdict = detect_series(values, self.CONFIG)
        assert verdict["status"] == "ok"
        assert abs(verdict["step_z"]) <= self.CONFIG.threshold
        assert abs(verdict["drift_z"]) <= self.CONFIG.threshold

    def test_deterministic_flat_series_tolerates_float_jitter(self):
        """MAD=0 on a perfectly flat series must not turn 1e-9 jitter
        into a regression -- the sigma floor absorbs it."""
        values = [0.01] * 10 + [0.01 + 1e-9]
        assert detect_series(values, self.CONFIG)["status"] == "ok"

    def test_short_history_suppressed_as_warmup(self):
        values = [0.01, 0.01, 0.01, 100.0]  # wild value, but n too small
        verdict = detect_series(values, self.CONFIG)
        assert verdict["status"] == "warmup"

    def test_improvement_direction_is_low(self):
        values = [0.01] * 10 + [0.005]
        assert detect_series(values, self.CONFIG)["status"] == "low"

    def test_polarity_table_round_trip(self):
        """Every table entry maps a representative metric to its own
        polarity, and the documented headline metrics agree."""
        from fnmatch import fnmatchcase
        for pattern, polarity in POLARITY_TABLE:
            sample = pattern.replace("*", "sample")
            assert fnmatchcase(sample, pattern)
            assert metric_polarity(sample) == polarity
        assert metric_polarity("makespan_s") == "up_bad"
        assert metric_polarity("peak_live_bytes") == "up_bad"
        assert metric_polarity("sig_cache_hit_rate") == "down_bad"
        assert metric_polarity("zero_copy_rate") == "down_bad"
        assert metric_polarity("replay_speedup") == "down_bad"
        assert metric_polarity("some_unknown_metric") == "neutral"

    def test_polarity_maps_direction_to_verdict(self, tmp_path):
        # makespan up = regression; hit-rate up = improvement
        up = noisy_series(10) + [0.02]
        hist = seeded_history(tmp_path, up, metric="makespan_s")
        hist.append([
            {"benchmark": "mm_fc", "machine": "Cambricon-F1",
             "metric": "sig_cache_hit_rate", "value": v, "ts": 2000.0 + i}
            for i, v in enumerate([0.5] * 10 + [0.9])
        ])
        statuses = {e.metric: e.status
                    for e in analyze_history(hist).entries}
        assert statuses["makespan_s"] == "regression"
        assert statuses["sig_cache_hit_rate"] == "improvement"

    def test_neutral_metrics_never_regress(self, tmp_path):
        hist = seeded_history(tmp_path, [1.0] * 10 + [50.0],
                              metric="some_unknown_metric")
        [entry] = analyze_history(hist).entries
        assert entry.status == "neutral"
        assert analyze_history(hist).exit_code == 0


# ---------------------------------------------------------------------------
# Sentinel over a history store + CLI
# ---------------------------------------------------------------------------


class TestSentinelAcceptance:
    def _seed(self, tmp_path, inject=False):
        values = noisy_series(10, base=0.01, jitter=0.00001, seed=3)
        if inject:
            values.append(0.013)  # +30%: >> 3 sigma on this series
        return seeded_history(tmp_path, values)

    def test_cli_exits_3_on_injected_regression(self, tmp_path, capsys,
                                                monkeypatch):
        """Acceptance: exit 3 with the injection, 0 without, same seed."""
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger"))
        self._seed(tmp_path / "clean")
        assert main(["sentinel", "--history", str(tmp_path / "clean")]) == 0
        capsys.readouterr()
        self._seed(tmp_path / "bad", inject=True)
        code = main(["sentinel", "--history", str(tmp_path / "bad"),
                     "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 3
        assert doc["schema"] == obs.SENTINEL_SCHEMA
        assert doc["regressions"] == 1
        [entry] = [e for e in doc["entries"] if e["status"] == "regression"]
        assert entry["metric"] == "makespan_s"
        assert abs(entry["step_z"]) >= 3.0

    def test_cli_usage_errors_exit_2(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger"))
        assert main(["sentinel", "--history", str(tmp_path / "none")]) == 2
        assert main(["sentinel", "--window", "1"]) == 2
        assert main(["sentinel", "--threshold", "-1"]) == 2
        monkeypatch.setenv("REPRO_HISTORY", "off")
        assert main(["sentinel"]) == 2
        capsys.readouterr()

    def test_cli_html_report_is_self_contained(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger"))
        self._seed(tmp_path / "bad", inject=True)
        out = tmp_path / "trend.html"
        code = main(["sentinel", "--history", str(tmp_path / "bad"),
                     "--html", str(out)])
        capsys.readouterr()
        assert code == 3
        html = out.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html  # no-JS contract
        assert "<svg" in html and "regression" in html
        assert "makespan_s" in html

    def test_warmup_history_is_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger"))
        seeded_history(tmp_path / "young", [0.01, 0.02, 5.0])
        assert main(["sentinel", "--history", str(tmp_path / "young")]) == 0
        assert "warmup" in capsys.readouterr().out

    def test_document_round_trips_config(self, tmp_path):
        hist = self._seed(tmp_path, inject=True)
        result = analyze_history(hist, SentinelConfig(window=8,
                                                      threshold=4.0))
        doc = sentinel_document(result)
        assert doc["config"] == {"window": 8, "threshold": 4.0,
                                 "min_points": 5}
        assert doc["exit_code"] == result.exit_code

    def test_registry_gauges_published_when_enabled(self, tmp_path):
        telemetry.enable()
        hist = self._seed(tmp_path, inject=True)
        analyze_history(hist)
        reg = telemetry.get_registry()
        assert reg.value("sentinel.series") == 1.0
        assert reg.value("sentinel.regressions") == 1.0


# ---------------------------------------------------------------------------
# SLO rules and live alerts
# ---------------------------------------------------------------------------


class TestSLORules:
    def test_parse_full_grammar(self):
        rule = parse_slo_rule(
            "sim.sig_cache.hits{machine=F1} >= 100 for 5s as warm-cache")
        assert rule.name == "warm-cache"
        assert rule.metric == "sim.sig_cache.hits"
        assert rule.op == ">="
        assert rule.bound == 100.0
        assert rule.labels == (("machine", "F1"),)
        assert rule.sustain_s == 5.0

    def test_parse_minimal_and_spec_round_trip(self):
        rule = parse_slo_rule("plan.peak_live_bytes < 2e9")
        assert rule.name == "plan.peak_live_bytes"
        assert rule.sustain_s == 0.0
        again = parse_slo_rule(rule.spec())
        assert again.metric == rule.metric and again.bound == rule.bound

    @pytest.mark.parametrize("bad", [
        "nonsense",
        "metric == 5",
        "metric < notanumber",
        "metric{k} < 5",
        "metric{k=v < 5",
        "metric < 5 for 3minutes",
        " < 5",
    ])
    def test_parse_errors_raise_value_error(self, bad):
        with pytest.raises(ValueError):
            parse_slo_rule(bad)


class TestSLOEngine:
    def _engine(self, rule_text, sustain_clock=None):
        registry = CounterRegistry(enabled=True)
        log = obs.EventLog(enabled=True)
        engine = SLOEngine([parse_slo_rule(rule_text)], registry,
                           event_log=log,
                           clock=sustain_clock or (lambda: 0.0))
        return registry, log, engine

    def test_alert_fires_and_clears_with_events_and_gauge(self):
        """Acceptance: the alert is active (gauge + event) while the
        bound is violated and clears after recovery."""
        registry, log, engine = self._engine(
            "sim.sig_cache.hits > 100 as warm-cache")
        registry.set_gauge("sim.sig_cache.hits", 5.0)
        active = engine.evaluate(now=0.0)
        assert [a["rule"] for a in active] == ["warm-cache"]
        assert registry.value("alerts.active") == 1.0
        assert registry.value("alerts.firing", {"rule": "warm-cache"}) == 1.0
        registry.set_gauge("sim.sig_cache.hits", 500.0)
        assert engine.evaluate(now=1.0) == []
        assert registry.value("alerts.active") == 0.0
        slo_events = [(e["event"], e["severity"]) for e in log.events()
                      if e["subsystem"] == "slo"]
        assert slo_events == [("alert", "error"), ("alert.clear", "info")]

    def test_sustain_window_suppresses_blips(self):
        registry, _log, engine = self._engine(
            "executor.queue_depth < 10 for 5s as shallow-queue")
        registry.set_gauge("executor.queue_depth", 50.0)
        assert engine.evaluate(now=0.0) == []  # violating, not sustained
        assert engine.evaluate(now=3.0) == []
        registry.set_gauge("executor.queue_depth", 1.0)
        assert engine.evaluate(now=4.0) == []  # recovered before sustain
        registry.set_gauge("executor.queue_depth", 50.0)
        assert engine.evaluate(now=10.0) == []
        active = engine.evaluate(now=15.0)  # 5s sustained
        assert [a["rule"] for a in active] == ["shallow-queue"]

    def test_label_selector_scopes_series(self):
        registry, _log, engine = self._engine(
            "sim.busy_seconds{level=0} > 10 as busy-root")
        registry.counter("sim.busy_seconds",
                         labels={"level": 1, "stage": "dma"}).inc(1)
        assert engine.evaluate(now=0.0) == []  # other level doesn't match
        registry.counter("sim.busy_seconds",
                         labels={"level": 0, "stage": "pd"}).inc(1)
        active = engine.evaluate(now=1.0)
        assert "level=0" in active[0]["series"]

    def test_no_data_is_not_a_violation(self):
        _registry, log, engine = self._engine("missing.metric > 5")
        assert engine.evaluate(now=0.0) == []
        assert not [e for e in log.events() if e["subsystem"] == "slo"]

    def test_alerts_endpoint_and_top_strip(self):
        """Acceptance: /alerts serves the active alert; repro top shows
        the alerts strip from the same scrape."""
        from repro.obs.top import format_top, parse_exposition

        registry = CounterRegistry(enabled=True)
        log = obs.EventLog(enabled=True)
        engine = SLOEngine(
            [parse_slo_rule("sim.sig_cache.hits > 100 as warm-cache")],
            registry, event_log=log, clock=lambda: 0.0)
        registry.set_gauge("sim.sig_cache.hits", 5.0)
        server = MetricsServer(registry=registry, event_log=log,
                               watchdog=Watchdog(), slo=engine)
        # exercise the routing layer directly -- no socket needed
        status, ctype, body = server._route("/alerts")
        assert status == 200 and "json" in ctype
        doc = json.loads(body.decode("utf-8"))
        assert doc["schema"] == obs.ALERTS_SCHEMA
        assert [a["rule"] for a in doc["active"]] == ["warm-cache"]
        status, _, metrics = server._route("/metrics")
        text = metrics.decode("utf-8")
        assert "repro_alerts_active 1" in text
        samples = parse_exposition(text)
        frame = format_top(samples)
        assert "ALERTS (1 firing): warm-cache" in frame
        # index advertises the endpoint
        _, _, index = server._route("/")
        assert "/alerts" in index.decode("utf-8")
        # recovery clears the document and the strip
        registry.set_gauge("sim.sig_cache.hits", 500.0)
        _, _, body = server._route("/alerts")
        assert json.loads(body.decode("utf-8"))["active"] == []
        _, _, metrics = server._route("/metrics")
        frame = format_top(parse_exposition(metrics.decode("utf-8")))
        assert "ALERTS" not in frame

    def test_alerts_endpoint_without_engine_serves_empty_doc(self):
        server = MetricsServer(registry=CounterRegistry(enabled=True))
        status, _, body = server._route("/alerts")
        assert status == 200
        doc = json.loads(body.decode("utf-8"))
        assert doc["active"] == [] and doc["rules"] == []


# ---------------------------------------------------------------------------
# events tail --since
# ---------------------------------------------------------------------------


class TestSinceFilter:
    def test_parse_epoch_and_iso(self):
        assert parse_since("1722950000") == 1722950000.0
        assert parse_since("1722950000.5") == 1722950000.5
        from datetime import datetime
        want = datetime(2026, 8, 8, 12, 0).astimezone().timestamp()
        assert parse_since("2026-08-08T12:00:00") == want

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_since("not-a-time")

    def test_filter_composes_with_severity_and_last(self):
        events = [
            {"ts": 100.0, "severity": "info", "event": "a"},
            {"ts": 200.0, "severity": "error", "event": "b"},
            {"ts": 300.0, "severity": "error", "event": "c"},
            {"severity": "error", "event": "no-ts"},
        ]
        picked = obs.filter_events(events, min_severity="error",
                                   since=150.0, last=1)
        assert [e["event"] for e in picked] == ["c"]

    def test_cli_since_exit_codes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger"))
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"ts": 100.0, "subsystem": "sim", "event": "old", '
            '"severity": "info"}\n'
            '{"ts": 200.0, "subsystem": "sim", "event": "new", '
            '"severity": "info"}\n')
        assert main(["events", "tail", str(path), "--since", "150"]) == 0
        out = capsys.readouterr().out
        assert "new" in out and "old" not in out
        assert main(["events", "tail", str(path), "--since", "bogus"]) == 2
        capsys.readouterr()
