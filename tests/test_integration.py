"""Cross-module integration tests: the same FISA program running on
different Cambricon-F instances (the STMH "single task, multiple heritors"
property), timing simulation of every benchmark, timelines, and the
functional/timing agreement on instruction streams."""

import numpy as np
import pytest

from repro import (
    FractalExecutor,
    TensorStore,
    cambricon_f1,
    cambricon_f100,
    custom_machine,
)
from repro.core.executor import run_reference
from repro.core.machine import GB, KB, MB
from repro.frontend import assemble
from repro.sim import FractalSimulator
from repro.sim.trace import flatten_timeline, level_busy_fractions, render_ascii
from repro.workloads import PAPER_BENCHMARKS, small_benchmark, vgg16


def machines_zoo():
    """Differently-shaped machines that must all run the same binary."""
    return [
        custom_machine("zoo-flat", [4], [1 << 18, 1 << 14], [1e9] * 2),
        custom_machine("zoo-deep", [2, 2, 2],
                       [1 << 20, 1 << 17, 1 << 14, 1 << 12], [1e9] * 4),
        custom_machine("zoo-wide", [8, 4], [1 << 20, 1 << 15, 1 << 12],
                       [1e9] * 3),
    ]


class TestSTMH:
    """Section 4: the identical program runs unmodified on every instance."""

    @pytest.mark.parametrize("name", sorted(PAPER_BENCHMARKS))
    def test_same_binary_every_machine(self, rng, name):
        w = small_benchmark(name)
        arrays = {t: 0.1 * rng.normal(size=t.shape)
                  for t in list(w.inputs.values()) + list(w.params.values())}
        ref = TensorStore()
        for t, arr in arrays.items():
            ref.bind(t, arr)
        for inst in w.program:
            run_reference(inst, ref)
        for machine in machines_zoo():
            store = TensorStore()
            for t, arr in arrays.items():
                store.bind(t, arr)
            FractalExecutor(machine, store).run_program(w.program)
            for t in w.outputs.values():
                np.testing.assert_allclose(
                    store.read(t.region()), ref.read(t.region()),
                    atol=1e-7, rtol=1e-6,
                    err_msg=f"{name} diverged on {machine.name}")

    def test_assembly_program_portable(self, rng):
        src = """
        input a 12 8
        input b 8 10
        tensor c 12 10
        MatMul c, a, b
        output c
        """
        w = assemble(src)
        arrays = {t: rng.normal(size=t.shape) for t in w.inputs.values()}
        results = []
        for machine in machines_zoo():
            store = TensorStore()
            for t, arr in arrays.items():
                store.bind(t, arr)
            FractalExecutor(machine, store).run_program(w.program)
            out = list(w.outputs.values())[0]
            results.append(store.read(out.region()))
        for r in results[1:]:
            np.testing.assert_allclose(r, results[0], atol=1e-9)


class TestTimingIntegration:
    @pytest.mark.parametrize("name", sorted(PAPER_BENCHMARKS))
    def test_small_benchmarks_simulate_on_f1(self, name):
        w = small_benchmark(name)
        rep = FractalSimulator(cambricon_f1(),
                               collect_profiles=False).simulate(w.program)
        assert rep.total_time > 0
        assert rep.work == w.work
        assert rep.attained_ops <= cambricon_f1().peak_ops * 1.01

    def test_f100_not_slower_than_f1_on_compute_bound(self):
        """A big MatMul must run faster on the 64x bigger machine."""
        from repro.workloads import matmul_workload
        w = matmul_workload(4096)
        t1 = FractalSimulator(cambricon_f1(),
                              collect_profiles=False).simulate(w.program)
        t100 = FractalSimulator(cambricon_f100(),
                                collect_profiles=False).simulate(w.program)
        assert t100.total_time < t1.total_time

    def test_vgg_scaled_runs_on_both_instances(self):
        w = vgg16(batch=2, input_size=64, num_classes=100)
        for mach in (cambricon_f1(), cambricon_f100()):
            rep = FractalSimulator(mach, collect_profiles=False).simulate(w.program)
            assert 0 < rep.total_time < 10.0


class TestTimelines:
    def test_knn_timeline_renders_fig13_style(self):
        """The Fig-13 reproduction path: k-NN program -> per-level timeline."""
        from repro.workloads import knn_workload
        w = knn_workload(n_samples=8192, dims=64, categories=16, batch=2048)
        sim = FractalSimulator(cambricon_f1(), collect_profiles=True)
        rep = sim.simulate(w.program)
        segs = flatten_timeline(rep.root, max_depth=2)
        assert segs
        fractions = level_busy_fractions(segs, rep.total_time)
        assert 0 in fractions
        art = render_ascii(rep, width=80, max_depth=2)
        assert "timeline" in art

    def test_busy_fractions_bounded(self):
        from repro.workloads import matmul_workload
        w = matmul_workload(1024)
        rep = FractalSimulator(cambricon_f1(), collect_profiles=True).simulate(w.program)
        fr = level_busy_fractions(flatten_timeline(rep.root), rep.total_time)
        for kinds in fr.values():
            for frac in kinds.values():
                assert frac <= 1.0001


class TestInstanceSpecs:
    """Table 6 fidelity of the shipped machine configurations."""

    def test_f100_structure(self):
        m = cambricon_f100()
        assert m.depth == 5
        assert [lv.name for lv in m.levels] == ["Server", "Card", "Chip",
                                                "FMP", "Core"]
        assert [lv.fanout for lv in m.levels] == [4, 2, 8, 32, 0]
        assert m.total_cores == 2048
        assert m.peak_ops == pytest.approx(956e12, rel=0.01)
        assert m.level(2).mem_bytes == 256 * MB
        assert m.level(4).mem_bytes == 256 * KB

    def test_f1_structure(self):
        m = cambricon_f1()
        assert m.depth == 3
        assert m.total_cores == 32
        assert m.peak_ops == pytest.approx(14.9e12, rel=0.01)
        assert m.level(0).mem_bytes == 32 * GB
        assert m.root_bandwidth == 512 * GB

    def test_describe_renders(self):
        text = cambricon_f100().describe()
        assert "Cambricon-F100" in text and "Core" in text

    def test_feature_toggles(self):
        m = cambricon_f1().with_features(use_ttt=False, use_broadcast=False)
        assert not m.use_ttt and not m.use_broadcast
        assert cambricon_f1().use_ttt  # original untouched

    def test_machine_validation(self):
        from repro.core.machine import LevelSpec, Machine
        with pytest.raises(ValueError):
            Machine("bad", [LevelSpec("x", 2, 0, 1024, 1e9, 1e9)])  # no leaf
        with pytest.raises(ValueError):
            Machine("bad", [])
