"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import FractalExecutor, Instruction, Tensor, TensorStore, custom_machine
from repro.core.executor import run_reference

KB = 1 << 10


@pytest.fixture(scope="session", autouse=True)
def _hermetic_run_ledger(tmp_path_factory):
    """Keep the suite out of ``~/.cache``: point the run ledger at a tmp dir.

    Respects an explicit ``$REPRO_LEDGER`` (CI sets one to collect the
    test-run ledger as an artifact); only the unset case is redirected.
    """
    if "REPRO_LEDGER" not in os.environ:
        os.environ["REPRO_LEDGER"] = str(tmp_path_factory.mktemp("ledger"))
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(20190622)  # ISCA'19 opening day


def tiny_machine(fanouts=(3, 2), mems=(64 * KB, 8 * KB, 2 * KB)):
    """A small fractal machine that still forces real SD/PD decomposition."""
    return custom_machine("tiny", list(fanouts), list(mems),
                          [1e9] * (len(fanouts) + 1))


def run_both(inst: Instruction, arrays, machine=None):
    """Run ``inst`` on the reference kernel and the fractal executor.

    ``arrays`` maps input Region -> numpy array.  Returns (fractal, reference)
    output arrays for the instruction's first output.
    """
    machine = machine or tiny_machine()
    frac_store, ref_store = TensorStore(), TensorStore()
    for region, arr in arrays.items():
        frac_store.bind(region.tensor, arr)
        ref_store.bind(region.tensor, arr)
    run_reference(inst, ref_store)
    FractalExecutor(machine, frac_store).run(inst)
    out = inst.outputs[0]
    return frac_store.read(out), ref_store.read(out)


def assert_fractal_matches(inst: Instruction, arrays, machine=None, atol=1e-9):
    got, want = run_both(inst, arrays, machine)
    np.testing.assert_allclose(got, want, atol=atol, rtol=1e-7)
