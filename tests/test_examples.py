"""Example-script smoke tests: the shipped examples must stay runnable.

Heavy examples (paper-scale simulations, full figure rendering) are
exercised by the benchmark harness instead; here we run the fast ones end
to end as subprocesses.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240, *args: str):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_examples_exist():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "knn_fractal.py", "resnet_inference.py",
            "design_space.py", "compile_network.py", "train_network.py",
            "ablation_sweep.py", "render_figures.py"} <= names


def test_quickstart(tmp_path):
    out = run_example("quickstart.py")
    assert "max_err" in out
    assert "Cambricon-F100" in out
    assert "timing simulation" in out


def test_compile_network():
    out = run_example("compile_network.py")
    assert "same binary, same numbers" in out
    assert "max difference across machines: 0.00e+00" in out


def test_train_network():
    out = run_example("train_network.py")
    assert "converged" in out


def test_shipped_knn_program_assembles():
    from repro.frontend import assemble
    src = (EXAMPLES / "programs" / "knn.fisa").read_text()
    w = assemble(src, "knn")
    assert len(w.program) == 3
    assert len(w.outputs) == 3
