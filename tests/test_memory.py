"""Memory subsystem tests: the Fig-9 segmented allocator and the two-bank
Tensor Transposition Table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.memory.allocator import AllocationError, NodeMemoryManager
from repro.core.memory.ttt import TensorTranspositionTable
from repro.core.tensor import Tensor


def manager(capacity=4096, static_fraction=0.25):
    return NodeMemoryManager(capacity, static_fraction)


class TestSegmentLayout:
    def test_segment_sizes(self):
        m = manager(4000, 0.25)
        assert m.static_segment_bytes == 1000
        assert m.recycled_segment_bytes == 1000

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            NodeMemoryManager(0)
        with pytest.raises(ValueError):
            NodeMemoryManager(1024, static_fraction=1.5)


class TestRecycledSegments:
    def test_alloc_needs_cycle(self):
        with pytest.raises(AllocationError):
            manager().alloc(16)

    def test_list_order_placement(self):
        m = manager()
        m.begin_fisa_cycle(0)
        b1 = m.alloc(100)
        b2 = m.alloc(50)
        assert b2.offset == b1.offset + 100  # "allocated in the list order"

    def test_three_way_rotation(self):
        m = manager()
        offsets = []
        for i in range(6):
            m.begin_fisa_cycle(i)
            offsets.append(m.alloc(16).offset)
        # cycles i and i+3 reuse the same segment base
        assert offsets[0] == offsets[3]
        assert offsets[1] == offsets[4]
        assert len({offsets[0], offsets[1], offsets[2]}) == 3

    def test_overflow_raises(self):
        m = manager(4096)
        m.begin_fisa_cycle(0)
        with pytest.raises(AllocationError):
            m.alloc(m.recycled_segment_bytes + 1)

    def test_cycles_must_increase(self):
        m = manager()
        m.begin_fisa_cycle(3)
        with pytest.raises(ValueError):
            m.begin_fisa_cycle(3)

    def test_live_blocks_never_overlap(self):
        """Blocks of the three in-flight instructions must be disjoint."""
        m = manager(6000)
        for i in range(9):
            m.begin_fisa_cycle(i)
            m.alloc(200, tag=f"a{i}")
            m.alloc(100, tag=f"b{i}")
            live = m.live_blocks()
            for x in range(len(live)):
                for y in range(x + 1, len(live)):
                    assert not live[x].overlaps(live[y]), (live[x], live[y])


class TestStaticSegment:
    def test_parity_ends(self):
        m = manager(8000, 0.5)
        m.begin_fisa_cycle(0)
        even = m.alloc_static(100, owner=0)
        m.begin_fisa_cycle(1)
        odd = m.alloc_static(100, owner=1)
        assert even.segment == "static-even"
        assert odd.segment == "static-odd"
        assert odd.offset > even.offset  # opposite ends

    def test_same_parity_reset(self):
        """Instruction i+2 reclaims instruction i's end of the segment."""
        m = manager(8000, 0.5)
        m.begin_fisa_cycle(0)
        first = m.alloc_static(100, owner=0)
        m.begin_fisa_cycle(1)
        m.alloc_static(100, owner=1)
        m.begin_fisa_cycle(2)
        third = m.alloc_static(100, owner=2)
        assert third.offset == first.offset  # even end was recycled

    def test_adjacent_parities_coexist(self):
        m = manager(8000, 0.5)
        m.begin_fisa_cycle(0)
        even = m.alloc_static(100, owner=0)
        m.begin_fisa_cycle(1)
        odd = m.alloc_static(100, owner=1)
        assert not even.overlaps(odd)

    def test_stack_collision_detected(self):
        m = manager(1000, 0.5)  # 500 B static
        m.begin_fisa_cycle(0)
        m.alloc_static(300, owner=0)
        m.begin_fisa_cycle(1)
        with pytest.raises(AllocationError):
            m.alloc_static(300, owner=1)

    def test_utilization_tracks_high_water(self):
        m = manager(4000)
        m.begin_fisa_cycle(0)
        m.alloc(500)
        assert 0 < m.utilization() <= 1.0


@settings(deadline=None, max_examples=50)
@given(st.lists(st.tuples(st.integers(1, 120), st.booleans()),
                min_size=1, max_size=40))
def test_allocator_never_overlaps_live_blocks(requests):
    """Property: across any request sequence, live blocks stay disjoint
    and inside the node's capacity."""
    m = manager(16384)
    for cycle, (size, use_static) in enumerate(requests):
        m.begin_fisa_cycle(cycle)
        try:
            if use_static:
                m.alloc_static(size, owner=cycle)
            else:
                m.alloc(size)
        except AllocationError:
            continue
        live = m.live_blocks()
        for i in range(len(live)):
            assert 0 <= live[i].offset and live[i].end <= 16384
            for j in range(i + 1, len(live)):
                assert not live[i].overlaps(live[j])


class TestTTT:
    def _region(self, n=64, name="t"):
        return Tensor(name, (n,)).region()

    def test_lookup_before_begin_is_none(self):
        assert TensorTranspositionTable().lookup(self._region()) is None

    def test_hit_same_cycle(self):
        ttt = TensorTranspositionTable()
        ttt.begin_cycle(0)
        r = self._region()
        ttt.record(r, 0)
        assert ttt.lookup(r) is not None

    def test_hit_next_cycle(self):
        ttt = TensorTranspositionTable()
        ttt.begin_cycle(0)
        r = self._region()
        ttt.record(r, 0)
        ttt.begin_cycle(1)
        assert ttt.lookup(r) is not None

    def test_expires_after_two_cycles(self):
        """A record written in cycle i is gone by cycle i+2 (its bank is
        reclaimed) -- the paper's validity mechanism."""
        ttt = TensorTranspositionTable()
        ttt.begin_cycle(0)
        r = self._region()
        ttt.record(r, 0)
        ttt.begin_cycle(1)
        ttt.begin_cycle(2)  # reclaims bank 0
        assert ttt.lookup(r) is None

    def test_forward_flag(self):
        ttt = TensorTranspositionTable()
        ttt.begin_cycle(0)
        r = self._region()
        ttt.record(r, 0, is_output=True)
        ttt.begin_cycle(1)
        rec = ttt.lookup(r)
        assert rec is not None and rec.is_output
        assert ttt.forwards == 1

    def test_exact_match_only(self):
        ttt = TensorTranspositionTable()
        ttt.begin_cycle(0)
        t = Tensor("t", (64,))
        ttt.record(t.region()[0:32], 0)
        assert ttt.lookup(t.region()[0:16]) is None  # sub-region: miss

    def test_hit_rate(self):
        ttt = TensorTranspositionTable()
        ttt.begin_cycle(0)
        r = self._region()
        ttt.record(r, 0)
        ttt.lookup(r)
        ttt.lookup(self._region(name="other"))
        assert ttt.hit_rate == pytest.approx(0.5)

    def test_record_requires_cycle(self):
        with pytest.raises(RuntimeError):
            TensorTranspositionTable().record(self._region(), 0)

    def test_valid_records_counts_both_banks(self):
        ttt = TensorTranspositionTable()
        ttt.begin_cycle(0)
        ttt.record(self._region(name="a"), 0)
        ttt.begin_cycle(1)
        ttt.record(self._region(name="b"), 64)
        assert ttt.valid_records() == 2
