"""Energy model tests (Section 6 power methodology)."""

import pytest

from repro import Instruction, Opcode, Tensor, cambricon_f1, cambricon_f100
from repro.cost.energy import (
    EnergyReport,
    card_subsystem_power_w,
    estimate_energy,
)
from repro.sim import FractalSimulator


def _run(machine, m=1024):
    a, b, c = Tensor("a", (m, m)), Tensor("b", (m, m)), Tensor("c", (m, m))
    inst = Instruction(Opcode.MATMUL, (a.region(), b.region()), (c.region(),))
    rep = FractalSimulator(machine, collect_profiles=False).simulate([inst])
    return rep


class TestCardSubsystem:
    def test_f1_has_one_card(self):
        """32 GB @ 512 GB/s: ~77 W of DRAM interface + board."""
        p = card_subsystem_power_w(cambricon_f1())
        assert 60 < p < 90

    def test_f100_has_four_cards(self):
        p100 = card_subsystem_power_w(cambricon_f100())
        p1 = card_subsystem_power_w(cambricon_f1())
        assert p100 == pytest.approx(4 * p1, rel=1e-6)

    def test_host_memory_excluded(self):
        """The F100's 1 TB host memory must not count as card DRAM."""
        m = cambricon_f100()
        # if the 1 TB level were counted, power would jump by ~25 W
        assert card_subsystem_power_w(m) < 350


class TestEnergyReport:
    def test_components_positive(self):
        m = cambricon_f1()
        er = estimate_energy(m, _run(m), "matmul")
        assert er.compute_j > 0
        assert er.memory_j > 0
        assert er.static_j > 0
        assert er.total_j == pytest.approx(
            er.compute_j + er.memory_j + er.static_j)

    def test_breakdown_sums_to_one(self):
        m = cambricon_f1()
        er = estimate_energy(m, _run(m), "matmul")
        assert sum(er.breakdown().values()) == pytest.approx(1.0)

    def test_average_power_plausible(self):
        """The F1 card draws 80-ish W (paper: 83.1 W average, 90.2 W peak)."""
        m = cambricon_f1()
        er = estimate_energy(m, _run(m, 4096))
        assert 60 < er.average_power_w < 110

    def test_more_work_more_energy(self):
        m = cambricon_f1()
        small = estimate_energy(m, _run(m, 512))
        big = estimate_energy(m, _run(m, 2048))
        assert big.total_j > small.total_j

    def test_f100_scales_up(self):
        e1 = estimate_energy(cambricon_f1(), _run(cambricon_f1(), 2048))
        e100 = estimate_energy(cambricon_f100(), _run(cambricon_f100(), 2048))
        assert e100.average_power_w > 3 * e1.average_power_w

    def test_zero_time_zero_power(self):
        er = EnergyReport("m", "b", 0.0, 0.0, 0.0, 0.0)
        assert er.average_power_w == 0.0
