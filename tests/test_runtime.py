"""Host runtime + end-to-end algorithm tests: the paper's programming
model actually classifying/clustering data through FISA."""

import numpy as np
import pytest

from repro import custom_machine
from repro.runtime import (
    HostRuntime,
    KMeans,
    KNNClassifier,
    LVQClassifier,
    RBFSVMClassifier,
)
from repro.workloads.datasets import clustered_samples

from conftest import tiny_machine


@pytest.fixture
def runtime():
    """A runtime on a small-but-real fractal machine."""
    return HostRuntime(custom_machine("rt", [2, 2],
                                      [1 << 18, 1 << 15, 1 << 12], [1e9] * 3))


@pytest.fixture
def blobs():
    x, y, centers = clustered_samples(n_samples=120, dims=8, categories=3,
                                      spread=0.15, seed=7)
    return x, y, centers


class TestHostRuntime:
    def test_matmul(self, runtime, rng):
        a, b = rng.normal(size=(6, 4)), rng.normal(size=(4, 5))
        np.testing.assert_allclose(runtime.matmul(a, b), a @ b, atol=1e-9)

    def test_euclidian(self, runtime, rng):
        x, refs = rng.normal(size=(5, 3)), rng.normal(size=(4, 3))
        want = ((x[:, None, :] - refs[None]) ** 2).sum(-1)
        np.testing.assert_allclose(runtime.euclidian(x, refs), want, atol=1e-9)

    def test_conv2d(self, runtime, rng):
        from repro.ops.conv import conv2d
        x, w = rng.normal(size=(1, 6, 6, 2)), rng.normal(size=(3, 3, 2, 3))
        np.testing.assert_allclose(runtime.conv2d(x, w), conv2d(x, w),
                                   atol=1e-9)

    def test_sort_and_count(self, runtime, rng):
        x = rng.normal(size=33)
        np.testing.assert_array_equal(runtime.sort(x), np.sort(x))
        assert runtime.count(np.array([0.0, 1.0, 2.0, 0.0])) == 2
        assert runtime.count(np.array([1.0, 2.0, 2.0]), value=2.0) == 2

    def test_eltwise_and_hsum(self, runtime, rng):
        a, b = rng.normal(size=9), rng.normal(size=9)
        np.testing.assert_allclose(runtime.add(a, b), a + b)
        np.testing.assert_allclose(runtime.sub(a, b), a - b)
        np.testing.assert_allclose(runtime.mul(a, b), a * b)
        assert runtime.hsum(a) == pytest.approx(a.sum())

    def test_activation(self, runtime):
        x = np.array([-1.0, 2.0])
        np.testing.assert_allclose(runtime.activation(x, "relu"), [0.0, 2.0])

    def test_instruction_counter(self, runtime, rng):
        before = runtime.instructions_issued
        runtime.add(rng.normal(size=4), rng.normal(size=4))
        assert runtime.instructions_issued == before + 1

    def test_one_hot(self):
        oh = HostRuntime.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(oh, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])


class TestKNN:
    def test_classifies_blobs(self, runtime, blobs):
        x, y, _ = blobs
        clf = KNNClassifier(k=3, runtime=runtime).fit(x[:90], y[:90])
        assert clf.score(x[90:], y[90:]) > 0.9

    def test_k_one_memorizes(self, runtime, blobs):
        x, y, _ = blobs
        clf = KNNClassifier(k=1, runtime=runtime).fit(x[:50], y[:50])
        assert clf.score(x[:20], y[:20]) == 1.0

    def test_validation(self, runtime):
        with pytest.raises(ValueError):
            KNNClassifier(k=0)
        with pytest.raises(ValueError):
            KNNClassifier(k=9, runtime=runtime).fit(np.ones((3, 2)),
                                                    np.array([0, 1, 2]))
        with pytest.raises(RuntimeError):
            KNNClassifier(k=1, runtime=runtime).predict(np.ones((1, 2)))


class TestKMeans:
    def test_recovers_clusters(self, runtime, blobs):
        x, y, centers = blobs
        km = KMeans(k=3, runtime=runtime, seed=3).fit(x)
        assign = km.predict(x)
        # cluster labels are arbitrary: check purity instead
        purity = 0
        for c in range(3):
            members = y[assign == c]
            if members.size:
                purity += np.bincount(members).max()
        assert purity / len(x) > 0.9

    def test_converges_early(self, runtime, blobs):
        x, _, _ = blobs
        km = KMeans(k=3, max_iter=50, runtime=runtime, seed=3).fit(x)
        assert km.iterations_run < 50

    def test_inertia_decreases_with_k(self, runtime, blobs):
        x, _, _ = blobs
        i1 = KMeans(k=1, runtime=runtime).fit(x).inertia(x)
        i3 = KMeans(k=3, runtime=runtime, seed=3).fit(x).inertia(x)
        assert i3 < i1

    def test_validation(self, runtime):
        with pytest.raises(ValueError):
            KMeans(k=0)
        with pytest.raises(ValueError):
            KMeans(k=10, runtime=runtime).fit(np.ones((3, 2)))
        with pytest.raises(RuntimeError):
            KMeans(k=2, runtime=runtime).predict(np.ones((2, 2)))


class TestLVQ:
    def test_classifies_blobs(self, runtime, blobs):
        x, y, _ = blobs
        clf = LVQClassifier(prototypes_per_class=1, epochs=5,
                            runtime=runtime).fit(x[:90], y[:90])
        assert clf.score(x[90:], y[90:]) > 0.85

    def test_unfit_raises(self, runtime):
        with pytest.raises(RuntimeError):
            LVQClassifier(runtime=runtime).predict(np.ones((1, 4)))


class TestRBFSVM:
    def test_separates_two_blobs(self, runtime):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(40, 4)) + 2.0
        b = rng.normal(size=(40, 4)) - 2.0
        x = np.vstack([a, b])
        y = np.array([1.0] * 40 + [-1.0] * 40)
        clf = RBFSVMClassifier(gamma=0.2, runtime=runtime).fit(x, y)
        assert clf.score(x, y) > 0.95

    def test_nonlinear_boundary(self, runtime):
        """XOR-ish data -- impossible linearly, easy for RBF."""
        rng = np.random.default_rng(6)
        centers = np.array([[2, 2], [-2, -2], [2, -2], [-2, 2]], float)
        labels = np.array([1.0, 1.0, -1.0, -1.0])
        x = np.vstack([c + 0.3 * rng.normal(size=(15, 2)) for c in centers])
        y = np.repeat(labels, 15)
        clf = RBFSVMClassifier(gamma=0.5, epochs=40, runtime=runtime).fit(x, y)
        assert clf.score(x, y) > 0.9

    def test_label_validation(self, runtime):
        with pytest.raises(ValueError):
            RBFSVMClassifier(runtime=runtime).fit(np.ones((4, 2)),
                                                  np.array([0.0, 1, 1, 0]))

    def test_unfit_raises(self, runtime):
        with pytest.raises(RuntimeError):
            RBFSVMClassifier(runtime=runtime).decision_function(np.ones((1, 2)))


class TestPortability:
    """The same algorithm code must work on any machine shape (STMH)."""

    @pytest.mark.parametrize("fanouts", [(2,), (4, 2), (1, 3)])
    def test_kmeans_on_any_machine(self, blobs, fanouts):
        x, _, _ = blobs
        mems = [1 << (17 - 2 * i) for i in range(len(fanouts) + 1)]
        machine = custom_machine("p", list(fanouts), mems,
                                 [1e9] * (len(fanouts) + 1))
        km = KMeans(k=3, runtime=HostRuntime(machine), seed=3).fit(x)
        assert km.centroids.shape == (3, x.shape[1])
