"""FISA pipeline scheduler tests (ID/LD/EX/RD/WB, duplex DMA, hazards,
pipeline concatenation)."""

import pytest

from repro.sim.pipeline import StageTimes, schedule_pipeline


def test_empty_schedule():
    s = schedule_pipeline([])
    assert s.total_time == 0.0
    assert s.instructions == []


def test_single_instruction_serial():
    s = schedule_pipeline([StageTimes(decode=1, load=2, exec=3, reduce=1,
                                      writeback=2)])
    i = s.instructions[0]
    assert i.id_iv.start == 0 and i.id_iv.end == 1
    assert i.ld_iv.end == 3
    assert i.ex_iv.end == 6
    assert i.rd_iv.end == 7
    assert i.wb_iv.end == 9
    assert s.total_time == 9


def test_load_overlaps_previous_exec():
    """LD(i+1) proceeds during EX(i) -- the duplex-DMA double buffering."""
    stages = [StageTimes(decode=0.01, load=2, exec=2) for _ in range(4)]
    s = schedule_pipeline(stages, use_concatenation=False)
    # steady state: one EX every ~2 time units, not 4
    assert s.total_time < 4 * 4 * 0.8
    second = s.instructions[1]
    first = s.instructions[0]
    assert second.ld_iv.start < first.ex_iv.end


def test_exec_serializes_on_ffus():
    stages = [StageTimes(load=0.1, exec=5) for _ in range(3)]
    s = schedule_pipeline(stages)
    ends = [i.ex_iv.end for i in s.instructions]
    starts = [i.ex_iv.start for i in s.instructions]
    assert starts[1] >= ends[0] and starts[2] >= ends[1]


def test_raw_stall_blocks_load():
    stages = [
        StageTimes(load=1, exec=1, writeback=2),
        StageTimes(load=1, exec=1, stall_on=0),
    ]
    s = schedule_pipeline(stages, use_concatenation=False)
    assert s.instructions[1].ld_iv.start >= s.instructions[0].wb_iv.end


def test_stall_on_missing_index_ignored():
    stages = [StageTimes(load=1, exec=1, stall_on=7)]
    s = schedule_pipeline(stages)
    assert s.total_time > 0


def test_concatenation_removes_fill():
    base = [StageTimes(load=1, exec=4, exec_fill=2, pre_assignable=True)
            for _ in range(5)]
    with_c = schedule_pipeline(base, use_concatenation=True)
    without = schedule_pipeline(base, use_concatenation=False)
    assert with_c.total_time < without.total_time
    # each pre-assigned instruction saves exec_fill
    assert without.total_time - with_c.total_time == pytest.approx(4 * 2)


def test_concatenation_skips_non_preassignable():
    stages = [StageTimes(load=1, exec=4, exec_fill=2, pre_assignable=False)
              for _ in range(3)]
    a = schedule_pipeline(stages, use_concatenation=True)
    b = schedule_pipeline(stages, use_concatenation=False)
    assert a.total_time == b.total_time


def test_first_instruction_never_concatenated():
    stages = [StageTimes(load=1, exec=4, exec_fill=2, pre_assignable=True)]
    s = schedule_pipeline(stages, use_concatenation=True)
    assert s.instructions[0].ex_iv.duration == 4


def test_busy_accounting():
    stages = [StageTimes(decode=1, load=2, exec=3, reduce=1, writeback=2)
              for _ in range(2)]
    s = schedule_pipeline(stages, use_concatenation=False)
    assert s.decoder_busy == 2
    assert s.dma_busy == 2 * 4
    assert s.ffu_busy == 6
    assert s.lfu_busy == 2
    assert 0 < s.utilization("ffu") <= 1.0


def test_startup_time_is_first_ex_start():
    s = schedule_pipeline([StageTimes(decode=1, load=2, exec=3)])
    assert s.startup_time == 3


def test_writebacks_serialize_in_order():
    stages = [StageTimes(exec=1, writeback=5), StageTimes(exec=1, writeback=5)]
    s = schedule_pipeline(stages)
    assert s.instructions[1].wb_iv.start >= s.instructions[0].wb_iv.end


def test_lfu_serializes_reductions():
    stages = [StageTimes(exec=0.1, reduce=5), StageTimes(exec=0.1, reduce=5)]
    s = schedule_pipeline(stages)
    assert s.instructions[1].rd_iv.start >= s.instructions[0].rd_iv.end


def test_total_is_max_writeback_end():
    stages = [StageTimes(load=1, exec=2, writeback=1) for _ in range(3)]
    s = schedule_pipeline(stages)
    assert s.total_time == max(i.wb_iv.end for i in s.instructions)
