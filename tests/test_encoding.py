"""FISA binary encoding tests: round-trips, corruption handling, and the
disassembler/assembler loop."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import FractalExecutor, Instruction, Opcode, Tensor, TensorStore
from repro.core.executor import run_reference
from repro.frontend import (
    EncodingError,
    assemble,
    decode_program,
    disassemble,
    encode_program,
)
from repro.workloads import small_benchmark, vgg16

from conftest import tiny_machine


def sample_program():
    a, b, c = Tensor("a", (8, 6)), Tensor("b", (6, 4)), Tensor("c", (8, 4))
    r = Tensor("r", (8, 4))
    return [
        Instruction(Opcode.MATMUL, (a.region(), b.region()), (c.region(),)),
        Instruction(Opcode.ACT1D, (c.region(),), (r.region(),),
                    {"func": "relu"}),
    ]


def structurally_equal(p1, p2):
    assert len(p1) == len(p2)
    for i1, i2 in zip(p1, p2):
        assert i1.opcode == i2.opcode
        assert i1.signature() == i2.signature()
        for r1, r2 in zip(i1.inputs + i1.outputs, i2.inputs + i2.outputs):
            assert r1.bounds == r2.bounds
            assert r1.tensor.name == r2.tensor.name
            assert r1.tensor.shape == r2.tensor.shape


class TestRoundTrip:
    def test_simple_program(self):
        prog = sample_program()
        tensors, decoded = decode_program(encode_program(prog))
        structurally_equal(prog, decoded)
        assert {t.name for t in tensors} == {"a", "b", "c", "r"}

    def test_attrs_of_every_type(self):
        x, o = Tensor("x", (4,)), Tensor("o", (4,))
        inst = Instruction(Opcode.ACT1D, (x.region(),), (o.region(),),
                           {"func": "relu", "stride": 2, "alpha": 0.5,
                            "flag": True, "value": None})
        _, (decoded,) = decode_program(encode_program([inst]))
        assert decoded.attrs == inst.attrs

    def test_subregion_operands(self):
        t = Tensor("t", (16, 16))
        o = Tensor("o", (4, 16))
        inst = Instruction(Opcode.ACT1D, (t.region()[2:6, :],),
                           (o.region(),), {"func": "identity"})
        _, (decoded,) = decode_program(encode_program([inst]))
        assert decoded.inputs[0].bounds == ((2, 6), (0, 16))

    def test_acc_chain_stripped(self):
        x, o = Tensor("x", (4,)), Tensor("o", (4,))
        inst = Instruction(Opcode.ACT1D, (x.region(),), (o.region(),),
                           {"func": "relu", "acc_chain": 42})
        _, (decoded,) = decode_program(encode_program([inst]))
        assert "acc_chain" not in decoded.attrs

    def test_whole_network_round_trips(self):
        prog = vgg16(batch=1, input_size=32, num_classes=10).program
        _, decoded = decode_program(encode_program(prog))
        structurally_equal(prog, decoded)

    def test_deterministic(self):
        prog = sample_program()
        assert encode_program(prog) == encode_program(prog)

    def test_decoded_program_executes(self, rng):
        """The binary is runnable: decode and execute fractally."""
        prog = sample_program()
        _, decoded = decode_program(encode_program(prog))
        by_name = {}
        for inst in decoded:
            for r in inst.inputs + inst.outputs:
                by_name[r.tensor.name] = r.tensor
        store = TensorStore()
        a = rng.normal(size=(8, 6))
        b = rng.normal(size=(6, 4))
        store.bind(by_name["a"], a)
        store.bind(by_name["b"], b)
        FractalExecutor(tiny_machine(), store).run_program(decoded)
        np.testing.assert_allclose(store.read(by_name["r"].region()),
                                   np.maximum(a @ b, 0), atol=1e-9)


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(EncodingError, match="magic"):
            decode_program(b"NOPE" + b"\x00" * 16)

    def test_bad_version(self):
        data = bytearray(encode_program(sample_program()))
        data[4] = 0xFF
        with pytest.raises(EncodingError, match="version"):
            decode_program(bytes(data))

    def test_truncated(self):
        data = encode_program(sample_program())
        with pytest.raises(EncodingError, match="truncated"):
            decode_program(data[: len(data) // 2])

    def test_trailing_garbage(self):
        data = encode_program(sample_program())
        with pytest.raises(EncodingError, match="trailing"):
            decode_program(data + b"\x00")

    def test_unencodable_attr(self):
        x, o = Tensor("x", (4,)), Tensor("o", (4,))
        inst = Instruction(Opcode.ACT1D, (x.region(),), (o.region(),),
                           {"bad": [1, 2]})
        with pytest.raises(EncodingError, match="unencodable"):
            encode_program([inst])


class TestDisassembler:
    def test_reassemblable(self, rng):
        """disassemble() output must re-assemble to an equivalent program."""
        prog = sample_program()
        text = disassemble(prog)
        # inputs must be declared for the assembler; tensor lines suffice
        w = assemble(text.replace("tensor a", "input a")
                     .replace("tensor b", "input b"))
        assert len(w.program) == len(prog)
        for orig, re_asm in zip(prog, w.program):
            assert orig.opcode == re_asm.opcode
            assert orig.signature() == re_asm.signature()

    def test_contains_attrs(self):
        text = disassemble(sample_program())
        assert "func=relu" in text

    def test_subregions_rendered(self):
        t = Tensor("t", (16,))
        o = Tensor("o", (8,))
        inst = Instruction(Opcode.ACT1D, (t.region()[4:12],), (o.region(),),
                           {"func": "identity"})
        assert "t[4:12]" in disassemble([inst])


@settings(deadline=None, max_examples=25)
@given(m=st.integers(1, 16), k=st.integers(1, 16), n=st.integers(1, 16),
       func=st.sampled_from(["relu", "tanh", "exp"]))
def test_roundtrip_random_programs(m, k, n, func):
    a, b, c = Tensor("a", (m, k)), Tensor("b", (k, n)), Tensor("c", (m, n))
    r = Tensor("r", (m, n))
    prog = [
        Instruction(Opcode.MATMUL, (a.region(), b.region()), (c.region(),)),
        Instruction(Opcode.ACT1D, (c.region(),), (r.region(),), {"func": func}),
    ]
    _, decoded = decode_program(encode_program(prog))
    structurally_equal(prog, decoded)


def test_small_benchmarks_encode():
    for name in ("K-NN", "MATMUL", "SVM"):
        prog = small_benchmark(name).program
        _, decoded = decode_program(encode_program(prog))
        assert len(decoded) == len(prog)
