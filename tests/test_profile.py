"""Workload profiler tests (op shares, CPU-time shares, program stats)."""

import pytest

from repro.core.isa import Opcode
from repro.workloads import matmul_workload, mlp, vgg16
from repro.workloads.profile import (
    CPU_RATE,
    PRIMITIVE_OF,
    PRIMITIVES,
    cpu_time_shares,
    op_shares,
    program_stats,
)


class TestClassification:
    def test_every_opcode_classified(self):
        for op in Opcode:
            assert op in PRIMITIVE_OF, op
            assert PRIMITIVE_OF[op] in PRIMITIVES

    def test_every_primitive_has_a_rate(self):
        assert set(CPU_RATE) == set(PRIMITIVES)


class TestShares:
    def test_shares_sum_to_one(self):
        w = vgg16(batch=1, input_size=64, num_classes=10)
        for shares in (op_shares(w.program), cpu_time_shares(w.program)):
            assert sum(shares.values()) == pytest.approx(1.0)

    def test_matmul_is_pure_mmm(self):
        shares = op_shares(matmul_workload(64).program)
        assert shares["MMM"] == pytest.approx(1.0)

    def test_time_model_amplifies_slow_primitives(self):
        """ELTW costs ~50x more time per op than MMM on the CPU model."""
        w = mlp(batch=8)
        ops = op_shares(w.program)
        time = cpu_time_shares(w.program)
        assert time["ELTW"] > ops["ELTW"]

    def test_empty_program(self):
        assert sum(op_shares([]).values()) == 0.0


class TestProgramStats:
    def test_counts(self):
        w = matmul_workload(32)
        stats = program_stats(w.program)
        assert stats.instructions == 1
        assert stats.work == 2 * 32 ** 3
        assert stats.distinct_tensors == 3
        assert stats.io_bytes == 3 * 32 * 32 * 2

    def test_oi_upper_bound(self):
        stats = program_stats(matmul_workload(256).program)
        assert stats.operational_intensity == pytest.approx(
            2 * 256 ** 3 / (3 * 256 * 256 * 2))

    def test_largest_footprint(self):
        w = vgg16(batch=1, input_size=32, num_classes=10)
        stats = program_stats(w.program)
        assert stats.largest_footprint > 0
        assert stats.largest_footprint <= stats.io_bytes
