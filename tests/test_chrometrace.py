"""Chrome trace export tests."""

import json

import pytest

from repro import Instruction, Opcode, Tensor, custom_machine
from repro.core.machine import KB, MB
from repro.sim import FractalSimulator
from repro.sim.chrometrace import to_chrome_trace, write_chrome_trace


@pytest.fixture(scope="module")
def report():
    a, b = Tensor("a", (128, 128)), Tensor("b", (128, 128))
    c = Tensor("c", (128, 128))
    inst = Instruction(Opcode.MATMUL, (a.region(), b.region()), (c.region(),))
    m = custom_machine("ct", [2, 2], [4 * MB, MB, 128 * KB], [32e9] * 3,
                       core_peak_ops=100e9)
    return FractalSimulator(m, collect_profiles=True).simulate([inst])


class TestTraceStructure:
    def test_has_events_and_metadata(self, report):
        trace = to_chrome_trace(report)
        assert trace["otherData"]["machine"] == "ct"
        kinds = {e["ph"] for e in trace["traceEvents"]}
        assert "X" in kinds and "M" in kinds

    def test_durations_within_total(self, report):
        trace = to_chrome_trace(report)
        total_us = report.total_time * 1e6
        for e in trace["traceEvents"]:
            if e["ph"] == "X":
                assert e["ts"] >= 0
                assert e["ts"] + e["dur"] <= total_us * 1.01 + 1e-3

    def test_levels_become_processes(self, report):
        trace = to_chrome_trace(report, level_names=["Top", "Mid", "Leaf"])
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e.get("name") == "process_name"}
        assert any("Top" in n for n in names)
        assert any("Leaf" in n for n in names)

    def test_max_depth(self, report):
        trace = to_chrome_trace(report, max_depth=0)
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert pids == {0}

    def test_json_serializable_and_written(self, report, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(report, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]
