"""Chrome trace export tests."""

import json

import pytest

from repro import Instruction, Opcode, Tensor, custom_machine
from repro.core.machine import KB, MB
from repro.sim import FractalSimulator
from repro.sim.chrometrace import FUNCTIONAL_PID, to_chrome_trace, write_chrome_trace
from repro.telemetry import Tracer


@pytest.fixture(scope="module")
def report():
    a, b = Tensor("a", (128, 128)), Tensor("b", (128, 128))
    c = Tensor("c", (128, 128))
    inst = Instruction(Opcode.MATMUL, (a.region(), b.region()), (c.region(),))
    m = custom_machine("ct", [2, 2], [4 * MB, MB, 128 * KB], [32e9] * 3,
                       core_peak_ops=100e9)
    return FractalSimulator(m, collect_profiles=True).simulate([inst])


class TestTraceStructure:
    def test_has_events_and_metadata(self, report):
        trace = to_chrome_trace(report)
        assert trace["otherData"]["machine"] == "ct"
        kinds = {e["ph"] for e in trace["traceEvents"]}
        assert "X" in kinds and "M" in kinds

    def test_durations_within_total(self, report):
        trace = to_chrome_trace(report)
        total_us = report.total_time * 1e6
        for e in trace["traceEvents"]:
            if e["ph"] == "X":
                assert e["ts"] >= 0
                assert e["ts"] + e["dur"] <= total_us * 1.01 + 1e-3

    def test_levels_become_processes(self, report):
        trace = to_chrome_trace(report, level_names=["Top", "Mid", "Leaf"])
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e.get("name") == "process_name"}
        assert any("Top" in n for n in names)
        assert any("Leaf" in n for n in names)

    def test_max_depth(self, report):
        trace = to_chrome_trace(report, max_depth=0)
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert pids == {0}

    def test_json_serializable_and_written(self, report, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(report, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]


class TestEmptyTimeline:
    """Regression: zero-instruction programs must export a valid trace."""

    @pytest.fixture(scope="class")
    def empty_report(self):
        m = custom_machine("empty", [2], [MB, 128 * KB], [32e9] * 2,
                           core_peak_ops=100e9)
        return FractalSimulator(m, collect_profiles=True).simulate([])

    def test_to_chrome_trace_no_events(self, empty_report):
        trace = to_chrome_trace(empty_report)
        assert trace["otherData"]["machine"] == "empty"
        assert trace["otherData"]["total_time_ms"] == 0.0
        assert [e for e in trace["traceEvents"] if e["ph"] == "X"] == []

    def test_level_names_do_not_index_error(self, empty_report):
        # level_names shorter than the hierarchy must not raise
        trace = to_chrome_trace(empty_report, level_names=[])
        assert isinstance(trace["traceEvents"], list)

    def test_write_round_trip(self, empty_report, tmp_path):
        path = tmp_path / "empty.json"
        write_chrome_trace(empty_report, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["traceEvents"] == []

    def test_render_ascii_empty(self, empty_report):
        from repro.sim.trace import render_ascii
        # must not raise on a report with no segments
        render_ascii(empty_report)


class TestMergedSpans:
    """Functional telemetry spans merge into the same Perfetto trace."""

    @pytest.fixture(scope="class")
    def spans(self):
        tracer = Tracer(enabled=True)
        with tracer.span("host:run", cat="host"):
            with tracer.span("executor.program", cat="program"):
                with tracer.span("inst:matmul", cat="instruction"):
                    pass
        return tracer.spans()

    def test_span_process_added(self, report, spans):
        trace = to_chrome_trace(report, spans=spans)
        span_events = [e for e in trace["traceEvents"]
                       if e["pid"] == FUNCTIONAL_PID]
        names = {e["args"]["name"] for e in span_events if e["ph"] == "M"}
        assert any("functional" in n for n in names)
        xs = [e for e in span_events if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {
            "host:run", "executor.program", "inst:matmul"}

    def test_two_nested_track_levels(self, report, spans):
        """Acceptance: span process shows >= 2 levels of nesting."""
        trace = to_chrome_trace(report, spans=spans)
        depths = {e["args"]["depth"] for e in trace["traceEvents"]
                  if e["pid"] == FUNCTIONAL_PID and e["ph"] == "X"}
        assert {0, 1, 2} <= depths

    def test_simulator_tracks_unaffected(self, report, spans):
        plain = to_chrome_trace(report)
        merged = to_chrome_trace(report, spans=spans)
        plain_x = [e for e in plain["traceEvents"] if e["ph"] == "X"]
        merged_sim_x = [e for e in merged["traceEvents"]
                        if e["ph"] == "X" and e["pid"] != FUNCTIONAL_PID]
        assert len(plain_x) == len(merged_sim_x)

    def test_empty_span_list_adds_nothing(self, report):
        plain = to_chrome_trace(report)
        merged = to_chrome_trace(report, spans=[])
        assert len(plain["traceEvents"]) == len(merged["traceEvents"])


class TestZeroWidthSlivers:
    """Regression: zero-width stages used to export with identical ts/dur
    and render as overlapping slivers -- Perfetto shows only one of them.
    Sub-tick events must be clamped to a 1-tick minimum duration and
    de-overlapped per (pid, tid) track."""

    def _zero_spans(self, n=4):
        from repro.telemetry import SpanRecord
        return [SpanRecord(id=i, name=f"op{i}", cat="op", start=1.0,
                           duration=0.0, depth=0, parent=None)
                for i in range(n)]

    def test_placer_passthrough_for_real_durations(self):
        from repro.telemetry.tracer import CHROME_TICK_US, SliverPlacer
        placer = SliverPlacer()
        assert placer.place(0, 0, 10.0, 5.0) == (10.0, 5.0)
        assert placer.place(0, 0, 10.0, CHROME_TICK_US) == (10.0,
                                                            CHROME_TICK_US)

    def test_placer_declutters_co_timestamped_slivers(self):
        from repro.telemetry.tracer import CHROME_TICK_US, SliverPlacer
        placer = SliverPlacer()
        placed = [placer.place(0, 0, 7.0, 0.0) for _ in range(3)]
        starts = [ts for ts, _ in placed]
        assert len(set(starts)) == 3  # each sliver gets its own slot
        assert starts == [7.0, 7.0 + CHROME_TICK_US, 7.0 + 2 * CHROME_TICK_US]
        assert all(dur == CHROME_TICK_US for _, dur in placed)

    def test_placer_tracks_are_independent(self):
        from repro.telemetry.tracer import SliverPlacer
        placer = SliverPlacer()
        a = placer.place(0, 0, 7.0, 0.0)
        b = placer.place(0, 1, 7.0, 0.0)  # other tid: no shift
        c = placer.place(1, 0, 7.0, 0.0)  # other pid: no shift
        assert a == b == c

    def test_span_events_are_individually_visible(self):
        from repro.sim.chrometrace import _span_events
        events = [e for e in _span_events(self._zero_spans())
                  if e["ph"] == "X"]
        assert len(events) == 4
        keys = {(e["pid"], e["tid"], e["ts"]) for e in events}
        assert len(keys) == 4  # no two slices share a (pid, tid, ts) cell
        assert all(e["dur"] > 0 for e in events)

    def test_tracer_export_declutters_too(self):
        tracer = Tracer(enabled=True)
        tracer._ring.extend(self._zero_spans())
        xs = [e for e in tracer.to_chrome_events() if e["ph"] == "X"]
        assert len({e["ts"] for e in xs}) == len(xs)

    def test_merged_trace_has_no_duplicate_cells(self, report):
        trace = to_chrome_trace(report, spans=self._zero_spans())
        cells = [(e["pid"], e["tid"], e["ts"])
                 for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(cells) == len(set(cells))
