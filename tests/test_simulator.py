"""Timing-simulator tests: physical invariants, optimization ablation
directions, caching consistency, and report bookkeeping."""

import pytest

from repro import Instruction, Opcode, Tensor, cambricon_f1, custom_machine
from repro.core.machine import GB, KB, MB
from repro.sim import FractalSimulator


def matmul_inst(m, k, n):
    a, b, c = Tensor("a", (m, k)), Tensor("b", (k, n)), Tensor("c", (m, n))
    return Instruction(Opcode.MATMUL, (a.region(), b.region()), (c.region(),))


def small_machine(bw_scale=1.0, mem_scale=1.0, **flags):
    m = custom_machine(
        "sim-test",
        fanouts=[2, 4],
        mem_bytes=[int(64 * MB * mem_scale), int(4 * MB * mem_scale),
                   int(256 * KB * mem_scale)],
        bandwidths=[64 * GB * bw_scale] * 3,
        core_peak_ops=0.466e12,
    )
    return m.with_features(**flags) if flags else m


def simulate(machine, program):
    return FractalSimulator(machine, collect_profiles=False).simulate(program)


class TestPhysicalInvariants:
    def test_attained_never_exceeds_peak(self):
        m = small_machine()
        rep = simulate(m, [matmul_inst(512, 512, 512)])
        assert rep.attained_ops <= m.peak_ops * 1.001

    def test_time_positive_and_finite(self):
        rep = simulate(small_machine(), [matmul_inst(64, 64, 64)])
        assert 0 < rep.total_time < 1e3

    def test_more_bandwidth_not_slower(self):
        prog = [matmul_inst(256, 256, 256)]
        slow = simulate(small_machine(bw_scale=0.25), prog)
        fast = simulate(small_machine(bw_scale=4.0), prog)
        assert fast.total_time <= slow.total_time * 1.001

    def test_work_matches_program(self):
        inst = matmul_inst(128, 128, 128)
        rep = simulate(small_machine(), [inst])
        assert rep.work == inst.work()

    def test_traffic_at_least_inputs_once(self):
        """The root port must see at least the unique operand bytes."""
        inst = matmul_inst(256, 256, 256)
        rep = simulate(small_machine(), [inst])
        assert rep.root_traffic >= inst.io_bytes() * 0.5  # forwarding may elide out

    def test_bandwidth_bound_workload_near_roofline(self):
        """A low-intensity op cannot beat bandwidth x intensity.  The DMA is
        duplex (loads and write-backs on separate channels), so the ceiling
        is at most twice the single-direction roofline."""
        a, b = Tensor("a", (1 << 20,)), Tensor("b", (1 << 20,))
        o = Tensor("o", (1 << 20,))
        add = Instruction(Opcode.ADD1D, (a.region(), b.region()), (o.region(),))
        m = small_machine()
        rep = simulate(m, [add])
        ceiling = rep.operational_intensity * m.root_bandwidth
        assert rep.attained_ops <= ceiling * 2.0 * 1.05

    def test_two_instructions_slower_than_one(self):
        one = simulate(small_machine(), [matmul_inst(128, 128, 128)])
        two = simulate(small_machine(), [matmul_inst(128, 128, 128),
                                         matmul_inst(128, 128, 128)])
        assert two.total_time > one.total_time


class TestOptimizationDirections:
    """The Section-3.6 features must help (or at least never hurt)."""

    PROG = None

    @classmethod
    def prog(cls):
        if cls.PROG is None:
            from repro.workloads import vgg16
            cls.PROG = vgg16(batch=2, input_size=64, num_classes=100).program
        return cls.PROG

    def test_ttt_reduces_traffic(self):
        on = simulate(small_machine(), self.prog())
        off = simulate(small_machine(use_ttt=False), self.prog())
        assert on.root_traffic < off.root_traffic

    def test_ttt_improves_time(self):
        on = simulate(small_machine(), self.prog())
        off = simulate(small_machine(use_ttt=False), self.prog())
        assert on.total_time <= off.total_time * 1.001

    def test_broadcast_helps_shared_operands(self):
        on = simulate(small_machine(), self.prog())
        off = simulate(small_machine(use_broadcast=False), self.prog())
        assert on.total_time <= off.total_time * 1.001

    def test_concatenation_helps(self):
        on = simulate(small_machine(), self.prog())
        off = simulate(small_machine(use_concatenation=False), self.prog())
        assert on.total_time <= off.total_time * 1.001

    def test_forwarding_stats_populated(self):
        rep = simulate(small_machine(), self.prog())
        assert rep.stats.forwarded_store_bytes > 0
        assert rep.stats.ttt_hits > 0


class TestCaching:
    def test_same_program_same_result(self):
        prog = [matmul_inst(256, 256, 256)]
        r1 = simulate(small_machine(), prog)
        r2 = simulate(small_machine(), prog)
        assert r1.total_time == pytest.approx(r2.total_time)
        assert r1.root_traffic == r2.root_traffic

    def test_simulator_reuse_across_programs(self):
        sim = FractalSimulator(small_machine(), collect_profiles=False)
        a = sim.simulate([matmul_inst(128, 128, 128)])
        b = sim.simulate([matmul_inst(128, 128, 128)])
        assert a.total_time == pytest.approx(b.total_time)


class TestReport:
    def test_per_level_busy_has_all_levels(self):
        m = small_machine()
        rep = simulate(m, [matmul_inst(256, 256, 256)])
        assert set(rep.per_level_busy) == {0, 1, 2}

    def test_root_dma_zero(self):
        """Root operands are resident in root memory -- no root-node DMA."""
        rep = simulate(small_machine(), [matmul_inst(256, 256, 256)])
        assert rep.root.load_bytes == 0
        assert rep.root.store_bytes == 0

    def test_operational_intensity_consistent(self):
        rep = simulate(small_machine(), [matmul_inst(256, 256, 256)])
        assert rep.operational_intensity == pytest.approx(
            rep.work / rep.root_traffic)

    def test_peak_fraction(self):
        m = small_machine()
        rep = simulate(m, [matmul_inst(512, 512, 512)])
        assert 0 < rep.peak_fraction(m.peak_ops) <= 1.0

    def test_profiles_collected_when_enabled(self):
        sim = FractalSimulator(small_machine(), collect_profiles=True)
        rep = sim.simulate([matmul_inst(128, 128, 128)])
        assert rep.root.own_segments
        assert rep.root.child_embeds

    def test_profiles_skipped_when_disabled(self):
        sim = FractalSimulator(small_machine(), collect_profiles=False)
        rep = sim.simulate([matmul_inst(128, 128, 128)])
        assert rep.root.own_segments == []


class TestCommissioning:
    """Reduction Controller behaviour inside the simulator."""

    def _sort_prog(self, n=1 << 16):
        x, o = Tensor("x", (n,)), Tensor("o", (n,))
        return [Instruction(Opcode.SORT1D, (x.region(),), (o.region(),))]

    def test_no_lfus_commissions_to_ffus(self):
        """A node without LFUs must delegate g(.) to its children (the
        commission register), including the final-cycle flush."""
        m = custom_machine("no-lfu", [4], [4 * MB, 256 * KB], [8e9] * 2,
                           core_peak_ops=0.466e12, n_lfus=[0, 0])
        rep = FractalSimulator(m, collect_profiles=False).simulate(
            self._sort_prog())
        assert rep.stats.commissioned > 0
        assert rep.total_time > 0

    def test_lfus_absorb_reductions(self):
        m = custom_machine("lfu", [4], [4 * MB, 256 * KB], [8e9] * 2,
                           core_peak_ops=0.466e12, n_lfus=[8, 0])
        rep = FractalSimulator(m, collect_profiles=False).simulate(
            self._sort_prog())
        assert rep.stats.commissioned == 0

    def test_commissioning_costs_time(self):
        prog = self._sort_prog()
        with_lfu = custom_machine("a", [4], [4 * MB, 256 * KB], [8e9] * 2,
                                  core_peak_ops=0.466e12, n_lfus=[8, 0])
        without = custom_machine("b", [4], [4 * MB, 256 * KB], [8e9] * 2,
                                 core_peak_ops=0.466e12, n_lfus=[0, 0])
        t_lfu = FractalSimulator(with_lfu,
                                 collect_profiles=False).simulate(prog)
        t_comm = FractalSimulator(without,
                                  collect_profiles=False).simulate(prog)
        assert t_comm.total_time >= t_lfu.total_time * 0.99


class TestSiblingLinks:
    """The future-work sibling interconnect (paper Section 8)."""

    def _sort_prog(self, n=1 << 20):
        x, o = Tensor("x", (n,)), Tensor("o", (n,))
        return [Instruction(Opcode.SORT1D, (x.region(),), (o.region(),))]

    def test_feature_flag_defaults_off(self):
        assert not small_machine().use_sibling_links

    def test_enabled_machine_simulates(self):
        m = small_machine().with_features(use_sibling_links=True)
        rep = simulate(m, self._sort_prog())
        assert rep.total_time > 0

    def test_effect_bounded(self):
        """Exploration finding: links move results by only a few percent."""
        prog = self._sort_prog()
        base = simulate(small_machine(), prog)
        linked = simulate(small_machine().with_features(
            use_sibling_links=True, sibling_link_bandwidth=512 * GB), prog)
        assert 0.8 < base.total_time / linked.total_time < 1.25

    def test_faster_links_never_slower(self):
        prog = self._sort_prog()
        slow = simulate(small_machine().with_features(
            use_sibling_links=True, sibling_link_bandwidth=16 * GB), prog)
        fast = simulate(small_machine().with_features(
            use_sibling_links=True, sibling_link_bandwidth=512 * GB), prog)
        assert fast.total_time <= slow.total_time * 1.001


class TestRealMachines:
    def test_f1_matmul_near_peak(self):
        """Headline behaviour: F1 runs a big MatMul near peak (paper: the
        MATMUL benchmark attains ~99% on Cambricon-F1)."""
        m = cambricon_f1()
        rep = simulate(m, [matmul_inst(4096, 4096, 4096)])
        assert rep.peak_fraction(m.peak_ops) > 0.85

    def test_f1_low_intensity_bandwidth_bound(self):
        m = cambricon_f1()
        a, b = Tensor("a", (1 << 22,)), Tensor("b", (1 << 22,))
        o = Tensor("o", (1 << 22,))
        add = Instruction(Opcode.ADD1D, (a.region(), b.region()), (o.region(),))
        rep = simulate(m, [add])
        assert rep.peak_fraction(m.peak_ops) < 0.05

    def test_leaf_streaming_oversized_instruction(self):
        """An unsplittable two-run merge larger than any memory must still
        complete (streamed), at roughly bandwidth-limited time."""
        a, b = Tensor("a", (1 << 20,)), Tensor("b", (1 << 20,))
        o = Tensor("o", (1 << 21,))
        merge = Instruction(Opcode.MERGE1D, (a.region(), b.region()), (o.region(),))
        rep = simulate(small_machine(), [merge])
        assert rep.total_time > 0
        assert rep.stats.steps >= 1
