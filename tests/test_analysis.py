"""FISA static analyzer: diagnostics framework, passes, and wiring.

Negative-path coverage lives here too: one seeded fixture per error code,
asserting the exact code fires (and nothing unexpected rides along).
"""

import pathlib

import pytest

from repro import (
    AnalysisError,
    FractalExecutor,
    Instruction,
    Opcode,
    SourceLoc,
    Tensor,
    analyze,
    analyze_workload,
    verify_program,
)
from repro.analysis import CODES, Severity
from repro.analysis.diagnostics import diag
from repro.core.tensor import FP16, FP32
from repro.frontend import AssemblyError, assemble

from conftest import tiny_machine

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


# -- helpers ----------------------------------------------------------------


def codes_of(program, **kw):
    return analyze(program, **kw).codes


def mk(opcode, inputs, outputs, attrs=None):
    return Instruction(opcode, tuple(inputs), tuple(outputs), dict(attrs or {}))


# -- diagnostics framework --------------------------------------------------


class TestDiagnostics:
    def test_registry_is_complete_and_stable(self):
        # every registered code has severity + title; F0xx are program
        # codes, P1xx are plan-analyzer codes (repro.plan.analysis)
        for code, (sev, title) in CODES.items():
            assert (code.startswith("F0") or code.startswith("P1")) \
                and len(code) == 4
            assert isinstance(sev, Severity) and title

    def test_unregistered_code_rejected(self):
        with pytest.raises(KeyError):
            diag("F999", "nope")

    def test_format_includes_loc_and_code(self):
        x, y = Tensor("x", (4,)), Tensor("y", (5,))
        inst = Instruction(Opcode.ACT1D, (x.region(),), (y.region(),),
                           loc=SourceLoc("prog.fisa", 12, 3))
        d = diag("F004", "mismatch", 0, inst)
        assert "prog.fisa:12:3" in d.format()
        assert "F004" in d.format()

    def test_result_ok_semantics(self):
        x, y = Tensor("x", (4,)), Tensor("y", (4,))
        r = analyze([mk(Opcode.ACT1D, [x.region()], [y.region()])])
        assert r.ok and not r.errors and r.instructions == 1
        r.raise_if_errors()  # must not raise


# -- type checker: one firing test per code ---------------------------------


class TestTypeChecker:
    def setup_method(self):
        self.A = Tensor("A", (4, 6))
        self.B = Tensor("B", (6, 5))
        self.C = Tensor("C", (4, 5))

    def test_F001_arity(self):
        assert codes_of([mk(Opcode.MATMUL, [self.A.region()],
                            [self.C.region()])]) == ["F001"]

    def test_F002_rank(self):
        v = Tensor("v", (6,))
        assert codes_of([mk(Opcode.MATMUL, [self.A.region(), v.region()],
                            [self.C.region()])]) == ["F002"]

    def test_F003_matmul_inner_dim(self):
        bad = Tensor("bad", (7, 5))
        assert codes_of([mk(Opcode.MATMUL, [self.A.region(), bad.region()],
                            [self.C.region()])]) == ["F003"]

    def test_F003_euclidian_feature_dim(self):
        x, y, o = Tensor("x", (4, 8)), Tensor("y", (3, 7)), Tensor("o", (4, 3))
        assert codes_of([mk(Opcode.EUCLIDIAN1D, [x.region(), y.region()],
                            [o.region()])]) == ["F003"]

    def test_F003_conv_channels(self):
        x = Tensor("x", (1, 8, 8, 3))
        w = Tensor("w", (3, 3, 4, 2))
        o = Tensor("o", (1, 6, 6, 2))
        assert codes_of([mk(Opcode.CV2D, [x.region(), w.region()],
                            [o.region()], {"stride": 1})]) == ["F003"]

    def test_F004_output_shape(self):
        bad = Tensor("bad", (4, 4))
        assert codes_of([mk(Opcode.MATMUL, [self.A.region(), self.B.region()],
                            [bad.region()])]) == ["F004"]

    def test_F004_sort_size(self):
        x, o = Tensor("x", (16,)), Tensor("o", (8,))
        assert codes_of([mk(Opcode.SORT1D, [x.region()],
                            [o.region()])]) == ["F004"]

    def test_F004_merge_total(self):
        a, b = Tensor("a", (4,)), Tensor("b", (4,))
        o = Tensor("o", (7,))
        assert codes_of([mk(Opcode.MERGE1D, [a.region(), b.region()],
                            [o.region()])]) == ["F004"]

    def test_F004_horizontal_scalar(self):
        x, o = Tensor("x", (16,)), Tensor("o", (2,))
        assert codes_of([mk(Opcode.HSUM1D, [x.region()],
                            [o.region()])]) == ["F004"]

    def test_F005_conv_window(self):
        x = Tensor("x", (1, 4, 4, 3))
        w = Tensor("w", (9, 9, 3, 2))
        o = Tensor("o", (1, 1, 1, 2))
        assert codes_of([mk(Opcode.CV2D, [x.region(), w.region()],
                            [o.region()])]) == ["F005"]

    def test_F005_pool_window(self):
        x = Tensor("x", (1, 3, 3, 2))
        o = Tensor("o", (1, 1, 1, 2))
        assert codes_of([mk(Opcode.MAX2D, [x.region()], [o.region()],
                            {"kh": 5, "kw": 5})]) == ["F005"]

    def test_F005_cv3d_window(self):
        x = Tensor("x", (1, 2, 4, 4, 3))
        w = Tensor("w", (3, 3, 3, 3, 2))
        o = Tensor("o", (1, 1, 2, 2, 2))
        assert codes_of([mk(Opcode.CV3D, [x.region(), w.region()],
                            [o.region()])]) == ["F005"]

    def test_F006_eltwise_shapes(self):
        a, b, o = Tensor("a", (4,)), Tensor("b", (5,)), Tensor("o", (4,))
        assert codes_of([mk(Opcode.ADD1D, [a.region(), b.region()],
                            [o.region()])]) == ["F006"]

    def test_F007_bad_activation(self):
        x, y = Tensor("x", (8,)), Tensor("y", (8,))
        assert codes_of([mk(Opcode.ACT1D, [x.region()], [y.region()],
                            {"func": "frobnicate"})]) == ["F007"]

    def test_F007_bad_stride(self):
        x = Tensor("x", (1, 8, 8, 3))
        w = Tensor("w", (3, 3, 3, 2))
        o = Tensor("o", (1, 6, 6, 2))
        assert codes_of([mk(Opcode.CV2D, [x.region(), w.region()],
                            [o.region()], {"stride": 0})]) == ["F007"]

    def test_F008_mixed_dtypes_warns(self):
        a32 = Tensor("a32", (4, 6), FP32)
        r = analyze([mk(Opcode.MATMUL, [a32.region(), self.B.region()],
                        [self.C.region()])])
        assert r.codes == ["F008"]
        assert r.ok  # warning only

    def test_F009_unknown_attr_warns(self):
        x = Tensor("x", (1, 8, 8, 3))
        w = Tensor("w", (3, 3, 3, 2))
        o = Tensor("o", (1, 6, 6, 2))
        r = analyze([mk(Opcode.CV2D, [x.region(), w.region()],
                        [o.region()], {"strid": 2})])
        assert r.codes == ["F009"] and r.ok

    def test_internal_attrs_always_allowed(self):
        a, b, o = (Tensor(s, (8,)) for s in "abo")
        r = analyze([mk(Opcode.ADD1D, [a.region(), b.region()], [o.region()],
                        {"accumulate": True, "acc_chain": 3})])
        assert "F009" not in r.codes

    def test_clean_instruction_is_clean(self):
        assert codes_of([mk(Opcode.MATMUL,
                            [self.A.region(), self.B.region()],
                            [self.C.region()])]) == []


# -- def-use ----------------------------------------------------------------


class TestDefUse:
    def setup_method(self):
        self.x = Tensor("x", (8,))
        self.y = Tensor("y", (8,))
        self.t = Tensor("t", (8,))

    def test_F020_use_before_write(self):
        p = [mk(Opcode.ACT1D, [self.t.region()], [self.y.region()])]
        r = analyze(p, inputs=[self.x], outputs=[self.y])
        assert "F020" in r.codes and not r.ok

    def test_F020_disjoint_partial_write(self):
        # writes rows 0:4 then reads rows 4:8 -- never written
        p = [mk(Opcode.ACT1D, [self.x.region()[0:4]], [self.t.region()[0:4]]),
             mk(Opcode.ACT1D, [self.t.region()[4:8]], [self.y.region()[4:8]])]
        r = analyze(p, inputs=[self.x], outputs=[self.y])
        assert "F020" in r.codes

    def test_padding_idiom_is_legal(self):
        # write the interior, read the whole box (zero border): no F020
        pad = Tensor("pad", (1, 6, 6, 1))
        img = Tensor("img", (1, 4, 4, 1))
        w = Tensor("w", (3, 3, 1, 1))
        o = Tensor("o", (1, 4, 4, 1))
        interior = pad.region()[:, 1:5, 1:5, :]
        p = [mk(Opcode.ACT1D, [img.region()], [interior], {"func": "identity"}),
             mk(Opcode.CV2D, [pad.region(), w.region()], [o.region()])]
        r = analyze(p, inputs=[img, w], outputs=[o])
        assert r.ok and "F020" not in r.codes

    def test_F021_dead_write(self):
        p = [mk(Opcode.ACT1D, [self.x.region()], [self.t.region()]),
             mk(Opcode.ACT1D, [self.x.region()], [self.y.region()])]
        r = analyze(p, inputs=[self.x], outputs=[self.y])
        assert "F021" in r.codes and r.ok  # warning

    def test_F022_unwritten_output(self):
        p = [mk(Opcode.ACT1D, [self.x.region()], [self.y.region()])]
        r = analyze(p, inputs=[self.x], outputs=[self.y, self.t])
        assert "F022" in r.codes and r.ok  # warning

    def test_bare_program_conventions(self):
        # without declarations, read-before-write tensors are sources
        p = [mk(Opcode.ACT1D, [self.t.region()], [self.y.region()])]
        assert analyze(p).ok


# -- hazards ----------------------------------------------------------------


class TestHazards:
    def setup_method(self):
        self.x = Tensor("x", (8,))
        self.y = Tensor("y", (8,))
        self.z = Tensor("z", (8,))

    def test_F030_in_place(self):
        p = [mk(Opcode.ADD1D, [self.x.region(), self.y.region()],
                [self.x.region()])]
        r = analyze(p)
        assert "F030" in r.codes and not r.ok

    def test_F031_clobbered_write(self):
        p = [mk(Opcode.ACT1D, [self.x.region()[0:6]], [self.z.region()[0:6]]),
             mk(Opcode.ACT1D, [self.x.region()[0:4]], [self.z.region()[2:6]])]
        r = analyze(p)
        assert "F031" in r.codes and not r.ok

    def test_F031_intra_instruction_output_overlap(self):
        inst = Instruction(
            Opcode.ACT1D, (self.x.region(),),
            (self.z.region()[0:6], self.z.region()[4:8]))
        r = analyze([inst])
        assert "F031" in r.codes

    def test_F032_waw_with_intervening_read(self):
        p = [mk(Opcode.ACT1D, [self.x.region()], [self.z.region()]),
             mk(Opcode.ACT1D, [self.z.region()], [self.y.region()]),
             mk(Opcode.ACT1D, [self.x.region()], [self.z.region()])]
        r = analyze(p)
        assert "F032" in r.codes
        assert "F031" not in r.codes  # consumed: serializes correctly
        assert r.ok  # warnings only

    def test_F033_war(self):
        p = [mk(Opcode.ACT1D, [self.x.region()], [self.y.region()]),
             mk(Opcode.ACT1D, [self.z.region()], [self.x.region()])]
        r = analyze(p, inputs=[self.x, self.z], outputs=[self.y, self.x])
        assert "F033" in r.codes and r.ok

    def test_disjoint_writes_are_clean(self):
        p = [mk(Opcode.ACT1D, [self.x.region()[0:4]], [self.z.region()[0:4]]),
             mk(Opcode.ACT1D, [self.x.region()[4:8]], [self.z.region()[4:8]])]
        assert analyze(p).codes == []

    def test_producer_consumer_not_reported(self):
        p = [mk(Opcode.ACT1D, [self.x.region()], [self.z.region()]),
             mk(Opcode.ACT1D, [self.z.region()], [self.y.region()])]
        assert analyze(p).codes == []


# -- wiring: assembler, lowering, executor, verify ---------------------------


class TestWiring:
    def test_assembler_stamps_source_locations(self):
        w = assemble("input x 4\ntensor y 4\nAct1D y, x\n", name="p.fisa")
        loc = w.program[0].loc
        assert loc is not None
        assert (loc.file, loc.line, loc.column) == ("p.fisa", 3, 1)

    def test_assembler_lints_by_default(self):
        bad = "input a 4 6\ninput b 7 5\ntensor c 4 5\nMatMul c, a, b\n"
        with pytest.raises(AssemblyError) as err:
            assemble(bad)
        assert "F003" in str(err.value)
        assert err.value.lineno == 4

    def test_assembler_lint_opt_out(self):
        bad = "input a 4 6\ninput b 7 5\ntensor c 4 5\nMatMul c, a, b\n"
        w = assemble(bad, lint=False)
        assert len(w.program) == 1

    def test_loc_survives_with_operands(self):
        w = assemble("input x 4\ntensor y 4\nAct1D y, x\n", name="p.fisa")
        inst = w.program[0]
        assert inst.with_operands().loc == inst.loc

    def test_loc_excluded_from_identity(self):
        w = assemble("input x 4\ntensor y 4\nAct1D y, x\n", name="p.fisa")
        inst = w.program[0]
        bare = Instruction(inst.opcode, inst.inputs, inst.outputs, inst.attrs)
        assert bare == inst
        assert hash(bare) == hash(inst)
        assert bare.signature() == inst.signature()

    def test_executor_preflight_rejects(self):
        x, y = Tensor("x", (8,)), Tensor("y", (8,))
        bad = mk(Opcode.ADD1D, [x.region(), y.region()], [x.region()])
        ex = FractalExecutor(tiny_machine(), preflight=True)
        with pytest.raises(AnalysisError) as err:
            ex.run_program([bad])
        assert "F030" in str(err.value)

    def test_executor_preflight_accepts_clean(self, rng):
        from repro import TensorStore
        x, y, o = (Tensor(s, (8,)) for s in "xyo")
        store = TensorStore()
        store.bind(x, rng.normal(size=(8,)))
        store.bind(y, rng.normal(size=(8,)))
        ex = FractalExecutor(tiny_machine(), store, preflight=True)
        ex.run_program([mk(Opcode.ADD1D, [x.region(), y.region()],
                           [o.region()])])

    def test_verify_preflight_rejects(self):
        A, C = Tensor("A", (4, 6)), Tensor("C", (4, 4))
        B = Tensor("B", (7, 4))
        bad = mk(Opcode.MATMUL, [A.region(), B.region()], [C.region()])
        with pytest.raises(AnalysisError):
            verify_program([bad], machine=tiny_machine(), preflight=True)

    def test_lowering_emits_clean_programs(self):
        from repro.compiler import Graph, lower
        g = Graph("net")
        x = g.input("img", (1, 8, 8, 3))
        h = g.conv2d(x, 4, 3, padding=1)
        g.output(g.dense(g.flatten(g.maxpool(h, 2)), 10))
        w = lower(g)
        assert analyze_workload(w).ok


# -- CLI --------------------------------------------------------------------


class TestLintCLI:
    def run(self, capsys, *argv):
        from repro.cli import main
        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_clean_program_exits_zero(self, capsys):
        code, out = self.run(capsys, "lint", "examples/programs/knn.fisa")
        assert code == 0
        assert "0 error(s)" in out

    def test_overlap_fixture_exits_nonzero_with_code_and_line(self, capsys):
        path = str(FIXTURES / "overlap_hazard.fisa")
        code, out = self.run(capsys, "lint", path)
        assert code == 1
        assert "F031" in out
        assert f"{path}:7" in out  # source line of the clobbering write

    def test_parse_failure_exits_two(self, capsys, tmp_path):
        src = tmp_path / "broken.fisa"
        src.write_text("Frobnicate y, x\n")
        code, out = self.run(capsys, "lint", str(src))
        assert code == 2
        assert "parse error" in out

    def test_multiple_files_worst_exit(self, capsys):
        code, out = self.run(
            capsys, "lint", "examples/programs/knn.fisa",
            str(FIXTURES / "bad_matmul.fisa"))
        assert code == 1
        assert "F003" in out

    def test_strict_gates_warnings(self, capsys):
        path = str(FIXTURES / "dtype_mismatch.fisa")
        code, out = self.run(capsys, "lint", path)
        assert code == 0 and "F008" in out
        code, _ = self.run(capsys, "lint", "--strict", path)
        assert code == 1

    def test_use_before_write_fixture(self, capsys):
        path = str(FIXTURES / "use_before_write.fisa")
        code, out = self.run(capsys, "lint", path)
        assert code == 1
        assert "F020" in out and "F030" in out


# -- dtype fixture sanity ----------------------------------------------------


def test_fixture_dtypes_parse():
    src = (FIXTURES / "dtype_mismatch.fisa").read_text()
    w = assemble(src, lint=False)
    dts = {t.dtype.name for t in w.inputs.values()}
    assert dts == {"fp16", "fp32"}
    assert FP16.name == "fp16"
