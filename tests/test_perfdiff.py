"""Differential RunReport profiling (repro.perf.diff + the repro diff CLI).

Gating contract under test: time-like metrics regress upward,
throughput-like metrics regress downward, spans are informational unless
explicitly gated, and the exit codes follow the 0/2/3 convention shared
with tools/perf_gate.py.
"""

import copy
import json

import pytest

from repro.cli import main
from repro.perf import DiffConfig, diff_documents
from repro.perf.diff import flatten_numeric

pytestmark = pytest.mark.perf


def base_doc():
    """A miniature but structurally complete RunReport v2."""
    return {
        "schema": "repro.telemetry.run_report",
        "schema_version": 2,
        "created": "2026-08-06T00:00:00",
        "benchmark": "mini",
        "machine": "Cambricon-F1",
        "counters": {
            "sim.busy_seconds{level=1,kind=dma}": 0.4,
            "sim.attributed_seconds{machine=Cambricon-F1,category=dma}": 0.5,
            "executor.instructions{level=0}": 12,
        },
        "spans": {
            "host.profile": {"count": 1, "total_s": 2.0, "max_s": 2.0},
        },
        "spans_dropped": 0,
        "simulator": {
            "total_time_s": 1.0,
            "attained_ops": 4.0e12,
            "per_level_busy_s": {"0": {"compute": 0.6, "dma": 0.3}},
        },
        "attribution": {
            "makespan_s": 1.0,
            "totals_s": {"control": 0.1, "dma": 0.5, "compute": 0.4,
                         "reduction": 0.0, "idle": 0.0},
            "per_level_s": {"0": {"control": 0.1, "dma": 0.5,
                                  "compute": 0.4, "reduction": 0.0,
                                  "idle": 0.0}},
        },
        "notes": {
            "benchmarks": {
                "MATMUL": {"total_time_s": 4.7, "attained_ops": 9.0e12,
                           "peak_fraction": 0.6},
            },
        },
    }


def slowed(doc, factor=1.10, path=("simulator", "total_time_s")):
    out = copy.deepcopy(doc)
    node = out
    for key in path[:-1]:
        node = node[key]
    node[path[-1]] *= factor
    return out


class TestFlatten:
    def test_nested_paths(self):
        flat = flatten_numeric({"a": {"b": 1, "c": {"d": 2.5}}, "e": 3})
        assert flat == {"a.b": 1.0, "a.c.d": 2.5, "e": 3.0}

    def test_bools_and_strings_excluded(self):
        flat = flatten_numeric({"ok": True, "name": "x", "n": 1})
        assert flat == {"n": 1.0}


class TestGating:
    def test_identical_passes(self):
        result = diff_documents(base_doc(), base_doc())
        assert result.passed and result.exit_code == 0
        assert not result.regressions

    def test_ten_percent_slowdown_regresses_and_names_path(self):
        result = diff_documents(base_doc(), slowed(base_doc()))
        assert result.exit_code == 3
        assert result.worst().path == "simulator.total_time_s"
        assert result.worst().rel == pytest.approx(0.10)

    def test_below_threshold_passes(self):
        result = diff_documents(base_doc(), slowed(base_doc(), 1.04))
        assert result.exit_code == 0

    def test_attribution_stage_regression_named(self):
        cand = slowed(base_doc(), 1.5,
                      ("attribution", "per_level_s", "0", "dma"))
        result = diff_documents(base_doc(), cand)
        assert result.exit_code == 3
        paths = {e.path for e in result.regressions}
        assert "attribution.per_level_s.0.dma" in paths

    def test_throughput_drop_regresses(self):
        cand = slowed(base_doc(), 0.8, ("simulator", "attained_ops"))
        result = diff_documents(base_doc(), cand)
        assert result.exit_code == 3
        assert result.worst().path == "simulator.attained_ops"

    def test_throughput_gain_improves(self):
        cand = slowed(base_doc(), 1.5, ("simulator", "attained_ops"))
        result = diff_documents(base_doc(), cand)
        assert result.exit_code == 0
        assert any(e.path == "simulator.attained_ops"
                   for e in result.improvements)

    def test_speedup_is_improvement_not_regression(self):
        result = diff_documents(base_doc(), slowed(base_doc(), 0.5))
        assert result.exit_code == 0
        assert any(e.path == "simulator.total_time_s"
                   for e in result.improvements)

    def test_bench_table_gated(self):
        cand = slowed(base_doc(), 1.2,
                      ("notes", "benchmarks", "MATMUL", "total_time_s"))
        result = diff_documents(base_doc(), cand)
        assert result.exit_code == 3

    def test_abs_floor_suppresses_noise(self):
        base = base_doc()
        base["simulator"]["total_time_s"] = 1e-14
        cand = slowed(base, 2.0)  # +100% but absolutely tiny
        result = diff_documents(base, cand)
        assert result.exit_code == 0

    def test_schema_version_never_compared(self):
        cand = base_doc()
        cand["schema_version"] = 3
        result = diff_documents(base_doc(), cand)
        assert all(e.path != "schema_version" for e in result.entries)

    def test_added_and_removed_are_informational(self):
        cand = base_doc()
        cand["simulator"]["new_metric"] = 42.0
        del cand["counters"]["executor.instructions{level=0}"]
        result = diff_documents(base_doc(), cand)
        assert result.exit_code == 0
        statuses = {e.path: e.status for e in result.entries}
        assert statuses["simulator.new_metric"] == "added"
        assert statuses["counters.executor.instructions{level=0}"] == "removed"


class TestSpanGating:
    def test_spans_informational_by_default(self):
        cand = slowed(base_doc(), 3.0, ("spans", "host.profile", "total_s"))
        result = diff_documents(base_doc(), cand)
        assert result.exit_code == 0
        assert any(e.path == "spans.host.profile.total_s" and
                   e.status == "changed" for e in result.entries)

    def test_gate_spans_opt_in(self):
        cand = slowed(base_doc(), 3.0, ("spans", "host.profile", "total_s"))
        config = DiffConfig(gate_spans=True)
        result = diff_documents(base_doc(), cand, config=config)
        assert result.exit_code == 3


class TestRendering:
    def test_table_mentions_verdict_and_worst(self):
        result = diff_documents(base_doc(), slowed(base_doc()))
        table = result.format_table()
        assert "REGRESSED (exit 3)" in table
        assert "simulator.total_time_s" in table
        assert "worst regression" in table

    def test_json_obj_round_trips(self):
        result = diff_documents(base_doc(), slowed(base_doc()))
        obj = json.loads(json.dumps(result.to_json_obj()))
        assert obj["passed"] is False and obj["exit_code"] == 3
        assert obj["worst_regression"] == "simulator.total_time_s"


class TestDiffCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_identical_exits_zero(self, tmp_path, capsys):
        p = self._write(tmp_path, "base.json", base_doc())
        assert main(["diff", p, p]) == 0
        assert "verdict: PASS" in capsys.readouterr().out

    def test_slowed_exits_three_and_names_stage(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", base_doc())
        cand = self._write(tmp_path, "cand.json", slowed(base_doc()))
        assert main(["diff", base, cand]) == 3
        out = capsys.readouterr().out
        assert "simulator.total_time_s" in out and "REGRESSED" in out

    def test_threshold_flag(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", base_doc())
        cand = self._write(tmp_path, "cand.json", slowed(base_doc()))
        assert main(["diff", base, cand, "--threshold", "0.2"]) == 0

    def test_json_output_parses(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", base_doc())
        cand = self._write(tmp_path, "cand.json", slowed(base_doc()))
        assert main(["diff", base, cand, "--json"]) == 3
        obj = json.loads(capsys.readouterr().out)
        assert obj["schema"] == "repro.perf.diff"
        assert obj["worst_regression"] == "simulator.total_time_s"

    def test_invalid_document_exits_two(self, tmp_path, capsys):
        good = self._write(tmp_path, "base.json", base_doc())
        bad = self._write(tmp_path, "bad.json", {"hello": 1})
        assert main(["diff", good, bad]) == 2

    def test_missing_file_exits_two(self, tmp_path, capsys):
        good = self._write(tmp_path, "base.json", base_doc())
        assert main(["diff", good, str(tmp_path / "nope.json")]) == 2

    def test_v1_documents_still_diffable(self, tmp_path, capsys):
        v1 = base_doc()
        v1["schema_version"] = 1
        del v1["attribution"]
        del v1["spans_dropped"]
        base = self._write(tmp_path, "v1.json", v1)
        cand = self._write(tmp_path, "cand.json",
                           slowed(dict(v1), 1.10))
        assert main(["diff", base, cand]) == 3
