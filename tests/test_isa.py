"""FISA instruction tests: work models, signatures, classification."""

import math

import pytest

from repro.core.isa import (
    Instruction,
    Opcode,
    POOL_OPCODES,
    REDUCTION_OPCODES,
    program_work,
)
from repro.core.tensor import Tensor


def matmul(m, k, n):
    a, b, c = Tensor("a", (m, k)), Tensor("b", (k, n)), Tensor("c", (m, n))
    return Instruction(Opcode.MATMUL, (a.region(), b.region()), (c.region(),))


def conv(n, h, w, cin, kh, kw, cout, stride=1):
    x = Tensor("x", (n, h, w, cin))
    wt = Tensor("w", (kh, kw, cin, cout))
    ho, wo = (h - kh) // stride + 1, (w - kw) // stride + 1
    out = Tensor("o", (n, ho, wo, cout))
    return Instruction(Opcode.CV2D, (x.region(), wt.region()), (out.region(),),
                       {"stride": stride})


class TestWorkModels:
    def test_matmul_flops(self):
        assert matmul(4, 5, 6).work() == 2 * 4 * 5 * 6

    def test_matmul_shape_mismatch(self):
        a, b = Tensor("a", (4, 5)), Tensor("b", (6, 7))
        c = Tensor("c", (4, 7))
        bad = Instruction(Opcode.MATMUL, (a.region(), b.region()), (c.region(),))
        with pytest.raises(ValueError):
            bad.work()

    def test_conv_flops(self):
        inst = conv(2, 8, 8, 3, 3, 3, 16)
        assert inst.work() == 2 * 2 * 6 * 6 * 16 * 3 * 3 * 3

    def test_pool_work_scales_with_window(self):
        x = Tensor("x", (1, 8, 8, 4))
        out = Tensor("o", (1, 4, 4, 4))
        small = Instruction(Opcode.MAX2D, (x.region(),), (out.region(),),
                            {"kh": 2, "kw": 2})
        big = Instruction(Opcode.MAX2D, (x.region(),), (out.region(),),
                          {"kh": 3, "kw": 3})
        assert big.work() > small.work()

    def test_sort_is_nlogn(self):
        x, o = Tensor("x", (1024,)), Tensor("o", (1024,))
        inst = Instruction(Opcode.SORT1D, (x.region(),), (o.region(),))
        assert inst.work() == 1024 * int(math.log2(1024)) * 1  # n log n

    def test_euclidian_flops(self):
        x, y = Tensor("x", (10, 8)), Tensor("y", (6, 8))
        o = Tensor("o", (10, 6))
        inst = Instruction(Opcode.EUCLIDIAN1D, (x.region(), y.region()), (o.region(),))
        assert inst.work() == 3 * 10 * 6 * 8

    def test_eltwise_work_is_output_size(self):
        a, b, o = (Tensor(s, (37,)) for s in "abo")
        inst = Instruction(Opcode.ADD1D, (a.region(), b.region()), (o.region(),))
        assert inst.work() == 37

    def test_merge_work_sums_inputs(self):
        a, b = Tensor("a", (10,)), Tensor("b", (22,))
        o = Tensor("o", (32,))
        inst = Instruction(Opcode.MERGE1D, (a.region(), b.region()), (o.region(),))
        assert inst.work() == 32

    def test_program_work_sums(self):
        insts = [matmul(2, 2, 2), matmul(3, 3, 3)]
        assert program_work(insts) == insts[0].work() + insts[1].work()


class TestClassification:
    def test_reduction_group_matches_table3(self):
        names = {op.value for op in REDUCTION_OPCODES}
        assert names == {"Add1D", "Sub1D", "Mul1D", "Act1D",
                         "HSum1D", "HProd1D", "Merge1D"}

    def test_pool_group(self):
        assert {op.value for op in POOL_OPCODES} == {"Max2D", "Min2D", "Avg2D"}

    def test_is_reduction_style(self):
        a, b, o = (Tensor(s, (4,)) for s in "abo")
        add = Instruction(Opcode.ADD1D, (a.region(), b.region()), (o.region(),))
        assert add.is_reduction_style
        assert not matmul(2, 2, 2).is_reduction_style


class TestIdentity:
    def test_signature_equal_for_same_shapes(self):
        assert matmul(4, 5, 6).signature() == matmul(4, 5, 6).signature()

    def test_signature_differs_on_shape(self):
        assert matmul(4, 5, 6).signature() != matmul(4, 5, 7).signature()

    def test_signature_differs_on_attrs(self):
        assert (conv(1, 6, 6, 2, 3, 3, 4, stride=1).signature()
                != conv(1, 9, 9, 2, 3, 3, 4, stride=2).signature())

    def test_signature_ignores_acc_chain(self):
        i1 = matmul(4, 4, 4)
        j1 = Instruction(i1.opcode, i1.inputs, i1.outputs, {"acc_chain": 1})
        j2 = Instruction(i1.opcode, i1.inputs, i1.outputs, {"acc_chain": 2})
        assert j1.signature() == j2.signature()

    def test_signature_memoized(self):
        inst = matmul(4, 4, 4)
        assert inst.signature() is inst.signature()

    def test_granularity_is_output_elems(self):
        assert matmul(4, 5, 6).granularity == 24

    def test_io_bytes_dedup(self):
        a = Tensor("a", (8,))
        o = Tensor("o", (8,))
        inst = Instruction(Opcode.ADD1D, (a.region(), a.region()), (o.region(),))
        assert inst.io_bytes() == a.nbytes + o.nbytes

    def test_operational_intensity_positive(self):
        assert matmul(64, 64, 64).operational_intensity() > 1.0

    def test_with_operands_replaces(self):
        inst = matmul(4, 4, 4)
        smaller = inst.inputs[0][0:2, :]
        new = inst.with_operands(inputs=(smaller, inst.inputs[1]))
        assert new.inputs[0].shape == (2, 4)
        assert new.outputs == inst.outputs
        assert new.attrs == inst.attrs

    def test_repr_contains_opcode(self):
        assert "MatMul" in repr(matmul(2, 2, 2))
