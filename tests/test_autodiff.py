"""Autodiff tests: gradients checked against finite differences, and an
actual training loop whose loss must decrease -- all through FISA."""

import numpy as np
import pytest

from repro import custom_machine
from repro.compiler import SGD, Tape, Var
from repro.runtime import HostRuntime


@pytest.fixture
def tape():
    runtime = HostRuntime(custom_machine("ad", [2, 2],
                                         [1 << 18, 1 << 15, 1 << 12],
                                         [1e9] * 3))
    return Tape(runtime)


def numeric_grad(f, x, eps=1e-5):
    """Central finite differences of a scalar function of an array."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = f()
        x[idx] = orig - eps
        lo = f()
        x[idx] = orig
        g[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return g


class TestGradients:
    def test_matmul_grads(self, tape, rng):
        a = tape.var(rng.normal(size=(3, 4)))
        b = tape.var(rng.normal(size=(4, 2)))
        target = rng.normal(size=(3, 2))
        loss = tape.mse_loss(tape.matmul(a, b), target)
        tape.backward(loss)

        def f():
            return float((((a.value @ b.value) - target) ** 2).mean())

        np.testing.assert_allclose(a.grad, numeric_grad(f, a.value),
                                   atol=1e-4)
        np.testing.assert_allclose(b.grad, numeric_grad(f, b.value),
                                   atol=1e-4)

    def test_relu_grads(self, tape, rng):
        x = tape.var(rng.normal(size=(5, 3)))
        target = rng.normal(size=(5, 3))
        loss = tape.mse_loss(tape.relu(x), target)
        tape.backward(loss)

        def f():
            return float(((np.maximum(x.value, 0) - target) ** 2).mean())

        np.testing.assert_allclose(x.grad, numeric_grad(f, x.value),
                                   atol=1e-4)

    def test_add_grads_accumulate(self, tape, rng):
        x = tape.var(rng.normal(size=(4,)))
        target = rng.normal(size=(4,))
        loss = tape.mse_loss(tape.add(x, x), target)  # y = 2x
        tape.backward(loss)

        def f():
            return float(((2 * x.value - target) ** 2).mean())

        np.testing.assert_allclose(x.grad, numeric_grad(f, x.value),
                                   atol=1e-4)

    def test_conv2d_grads(self, tape, rng):
        x = tape.var(0.5 * rng.normal(size=(1, 5, 5, 2)))
        w = tape.var(0.5 * rng.normal(size=(3, 3, 2, 2)))
        target = rng.normal(size=(1, 3, 3, 2))
        loss = tape.mse_loss(tape.conv2d(x, w), target)
        tape.backward(loss)

        from repro.ops.conv import conv2d

        def f():
            return float(((conv2d(x.value, w.value) - target) ** 2).mean())

        np.testing.assert_allclose(w.grad, numeric_grad(f, w.value),
                                   atol=1e-3)
        np.testing.assert_allclose(x.grad, numeric_grad(f, x.value),
                                   atol=1e-3)

    def test_conv_stride_unsupported(self, tape, rng):
        x = tape.var(rng.normal(size=(1, 5, 5, 1)))
        w = tape.var(rng.normal(size=(3, 3, 1, 1)))
        with pytest.raises(NotImplementedError):
            tape.conv2d(x, w, stride=2)

    def test_chained_network_grads(self, tape, rng):
        """Two-layer MLP: gradients through matmul -> relu -> matmul."""
        x = rng.normal(size=(6, 4))
        w1 = tape.var(0.3 * rng.normal(size=(4, 5)))
        w2 = tape.var(0.3 * rng.normal(size=(5, 2)))
        target = rng.normal(size=(6, 2))
        xv = tape.var(x, trainable=False)
        h = tape.relu(tape.matmul(xv, w1))
        loss = tape.mse_loss(tape.matmul(h, w2), target)
        tape.backward(loss)

        def f():
            hidden = np.maximum(x @ w1.value, 0)
            return float(((hidden @ w2.value - target) ** 2).mean())

        np.testing.assert_allclose(w1.grad, numeric_grad(f, w1.value),
                                   atol=1e-4)
        np.testing.assert_allclose(w2.grad, numeric_grad(f, w2.value),
                                   atol=1e-4)


class TestTraining:
    def test_linear_regression_converges(self, rng):
        """Train y = Xw on FISA; the loss must fall by orders of magnitude."""
        runtime = HostRuntime(custom_machine("tr", [2],
                                             [1 << 16, 1 << 13], [1e9] * 2))
        x = rng.normal(size=(32, 6))
        true_w = rng.normal(size=(6, 1))
        y = x @ true_w
        w_init = 0.1 * rng.normal(size=(6, 1))
        losses = []
        w_value = w_init
        opt = SGD(lr=0.15)
        for _step in range(60):
            tape = Tape(runtime)
            w = tape.var(w_value)
            pred = tape.matmul(tape.var(x, trainable=False), w)
            loss = tape.mse_loss(pred, y)
            tape.backward(loss)
            losses.append(float(loss.value[0]))
            opt.step([w])
            w_value = w.value
        assert losses[-1] < losses[0] * 1e-2
        np.testing.assert_allclose(w_value, true_w, atol=0.2)

    def test_mlp_learns_xor(self, rng):
        runtime = HostRuntime(custom_machine("xor", [2],
                                             [1 << 16, 1 << 13], [1e9] * 2))
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], float)
        y = np.array([[0.0], [1.0], [1.0], [0.0]])
        w1v = rng.normal(size=(2, 8))
        b1v = np.zeros((4, 8))
        w2v = rng.normal(size=(8, 1)) * 0.5
        opt = SGD(lr=0.3)
        first = last = None
        for _step in range(300):
            tape = Tape(runtime)
            w1, b1, w2 = tape.var(w1v), tape.var(b1v), tape.var(w2v)
            h = tape.relu(tape.add(tape.matmul(
                tape.var(x, trainable=False), w1), b1))
            loss = tape.mse_loss(tape.matmul(h, w2), y)
            tape.backward(loss)
            if first is None:
                first = float(loss.value[0])
            last = float(loss.value[0])
            opt.step([w1, b1, w2])
            w1v, b1v, w2v = w1.value, b1.value, w2.value
        assert last < first * 0.2

    def test_sgd_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=0)

    def test_sgd_skips_frozen(self, tape, rng):
        frozen = tape.var(rng.normal(size=(3,)), trainable=False)
        before = frozen.value.copy()
        loss = tape.mse_loss(frozen, np.zeros(3))
        tape.backward(loss)
        SGD(lr=0.5).step([frozen])
        np.testing.assert_array_equal(frozen.value, before)
