"""FISA assembler tests: grammar, regions, attrs, errors, execution."""

import numpy as np
import pytest

from repro import FractalExecutor, Opcode, TensorStore
from repro.core.executor import run_reference
from repro.frontend import AssemblyError, assemble

from conftest import tiny_machine


GOOD = """
; declarations
input  a 4 6
input  b 6 5
tensor c 4 5 fp32
MatMul c, a, b
output c
"""


class TestGrammar:
    def test_basic_program(self):
        w = assemble(GOOD)
        assert len(w.program) == 1
        inst = w.program[0]
        assert inst.opcode is Opcode.MATMUL
        assert inst.outputs[0].shape == (4, 5)
        assert inst.outputs[0].dtype.name == "fp32"
        assert len(w.inputs) == 2 and len(w.outputs) == 1

    def test_comments_and_blank_lines(self):
        w = assemble("# nothing\n\n; also nothing\ninput x 4\ntensor y 4\n"
                     "Act1D y, x func=relu\n")
        assert len(w.program) == 1
        assert w.program[0].attrs == {"func": "relu"}

    def test_region_slices(self):
        w = assemble("input x 8 8\ntensor y 4 8\nAct1D y, x[0:4, :]\n")
        assert w.program[0].inputs[0].shape == (4, 8)

    def test_integer_index(self):
        w = assemble("input x 8 8\ntensor y 1 8\nAct1D y, x[3, :]\n")
        assert w.program[0].inputs[0].bounds[0] == (3, 4)

    def test_numeric_attrs(self):
        w = assemble("input x 4 4 4 4\ntensor w 2 2 4 8\ninput w2 2 2 4 8\n"
                     "tensor o 4 2 2 8\nCv2D o, x, w2 stride=2\n")
        assert w.program[0].attrs["stride"] == 2

    def test_merge_multiple_inputs(self):
        src = "input a 4\ninput b 4\ninput c 4\ntensor o 12\nMerge1D o, a, b, c\n"
        w = assemble(src)
        assert len(w.program[0].inputs) == 3

    def test_opcode_case_insensitive(self):
        w = assemble("input x 4\ntensor y 4\nact1d y, x\n")
        assert w.program[0].opcode is Opcode.ACT1D


class TestErrors:
    @pytest.mark.parametrize("src,fragment", [
        ("tensor x\n", "dimensions"),
        ("tensor x four\n", "bad dimension"),
        ("input x 4\ninput x 4\n", "duplicate"),
        ("Act1D y, x\n", "unknown opcode" if False else "undeclared"),
        ("Frobnicate y, x\n", "unknown opcode"),
        ("input x 4\nAct1D x\n", "needs an output"),
        ("output y\n", "undeclared"),
    ])
    def test_error_messages(self, src, fragment):
        with pytest.raises(AssemblyError) as err:
            assemble(src)
        assert fragment in str(err.value)

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as err:
            assemble("input x 4\n\nNopeOp y, x\n")
        assert err.value.lineno == 3

    def test_bad_region(self):
        with pytest.raises(AssemblyError):
            assemble("input x 4\ntensor y 4\nAct1D y, x[9:12]\n")


class TestExecution:
    def test_assembled_program_runs_fractally(self, rng):
        src = """
        input  refs 4 8
        input  batch 16 8
        tensor dist 16 4
        tensor flat 64
        tensor cnt 1
        Euclidian1D dist, batch, refs
        Sort1D flat, dist
        Count1D cnt, dist value=0
        output flat
        output cnt
        """
        w = assemble(src, "knn")
        frac, ref = TensorStore(), TensorStore()
        for t in w.inputs.values():
            arr = rng.normal(size=t.shape)
            frac.bind(t, arr)
            ref.bind(t, arr)
        for inst in w.program:
            run_reference(inst, ref)
        FractalExecutor(tiny_machine(), frac).run_program(w.program)
        for t in w.outputs.values():
            np.testing.assert_allclose(frac.read(t.region()),
                                       ref.read(t.region()), atol=1e-9)

    def test_workload_metadata(self):
        w = assemble(GOOD, name="demo")
        assert w.name == "demo"
        assert w.meta["source"] == "assembly"
        assert w.work == 2 * 4 * 6 * 5
