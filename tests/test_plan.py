"""Fractal plan compiler tests: compile/replay identity, caching, disk
round-trips, corruption tolerance, and the zero-copy store fast path."""

from __future__ import annotations

import json

import numpy as np
import pytest

from conftest import tiny_machine
from repro import (
    FractalExecutor,
    Instruction,
    Opcode,
    Tensor,
    TensorStore,
    cambricon_f1,
    custom_machine,
)
from repro import telemetry
from repro.analysis import program_digest, program_signature
from repro.ops import dispatch
from repro.plan import (
    DiskPlanCache,
    PlanCache,
    PlanFormatError,
    compile_cached,
    compile_program,
    machine_fingerprint,
    plan_from_doc,
    plan_key,
    reset_plan_cache,
)
from repro.workloads import profile_benchmark

KB = 1 << 10

pytestmark = pytest.mark.plan


# -- program factories --------------------------------------------------------

def _matmul_program(n=96):
    a, b, c = Tensor("a", (n, n)), Tensor("b", (n, n)), Tensor("c", (n, n))
    return [Instruction(Opcode.MATMUL, (a.region(), b.region()),
                        (c.region(),))]


def _hsum_program(n=4096):
    x, y = Tensor("x", (n,)), Tensor("y", (1,))
    return [Instruction(Opcode.HSUM1D, (x.region(),), (y.region(),))]


def _sort_program(n=4096):
    x, y = Tensor("x", (n,)), Tensor("y", (n,))
    return [Instruction(Opcode.SORT1D, (x.region(),), (y.region(),))]


def _bind_inputs(program, store, rng):
    """Bind every tensor that is read before it is written."""
    written = set()
    for inst in program:
        for r in inst.inputs:
            if r.tensor.uid not in written and not store.has(r.tensor):
                store.bind(r.tensor, rng.normal(size=r.tensor.shape))
        for r in inst.outputs:
            written.add(r.tensor.uid)


def _run(machine, program, rng_seed=7, plan=None):
    """Execute ``program`` (optionally replaying ``plan``); returns outputs."""
    rng = np.random.default_rng(rng_seed)
    store = TensorStore()
    _bind_inputs(program, store, rng)
    FractalExecutor(machine, store).run_program(program, plan=plan)
    return [store.read(r) for inst in program for r in inst.outputs]


# -- compile / replay identity ------------------------------------------------

class TestReplayIdentity:
    @pytest.mark.parametrize("factory", [
        _matmul_program, _hsum_program, _sort_program,
    ])
    @pytest.mark.parametrize("fanouts", [(2,), (3, 2), (2, 2, 2)])
    def test_bit_identical(self, factory, fanouts):
        machine = tiny_machine(fanouts=fanouts,
                               mems=[64 * KB] + [8 * KB] * len(fanouts))
        program = factory()
        plan = compile_program(machine, program)
        recursive = _run(machine, program)
        replayed = _run(machine, program, plan=plan)
        for got, want in zip(replayed, recursive):
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("name", ["mm_fc", "matmul"])
    def test_profile_benchmarks_on_f1(self, name):
        machine = cambricon_f1()
        w = profile_benchmark(name)
        rng = np.random.default_rng(0)
        bound = list(w.inputs.values()) + list(w.params.values())
        arrays = {t.uid: rng.normal(size=t.shape) for t in bound}
        plan = compile_program(machine, w.program)
        results = []
        for use_plan in (None, plan):
            store = TensorStore()
            for t in bound:
                store.bind(t, arrays[t.uid])
            FractalExecutor(machine, store).run_program(w.program,
                                                        plan=use_plan)
            results.append({n: store.read(t.region())
                            for n, t in w.outputs.items()})
        for out_name in results[0]:
            np.testing.assert_array_equal(results[0][out_name],
                                          results[1][out_name])

    def test_plan_contains_lfu_steps(self):
        plan = compile_program(tiny_machine(), _hsum_program())
        kinds = {s.kind for s in plan.steps}
        assert kinds == {"kernel", "lfu"}
        assert plan.stats.lfu_calls > 0

    def test_replay_stats_match_recursion(self):
        machine = tiny_machine()
        program = _hsum_program()
        plan = compile_program(machine, program)

        rec, rep = FractalExecutor(machine), FractalExecutor(machine)
        rng = np.random.default_rng(1)
        _bind_inputs(program, rec.store, rng)
        _bind_inputs(program, rep.store, np.random.default_rng(1))
        rec.run_program(program)
        rep.run_program(program, plan=plan)
        assert rep.stats.kernel_calls == rec.stats.kernel_calls
        assert rep.stats.lfu_calls == rec.stats.lfu_calls
        assert rep.stats.leaf_ops == rec.stats.leaf_ops
        assert rep.stats.bytes_read == rec.stats.bytes_read
        assert rep.stats.bytes_written == rec.stats.bytes_written
        assert (rep.stats.instructions_per_level
                == rec.stats.instructions_per_level)

    def test_executor_compile_entry_point(self):
        machine = tiny_machine()
        program = _matmul_program()
        executor = FractalExecutor(machine)
        plan = executor.compile(program, use_cache=False)
        assert plan.n_steps == plan.stats.kernel_calls + plan.stats.lfu_calls


# -- structural signatures ----------------------------------------------------

class TestProgramSignature:
    def test_same_structure_same_signature(self):
        assert program_signature(_matmul_program()) \
            == program_signature(_matmul_program())
        assert program_digest(_matmul_program()) \
            == program_digest(_matmul_program())

    def test_shape_change_changes_signature(self):
        assert program_digest(_matmul_program(96)) \
            != program_digest(_matmul_program(64))

    def test_sharing_pattern_is_part_of_signature(self):
        # a@a (shared operand) vs a@b (distinct operands of equal shape)
        a, b, c = Tensor("a", (8, 8)), Tensor("b", (8, 8)), Tensor("c", (8, 8))
        shared = [Instruction(Opcode.MATMUL, (a.region(), a.region()),
                              (c.region(),))]
        distinct = [Instruction(Opcode.MATMUL, (a.region(), b.region()),
                                (c.region(),))]
        assert program_digest(shared) != program_digest(distinct)


# -- in-memory cache ----------------------------------------------------------

class TestMemoryCache:
    def test_hit_returns_same_plan(self):
        cache = PlanCache()
        machine = tiny_machine()
        program = _matmul_program()
        first = compile_cached(machine, program, memory_cache=cache)
        second = compile_cached(machine, program, memory_cache=cache)
        assert second is first

    def test_rebind_on_structurally_identical_program(self):
        cache = PlanCache()
        machine = tiny_machine()
        first = compile_cached(machine, _matmul_program(), memory_cache=cache)
        fresh = _matmul_program()  # same structure, new tensor uids
        rebound = compile_cached(machine, fresh, memory_cache=cache)
        assert rebound is not first
        assert rebound.signature_digest == first.signature_digest
        # ... and the rebound plan replays correctly over the new tensors.
        recursive = _run(machine, fresh)
        replayed = _run(machine, fresh, plan=rebound)
        for got, want in zip(replayed, recursive):
            np.testing.assert_array_equal(got, want)

    def test_machine_fingerprint_invalidates(self):
        program = _matmul_program()
        narrow = tiny_machine(fanouts=(2,), mems=(64 * KB, 8 * KB))
        wide = tiny_machine(fanouts=(4,), mems=(64 * KB, 8 * KB))
        assert plan_key(narrow, program) != plan_key(wide, program)
        cache = PlanCache()
        p1 = compile_cached(narrow, program, memory_cache=cache)
        p2 = compile_cached(wide, program, memory_cache=cache)
        assert p1 is not p2
        assert len(cache) == 2

    def test_program_change_invalidates(self):
        cache = PlanCache()
        machine = tiny_machine()
        compile_cached(machine, _matmul_program(96), memory_cache=cache)
        compile_cached(machine, _matmul_program(64), memory_cache=cache)
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        machine = tiny_machine()
        for n in (32, 48, 64):
            compile_cached(machine, _matmul_program(n), memory_cache=cache)
        assert len(cache) == 2

    def test_counters_published(self):
        reset_plan_cache()
        machine = tiny_machine()
        program = _matmul_program()
        with telemetry.enabled_scope() as (registry, _tracer):
            telemetry.reset()
            compile_cached(machine, program)
            compile_cached(machine, program)
            misses = registry.value("plan.compile_misses")
            hits = registry.value("plan.compile_hits", {"tier": "memory"})
        reset_plan_cache()
        assert misses == 1
        assert hits == 1


# -- disk cache ---------------------------------------------------------------

class TestDiskCache:
    def test_round_trip(self, tmp_path):
        machine = tiny_machine()
        program = _hsum_program()
        cold = compile_cached(machine, program, disk_dir=tmp_path,
                              memory_cache=PlanCache())
        assert list(tmp_path.glob("plan-v*.json"))
        # A fresh memory cache forces the disk tier.
        warm = compile_cached(machine, program, disk_dir=tmp_path,
                              memory_cache=PlanCache())
        assert warm.n_steps == cold.n_steps
        assert warm.signature_digest == cold.signature_digest
        recursive = _run(machine, program)
        replayed = _run(machine, program, plan=warm)
        for got, want in zip(replayed, recursive):
            np.testing.assert_array_equal(got, want)

    def test_doc_round_trip_preserves_steps(self):
        machine = tiny_machine()
        program = _sort_program()
        plan = compile_program(machine, program)
        doc = json.loads(json.dumps(plan.to_doc()))
        back = plan_from_doc(doc, plan.externals,
                             machine_fingerprint=plan.machine_fingerprint)
        assert back.n_steps == plan.n_steps
        assert [s.kind for s in back.steps] == [s.kind for s in plan.steps]
        assert back.stats.to_doc() == plan.stats.to_doc()

    @pytest.mark.parametrize("payload", [
        "{ truncated",                     # invalid JSON
        "[]",                              # wrong top-level type
        json.dumps({"schema": "other", "version": 1}),
        json.dumps({"schema": "repro.plan", "version": 999}),
    ])
    def test_corrupt_entries_warn_and_recompile(self, tmp_path, payload):
        machine = tiny_machine()
        program = _matmul_program()
        disk = DiskPlanCache(tmp_path)
        fp = machine_fingerprint(machine)
        digest = program_digest(program)
        # Poison the exact cache slot, then compile through it.
        tmp_path.mkdir(exist_ok=True)
        disk._path(fp, digest).parent.mkdir(parents=True, exist_ok=True)
        disk._path(fp, digest).write_text(payload, encoding="utf-8")
        with pytest.warns(RuntimeWarning):
            plan = compile_cached(machine, program, disk_dir=tmp_path,
                                  memory_cache=PlanCache())
        assert plan.n_steps > 0  # recompiled, not crashed
        recursive = _run(machine, program)
        replayed = _run(machine, program, plan=plan)
        for got, want in zip(replayed, recursive):
            np.testing.assert_array_equal(got, want)

    def test_truncated_valid_prefix_is_rejected(self, tmp_path):
        machine = tiny_machine()
        program = _hsum_program()
        plan = compile_program(machine, program)
        disk = DiskPlanCache(tmp_path)
        fp = machine_fingerprint(machine)
        digest = program_digest(program)
        disk.store(fp, digest, plan)
        path = disk._path(fp, digest)
        path.write_text(path.read_text(encoding="utf-8")[:64],
                        encoding="utf-8")
        with pytest.warns(RuntimeWarning):
            assert disk.load(fp, digest, plan.externals) is None

    def test_plan_from_doc_rejects_external_mismatch(self):
        machine = tiny_machine()
        program = _matmul_program()
        plan = compile_program(machine, program)
        doc = plan.to_doc()
        with pytest.raises(PlanFormatError):
            plan_from_doc(doc, plan.externals[:-1])  # wrong arity
        wrong = [Tensor(t.name, (t.shape[0] + 1,) + t.shape[1:], t.dtype)
                 for t in plan.externals]
        with pytest.raises(PlanFormatError):
            plan_from_doc(doc, wrong)  # wrong shapes

    def test_unwritable_directory_is_soft(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("file in the way", encoding="utf-8")
        machine = tiny_machine()
        program = _matmul_program()
        with pytest.warns(RuntimeWarning):
            plan = compile_cached(machine, program, disk_dir=target,
                                  memory_cache=PlanCache())
        assert plan.n_steps > 0


# -- zero-copy store reads ----------------------------------------------------

class TestZeroCopyReads:
    def test_view_is_read_only(self):
        store = TensorStore()
        t = Tensor("x", (8,))
        store.bind(t, np.arange(8.0))
        view = store.read(t.region(), copy=False)
        with pytest.raises(ValueError):
            view[0] = 99.0
        assert store.read(t.region())[0] == 0.0
        assert store.zero_copy_reads == 1

    def test_default_read_still_copies(self):
        store = TensorStore()
        t = Tensor("x", (8,))
        store.bind(t, np.zeros(8))
        arr = store.read(t.region())
        arr[:] = 42.0  # caller-side mutation must not leak into the store
        assert store.read(t.region()).sum() == 0.0
        assert store.copied_reads >= 1

    def test_mutating_kernel_cannot_corrupt_store(self, monkeypatch):
        """An in-place kernel trips numpy's writeable guard, loudly."""
        def evil_add(ins, _attrs):
            ins[0] += 1.0  # in-place mutation of a zero-copy operand
            return ins[0]

        monkeypatch.setitem(dispatch._KERNELS, Opcode.ADD1D, evil_add)
        a, b, c = Tensor("a", (16,)), Tensor("b", (16,)), Tensor("c", (16,))
        inst = Instruction(Opcode.ADD1D, (a.region(), b.region()),
                           (c.region(),))
        store = TensorStore()
        store.bind(a, np.zeros(16))
        store.bind(b, np.ones(16))
        executor = FractalExecutor(tiny_machine(), store)
        with pytest.raises(ValueError, match="read-only"):
            executor.run(inst)
        # The backing array is untouched despite the attempted mutation.
        assert store.read(a.region()).sum() == 0.0

    def test_executor_counts_zero_copy_reads(self):
        machine = tiny_machine()
        program = _matmul_program()
        store = TensorStore()
        _bind_inputs(program, store, np.random.default_rng(3))
        FractalExecutor(machine, store).run_program(program)
        assert store.zero_copy_reads > 0

    def test_aliasing_input_takes_copy_path(self):
        """In-place ACT1D (output region == input region) must copy."""
        t = Tensor("x", (64,))
        inst = Instruction(Opcode.ACT1D, (t.region(),), (t.region(),),
                           {"func": "relu"})
        store = TensorStore()
        store.bind(t, np.linspace(-1, 1, 64))
        executor = FractalExecutor(tiny_machine(), store)
        executor.run(inst)
        np.testing.assert_array_equal(
            store.read(t.region()),
            np.maximum(np.linspace(-1, 1, 64), 0.0))
        assert store.copied_reads > 0

    def test_zero_copy_counter_published(self):
        machine = tiny_machine()
        program = _matmul_program()
        with telemetry.enabled_scope() as (registry, _tracer):
            telemetry.reset()
            store = TensorStore()
            _bind_inputs(program, store, np.random.default_rng(5))
            FractalExecutor(machine, store).run_program(program)
            published = registry.value("store.zero_copy_reads")
        assert published > 0
        assert published == store.zero_copy_reads


# -- session integration ------------------------------------------------------

class TestSessionCompile:
    def _session(self):
        from repro.runtime.session import InferenceSession
        from repro.workloads import profile_benchmark

        w = profile_benchmark("mm_fc")
        return InferenceSession(w, machine=custom_machine(
            "sess", [2], [256 * KB, 64 * KB], [1e9, 1e9]))

    def test_compiled_call_matches_uncompiled(self):
        plain, compiled = self._session(), self._session()
        for s in (plain, compiled):
            s.initialize_parameters(seed=3)
        compiled.compile()
        assert compiled.plan is not None
        rng = np.random.default_rng(11)
        inputs = {short: rng.normal(size=t.shape)
                  for short, t in
                  ((f.split(".")[-1], t)
                   for f, t in plain.workload.inputs.items())}
        want = plain(**inputs)
        got = compiled(**inputs)
        assert sorted(got) == sorted(want)
        for name in want:
            np.testing.assert_array_equal(got[name], want[name])
