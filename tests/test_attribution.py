"""Attribution-engine invariants (repro.perf.attribution).

The contract under test: the critical-path walk is *exact* (segments tile
the makespan with zero gap), the taxonomy fractions sum to 1, the result
is deterministic across fresh simulators, and machine configurations
engineered to starve a resource are classified as bound by it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Instruction, Opcode, Tensor, custom_machine
from repro.core.machine import GB, KB, MB
from repro.perf import (
    CATEGORIES,
    attribute_report,
    attribute_schedule,
    attribution_section,
    critical_path,
)
from repro.sim import FractalSimulator
from repro.sim.eventsim import EventDrivenPipeline
from repro.sim.pipeline import IDLE_CAUSES, StageTimes, schedule_pipeline
from repro.workloads import mm_fc_workload

pytestmark = pytest.mark.perf

durations = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


def stage_strategy(max_inst=8):
    return st.lists(
        st.builds(
            StageTimes,
            decode=durations,
            load=durations,
            exec=durations,
            reduce=durations,
            writeback=durations,
            exec_fill=st.floats(0.0, 3.0),
            pre_assignable=st.booleans(),
        ),
        min_size=0, max_size=max_inst,
    )


def matmul_inst(m, k, n):
    a, b, c = Tensor("a", (m, k)), Tensor("b", (k, n)), Tensor("c", (m, n))
    return Instruction(Opcode.MATMUL, (a.region(), b.region()), (c.region(),))


def machine(bw_scale=1.0, peak=0.466e12):
    return custom_machine(
        "attr-test", fanouts=[2, 4],
        mem_bytes=[64 * MB, 4 * MB, 256 * KB],
        bandwidths=[64 * GB * bw_scale] * 3,
        core_peak_ops=peak)


class TestCriticalPathWalk:
    def test_empty_stream(self):
        assert critical_path([], []) == []

    def test_single_instruction_tiles_makespan(self):
        stages = [StageTimes(decode=1, load=2, exec=3, reduce=4, writeback=5)]
        sched = schedule_pipeline(stages)
        segs = critical_path(sched.instructions, stages)
        assert segs[0].start == 0.0
        assert segs[-1].end == sched.total_time == 15.0
        for a, b in zip(segs, segs[1:]):
            assert a.end == b.start  # exact, no gap/overlap
        totals, _ = attribute_schedule(sched.instructions, stages)
        assert totals == {"control": 1.0, "dma": 7.0, "compute": 3.0,
                          "reduction": 4.0, "idle": 0.0}

    def test_raw_stall_crosses_instructions(self):
        """A stalled LD must trace back through the producer's WB."""
        stages = [
            StageTimes(load=1, exec=1, writeback=10),
            StageTimes(load=1, exec=1, stall_on=0, writeback=1),
        ]
        sched = schedule_pipeline(stages)
        totals, _ = attribute_schedule(sched.instructions, stages)
        # the 10s producer WB dominates and is charged to dma
        assert totals["dma"] >= 10.0
        assert sum(totals.values()) == pytest.approx(sched.total_time,
                                                     rel=1e-9)

    @settings(max_examples=200, deadline=None)
    @given(stage_strategy())
    def test_sum_equals_makespan(self, stages):
        """Taxonomy seconds tile the makespan on arbitrary streams."""
        for concat in (True, False):
            sched = schedule_pipeline(stages, use_concatenation=concat)
            totals, _ = attribute_schedule(sched.instructions, stages)
            assert sum(totals.values()) == pytest.approx(
                sched.total_time, rel=1e-9, abs=1e-12)
            assert totals["idle"] == 0.0  # exact walk: guard bucket unused

    @settings(max_examples=100, deadline=None)
    @given(stage_strategy())
    def test_exec_path_within_compute(self, stages):
        sched = schedule_pipeline(stages)
        totals, exec_path = attribute_schedule(sched.instructions, stages)
        assert sum(s for _, s in exec_path) == pytest.approx(
            totals["compute"], rel=1e-9, abs=1e-12)
        assert all(0 <= i < len(stages) for i, _ in exec_path)


class TestIdleCauses:
    @settings(max_examples=150, deadline=None)
    @given(stage_strategy())
    def test_closed_form_matches_des(self, stages):
        """Idle-cause rollups agree between the recurrence and the DES."""
        closed = schedule_pipeline(stages).idle_causes
        des = EventDrivenPipeline(stages).idle_causes()
        assert set(closed) | set(des) <= set(IDLE_CAUSES)
        for key in set(closed) | set(des):
            assert closed.get(key, 0.0) == pytest.approx(
                des.get(key, 0.0), rel=1e-9, abs=1e-12), key

    def test_zero_width_stages_not_charged(self):
        """An idle channel with nothing queued is not a stall."""
        stages = [StageTimes(decode=1, exec=2),  # no LD/RD/WB work
                  StageTimes(decode=1, exec=2)]
        idle = schedule_pipeline(stages).idle_causes
        assert "dma_ld.decode_wait" not in idle
        assert "dma_wb.upstream_wait" not in idle


class TestWholeRunAttribution:
    def test_fractions_sum_to_one(self):
        rep = FractalSimulator(machine(), collect_profiles=False) \
            .simulate([matmul_inst(256, 256, 256)])
        attr = attribute_report(rep)
        assert attr.makespan == rep.total_time > 0
        assert sum(attr.totals().values()) == pytest.approx(
            attr.makespan, rel=1e-9)
        assert sum(attr.fractions().values()) == pytest.approx(1.0, rel=1e-9)
        assert set(attr.totals()) == set(CATEGORIES)

    def test_mm_fc_workload_sums(self):
        w = mm_fc_workload()
        rep = FractalSimulator(machine(), collect_profiles=False) \
            .simulate(w.program)
        section = attribution_section(rep)
        total = sum(sum(c.values()) for c in section["per_level_s"].values())
        assert total == pytest.approx(section["makespan_s"], rel=1e-9)

    def test_deterministic_across_fresh_simulators(self):
        prog = [matmul_inst(256, 256, 256)]
        a = attribution_section(
            FractalSimulator(machine(), collect_profiles=False).simulate(prog))
        b = attribution_section(
            FractalSimulator(machine(), collect_profiles=False).simulate(prog))
        assert a == b  # bitwise-identical, diffable run-to-run

    def test_starved_bandwidth_is_dma_bound(self):
        """1000x less link bandwidth must classify as dma-bound."""
        rep = FractalSimulator(machine(bw_scale=1e-3),
                               collect_profiles=False) \
            .simulate([matmul_inst(256, 256, 256)])
        attr = attribute_report(rep)
        assert attr.dominant() == "dma"
        assert attr.classify() == "dma-bound"
        assert attr.fractions()["dma"] > 0.5

    def test_fat_pipe_is_compute_bound(self):
        rep = FractalSimulator(machine(bw_scale=100.0),
                               collect_profiles=False) \
            .simulate([matmul_inst(256, 256, 256)])
        attr = attribute_report(rep)
        assert attr.classify() == "compute-bound"
        assert attr.fractions()["compute"] > 0.5

    def test_starving_shifts_share_toward_dma(self):
        """Monotonic direction: less bandwidth, larger dma share."""
        prog = [matmul_inst(256, 256, 256)]
        shares = []
        for bw in (100.0, 1.0, 1e-3):
            rep = FractalSimulator(machine(bw_scale=bw),
                                   collect_profiles=False).simulate(prog)
            shares.append(attribute_report(rep).fractions()["dma"])
        assert shares[0] < shares[1] < shares[2]

    def test_dma_accounting_consistency(self):
        rep = FractalSimulator(machine(), collect_profiles=False) \
            .simulate([matmul_inst(256, 256, 256)])
        attr = attribute_report(rep)
        assert attr.dma, "per-level DMA accounting must be populated"
        for acc in attr.dma.values():
            assert acc["bytes"] == pytest.approx(
                acc["load_bytes"] + acc["store_bytes"])
            if acc["busy_s"] > 0:
                assert acc["effective_bandwidth"] == pytest.approx(
                    acc["bytes"] / acc["busy_s"])
            assert 0.0 <= acc.get("busy_fraction_of_makespan", 0.0) <= 1.0

    def test_section_is_json_clean(self):
        import json
        rep = FractalSimulator(machine(), collect_profiles=False) \
            .simulate([matmul_inst(64, 64, 64)])
        section = attribution_section(rep)
        json.dumps(section)  # no numpy scalars / non-string keys
        assert section["dominant"] in CATEGORIES
        assert section["classification"].endswith("-bound")
