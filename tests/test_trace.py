"""Timeline/trace tests (Fig-13 machinery)."""

import pytest

from repro import Instruction, Opcode, Tensor, custom_machine
from repro.core.machine import KB, MB
from repro.sim import FractalSimulator
from repro.sim.trace import (
    Segment,
    flatten_timeline,
    level_busy_fractions,
    merge_segments,
    render_ascii,
)


@pytest.fixture(scope="module")
def report():
    a, b, c = Tensor("a", (256, 256)), Tensor("b", (256, 256)), Tensor("c", (256, 256))
    inst = Instruction(Opcode.MATMUL, (a.region(), b.region()), (c.region(),))
    m = custom_machine("trace-test", [2, 2], [8 * MB, MB, 128 * KB],
                       [32e9, 32e9, 8e9], core_peak_ops=100e9)
    return FractalSimulator(m, collect_profiles=True).simulate([inst])


class TestFlatten:
    def test_segments_within_total(self, report):
        for seg in flatten_timeline(report.root):
            assert 0 <= seg.start <= seg.end <= report.total_time * 1.0001

    def test_all_levels_present(self, report):
        levels = {seg.level for seg in flatten_timeline(report.root)}
        assert levels == {0, 1, 2}

    def test_depth_limit(self, report):
        levels = {s.level for s in flatten_timeline(report.root, max_depth=1)}
        assert levels <= {0, 1}

    def test_segment_cap(self, report):
        segs = flatten_timeline(report.root, max_segments=5)
        assert len(segs) <= 5

    def test_sorted_by_level_then_time(self, report):
        segs = flatten_timeline(report.root)
        assert segs == sorted(segs, key=lambda s: (s.level, s.start))


class TestMerge:
    def test_adjacent_same_kind_merged(self):
        segs = [Segment(0, "dma", 0.0, 1.0), Segment(0, "dma", 1.0, 2.0)]
        assert len(merge_segments(segs)) == 1

    def test_gap_respected(self):
        segs = [Segment(0, "dma", 0.0, 1.0), Segment(0, "dma", 1.5, 2.0)]
        assert len(merge_segments(segs)) == 2
        assert len(merge_segments(segs, gap=0.6)) == 1

    def test_kinds_not_merged(self):
        segs = [Segment(0, "dma", 0.0, 1.0), Segment(0, "compute", 1.0, 2.0)]
        assert len(merge_segments(segs)) == 2


class TestBusyFractions:
    def test_union_never_exceeds_one(self, report):
        segs = flatten_timeline(report.root)
        fractions = level_busy_fractions(segs, report.total_time)
        for level, kinds in fractions.items():
            for kind, frac in kinds.items():
                assert 0.0 <= frac <= 1.0001, (level, kind, frac)

    def test_overlapping_segments_unioned(self):
        segs = [Segment(0, "dma", 0.0, 2.0), Segment(0, "dma", 1.0, 3.0)]
        fr = level_busy_fractions(segs, 4.0)
        assert fr[0]["dma"] == pytest.approx(0.75)

    def test_leaf_compute_busy_nonzero(self, report):
        segs = flatten_timeline(report.root)
        fr = level_busy_fractions(segs, report.total_time)
        assert fr[2]["compute"] > 0


class TestAsciiWindow:
    def test_zoom_window(self, report):
        art = render_ascii(report, width=40,
                           window=(0.0, report.total_time / 4))
        assert f"{report.total_time / 4 * 1e3:.3f}" in art

    def test_window_excludes_outside_segments(self, report):
        """A window at the very start shouldn't render tail-only rows."""
        early = render_ascii(report, width=40,
                             window=(0.0, report.total_time * 0.01))
        full = render_ascii(report, width=40)
        assert len(early.splitlines()) <= len(full.splitlines())

    def test_bad_window_rejected(self, report):
        with pytest.raises(ValueError):
            render_ascii(report, window=(0.5, 0.1))


class TestAscii:
    def test_renders(self, report):
        art = render_ascii(report, width=60)
        assert "timeline" in art
        assert "|" in art
        assert "#" in art  # compute blocks present

    def test_level_names(self, report):
        art = render_ascii(report, width=40, level_names=["Chip", "FMP", "Core"])
        assert "Chip" in art and "Core" in art

    def test_empty(self):
        from repro.sim.simulator import NodeResult, NodeStats, SimReport
        empty = SimReport("m", 0.0, 0, 0, 0, {}, NodeStats(),
                          NodeResult(0, 0.0, 0.0, 0, 0, 0))
        assert "empty" in render_ascii(empty)
