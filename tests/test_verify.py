"""Differential-verification harness and cost-report tests."""

import numpy as np
import pytest

from repro import Instruction, Opcode, Tensor, cambricon_f1, cambricon_f100
from repro.core.verify import verify_program, verify_suite
from repro.cost.report import format_cost_report, machine_cost_report
from repro.cost.layout import subtree_cost

from conftest import tiny_machine


def matmul_program(m=8, k=8, n=8):
    a, b, c = Tensor("a", (m, k)), Tensor("b", (k, n)), Tensor("c", (m, n))
    return [Instruction(Opcode.MATMUL, (a.region(), b.region()),
                        (c.region(),))]


class TestVerifyProgram:
    def test_correct_program_passes(self):
        report = verify_program(matmul_program(), tiny_machine(), name="mm")
        assert report.passed
        assert report.outputs_checked == 1
        assert "PASS" in report.summary()

    def test_supplied_inputs_used(self):
        prog = matmul_program(2, 2, 2)
        names = {r.tensor.name: r.tensor for i in prog
                 for r in i.inputs}
        report = verify_program(
            prog, tiny_machine(),
            inputs={"a": np.eye(2), "b": np.eye(2)})
        assert report.passed

    def test_deterministic_across_seeds(self):
        r1 = verify_program(matmul_program(), tiny_machine(), seed=3)
        r2 = verify_program(matmul_program(), tiny_machine(), seed=3)
        assert r1.max_abs_error == r2.max_abs_error

    def test_broken_semantics_detected(self, monkeypatch):
        """Sabotage a kernel: verification must FAIL, not silently pass."""
        import repro.ops.dispatch as dispatch
        real = dispatch.kernel_for(Opcode.MATMUL)

        def broken(inputs, attrs):
            # bias depends on the tile size: the decomposed tiles see
            # narrower right-hand operands than the monolithic reference
            return real(inputs, attrs) + inputs[1].shape[1]

        monkeypatch.setitem(dispatch._KERNELS, Opcode.MATMUL, broken)
        report = verify_program(matmul_program(16, 16, 16), tiny_machine())
        assert not report.passed
        assert report.mismatches
        assert "FAIL" in report.summary()

    def test_suite_all_pass(self):
        reports = verify_suite(machine=tiny_machine())
        assert len(reports) == 7
        for r in reports:
            assert r.passed, r.summary()


class TestCostReport:
    @pytest.mark.parametrize("machine_fn", [cambricon_f1, cambricon_f100])
    def test_matches_rollup(self, machine_fn):
        """The per-level breakdown must sum to the recursive roll-up."""
        machine = machine_fn()
        rows = machine_cost_report(machine)
        total_area = sum(r.area_mm2 for r in rows)
        total_power = sum(r.power_w for r in rows)
        rollup = subtree_cost(machine, 0)
        assert total_area == pytest.approx(rollup.area_mm2, rel=1e-6)
        assert total_power == pytest.approx(rollup.power_w, rel=1e-6)

    def test_leaf_level_is_cores_only(self):
        rows = machine_cost_report(cambricon_f100())
        leaf = rows[-1]
        assert leaf.core_area_mm2 > 0
        assert leaf.memory_area_mm2 == 0  # leaf memory is inside the core row

    def test_dram_levels_excluded(self):
        rows = machine_cost_report(cambricon_f1())
        assert rows[0].memory_area_mm2 == 0.0  # the 32 GB level is off-chip

    def test_format_renders(self):
        text = format_cost_report(cambricon_f1())
        assert "cross-check" in text and "Core" in text
