"""Decomposition rule tests: Table-2 fidelity, split semantics,
sequential shrinking, and the accumulation rewrite."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.decomposition import (
    best_shrink_split,
    decompose_parallel,
    footprint,
    rules_for,
    shrink_sequential,
    splittable_extent,
)
from repro.core.decomposition.base import sequentialize_add_reduction
from repro.core.isa import DependencyKind, Instruction, Opcode
from repro.core.tensor import Tensor

from conftest import assert_fractal_matches, tiny_machine


def matmul_inst(m, k, n):
    a, b, c = Tensor("a", (m, k)), Tensor("b", (k, n)), Tensor("c", (m, n))
    return Instruction(Opcode.MATMUL, (a.region(), b.region()), (c.region(),))


def conv_inst(n=2, h=8, w=8, cin=3, kh=3, kw=3, cout=4, stride=1):
    x = Tensor("x", (n, h, w, cin))
    wt = Tensor("w", (kh, kw, cin, cout))
    ho, wo = (h - kh) // stride + 1, (w - kw) // stride + 1
    o = Tensor("o", (n, ho, wo, cout))
    return Instruction(Opcode.CV2D, (x.region(), wt.region()), (o.region(),),
                       {"stride": stride})


def sort_inst(n=32):
    x, o = Tensor("x", (n,)), Tensor("o", (n,))
    return Instruction(Opcode.SORT1D, (x.region(),), (o.region(),))


class TestTable2Fidelity:
    """The registered rules must state the paper's Table-2 dependencies."""

    def test_matmul_rules(self):
        rules = rules_for(Opcode.MATMUL)
        by_name = {r.name: r for r in rules}
        assert by_name["Left, Vertical (K)"].dependency is DependencyKind.OUTPUT_DEPENDENT
        assert by_name["Left, Vertical (K)"].g_name == "Add"
        assert by_name["Right, Vertical (N)"].dependency is DependencyKind.INPUT_DEPENDENT
        assert by_name["Right, Vertical (N)"].redundancy == "Left Matrix"

    def test_conv_rules(self):
        by_name = {r.name: r for r in rules_for(Opcode.CV2D)}
        assert by_name["Batch-Wise"].redundancy == "Weight"
        assert by_name["Spatial-H"].redundancy == "Weight, Overlapped"
        assert by_name["Feature-Wise"].dependency is DependencyKind.OUTPUT_DEPENDENT
        assert by_name["Feature-Wise"].g_name == "Add"

    def test_pool_rules_independent_and_overlapped(self):
        by_name = {r.name: r for r in rules_for(Opcode.MAX2D)}
        assert by_name["Feature-Wise"].dependency is DependencyKind.INDEPENDENT
        assert by_name["Spatial-H"].redundancy == "Overlapped"

    def test_sort_count_output_dependent(self):
        assert rules_for(Opcode.SORT1D)[0].g_name == "Merge"
        assert rules_for(Opcode.COUNT1D)[0].g_name == "Add"

    def test_eltwise_independent(self):
        for op in (Opcode.ADD1D, Opcode.SUB1D, Opcode.MUL1D, Opcode.ACT1D):
            assert rules_for(op)[0].dependency is DependencyKind.INDEPENDENT

    def test_every_opcode_has_rules(self):
        for op in Opcode:
            assert rules_for(op), f"{op} has no decomposition rules"


class TestParallelDecomposition:
    def test_matmul_n_split_shares_left(self):
        split = decompose_parallel(matmul_inst(8, 8, 8), 4)
        assert split.dependency is DependencyKind.INPUT_DEPENDENT
        lefts = {p.inputs[0].key() for p in split.parts}
        assert len(lefts) == 1  # A broadcast to every part
        assert split.redundant_bytes > 0

    def test_part_outputs_disjoint(self):
        split = decompose_parallel(matmul_inst(8, 8, 8), 4)
        outs = [p.outputs[0] for p in split.parts]
        for i, a in enumerate(outs):
            for b in outs[i + 1:]:
                assert not a.overlaps(b)  # write-coherence rule

    def test_conv_batch_split(self):
        split = decompose_parallel(conv_inst(n=4), 4)
        assert split.axis == "batch"
        assert len(split.parts) == 4

    def test_conv_spatial_split_when_batch_exhausted(self):
        split = decompose_parallel(conv_inst(n=1), 3)
        assert split.axis == "h"
        # haloed inputs overlap
        assert split.parts[0].inputs[0].overlaps(split.parts[1].inputs[0])

    def test_conv_cin_split_generates_reduction(self):
        inst = conv_inst(n=1, h=3, w=3, cin=8, cout=1)
        rule = {r.name: r for r in rules_for(Opcode.CV2D)}["Feature-Wise"]
        split = rule.apply(inst, 4)
        assert split.reduction
        assert all(r.opcode in (Opcode.ADD1D, Opcode.ACT1D) for r in split.reduction)

    def test_sort_split_merges(self):
        split = decompose_parallel(sort_inst(32), 4)
        assert len(split.parts) == 4
        assert split.reduction[0].opcode is Opcode.MERGE1D
        assert len(split.reduction[0].inputs) == 4

    def test_two_way_merge_not_splittable(self):
        a, b = Tensor("a", (16,)), Tensor("b", (16,))
        o = Tensor("o", (32,))
        inst = Instruction(Opcode.MERGE1D, (a.region(), b.region()), (o.region(),))
        assert decompose_parallel(inst, 4) is None

    def test_kway_merge_splittable(self):
        parts = [Tensor(f"p{i}", (8,)).region() for i in range(6)]
        o = Tensor("o", (48,))
        inst = Instruction(Opcode.MERGE1D, tuple(parts), (o.region(),))
        split = decompose_parallel(inst, 3)
        assert split is not None and len(split.parts) == 3

    def test_degenerate_returns_none(self):
        assert decompose_parallel(matmul_inst(1, 1, 1), 4) is None

    def test_n_less_than_2_returns_none(self):
        assert decompose_parallel(matmul_inst(8, 8, 8), 1) is None

    def test_accumulate_never_output_dependent(self):
        inst = matmul_inst(1, 64, 1)
        acc = Instruction(inst.opcode, inst.inputs, inst.outputs,
                          {"accumulate": True})
        assert decompose_parallel(acc, 4) is None  # only K-split possible

    def test_splittable_extent(self):
        assert splittable_extent(matmul_inst(8, 16, 4)) == 16


class TestCompositeSplits:
    """When the preferred axis is shorter than the fan-out, PD composes
    splits across axes so no FFU idles."""

    def test_engages_when_no_axis_reaches_fanout(self):
        """conv with batch 2 and 3x3 spatial output facing 16 FFUs: no
        single axis covers 16, so splits compose across axes."""
        inst = conv_inst(n=2, h=5, w=5, cin=2, cout=2)
        split = decompose_parallel(inst, 16)
        max_extent = max(2, 3, 3, 2)  # batch, H, W, cout extents
        assert len(split.parts) > max_extent
        assert split.axis.endswith("*")

    def test_composite_outputs_cover_exactly(self):
        inst = conv_inst(n=2, h=5, w=5, cin=2, cout=2)
        split = decompose_parallel(inst, 16)
        total = sum(p.outputs[0].nelems for p in split.parts)
        assert total == inst.outputs[0].nelems
        for i, a in enumerate(split.parts):
            for b in split.parts[i + 1:]:
                assert not a.outputs[0].overlaps(b.outputs[0])

    def test_composite_functional_equivalence(self, rng):
        inst = conv_inst(n=2, h=9, w=9, cin=3, cout=2)
        arrays = {r: rng.normal(size=r.tensor.shape) for r in inst.inputs}
        assert_fractal_matches(inst, arrays, tiny_machine(fanouts=(8, 2)))

    def test_composite_with_reductions(self, rng):
        """Sort across more parts than one axis offers still merges right."""
        inst = sort_inst(40)
        split = decompose_parallel(inst, 16)
        assert len(split.parts) == 16
        # all partial outputs feed merges, merges feed the final output
        arrays = {inst.inputs[0]: rng.normal(size=(40,))}
        assert_fractal_matches(inst, arrays, tiny_machine(fanouts=(16,),
                                                          mems=(1 << 16, 1 << 12)))

    def test_no_composition_when_axis_suffices(self):
        split = decompose_parallel(matmul_inst(8, 8, 64), 8)
        assert not split.axis.endswith("*")
        assert len(split.parts) == 8


class TestSequentialShrink:
    def test_footprint_bound(self):
        inst = matmul_inst(64, 64, 64)
        cap = footprint(inst) // 6
        steps = shrink_sequential(inst, cap)
        for s in steps:
            assert footprint(s) <= cap

    def test_no_shrink_needed(self):
        inst = matmul_inst(4, 4, 4)
        assert shrink_sequential(inst, 10 ** 9) == [inst]

    def test_unsplittable_oversized_emitted(self):
        a, b = Tensor("a", (4096,)), Tensor("b", (4096,))
        o = Tensor("o", (8192,))
        merge = Instruction(Opcode.MERGE1D, (a.region(), b.region()), (o.region(),))
        steps = shrink_sequential(merge, 64)
        assert steps == [merge]

    def test_balanced_tiling_not_degenerate(self):
        """SD must not slice one axis to extent 1 while another is huge."""
        inst = matmul_inst(256, 256, 256)
        steps = shrink_sequential(inst, 16 * 1024)
        mm = [s for s in steps if s.opcode is Opcode.MATMUL]
        for s in mm:
            m, k = s.inputs[0].shape
            _, n = s.inputs[1].shape
            assert min(m, k, n) >= 8, f"degenerate tile {m}x{k}x{n}"

    def test_accumulate_rewrite_used(self):
        """K-heavy matmuls sequentially accumulate instead of Add chains."""
        inst = matmul_inst(4, 4096, 4)
        steps = shrink_sequential(inst, 4096)
        assert all(s.opcode is Opcode.MATMUL for s in steps)
        assert any(s.attrs.get("accumulate") for s in steps)
        # exactly one step closes the chain with a write-back
        closing = [s for s in steps if not s.attrs.get("acc_local_out")]
        assert len(closing) >= 1

    def test_best_shrink_reduces_footprint(self):
        inst = matmul_inst(64, 64, 64)
        split = best_shrink_split(inst)
        assert split is not None
        assert max(footprint(p) for p in split.parts) < footprint(inst)


class TestAccumulateRewrite:
    def test_rewrite_shape(self):
        inst = matmul_inst(4, 8, 4)
        rule = {r.name: r for r in rules_for(Opcode.MATMUL)}["Left, Vertical (K)"]
        split = sequentialize_add_reduction(rule.apply(inst, 2), inst)
        assert not split.reduction
        assert split.parts[0].attrs["accumulate"] is False
        assert split.parts[1].attrs["accumulate"] is True
        assert split.parts[0].attrs["acc_local_out"] is True
        assert split.parts[1].attrs["acc_local_out"] is False
        assert all(p.outputs[0] == inst.outputs[0] for p in split.parts)

    def test_non_add_reduction_untouched(self):
        split = decompose_parallel(sort_inst(16), 2)
        again = sequentialize_add_reduction(split, sort_inst(16))
        assert again.reduction  # Merge cannot accumulate

    def test_nested_chains_inherit_flags(self):
        inst = matmul_inst(2, 64, 2)
        steps = shrink_sequential(inst, 512)
        # every step but exactly the closers should keep the sum local
        closers = [s for s in steps if not s.attrs.get("acc_local_out")]
        assert len(closers) == 1
        assert closers[-1] == steps[-1]


class TestFunctionalEquivalence:
    """Every rule, applied and recombined, must reproduce the kernel."""

    @pytest.mark.parametrize("rule_idx", range(3))
    def test_matmul_rules(self, rng, rule_idx):
        inst = matmul_inst(6, 8, 10)
        rule = rules_for(Opcode.MATMUL)[rule_idx]
        self._check_rule(rng, inst, rule)

    @pytest.mark.parametrize("rule_idx", range(5))
    def test_conv_rules(self, rng, rule_idx):
        inst = conv_inst(n=3, h=7, w=7, cin=4, cout=6)
        rule = rules_for(Opcode.CV2D)[rule_idx]
        self._check_rule(rng, inst, rule)

    @pytest.mark.parametrize("rule_idx", range(4))
    def test_pool_rules(self, rng, rule_idx):
        x = Tensor("x", (2, 8, 8, 4))
        o = Tensor("o", (2, 4, 4, 4))
        inst = Instruction(Opcode.MAX2D, (x.region(),), (o.region(),),
                           {"kh": 2, "kw": 2, "sh": 2, "sw": 2})
        rule = rules_for(Opcode.MAX2D)[rule_idx]
        self._check_rule(rng, inst, rule)

    @pytest.mark.parametrize("rule_idx", range(3))
    def test_euclidian_rules(self, rng, rule_idx):
        x, y = Tensor("x", (6, 8)), Tensor("y", (5, 8))
        o = Tensor("o", (6, 5))
        inst = Instruction(Opcode.EUCLIDIAN1D, (x.region(), y.region()),
                           (o.region(),))
        rule = rules_for(Opcode.EUCLIDIAN1D)[rule_idx]
        self._check_rule(rng, inst, rule)

    @staticmethod
    def _check_rule(rng, inst, rule):
        """Apply one rule, execute parts + reduction with kernels, compare."""
        from repro.core.executor import run_reference
        from repro.core.store import TensorStore

        split = rule.apply(inst, 2)
        ref, frac = TensorStore(), TensorStore()
        for r in inst.inputs:
            arr = rng.normal(size=r.tensor.shape)
            ref.bind(r.tensor, arr)
            frac.bind(r.tensor, arr)
        run_reference(inst, ref)
        for part in split.parts:
            run_reference(part, frac)
        for red in split.reduction:
            run_reference(red, frac)
        np.testing.assert_allclose(frac.read(inst.outputs[0]),
                                   ref.read(inst.outputs[0]), atol=1e-9)


# -- property-based -------------------------------------------------------------

@settings(deadline=None, max_examples=30)
@given(m=st.integers(1, 12), k=st.integers(1, 12), n=st.integers(1, 12),
       parts=st.integers(2, 5))
def test_matmul_decomposition_correct_for_random_shapes(m, k, n, parts):
    rng = np.random.default_rng(m * 151 + k * 7 + n)
    inst = matmul_inst(m, k, n)
    arrays = {r: rng.normal(size=r.tensor.shape) for r in inst.inputs}
    assert_fractal_matches(inst, arrays, tiny_machine(fanouts=(parts, 2)))


@settings(deadline=None, max_examples=20)
@given(n=st.integers(1, 4), h=st.integers(3, 9), cin=st.integers(1, 4),
       cout=st.integers(1, 5), stride=st.integers(1, 2))
def test_conv_decomposition_correct_for_random_shapes(n, h, cin, cout, stride):
    rng = np.random.default_rng(n * 31 + h + cin + cout)
    inst = conv_inst(n=n, h=h, w=h, cin=cin, kh=3, kw=3, cout=cout, stride=stride)
    arrays = {r: rng.normal(size=r.tensor.shape) for r in inst.inputs}
    assert_fractal_matches(inst, arrays)


@settings(deadline=None, max_examples=20)
@given(size=st.integers(1, 60))
def test_sort_decomposition_correct(size):
    rng = np.random.default_rng(size)
    inst = sort_inst(size)
    arrays = {inst.inputs[0]: rng.normal(size=(size,))}
    assert_fractal_matches(inst, arrays)
