"""Plan dataflow-analyzer tests: P1xx diagnostics, fusion legality,
static zero-copy proofs, live-byte peak, document round-trips, the
suite-wide self-clean regression, and a fuzz harness whose verdicts are
checked against brute-force region-overlap oracles."""

from __future__ import annotations

import json

import numpy as np
import pytest

from conftest import tiny_machine
from repro import (
    FractalExecutor,
    Instruction,
    Opcode,
    Tensor,
    TensorStore,
    cambricon_f1,
    cambricon_f100,
)
from repro.core.tensor import Region
from repro.plan import (
    DiskPlanCache,
    FractalPlan,
    PlanStats,
    PlanStep,
    analyze_plan,
    annotate_plan,
    compile_cached,
    compile_program,
    machine_fingerprint,
    plan_from_doc,
    verify_plan,
)
from repro.workloads import profile_benchmark
from repro.workloads.suite import PROFILE_BENCHMARKS

pytestmark = pytest.mark.plan


# -- hand-built plan helpers --------------------------------------------------

def _step(inst, kind="kernel", level=1):
    return PlanStep.from_instruction(kind, inst, level)


def _plan(steps, externals):
    return FractalPlan(
        machine_fingerprint=("test",),
        signature_digest="f" * 64,
        steps=list(steps),
        stats=PlanStats(),
        externals=list(externals),
    )


def _act(src: Region, dst: Region, **attrs) -> Instruction:
    return Instruction(Opcode.ACT1D, (src,), (dst,), dict(attrs))


def _add(a: Region, b: Region, dst: Region, **attrs) -> Instruction:
    return Instruction(Opcode.ADD1D, (a, b), (dst,), dict(attrs))


def _codes(analysis):
    return sorted({d.code for d in analysis.result.diagnostics})


# -- injected hazards ---------------------------------------------------------

class TestInjectedHazards:
    def test_p100_write_write_race_in_isomorphic_run(self):
        x = Tensor("x", (8, 8))
        y = Tensor("y", (8, 8))
        # Two isomorphic steps (same signature) writing the same bytes.
        steps = [
            _step(_act(Region(x, ((0, 4), (0, 8))), Region(y, ((0, 4), (0, 8))))),
            _step(_act(Region(x, ((4, 8), (0, 8))), Region(y, ((0, 4), (0, 8))))),
        ]
        a = analyze_plan(_plan(steps, [x, y]))
        assert _codes(a) == ["P100"]
        assert [d.index for d in a.result.errors] == [1]

    def test_disjoint_isomorphic_run_is_clean_and_fusable(self):
        x = Tensor("x", (8, 8))
        y = Tensor("y", (8, 8))
        steps = [
            _step(_act(Region(x, ((0, 4), (0, 8))), Region(y, ((0, 4), (0, 8))))),
            _step(_act(Region(x, ((4, 8), (0, 8))), Region(y, ((4, 8), (0, 8))))),
        ]
        a = analyze_plan(_plan(steps, [x, y]))
        assert a.result.diagnostics == []
        assert a.fusion_groups == [(0, 2)]
        assert a.safe_zero_copy == [True, True]

    def test_accumulate_run_exempt_from_p100(self):
        # k-split matmul parts legitimately accumulate into one region.
        x = Tensor("x", (8,))
        y = Tensor("y", (8,))
        steps = [
            _step(_act(x.region(), y.region())),
            _step(_act(x.region(), y.region(), accumulate=True)),
        ]
        steps = [steps[0], steps[1]]
        a = analyze_plan(_plan(steps, [x, y]))
        assert "P100" not in _codes(a)

    def test_p110_self_alias_blocks_zero_copy(self):
        x = Tensor("x", (8,))
        steps = [_step(_act(Region(x, ((0, 8),)), Region(x, ((0, 4),))))]
        a = analyze_plan(_plan(steps, [x]))
        assert _codes(a) == ["P110"]
        assert a.safe_zero_copy == [False]
        assert a.result.warnings and not a.result.errors

    def test_p120_dead_step(self):
        x = Tensor("x", (8,))
        dead = Tensor("dead", (8,))  # not external, never read
        y = Tensor("y", (8,))
        steps = [
            _step(_act(x.region(), dead.region())),
            _step(_act(x.region(), y.region())),
        ]
        a = analyze_plan(_plan(steps, [x, y]))
        assert _codes(a) == ["P120"]
        assert [d.index for d in a.result.diagnostics] == [0]

    def test_external_sink_is_not_dead(self):
        x = Tensor("x", (8,))
        y = Tensor("y", (8,))
        a = analyze_plan(_plan([_step(_act(x.region(), y.region()))], [x, y]))
        assert a.result.diagnostics == []

    def test_p130_read_of_open_accumulation(self):
        x = Tensor("x", (8,))
        acc = Tensor("acc", (8,))
        out = Tensor("out", (8,))
        steps = [
            _step(_act(x.region(), acc.region())),                     # init
            _step(_act(acc.region(), out.region())),                   # read mid-chain
            _step(_act(x.region(), acc.region(), accumulate=True)),    # += later
        ]
        a = analyze_plan(_plan(steps, [x, out]))
        assert "P130" in _codes(a)
        assert 1 in [d.index for d in a.result.errors]

    def test_read_after_chain_reinit_is_clean(self):
        # chain completes, is read, then a NEW chain re-inits: no hazard.
        x = Tensor("x", (8,))
        acc = Tensor("acc", (8,))
        out = Tensor("out", (8,))
        out2 = Tensor("out2", (8,))
        steps = [
            _step(_act(x.region(), acc.region())),                     # chain 1 init
            _step(_act(x.region(), acc.region(), accumulate=True)),    # chain 1 +=
            _step(_act(acc.region(), out.region())),                   # read: chain done
            _step(_act(x.region(), acc.region())),                     # chain 2 init
            _step(_act(x.region(), acc.region(), accumulate=True)),    # chain 2 +=
            _step(_act(acc.region(), out2.region())),
        ]
        a = analyze_plan(_plan(steps, [x, out, out2]))
        assert "P130" not in _codes(a)


# -- fusion legality ----------------------------------------------------------

class TestFusionGroups:
    def test_mm_fc_has_nonempty_groups(self):
        w = profile_benchmark("mm_fc")
        plan = compile_program(cambricon_f1(), w.program)
        assert plan.fusion_groups, "mm_fc must produce fusable runs"
        assert all(stop - start >= 2 for start, stop in plan.fusion_groups)

    def test_groups_are_brute_force_legal(self):
        w = profile_benchmark("mm_fc")
        plan = compile_program(cambricon_f1(), w.program)
        for start, stop in plan.fusion_groups:
            group = plan.steps[start:stop]
            key = {(s.kind, s.level, s.inst.signature()) for s in group}
            assert len(key) == 1, "fused steps must be isomorphic"
            outputs = [o for s in group for o in s.inst.outputs]
            inputs = [i for s in group for i in s.inst.inputs]
            for i, a in enumerate(outputs):
                for b in outputs[i + 1:]:
                    assert not a.overlaps(b), "group outputs must be disjoint"
            for r in inputs:
                for o in outputs:
                    assert not r.overlaps(o), \
                        "no producer->consumer pair inside a batch"

    def test_producer_consumer_breaks_group(self):
        x = Tensor("x", (8,))
        mid = Tensor("mid", (8,))
        y = Tensor("y", (8,))
        steps = [_step(_act(x.region(), mid.region())),
                 _step(_act(mid.region(), y.region()))]
        a = analyze_plan(_plan(steps, [x, y]))
        assert a.fusion_groups == []


# -- static zero-copy proofs in the executor ----------------------------------

class TestStaticZeroCopy:
    def test_replay_skips_guard_and_stays_bit_identical(self):
        w = profile_benchmark("mm_fc")
        machine = cambricon_f1()
        plan = compile_program(machine, w.program)
        assert all(s.safe_zero_copy for s in plan.steps)

        rng = np.random.default_rng(3)
        bound = list(w.inputs.values()) + list(w.params.values())
        arrays = {t.uid: rng.normal(size=t.shape) for t in bound}
        outs, stores = [], []
        for use_plan in (None, plan):
            store = TensorStore()
            for t in bound:
                store.bind(t, arrays[t.uid])
            FractalExecutor(machine, store).run_program(w.program,
                                                        plan=use_plan)
            outs.append({n: store.read(t.region())
                         for n, t in w.outputs.items()})
            stores.append(store)
        for name in outs[0]:
            assert np.array_equal(outs[0][name], outs[1][name])
        assert stores[1].static_zero_copy > 0
        # the aliasing guard never fired on either path (reading the
        # outputs at the end accounts for the only copied reads).
        assert stores[1].copied_reads == len(outs[1])

    def test_unsafe_step_still_uses_runtime_guard(self):
        # a self-aliasing step must keep the copy path on replay
        x = Tensor("x", (8,))
        y = Tensor("y", (8,))
        inst = _act(Region(x, ((0, 8),)), Region(x, ((0, 8),)))  # in-place
        sink = _act(x.region(), y.region())
        plan = _plan([_step(inst), _step(sink)], [x, y])
        annotate_plan(plan)
        assert [s.safe_zero_copy for s in plan.steps] == [False, True]

        machine = tiny_machine()
        store = TensorStore()
        store.bind(x, np.random.default_rng(0).normal(size=(8,)))
        FractalExecutor(machine, store).run_plan(plan)
        assert store.copied_reads >= 1          # the guard copied x
        assert store.static_zero_copy == 1      # only the sink skipped it


# -- memory high-water mark ---------------------------------------------------

class TestPeakLiveBytes:
    def test_matches_brute_force_on_compiled_plan(self):
        w = profile_benchmark("mm_fc")
        plan = compile_program(cambricon_f1(), w.program)
        external = set(plan.external_uids())
        sizes, first, last = {}, {}, {}
        for t in plan.externals:
            sizes[t.uid] = t.nbytes
        for i, step in enumerate(plan.steps):
            for r in step.inst.inputs + step.inst.outputs:
                sizes.setdefault(r.tensor.uid, r.tensor.nbytes)
                first.setdefault(r.tensor.uid, i)
                last[r.tensor.uid] = i
        peak = 0
        for i in range(plan.n_steps):
            live = sum(
                size for uid, size in sizes.items()
                if uid in external or (first.get(uid, -1) <= i <= last.get(uid, -1)))
            peak = max(peak, live)
        assert plan.stats.peak_live_bytes == peak > 0

    def test_partials_free_after_last_touch(self):
        x = Tensor("x", (1024,))
        t1 = Tensor("t1", (1024,))
        t2 = Tensor("t2", (1024,))
        y = Tensor("y", (1024,))
        steps = [
            _step(_act(x.region(), t1.region())),
            _step(_act(t1.region(), t2.region())),
            _step(_act(t2.region(), y.region())),
        ]
        plan = _plan(steps, [x, y])
        a = analyze_plan(plan)
        # externals (x, y) resident throughout; at most one partial pair
        # overlaps at any step: peak = x + y + t1 + t2 at step 1.
        assert a.peak_live_bytes == x.nbytes + y.nbytes + t1.nbytes + t2.nbytes


# -- serialization, annotation, verification ----------------------------------

class TestRoundTripAndVerify:
    def _compiled(self):
        w = profile_benchmark("mm_fc")
        return w, compile_program(cambricon_f1(), w.program)

    def test_doc_round_trip_preserves_products(self):
        w, plan = self._compiled()
        doc = json.loads(json.dumps(plan.to_doc()))
        back = plan_from_doc(doc, plan.externals)
        assert [s.safe_zero_copy for s in back.steps] == \
               [s.safe_zero_copy for s in plan.steps]
        assert back.fusion_groups == plan.fusion_groups
        assert back.analysis == plan.analysis
        assert back.stats.peak_live_bytes == plan.stats.peak_live_bytes
        verify_plan(back)

    def test_rebind_preserves_products(self):
        w, plan = self._compiled()
        clones = [Tensor(t.name, t.shape, t.dtype, space=t.space)
                  for t in plan.externals]
        rebound = plan.rebind(clones)
        assert [s.safe_zero_copy for s in rebound.steps] == \
               [s.safe_zero_copy for s in plan.steps]
        assert rebound.fusion_groups == plan.fusion_groups
        verify_plan(rebound)

    def test_verify_rejects_tampered_safe_flag(self):
        import dataclasses

        w, plan = self._compiled()
        plan.steps[0] = dataclasses.replace(plan.steps[0],
                                            safe_zero_copy=False)
        with pytest.raises(ValueError):
            verify_plan(plan)

    def test_verify_rejects_tampered_fusion_groups(self):
        w, plan = self._compiled()
        plan.fusion_groups = plan.fusion_groups[:-1]
        with pytest.raises(ValueError):
            verify_plan(plan)

    def test_verify_rejects_missing_analysis(self):
        w, plan = self._compiled()
        plan.analysis = None
        with pytest.raises(ValueError):
            verify_plan(plan)

    def test_disk_cache_rejects_tampered_entry(self, tmp_path):
        w, plan = self._compiled()
        fp = machine_fingerprint(cambricon_f1())
        disk = DiskPlanCache(tmp_path)
        disk.store(fp, plan.signature_digest, plan)
        path = disk._path(fp, plan.signature_digest)
        doc = json.loads(path.read_text())
        doc["steps"][0]["safe"] = not doc["steps"][0]["safe"]
        path.write_text(json.dumps(doc))
        with pytest.warns(RuntimeWarning, match="re-verification"):
            assert disk.load(fp, plan.signature_digest,
                             plan.externals) is None

    def test_disk_cache_round_trips_clean_entry(self, tmp_path):
        w, plan = self._compiled()
        fp = machine_fingerprint(cambricon_f1())
        disk = DiskPlanCache(tmp_path)
        disk.store(fp, plan.signature_digest, plan)
        back = disk.load(fp, plan.signature_digest, plan.externals)
        assert back is not None
        assert back.fusion_groups == plan.fusion_groups


# -- suite-wide self-clean regression -----------------------------------------

@pytest.mark.parametrize("machine_factory",
                         [cambricon_f1, cambricon_f100],
                         ids=["f1", "f100"])
@pytest.mark.parametrize("bench", sorted(PROFILE_BENCHMARKS))
def test_suite_benchmark_is_analyzer_clean(bench, machine_factory):
    """Every shipped benchmark compiles to a plan with zero P1xx findings
    on both machine shapes (uses the session plan cache: the analysis ran
    at compile time and is stamped on the plan)."""
    w = profile_benchmark(bench)
    plan = compile_cached(machine_factory(), w.program)
    assert plan.analysis is not None
    assert plan.analysis["n_errors"] == 0
    assert plan.analysis["n_warnings"] == 0
    assert plan.analysis["diagnostics"] == []
    assert plan.analysis["safe_zero_copy_steps"] == plan.n_steps
    assert plan.stats.peak_live_bytes > 0


# -- fuzz vs brute-force oracles ----------------------------------------------

def _oracle_safe(step):
    return not any(
        r.tensor.uid == o.tensor.uid and r.overlaps(o)
        for r in step.inst.inputs for o in step.inst.outputs)


def _oracle_dead(plan):
    """Step indices whose outputs nothing consumes (naive O(n^2))."""
    external = set(plan.external_uids())
    dead = set()
    for i, step in enumerate(plan.steps):
        live = False
        for o in step.inst.outputs:
            if o.tensor.uid in external:
                live = True
                break
            for j in range(i + 1, plan.n_steps):
                later = plan.steps[j]
                consumers = list(later.inst.inputs)
                if later.accumulate:
                    consumers += list(later.inst.outputs)
                if any(c.tensor.uid == o.tensor.uid and c.overlaps(o)
                       for c in consumers):
                    live = True
                    break
            if live:
                break
        if not live:
            dead.add(i)
    return dead


def _oracle_races(plan):
    """Step indices racing an earlier step of their isomorphic run."""
    racy = set()
    start = 0
    steps = plan.steps
    while start < len(steps):
        key = (steps[start].kind, steps[start].level,
               steps[start].inst.signature())
        stop = start + 1
        while stop < len(steps) and (steps[stop].kind, steps[stop].level,
                                     steps[stop].inst.signature()) == key:
            stop += 1
        if not steps[start].accumulate:
            for j in range(start + 1, stop):
                for i in range(start, j):
                    hit = any(
                        a.tensor.uid == b.tensor.uid and a.overlaps(b)
                        for a in steps[i].inst.outputs
                        for b in steps[j].inst.outputs)
                    if hit:
                        racy.add(j)
                        break
        start = stop
    return racy


def _random_program(rng):
    """A random small-but-valid FISA program with region variety: slices,
    shared inputs, chained def-use, occasional dead writes."""
    n = int(rng.integers(8, 33)) * 2
    pool = [Tensor(f"t{i}", (n,)) for i in range(int(rng.integers(2, 5)))]
    program = []
    for _ in range(int(rng.integers(2, 7))):
        half = n // 2
        spans = [((0, n),), ((0, half),), ((half, n),)]
        src = Region(pool[int(rng.integers(len(pool)))],
                     spans[int(rng.integers(len(spans)))])
        dst_t = pool[int(rng.integers(len(pool)))]
        dst = Region(dst_t, src.bounds)
        if rng.random() < 0.5:
            other = Region(pool[int(rng.integers(len(pool)))], src.bounds)
            program.append(Instruction(Opcode.ADD1D, (src, other), (dst,)))
        else:
            program.append(Instruction(Opcode.ACT1D, (src,), (dst,)))
    return program


@pytest.mark.parametrize("seed", range(24))
def test_fuzz_analyzer_matches_oracles(seed):
    rng = np.random.default_rng(1000 + seed)
    program = _random_program(rng)
    machine = tiny_machine(fanouts=(2,), mems=(4096, 256))
    plan = compile_program(machine, program)  # must not crash
    a = analyze_plan(plan)

    assert a.safe_zero_copy == [_oracle_safe(s) for s in plan.steps]
    assert {d.index for d in a.result.diagnostics
            if d.code == "P120"} == _oracle_dead(plan)
    assert {d.index for d in a.result.diagnostics
            if d.code == "P100"} == _oracle_races(plan)
    # the analysis is self-consistent and round-trips
    verify_plan(plan)
    doc = json.loads(json.dumps(plan.to_doc()))
    verify_plan(plan_from_doc(doc, plan.externals))
