"""Region algebra tests: slicing, splitting, overlap, identity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tensor import FP16, FP32, Region, Tensor, total_bytes


def make(shape=(8, 6), dtype=FP16, name="t"):
    return Tensor(name, shape, dtype)


class TestTensor:
    def test_basic_properties(self):
        t = make((4, 5, 6))
        assert t.ndim == 3
        assert t.nelems == 120
        assert t.nbytes == 240  # fp16

    def test_fp32_bytes(self):
        t = make((10,), dtype=FP32)
        assert t.nbytes == 40

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Tensor("bad", (4, 0))
        with pytest.raises(ValueError):
            Tensor("bad", (-1,))

    def test_uids_unique(self):
        a, b = make(), make()
        assert a.uid != b.uid

    def test_region_covers_whole_tensor(self):
        t = make((3, 4))
        r = t.region()
        assert r.shape == (3, 4)
        assert r.is_full()

    def test_getitem_shortcut(self):
        t = make((8, 6))
        assert t[2:5, :].shape == (3, 6)


class TestRegionSlicing:
    def test_slice_dim_local_coordinates(self):
        r = make((10, 10)).region()[2:8, :]
        inner = r.slice_dim(0, 1, 3)
        assert inner.bounds[0] == (3, 5)  # 2 + [1, 3)

    def test_getitem_int_index(self):
        r = make((4, 4)).region()[1]
        assert r.shape == (1, 4)

    def test_getitem_rejects_step(self):
        with pytest.raises(ValueError):
            make().region()[::2]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            make((4, 4)).region().slice_dim(0, 2, 6)

    def test_split_dim_exact_partition(self):
        r = make((10, 4)).region()
        parts = r.split_dim(0, 3)
        assert [p.shape[0] for p in parts] == [4, 3, 3]
        assert parts[0].bounds[0] == (0, 4)
        assert parts[2].bounds[0] == (7, 10)

    def test_split_dim_more_parts_than_extent(self):
        parts = make((2, 4)).region().split_dim(0, 5)
        assert len(parts) == 2

    def test_split_dim_halo_expands_and_clips(self):
        r = make((10, 4)).region()
        parts = r.split_dim_halo(0, 2, halo_lo=1, halo_hi=1)
        assert parts[0].bounds[0] == (0, 6)  # clipped low, +1 high
        assert parts[1].bounds[0] == (4, 10)

    def test_is_full_false_for_subregion(self):
        assert not make((4, 4)).region()[1:3, :].is_full()


class TestRegionRelations:
    def test_overlap_same_tensor(self):
        t = make((10, 10))
        a, b = t.region()[0:5, :], t.region()[4:9, :]
        assert a.overlaps(b) and b.overlaps(a)

    def test_no_overlap_disjoint(self):
        t = make((10, 10))
        assert not t.region()[0:5, :].overlaps(t.region()[5:10, :])

    def test_no_overlap_different_tensors(self):
        assert not make().region().overlaps(make().region())

    def test_contains(self):
        t = make((10, 10))
        assert t.region().contains(t.region()[2:4, 3:7])
        assert not t.region()[2:4, :].contains(t.region())

    def test_intersection(self):
        t = make((10, 10))
        inter = t.region()[0:6, :].intersection(t.region()[4:10, :])
        assert inter.bounds[0] == (4, 6)

    def test_intersection_empty(self):
        t = make((10, 10))
        assert t.region()[0:5, :].intersection(t.region()[5:10, :]) is None

    def test_key_identity(self):
        t = make((10, 10))
        assert t.region()[1:3, :].key() == t.region()[1:3, :].key()
        assert t.region()[1:3, :].key() != t.region()[1:4, :].key()

    def test_local_slices(self):
        t = make((10, 10))
        parent = t.region()[2:8, 1:9]
        child = t.region()[4:6, 3:5]
        assert parent.contains(child)
        assert child.local_slices(parent) == (slice(2, 4), slice(2, 4))

    def test_local_slices_requires_containment(self):
        t = make((10, 10))
        with pytest.raises(ValueError):
            t.region()[0:2, :].local_slices(t.region()[5:9, :])


class TestTotalBytes:
    def test_deduplicates_by_key(self):
        t = make((8, 8))
        r = t.region()[0:4, :]
        assert total_bytes([r, r, t.region()[4:8, :]]) == t.nbytes


# -- property-based tests -----------------------------------------------------

dims = st.integers(min_value=1, max_value=12)


@given(extent=st.integers(1, 50), parts=st.integers(1, 10))
def test_split_dim_partitions_exactly(extent, parts):
    """A split covers every index exactly once, in order."""
    r = Tensor("p", (extent,)).region()
    chunks = r.split_dim(0, parts)
    covered = []
    for c in chunks:
        lo, hi = c.bounds[0]
        covered.extend(range(lo, hi))
    assert covered == list(range(extent))
    sizes = [c.shape[0] for c in chunks]
    assert max(sizes) - min(sizes) <= 1  # near-equal


@given(
    shape=st.tuples(dims, dims),
    a=st.tuples(st.integers(0, 11), st.integers(0, 11)),
    b=st.tuples(st.integers(0, 11), st.integers(0, 11)),
)
def test_overlap_iff_intersection(shape, a, b):
    """overlaps() agrees with intersection(); both are symmetric."""
    t = Tensor("q", shape)

    def mk(point):
        bounds = tuple((min(p, d - 1), min(p, d - 1) + 1) for p, d in zip(point, shape))
        return Region(t, bounds)

    ra, rb = mk(a), mk(b)
    assert ra.overlaps(rb) == rb.overlaps(ra)
    inter = ra.intersection(rb)
    assert (inter is not None) == ra.overlaps(rb)
    if inter is not None:
        assert ra.contains(inter) and rb.contains(inter)


@given(extent=st.integers(2, 40), parts=st.integers(1, 6),
       halo=st.integers(0, 3))
def test_split_halo_stays_in_bounds(extent, parts, halo):
    r = Tensor("h", (extent,)).region()
    for chunk in r.split_dim_halo(0, parts, halo, halo):
        lo, hi = chunk.bounds[0]
        assert 0 <= lo < hi <= extent
