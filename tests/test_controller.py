"""Controller tests: SD, DD (hazards, TTT binding, streaming, accumulation
chains), PD (shared operands, commission register), RC routing, DMAC."""

import pytest

from repro.core.controller.demotion import DemotionDecoder, DMAKind
from repro.core.controller.dmac import DMAController
from repro.core.controller.parallel import ParallelDecomposer, shared_operands
from repro.core.controller.reduction import ReductionController, ReductionTarget
from repro.core.controller.sequential import SequentialDecomposer
from repro.core.decomposition import decompose_parallel, footprint
from repro.core.isa import Instruction, Opcode
from repro.core.memory.allocator import NodeMemoryManager
from repro.core.memory.ttt import TensorTranspositionTable
from repro.core.tensor import Tensor


def matmul_inst(m, k, n, names=("a", "b", "c")):
    a, b, c = (Tensor(nm, s) for nm, s in
               zip(names, [(m, k), (k, n), (m, n)]))
    return Instruction(Opcode.MATMUL, (a.region(), b.region()), (c.region(),))


class TestSequentialDecomposer:
    def test_pump_moves_iq_to_sq(self):
        sd = SequentialDecomposer(10 ** 9)
        sd.push([matmul_inst(4, 4, 4), matmul_inst(8, 8, 8)])
        assert sd.pump() == 2
        assert len(sd) == 2
        assert sd.next_step() is not None

    def test_capacity_respected(self):
        inst = matmul_inst(32, 32, 32)
        cap = footprint(inst) // 4
        sd = SequentialDecomposer(cap)
        for step in sd.decompose(inst):
            assert footprint(step) <= cap

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SequentialDecomposer(0)

    def test_empty_queue_returns_none(self):
        assert SequentialDecomposer(100).next_step() is None


def make_dd(capacity=1 << 20, with_ttt=True, local_uids=None):
    memory = NodeMemoryManager(capacity)
    ttt = TensorTranspositionTable() if with_ttt else None
    return DemotionDecoder(memory, ttt, local_uids), memory, ttt


class TestDemotionDecoder:
    def test_generates_loads_and_stores(self):
        dd, _, _ = make_dd()
        inst = matmul_inst(4, 4, 4)
        decoded = dd.decode(0, inst)
        assert len(decoded.loads) == 2
        assert len(decoded.stores) == 1
        assert decoded.load_bytes == sum(r.nbytes for r in inst.inputs)

    def test_duplicate_operand_loaded_once(self):
        a = Tensor("a", (8,))
        o = Tensor("o", (8,))
        inst = Instruction(Opcode.ADD1D, (a.region(), a.region()), (o.region(),))
        dd, _, _ = make_dd()
        assert len(dd.decode(0, inst).loads) == 1

    def test_ttt_elides_repeated_load(self):
        dd, _, _ = make_dd()
        i1 = matmul_inst(4, 4, 4)
        i2 = Instruction(Opcode.MATMUL, i1.inputs,
                         (Tensor("c2", (4, 4)).region(),))
        dd.decode(0, i1)
        decoded = dd.decode(1, i2)
        assert decoded.ttt_hits == 2
        assert decoded.loads == []
        assert decoded.elided_bytes == sum(r.nbytes for r in i1.inputs)

    def test_raw_forwarded_through_ttt(self):
        """A consumer of the previous output reads the local copy: no stall."""
        dd, _, _ = make_dd()
        i1 = matmul_inst(4, 4, 4)
        out = i1.outputs[0]
        act = Instruction(Opcode.ACT1D, (out,),
                          (Tensor("r", (4, 4)).region(),), {"func": "relu"})
        dd.decode(0, i1)
        decoded = dd.decode(1, act)
        assert decoded.forwarded
        assert decoded.stall_on is None

    def test_raw_stalls_without_ttt(self):
        dd, _, _ = make_dd(with_ttt=False)
        i1 = matmul_inst(4, 4, 4)
        act = Instruction(Opcode.ACT1D, (i1.outputs[0],),
                          (Tensor("r", (4, 4)).region(),), {"func": "relu"})
        dd.decode(0, i1)
        decoded = dd.decode(1, act)
        assert decoded.stall_on == 0
        assert dd.stall_count == 1

    def test_raw_overlap_not_exact_stalls(self):
        """Partial overlap cannot be forwarded (exact-match TTT) -> stall."""
        dd, _, _ = make_dd()
        i1 = matmul_inst(8, 4, 4)
        sub = i1.outputs[0][0:2, :]
        act = Instruction(Opcode.ACT1D, (sub,),
                          (Tensor("r", (2, 4)).region(),), {"func": "relu"})
        dd.decode(0, i1)
        decoded = dd.decode(1, act)
        assert not decoded.forwarded
        assert decoded.stall_on == 0

    def test_local_partials_use_static_no_dma(self):
        p = Tensor("%sd0", (16,), space="partial")
        o = Tensor("o", (1,))
        inst = Instruction(Opcode.HSUM1D, (p.region(),), (o.region(),))
        dd, memory, _ = make_dd(local_uids={p.uid})
        decoded = dd.decode(0, inst, owner=0)
        assert decoded.loads == []  # partial never crosses the parent link
        assert any(b.segment.startswith("static") for b in memory.live_blocks())

    def test_streaming_fallback_on_overflow(self):
        dd, _, _ = make_dd(capacity=512)  # recycled segment = 128 B
        inst = matmul_inst(16, 16, 16)  # operands 512 B each
        decoded = dd.decode(0, inst)
        assert decoded.streamed_bytes > 0
        assert len(decoded.loads) == 2  # still transferred, just not resident

    def test_accumulation_chain_single_writeback(self):
        """Chain: first part holds locally, mid parts free, last part stores."""
        dd, _, _ = make_dd()
        base = matmul_inst(4, 12, 4)
        out = base.outputs[0]
        a, b = base.inputs
        chain = []
        for i, (lo, hi) in enumerate(((0, 4), (4, 8), (8, 12))):
            attrs = {"accumulate": i > 0, "acc_local_out": i < 2, "acc_chain": 5}
            chain.append(Instruction(Opcode.MATMUL,
                                     (a[:, lo:hi], b[lo:hi, :]), (out,), attrs))
        d0 = dd.decode(0, chain[0], owner=0)
        d1 = dd.decode(1, chain[1], owner=0)
        d2 = dd.decode(2, chain[2], owner=0)
        assert d0.stores == [] and d1.stores == []
        assert len(d2.stores) == 1  # exactly one write-back for the chain

    def test_inherited_accumulate_loads_prior_value(self):
        """A node receiving accumulate=True must fetch the partial sum."""
        dd, _, _ = make_dd()
        base = matmul_inst(4, 4, 4)
        inst = Instruction(base.opcode, base.inputs, base.outputs,
                           {"accumulate": True, "acc_local_out": True,
                            "acc_chain": 9})
        decoded = dd.decode(0, inst, owner=0)
        keys = {req.region_key for req in decoded.loads}
        assert base.outputs[0].key() in keys


class TestParallelDecomposer:
    def test_shared_operands_detected(self):
        split = decompose_parallel(matmul_inst(8, 8, 8), 4)
        keys, nbytes = shared_operands(split.parts)
        assert len(keys) == 1  # the left matrix
        assert nbytes == split.parts[0].inputs[0].nbytes

    def test_plan_shared_bytes(self):
        pd = ParallelDecomposer(4)
        plan = pd.plan(matmul_inst(8, 8, 8))
        assert plan.shared_bytes > 0
        assert plan.whole is not None

    def test_commission_register_drains_on_plan(self):
        pd = ParallelDecomposer(2)
        red = Instruction(Opcode.ADD1D,
                          (Tensor("x", (4,)).region(), Tensor("y", (4,)).region()),
                          (Tensor("z", (4,)).region(),))
        pd.commission([red])
        plan = pd.plan(matmul_inst(4, 4, 4))
        assert plan.commissioned == [red]
        assert pd.plan(matmul_inst(4, 4, 4)).commissioned == []

    def test_plan_drain(self):
        pd = ParallelDecomposer(2)
        red = Instruction(Opcode.ADD1D,
                          (Tensor("x", (4,)).region(), Tensor("y", (4,)).region()),
                          (Tensor("z", (4,)).region(),))
        pd.commission([red])
        assert pd.plan_drain() == [red]
        assert pd.plan_drain() == []

    def test_rejects_zero_ffus(self):
        with pytest.raises(ValueError):
            ParallelDecomposer(0)


class TestReductionController:
    def _red(self, n=1024):
        return [Instruction(Opcode.ADD1D,
                            (Tensor("x", (n,)).region(), Tensor("y", (n,)).region()),
                            (Tensor("z", (n,)).region(),))]

    def test_lfu_available_keeps_reduction(self):
        rc = ReductionController(lfu_ops_per_s=1e9, ffu_ops_per_s=2e9)
        c = rc.route(self._red())
        assert c.target is ReductionTarget.LFU
        assert c.predicted_lfu_time > 0

    def test_no_lfu_commissions(self):
        rc = ReductionController(lfu_ops_per_s=0.0, ffu_ops_per_s=1e9)
        assert rc.route(self._red()).target is ReductionTarget.COMMISSION

    def test_large_ffu_speedup_commissions(self):
        rc = ReductionController(lfu_ops_per_s=1e6, ffu_ops_per_s=1e12,
                                 speedup_threshold=4.0)
        assert rc.route(self._red()).target is ReductionTarget.COMMISSION

    def test_empty_reduction_noop(self):
        rc = ReductionController(1e9, 1e9)
        c = rc.route([])
        assert c.instructions == [] and c.predicted_lfu_time == 0.0


class TestDMAC:
    def test_transfer_accounting(self):
        from repro.core.controller.demotion import DMARequest
        dmac = DMAController(private_rate=1e9, broadcast_rate=4e9)
        reqs = [
            DMARequest(("k1",), 1000, DMAKind.LOAD, 0),
            DMARequest(("k2",), 4000, DMAKind.BROADCAST, 0),
            DMARequest(("k3",), 2000, DMAKind.STORE, 0),
        ]
        t = dmac.transfer_time(reqs)
        assert t == pytest.approx(1000 / 1e9 + 4000 / 4e9 + 2000 / 1e9)
        assert dmac.log.load_bytes == 1000
        assert dmac.log.broadcast_bytes == 4000
        assert dmac.log.store_bytes == 2000
        assert dmac.log.total_bytes == 7000

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            DMAController(0, 1)
