"""Reference kernel tests: every FISA operation against hand-computed or
independently-derived results."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro import ops
from repro.core.isa import Opcode
from repro.ops import conv as conv_mod
from repro.ops import eltwise, linalg, pool, sortcount


class TestConv2D:
    def test_identity_kernel(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        w = np.ones((1, 1, 1, 1))
        np.testing.assert_allclose(conv_mod.conv2d(x, w), x)

    def test_box_filter(self):
        x = np.ones((1, 4, 4, 1))
        w = np.ones((2, 2, 1, 1))
        out = conv_mod.conv2d(x, w)
        assert out.shape == (1, 3, 3, 1)
        np.testing.assert_allclose(out, 4.0)

    def test_stride(self):
        x = np.ones((1, 6, 6, 1))
        w = np.ones((2, 2, 1, 1))
        assert conv_mod.conv2d(x, w, stride=2).shape == (1, 3, 3, 1)

    def test_channel_mixing(self):
        x = np.zeros((1, 2, 2, 2))
        x[..., 0], x[..., 1] = 1.0, 10.0
        w = np.zeros((1, 1, 2, 1))
        w[0, 0, 0, 0], w[0, 0, 1, 0] = 2.0, 3.0
        np.testing.assert_allclose(conv_mod.conv2d(x, w), 32.0)

    def test_matches_explicit_sum(self, rng):
        x = rng.normal(size=(2, 5, 5, 3))
        w = rng.normal(size=(3, 3, 3, 4))
        out = conv_mod.conv2d(x, w)
        # check one output element explicitly
        want = sum(
            x[1, 1 + i, 2 + j, c] * w[i, j, c, 3]
            for i in range(3) for j in range(3) for c in range(3)
        )
        np.testing.assert_allclose(out[1, 1, 2, 3], want)

    def test_rejects_channel_mismatch(self):
        with pytest.raises(ValueError):
            conv_mod.conv2d(np.ones((1, 4, 4, 2)), np.ones((3, 3, 3, 1)))

    def test_rejects_oversized_kernel(self):
        with pytest.raises(ValueError):
            conv_mod.conv2d(np.ones((1, 2, 2, 1)), np.ones((3, 3, 1, 1)))


class TestConv3D:
    def test_box_filter(self):
        x = np.ones((1, 3, 3, 3, 1))
        w = np.ones((2, 2, 2, 1, 1))
        out = conv_mod.conv3d(x, w)
        assert out.shape == (1, 2, 2, 2, 1)
        np.testing.assert_allclose(out, 8.0)

    def test_reduces_to_2d_when_depth1(self, rng):
        x = rng.normal(size=(1, 1, 5, 5, 2))
        w = rng.normal(size=(1, 3, 3, 2, 3))
        out3 = conv_mod.conv3d(x, w)
        out2 = conv_mod.conv2d(x[:, 0], w[0])
        np.testing.assert_allclose(out3[:, 0], out2)


class TestLRN:
    def test_uniform_input(self):
        x = np.ones((1, 2, 2, 8))
        out = conv_mod.lrn(x, size=5, alpha=1e-4, beta=0.75, k=2.0)
        # interior channel: denom = 2 + 1e-4 * 5
        want = 1.0 / (2.0 + 1e-4 * 5) ** 0.75
        np.testing.assert_allclose(out[0, 0, 0, 4], want)

    def test_edge_clipping(self):
        x = np.ones((1, 1, 1, 8))
        out = conv_mod.lrn(x, size=5)
        # channel 0 window covers channels [0, 3): 3 elements
        want = 1.0 / (2.0 + 1e-4 * 3) ** 0.75
        np.testing.assert_allclose(out[0, 0, 0, 0], want)


class TestPooling:
    def test_max(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = pool.max_pool2d(x, 2, 2, 2, 2)
        np.testing.assert_allclose(out[0, :, :, 0], [[5, 7], [13, 15]])

    def test_min(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = pool.min_pool2d(x, 2, 2, 2, 2)
        np.testing.assert_allclose(out[0, :, :, 0], [[0, 2], [8, 10]])

    def test_avg(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = pool.avg_pool2d(x, 2, 2, 2, 2)
        np.testing.assert_allclose(out[0, 0, 0, 0], (0 + 1 + 4 + 5) / 4)

    def test_overlapping_windows(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = pool.max_pool2d(x, 3, 3, 1, 1)
        assert out.shape == (1, 2, 2, 1)
        assert out[0, 0, 0, 0] == 10

    def test_rejects_oversized_window(self):
        with pytest.raises(ValueError):
            pool.max_pool2d(np.ones((1, 2, 2, 1)), 3, 3, 1, 1)


class TestLinalg:
    def test_matmul(self, rng):
        a, b = rng.normal(size=(4, 5)), rng.normal(size=(5, 6))
        np.testing.assert_allclose(linalg.matmul(a, b), a @ b)

    def test_matmul_rejects_mismatch(self):
        with pytest.raises(ValueError):
            linalg.matmul(np.ones((2, 3)), np.ones((4, 5)))

    def test_euclidian_known(self):
        x = np.array([[0.0, 0.0], [1.0, 1.0]])
        y = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = linalg.euclidian(x, y)
        np.testing.assert_allclose(d, [[0.0, 25.0], [2.0, 13.0]])

    def test_euclidian_symmetry(self, rng):
        x = rng.normal(size=(6, 4))
        np.testing.assert_allclose(linalg.euclidian(x, x),
                                   linalg.euclidian(x, x).T, atol=1e-12)

    def test_euclidian_rejects_dim_mismatch(self):
        with pytest.raises(ValueError):
            linalg.euclidian(np.ones((2, 3)), np.ones((2, 4)))


class TestSortCount:
    def test_sort(self, rng):
        x = rng.normal(size=50)
        np.testing.assert_array_equal(sortcount.sort1d(x), np.sort(x))

    def test_merge_two(self):
        a, b = np.array([1.0, 4.0, 9.0]), np.array([2.0, 3.0, 10.0])
        np.testing.assert_array_equal(sortcount.merge1d([a, b]),
                                      [1, 2, 3, 4, 9, 10])

    def test_merge_kway(self, rng):
        parts = [np.sort(rng.normal(size=n)) for n in (5, 1, 8, 3)]
        merged = sortcount.merge1d(parts)
        np.testing.assert_array_equal(merged, np.sort(np.concatenate(parts)))

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            sortcount.merge1d([])

    def test_count_nonzero(self):
        x = np.array([0.0, 1.0, 0.0, 2.0, 3.0])
        assert sortcount.count1d(x)[0] == 3

    def test_count_value(self):
        x = np.array([1.0, 2.0, 2.0, 3.0])
        assert sortcount.count1d(x, value=2.0)[0] == 2


class TestEltwise:
    def test_binary(self, rng):
        a, b = rng.normal(size=7), rng.normal(size=7)
        np.testing.assert_allclose(eltwise.add(a, b), a + b)
        np.testing.assert_allclose(eltwise.sub(a, b), a - b)
        np.testing.assert_allclose(eltwise.mul(a, b), a * b)

    @pytest.mark.parametrize("func,ref", [
        ("relu", lambda x: np.maximum(x, 0)),
        ("sigmoid", lambda x: 1 / (1 + np.exp(-x))),
        ("tanh", np.tanh),
        ("exp", np.exp),
        ("identity", lambda x: x),
        ("neg", lambda x: -x),
    ])
    def test_activations(self, rng, func, ref):
        x = rng.normal(size=11)
        np.testing.assert_allclose(eltwise.activation(x, func), ref(x))

    def test_sqrt_clamps_negative(self):
        out = eltwise.activation(np.array([-4.0, 9.0]), "sqrt")
        np.testing.assert_allclose(out, [0.0, 3.0])

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            eltwise.activation(np.ones(3), "nope")

    def test_horizontal(self, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(eltwise.hsum(x), [x.sum()])
        np.testing.assert_allclose(eltwise.hprod(x + 3), [(x + 3).prod()])


class TestDispatch:
    def test_execute_returns_tuple(self, rng):
        out = ops.execute(Opcode.MATMUL,
                          [rng.normal(size=(2, 3)), rng.normal(size=(3, 2))], {})
        assert isinstance(out, tuple) and len(out) == 1

    def test_unknown_kernel(self):
        class Fake:
            pass
        with pytest.raises(NotImplementedError):
            ops.kernel_for(Fake())

    def test_pool_strides_default_to_window(self, rng):
        x = rng.normal(size=(1, 6, 6, 1))
        (out,) = ops.execute(Opcode.MAX2D, [x], {"kh": 3, "kw": 3})
        assert out.shape == (1, 2, 2, 1)


# -- property-based ------------------------------------------------------------

floats = st.floats(min_value=-100, max_value=100, allow_nan=False)


@given(arrays(float, st.integers(1, 40), elements=floats))
def test_sort_is_sorted_permutation(x):
    s = sortcount.sort1d(x)
    assert np.all(np.diff(s) >= 0)
    np.testing.assert_array_equal(np.sort(x), s)


@given(st.lists(arrays(float, st.integers(1, 15), elements=floats),
                min_size=1, max_size=5))
def test_merge_equals_global_sort(parts):
    sorted_parts = [np.sort(p) for p in parts]
    merged = sortcount.merge1d(sorted_parts)
    np.testing.assert_array_equal(merged, np.sort(np.concatenate(parts)))


@given(arrays(float, st.tuples(st.integers(1, 6), st.integers(1, 6)),
              elements=floats))
def test_euclidian_nonnegative_zero_diagonal(x):
    d = linalg.euclidian(x, x)
    assert np.all(d >= -1e-9)
    np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-9)
