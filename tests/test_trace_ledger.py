"""Cross-process tracing, worker telemetry shipping, and the run ledger."""

import json
import warnings

import pytest

from repro import obs, telemetry
from repro.obs import (
    LEDGER_SCHEMA,
    RunLedger,
    TraceContext,
    WorkerTelemetry,
    build_wire,
    current_trace,
    ensure_trace,
    follow_events,
    format_top,
    get_ledger,
    ledger_enabled,
    merge_worker_telemetry,
    parse_exposition,
    record_report,
    record_run,
    trace_scope,
    worker_capture,
)
from repro.obs.worker import ledger_fields

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def clean_global_obs():
    """Every test starts and ends with disabled, empty global obs state."""
    log = obs.get_event_log()
    log.disable()
    log.reset()
    log.close_sink()
    telemetry.disable()
    telemetry.reset()
    yield
    log = obs.get_event_log()
    log.disable()
    log.reset()
    log.close_sink()
    telemetry.disable()
    telemetry.reset()


class TestTraceContext:
    def test_new_mints_distinct_ids(self):
        a, b = TraceContext.new(), TraceContext.new()
        assert len(a.trace_id) == 32 and len(a.span_id) == 16
        assert a.trace_id != b.trace_id

    def test_child_keeps_trace_new_span(self):
        parent = TraceContext.new()
        child = parent.child(worker=3)
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id
        assert child.worker == 3

    def test_wire_round_trip(self):
        ctx = TraceContext.new().child(worker=1)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_scope_sets_and_restores(self):
        assert current_trace() is None
        ctx = TraceContext.new()
        with trace_scope(ctx):
            assert current_trace() == ctx
        assert current_trace() is None

    def test_scope_stamps_event_context(self):
        log = obs.get_event_log()
        log.enable()
        ctx = TraceContext.new().child(worker=2)
        with trace_scope(ctx):
            obs.log_event("sim", "tick")
        [rec] = log.events()
        assert rec["ctx"]["trace_id"] == ctx.trace_id
        assert rec["ctx"]["worker"] == 2

    def test_ensure_trace_reuses_enclosing(self):
        with ensure_trace() as outer:
            with ensure_trace() as inner:
                assert inner.trace_id == outer.trace_id
        assert current_trace() is None


class TestRunLedger:
    def test_record_stamps_schema_and_trace(self, tmp_path):
        ledger = RunLedger(tmp_path)
        with ensure_trace() as ctx:
            row = ledger.record("run", benchmark="mm_fc")
        assert row["schema"] == LEDGER_SCHEMA
        assert row["trace_id"] == ctx.trace_id
        [read] = ledger.rows()
        assert read["benchmark"] == "mm_fc"

    def test_rows_filter_by_trace(self, tmp_path):
        ledger = RunLedger(tmp_path)
        with ensure_trace() as ctx:
            ledger.record("run")
            ledger.record("run")
        ledger.record("run", trace_id="elsewhere")
        assert len(ledger.rows(trace_id=ctx.trace_id)) == 2
        assert len(ledger.rows()) == 3

    def test_traces_summary(self, tmp_path):
        ledger = RunLedger(tmp_path)
        with ensure_trace() as ctx:
            ledger.record("simulate", benchmark="K-NN", machine="f1")
            ledger.record("sweep-cell", benchmark="K-NN", machine="f1")
        summary = ledger.traces()[ctx.trace_id]
        assert summary["rows"] == 2
        assert summary["kinds"] == ["simulate", "sweep-cell"]
        assert summary["benchmarks"] == ["K-NN"]

    def test_corrupt_index_warns_and_rebuilds(self, tmp_path):
        ledger = RunLedger(tmp_path)
        with ensure_trace() as ctx:
            ledger.record("run")
            ledger.record("run")
            ledger.index_path.write_text("{ not json !!!")
            with pytest.warns(RuntimeWarning, match="corrupt"):
                ledger.record("run")
        assert ledger.traces()[ctx.trace_id]["rows"] == 3
        assert len(ledger.rows(trace_id=ctx.trace_id)) == 3

    def test_missing_index_rebuilt_from_runs(self, tmp_path):
        ledger = RunLedger(tmp_path)
        with ensure_trace() as ctx:
            ledger.record("run")
        ledger.index_path.unlink()
        assert RunLedger(tmp_path).traces()[ctx.trace_id]["rows"] == 1

    def test_torn_final_line_skipped(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record("run", benchmark="ok")
        with open(ledger.runs_path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": "repro.obs.ledger", "v": 1, "kind": "tor')
        rows = ledger.rows()
        assert len(rows) == 1 and rows[0]["benchmark"] == "ok"

    def test_rows_last_is_bounded_tail_and_skips_torn_lines(self, tmp_path):
        """``rows(last=N)`` streams through a bounded deque (PR 9
        satellite): the newest N decodable rows come back in order even
        with a torn trailing line, without materializing the full log."""
        ledger = RunLedger(tmp_path)
        for i in range(20):
            ledger.record("run", benchmark=f"b{i}")
        with open(ledger.runs_path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": "repro.obs.ledger", "v": 1, "kind": "tor')
        tail = ledger.rows(last=3)
        assert [r["benchmark"] for r in tail] == ["b17", "b18", "b19"]
        assert ledger.rows(last=0) == []
        assert len(ledger.rows(last=100)) == 20
        # composes with the trace filter
        with ensure_trace() as ctx:
            ledger.record("run", benchmark="traced1")
            ledger.record("run", benchmark="traced2")
        tail = ledger.rows(trace_id=ctx.trace_id, last=1)
        assert [r["benchmark"] for r in tail] == ["traced2"]

    @pytest.mark.parametrize("value", ["off", "0", "none", "disabled", ""])
    def test_off_values_disable(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", value)
        assert not ledger_enabled()
        assert get_ledger() is None
        assert record_run("run") is None

    def test_env_directory_respected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "custom"))
        row = record_run("run", benchmark="mm_fc")
        assert row is not None
        assert (tmp_path / "custom" / "runs.jsonl").exists()

    def test_record_run_fail_soft_on_unwritable_dir(self, tmp_path):
        target = tmp_path / "file-not-dir"
        target.write_text("x")
        assert record_run("run", directory=target / "sub") is None

    def test_record_counts_when_registry_enabled(self, tmp_path):
        telemetry.enable()
        RunLedger(tmp_path).record("run")
        reg = telemetry.get_registry()
        assert reg.value("ledger.rows", {"kind": "run"}) == 1

    def test_record_report_extracts_provenance(self, tmp_path):
        telemetry.enable()
        with ensure_trace() as ctx:
            report = telemetry.build_run_report(
                benchmark="mm_fc", machine="tiny",
                registry=telemetry.get_registry(),
                tracer=telemetry.get_tracer())
            row = record_report(report, kind="profile", directory=tmp_path,
                                fingerprint="abcd1234")
        assert row["benchmark"] == "mm_fc"
        assert row["machine"] == "tiny"
        assert row["trace_id"] == ctx.trace_id
        assert row["fingerprint"] == "abcd1234"

    def test_record_report_fail_soft(self, tmp_path):
        assert record_report(object(), directory=tmp_path) is None


class TestWorkerTelemetry:
    def _wire(self, ctx=None, worker=1):
        telemetry.enable()
        obs.get_event_log().enable()
        return build_wire(ctx or TraceContext.new(), worker)

    def test_wire_carries_enable_flags(self):
        ctx = TraceContext.new()
        wire = self._wire(ctx)
        assert wire["counters"] and wire["tracing"] and wire["events"]
        assert TraceContext.from_wire(wire["trace"]) == ctx

    def test_capture_ships_deltas_not_absolutes(self):
        ctx = TraceContext.new()
        reg = telemetry.get_registry()
        telemetry.enable()
        reg.count("sim.cycles", 100)  # pre-existing (inherited on fork)
        wire = self._wire(ctx)
        with worker_capture(wire) as capture:
            reg.count("sim.cycles", 7)
        wt = capture.telemetry
        assert wt.trace_id == ctx.trace_id
        assert wt.worker == 1
        assert ("sim.cycles", (), 7) in wt.counters
        assert wt.wall_s >= 0

    def test_capture_ships_span_rollups_and_events(self):
        wire = self._wire()
        with worker_capture(wire) as capture:
            with telemetry.span("cell.simulate", cat="sim"):
                obs.log_event("sim", "cell.start")
        wt = capture.telemetry
        assert wt.spans["cell.simulate"]["count"] == 1
        assert wt.events_total == 1
        assert wt.events[0]["event"] == "cell.start"
        assert wt.events[0]["ctx"]["trace_id"] == wt.trace_id

    def test_merge_labels_series_with_worker(self):
        telemetry.enable()
        wt = WorkerTelemetry(
            worker=2, trace_id="t" * 32, span_id="s" * 16, wall_s=0.5,
            counters=[("sim.cycles", (("level", "0"),), 7.0)],
            gauges=[("obs.heartbeat", (), 3.0)],
            spans={"cell": {"cat": "sim", "count": 2, "total_s": 0.4,
                            "max_s": 0.3}},
            events_total=5)
        merge_worker_telemetry(wt)
        reg = telemetry.get_registry()
        assert reg.value("sim.cycles", {"level": "0", "worker": "2"}) == 7
        assert reg.value("worker.spans", {"name": "cell", "worker": "2"}) == 2
        assert reg.value("worker.wall_seconds", {"worker": "2"}) == 0.5
        assert reg.value("worker.events", {"worker": "2"}) == 5

    def test_merge_ingests_events_into_parent_log(self):
        log = obs.get_event_log()
        log.enable()
        wt = WorkerTelemetry(
            worker=0, trace_id="t" * 32, span_id="s" * 16,
            events=[{"schema": "repro.obs.event", "v": 1, "seq": 9,
                     "ts": 1.0, "severity": "info", "subsystem": "sim",
                     "event": "shipped"}])
        merge_worker_telemetry(wt)
        [rec] = log.events()
        assert rec["event"] == "shipped"
        assert rec["worker"] == 0
        assert rec["origin_seq"] == 9
        assert rec["seq"] == 1  # re-stamped by the parent log

    def test_ledger_fields_bounded(self):
        wt = WorkerTelemetry(
            worker=1, trace_id="t" * 32, span_id="s" * 16, wall_s=0.25,
            counters=[(f"c{i}", (), 1.0) for i in range(80)],
            events=[{"event": f"e{i}"} for i in range(40)],
            events_total=40)
        fields = ledger_fields(wt, max_series=64, max_events=20)
        assert fields["makespan_s"] == 0.25
        assert len(fields["counters"]) == 64
        assert fields["counters_truncated"] == 16
        assert len(fields["events"]) == 20


class TestEventIngestAndRotation:
    def test_ingest_requires_enabled(self):
        log = obs.get_event_log()
        assert log.ingest({"event": "x"}) is None

    def test_sink_rotation_rolls_once(self, tmp_path):
        log = obs.get_event_log()
        log.enable()
        path = tmp_path / "events.jsonl"
        log.attach_jsonl(str(path), max_bytes=300)
        for i in range(50):
            obs.log_event("sim", "tick", i=i)
        log.close_sink()
        assert log.sink_rotations > 0
        rolled = tmp_path / "events.jsonl.1"
        assert rolled.exists()
        assert path.stat().st_size <= 300
        # both files hold only whole, decodable lines
        for p in (path, rolled):
            with open(p, encoding="utf-8") as fh:
                assert all(rec is not None for rec, _ in obs.iter_jsonl(fh))

    def test_rotation_keeps_at_least_one_line_per_file(self, tmp_path):
        log = obs.get_event_log()
        log.enable()
        path = tmp_path / "events.jsonl"
        log.attach_jsonl(str(path), max_bytes=10)  # smaller than any line
        obs.log_event("sim", "tick")
        obs.log_event("sim", "tock")
        log.close_sink()
        with open(path, encoding="utf-8") as fh:
            assert sum(1 for _ in fh) == 1

    def test_unbounded_by_default(self, tmp_path):
        log = obs.get_event_log()
        log.enable()
        log.attach_jsonl(str(tmp_path / "e.jsonl"))
        for _ in range(100):
            obs.log_event("sim", "tick")
        log.close_sink()
        assert log.sink_rotations == 0


class TestFollowEvents:
    def test_yields_appended_records(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"event": "first"}\n')
        appended = {"done": False}

        def fake_sleep(_s):
            if not appended["done"]:
                with open(path, "a", encoding="utf-8") as fh:
                    fh.write('{"event": "second"}\n')
                appended["done"] = True

        got = []
        stop = lambda: len(got) >= 2  # noqa: E731
        for rec in follow_events(path, poll_interval=0.01, stop=stop,
                                 _sleep=fake_sleep):
            got.append(rec["event"])
        assert got == ["first", "second"]

    def test_start_at_end_skips_existing(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"event": "old"}\n')
        state = {"appended": False}

        def fake_sleep(_s):
            if not state["appended"]:
                with open(path, "a", encoding="utf-8") as fh:
                    fh.write('{"event": "new"}\n')
                state["appended"] = True

        got = []
        for rec in follow_events(path, poll_interval=0.01,
                                 stop=lambda: len(got) >= 1,
                                 start_at_end=True, _sleep=fake_sleep):
            got.append(rec["event"])
        assert got == ["new"]

    def test_truncation_resets_position(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"event": "a"}\n{"event": "b"}\n')
        state = {"step": 0}

        def fake_sleep(_s):
            if state["step"] == 0:  # simulate rotation: shrink the file
                path.write_text('{"event": "fresh"}\n')
            state["step"] += 1

        got = []
        for rec in follow_events(path, poll_interval=0.01,
                                 stop=lambda: len(got) >= 3,
                                 _sleep=fake_sleep):
            got.append(rec["event"])
        assert got == ["a", "b", "fresh"]


class TestTopParsing:
    def test_parse_exposition(self):
        text = ('# TYPE repro_sim_busy_seconds counter\n'
                'repro_sim_busy_seconds_total{level="0",stage="compute"} 1.5\n'
                'repro_obs_healthy 1\n')
        samples = parse_exposition(text)
        assert samples[("repro_sim_busy_seconds_total",
                        (("level", "0"), ("stage", "compute")))] == 1.5
        assert samples[("repro_obs_healthy", ())] == 1.0

    def test_format_top_sections(self):
        samples = {
            ("repro_obs_healthy", ()): 1.0,
            ("repro_sim_busy_seconds_total",
             (("level", "0"), ("stage", "compute"))): 2.0,
            ("repro_sim_idle_seconds_total",
             (("cause", "dma"), ("level", "0"))): 0.5,
            ("repro_worker_wall_seconds_total", (("worker", "1"),)): 0.25,
        }
        text = format_top(samples)
        assert "health=OK" in text
        assert "dma=0.5s" in text
        assert "worker" in text


class TestCliTraceCommands:
    def _seed_ledger(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger"))
        with ensure_trace() as ctx:
            record_run("simulate", benchmark="K-NN", machine="f1",
                       makespan_s=0.5)
        return ctx.trace_id

    def test_trace_ls_json(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main
        trace_id = self._seed_ledger(tmp_path, monkeypatch)
        assert main(["trace", "ls", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.obs.trace_list"
        assert doc["traces"][0]["trace_id"] == trace_id

    def test_trace_show_prefix_json(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main
        trace_id = self._seed_ledger(tmp_path, monkeypatch)
        assert main(["trace", "show", trace_id[:8], "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.obs.trace"
        assert doc["trace_id"] == trace_id
        assert doc["rows"][0]["benchmark"] == "K-NN"

    def test_trace_show_unknown_exits_1(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main
        self._seed_ledger(tmp_path, monkeypatch)
        assert main(["trace", "show", "ffff"]) == 1

    def test_trace_ls_disabled_exits_2(self, monkeypatch, capsys):
        from repro.cli import main
        monkeypatch.setenv("REPRO_LEDGER", "off")
        assert main(["trace", "ls"]) == 2

    def test_plain_trace_still_writes_chrome_trace(self, tmp_path, capsys,
                                                   monkeypatch):
        from repro.cli import main
        monkeypatch.setenv("REPRO_LEDGER", "off")
        out = tmp_path / "t.json"
        assert main(["trace", "-m", "f1", "-b", "K-NN",
                     "-o", str(out)]) == 0
        assert out.exists()

    def test_plain_trace_without_benchmark_exits_2(self, capsys, monkeypatch):
        from repro.cli import main
        monkeypatch.setenv("REPRO_LEDGER", "off")
        assert main(["trace"]) == 2
