"""Observability layer tests: event log, flight recorder, live endpoint.

Everything here carries the ``obs`` marker (registered in pyproject.toml)
and runs in tier-1.  The acceptance scenarios from the observability PR
live here too: a live /metrics scrape during a simulation, the /healthz
flip under an injected stall, and the crash-bundle -> ``repro events
tail`` triage loop.
"""

import json
import time
import urllib.request

import numpy as np
import pytest

from repro import obs, telemetry
from repro.core.executor import FractalExecutor
from repro.core.store import TensorStore
from repro.obs import (
    EventLog,
    FlightRecorder,
    MetricsServer,
    Watchdog,
    check_openmetrics,
    crash_scope,
    escape_label_value,
    filter_events,
    format_events,
    load_events,
    metric_name,
    read_bundle_manifest,
    render_openmetrics,
)
from repro.sim import FractalSimulator
from repro.workloads import matmul_workload, mm_fc_workload

from conftest import tiny_machine

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def clean_global_obs():
    """Every test starts and ends with disabled, empty global obs state."""
    log = obs.get_event_log()
    log.disable()
    log.reset()
    log.close_sink()
    obs.install_watchdog(None)
    telemetry.disable()
    telemetry.reset()
    yield
    log = obs.get_event_log()
    log.disable()
    log.reset()
    log.close_sink()
    obs.install_watchdog(None)
    telemetry.disable()
    telemetry.reset()


def run_functional(workload, machine=None, seed=0):
    machine = machine or tiny_machine()
    rng = np.random.default_rng(seed)
    store = TensorStore()
    for t in list(workload.inputs.values()) + list(workload.params.values()):
        store.bind(t, rng.normal(size=t.shape))
    executor = FractalExecutor(machine, store)
    executor.run_program(workload.program)
    return executor


def http_get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.read().decode("utf-8")


# ---------------------------------------------------------------------------
# Event log
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_disabled_log_records_nothing(self):
        log = obs.get_event_log()
        assert obs.log_event("executor", "x") is None
        obs.logger("executor").info("ghost")
        assert log.events() == []
        assert log.summary()["total"] == 0

    def test_schema_fields_and_sequence(self):
        log = EventLog(enabled=True)
        r1 = log.emit("executor", "program.start", "info", instructions=3)
        r2 = log.emit("sim", "simulate.end", "info")
        assert r1["schema"] == obs.EVENT_SCHEMA and r1["v"] == 1
        assert r1["seq"] == 1 and r2["seq"] == 2
        assert r1["subsystem"] == "executor"
        assert r1["event"] == "program.start"
        assert r1["instructions"] == 3

    def test_context_propagation_and_nesting(self):
        log = EventLog(enabled=True)
        with obs.event_context(benchmark="mm_fc", machine="tiny"):
            with obs.event_context(instruction=3, opcode="MatMul"):
                rec = log.emit("ops", "dispatch.fail", "error", error="boom")
            outer = log.emit("executor", "program.end", "info")
        bare = log.emit("sim", "simulate.start", "info")
        assert rec["ctx"] == {"benchmark": "mm_fc", "machine": "tiny",
                              "instruction": 3, "opcode": "MatMul"}
        assert outer["ctx"] == {"benchmark": "mm_fc", "machine": "tiny"}
        assert "ctx" not in bare

    def test_inner_context_wins_on_collision(self):
        log = EventLog(enabled=True)
        with obs.event_context(phase="outer"):
            with obs.event_context(phase="inner"):
                rec = log.emit("sim", "x", "info")
        assert rec["ctx"]["phase"] == "inner"
        assert obs.current_context() == {}

    def test_min_severity_filters_and_counts(self):
        log = EventLog(enabled=True, min_severity="warn")
        assert log.emit("ops", "dispatch", "debug") is None
        assert log.emit("ops", "note", "info") is None
        assert log.emit("ops", "odd", "warn") is not None
        assert log.summary()["suppressed"] == 2
        assert log.summary()["total"] == 1

    def test_debug_sampling_keeps_first_of_each_name(self):
        log = EventLog(enabled=True, debug_sample=4)
        kept = [log.emit("ops", "dispatch", "debug", i=i) is not None
                for i in range(8)]
        assert kept == [True, False, False, False, True, False, False, False]
        # a different event name is independently sampled: first passes.
        assert log.emit("ops", "rare", "debug") is not None
        # info events are never sampled away.
        assert all(log.emit("ops", "hot", "info") is not None
                   for _ in range(5))

    def test_ring_eviction_counts_drops(self):
        log = EventLog(enabled=True, capacity=4)
        for i in range(10):
            log.emit("sim", "tick", "info", i=i)
        assert len(log.events()) == 4
        assert log.dropped == 6
        assert [e["i"] for e in log.events()] == [6, 7, 8, 9]
        assert log.summary() == {
            "total": 10, "retained": 4, "dropped": 6, "suppressed": 0,
            "by_severity": {"info": 10}, "by_subsystem": {"sim": 10}}

    def test_jsonl_sink_streams_and_survives_nonjson_fields(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(enabled=True)
        log.attach_jsonl(str(path))
        log.emit("executor", "start", "info", payload=object())
        log.emit("executor", "end", "info")
        log.close_sink()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["event"] == "start"

    def test_iter_jsonl_tolerates_corrupt_lines(self):
        lines = ['{"event": "ok"}', "{torn", "", '["not a dict"]']
        parsed = list(obs.iter_jsonl(lines))
        assert parsed[0] == ({"event": "ok"}, None)
        assert parsed[1][0] is None and parsed[2][0] is None

    def test_instrumented_run_emits_program_events(self):
        obs.get_event_log().enable()
        run_functional(mm_fc_workload())
        events = {e["event"] for e in obs.get_event_log().events()}
        assert "program.start" in events and "program.end" in events
        summary = obs.events_summary()
        assert summary["by_subsystem"].get("executor", 0) >= 2


class TestDisabledObsOverhead:
    def test_disabled_guard_cost_under_5_percent_of_matmul_run(self):
        """Same budget methodology as TestDisabledOverhead in
        test_telemetry.py: the disabled obs path is one flag check per
        site (plus one global load per beat), and that guard budget must
        stay under 5% of the functional runtime."""
        assert not obs.get_event_log().enabled
        w = matmul_workload(24)
        machine = tiny_machine()
        rng = np.random.default_rng(0)
        arrays = {t: rng.normal(size=t.shape) for t in w.inputs.values()}

        best = float("inf")
        for _ in range(3):
            store = TensorStore()
            for t, arr in arrays.items():
                store.bind(t, arr)
            executor = FractalExecutor(machine, store)
            t0 = time.perf_counter()
            executor.run_program(w.program)
            best = min(best, time.perf_counter() - t0)

        stats = executor.stats
        # one guard per fractal node + kernel dispatch + fan-out, plus a
        # beat per top-level instruction.
        events = (sum(stats.instructions_per_level.values())
                  + 2 * stats.kernel_calls + stats.fanouts + 8)
        log = obs.get_event_log()
        t0 = time.perf_counter()
        for _ in range(events):
            if log.enabled:  # pragma: no cover
                raise AssertionError("event log unexpectedly enabled")
            obs.beat()
        guard_cost = time.perf_counter() - t0
        assert guard_cost < 0.05 * best, (
            f"disabled-obs guards cost {guard_cost * 1e3:.3f} ms vs "
            f"{best * 1e3:.3f} ms run ({guard_cost / best:.1%})")


# ---------------------------------------------------------------------------
# OpenMetrics renderer
# ---------------------------------------------------------------------------


class TestOpenMetrics:
    def test_metric_name_mapping(self):
        assert metric_name("executor.kernel_calls") == \
            "repro_executor_kernel_calls"
        assert metric_name("sim.total_time_s") == "repro_sim_total_time_s"

    def test_label_value_escaping(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_round_trips_every_instrument_kind(self):
        reg = telemetry.CounterRegistry(enabled=True)
        reg.count("executor.instructions", 30, labels={"level": 0})
        reg.count("executor.instructions", 90, labels={"level": 1})
        reg.gauge("executor.max_depth").set(2)
        for v in (0.5, 1.5, 3.0):
            reg.histogram("sim.total_time_s").observe(v)
        text = render_openmetrics(reg)
        assert check_openmetrics(text) == []
        assert 'repro_executor_instructions_total{level="0"} 30' in text
        assert "# TYPE repro_executor_max_depth gauge" in text
        assert "repro_executor_max_depth 2" in text
        assert 'repro_sim_total_time_s_bucket{le="+Inf"} 3' in text
        assert "repro_sim_total_time_s_count 3" in text
        assert "repro_sim_total_time_s_sum 5" in text
        assert text.endswith("# EOF\n")

    def test_extra_gauges_and_nonfinite_clamp(self):
        reg = telemetry.CounterRegistry(enabled=True)
        text = render_openmetrics(reg, extra_gauges={
            "repro_obs_healthy": (1.0, "watchdog health"),
            "repro_obs_bad": (float("inf"), "clamped"),
        })
        assert check_openmetrics(text) == []
        assert "repro_obs_healthy 1" in text
        assert "repro_obs_bad 0" in text  # non-finite clamped, never emitted

    def test_checker_flags_bad_expositions(self):
        assert any("EOF" in p for p in check_openmetrics("no trailer\n"))
        assert any("value" in p.lower() for p in
                   check_openmetrics("repro_x nan\n# EOF\n"))
        assert check_openmetrics(
            "# TYPE repro_c counter\nrepro_c 1\n# EOF\n")  # missing _total
        assert check_openmetrics(
            "# HELP repro_h h\n# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\nrepro_h_bucket{le="2"} 3\n'
            "repro_h_count 5\nrepro_h_sum 2\n# EOF\n")  # non-monotonic

    def test_checker_accepts_live_registry_render(self):
        with telemetry.enabled_scope() as (reg, _tr):
            run_functional(mm_fc_workload())
            FractalSimulator(tiny_machine(),
                             collect_profiles=False).simulate(
                mm_fc_workload().program)
            text = render_openmetrics(reg)
        assert check_openmetrics(text) == []
        assert "repro_executor_kernel_calls" in text
        assert "repro_sim_" in text


# ---------------------------------------------------------------------------
# Flight recorder + crash bundles
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_marks_record_counter_deltas(self):
        with telemetry.enabled_scope() as (reg, _tr):
            rec = FlightRecorder(registry=reg)
            rec.mark("start")
            reg.count("executor.kernel_calls", 5)
            m = rec.mark("end")
        assert m["delta"] == {"executor.kernel_calls": 5.0}
        assert [x["label"] for x in rec.marks] == ["start", "end"]

    def test_manual_dump_bundle_layout(self, tmp_path):
        log = obs.get_event_log()
        log.enable()
        with telemetry.enabled_scope() as (reg, tr):
            with tr.span("host.profile", cat="host"):
                log.emit("executor", "program.start", "info")
            rec = FlightRecorder(event_log=log, registry=reg, tracer=tr)
            rec.report_context.update({"benchmark": "mm_fc",
                                       "machine": "tiny"})
            rec.mark("only")
            bundle = rec.dump(str(tmp_path), reason="manual-test")
        names = sorted(p.name for p in bundle.iterdir())
        assert names == ["MANIFEST.json", "config.json", "counters.json",
                         "events.jsonl", "marks.json", "report.json",
                         "spans.jsonl"]
        manifest = read_bundle_manifest(str(bundle))
        assert manifest["schema"] == obs.BUNDLE_SCHEMA
        assert manifest["reason"] == "manual-test"
        assert manifest["exception"] is None
        report = json.loads((bundle / "report.json").read_text())
        assert report["schema_version"] == 3
        assert report["notes"]["partial"] is True
        assert report["benchmark"] == "mm_fc"

    def test_crash_scope_dumps_and_reraises(self, tmp_path, capsys,
                                            monkeypatch):
        """Acceptance: an injected mid-run exception produces a crash
        bundle from which ``repro events tail`` reconstructs the failing
        instruction context."""
        from repro.core.isa import Opcode
        from repro.ops import dispatch

        log = obs.get_event_log()
        log.enable()
        w = mm_fc_workload()
        machine = tiny_machine()
        store = TensorStore()
        rng = np.random.default_rng(0)
        for t in list(w.inputs.values()) + list(w.params.values()):
            store.bind(t, rng.normal(size=t.shape))

        def poisoned(inputs, attrs):
            raise ValueError("injected kernel fault")

        # the activation follows the first MatMul, so the program dies
        # genuinely mid-run with instruction context on the stack.
        monkeypatch.setitem(dispatch._KERNELS, Opcode.ACT1D, poisoned)

        with telemetry.enabled_scope():
            with pytest.raises(ValueError, match="injected kernel fault"):
                with crash_scope(str(tmp_path), reason="injected",
                                 config={"benchmark": "mm_fc"}):
                    FractalExecutor(machine, store).run_program(w.program)
        err = capsys.readouterr().err
        assert "crash bundle written" in err
        (bundle,) = [p for p in tmp_path.iterdir() if p.is_dir()]
        assert (bundle / "traceback.txt").exists()
        manifest = read_bundle_manifest(str(bundle))
        assert manifest["exception"] is not None

        # triage loop: load the bundle's events and find the failure ctx
        events, bad = load_events(str(bundle))
        failures = filter_events(events, min_severity="error")
        assert failures, "expected error events in the bundle"
        ctx = failures[-1].get("ctx", {})
        assert "instruction" in ctx and "opcode" in ctx
        text = format_events(failures)
        assert "instruction" in text and "error" in text

    def test_crash_scope_passes_keyboardinterrupt_through(self, tmp_path):
        with pytest.raises(KeyboardInterrupt):
            with crash_scope(str(tmp_path), reason="ctrlc"):
                raise KeyboardInterrupt
        assert list(tmp_path.iterdir()) == []  # no bundle for Ctrl-C

    def test_failed_dump_never_masks_the_crash(self, tmp_path, capsys):
        target = tmp_path / "a-file-not-a-dir"
        target.write_text("occupied")
        with pytest.raises(ValueError, match="the real failure"):
            with crash_scope(str(target), reason="x"):
                raise ValueError("the real failure")
        assert "could not be written" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Watchdog + live endpoint
# ---------------------------------------------------------------------------


class TestWatchdog:
    def test_beat_keeps_healthy(self):
        t = [0.0]
        wd = Watchdog(stall_after_s=10.0, clock=lambda: t[0])
        assert wd.healthy
        t[0] = 9.0
        assert wd.healthy
        wd.beat()
        t[0] = 18.0
        assert wd.healthy  # 9s since beat
        t[0] = 25.0
        assert not wd.healthy  # 16s since beat

    def test_status_and_health_section(self):
        t = [0.0]
        wd = Watchdog(stall_after_s=5.0, clock=lambda: t[0])
        wd.beat()
        t[0] = 2.0
        doc = wd.status()
        assert doc["status"] == "ok" and doc["healthy"]
        assert doc["heartbeat_age_s"] == pytest.approx(2.0)
        section = wd.health_section()
        assert "status" not in section and section["healthy"] is True

    def test_global_beat_is_noop_when_unarmed(self):
        assert obs.get_watchdog() is None
        obs.beat()  # must not raise
        wd = obs.install_watchdog(Watchdog())
        obs.beat()
        assert wd.beats == 1

    def test_status_reports_uptime_and_per_source_beat_ages(self):
        """`uptime_s` and per-source `last_beat_age_s` distinguish "just
        started" from "stalled" (PR 9 satellite); 200/503 unchanged."""
        t = [0.0]
        wd = Watchdog(stall_after_s=10.0, clock=lambda: t[0])
        wd.beat("executor")
        t[0] = 3.0
        wd.beat("sim")
        t[0] = 5.0
        doc = wd.status()
        assert doc["uptime_s"] == pytest.approx(5.0)
        assert doc["sources"]["executor"]["last_beat_age_s"] == pytest.approx(5.0)
        assert doc["sources"]["sim"]["last_beat_age_s"] == pytest.approx(2.0)
        assert doc["healthy"]  # newest beat 2s ago < 10s budget

    def test_unsourced_beats_do_not_grow_sources(self):
        wd = Watchdog()
        wd.beat()
        assert wd.status()["sources"] == {}

    def test_executor_beats_when_armed(self):
        wd = obs.install_watchdog(Watchdog())
        run_functional(mm_fc_workload())
        assert wd.beats >= 3  # one per top-level instruction

    def test_plan_replay_beats_and_reports_progress(self):
        """The replay fast path stays observable: per-step watchdog beats
        plus strided ``replay.progress`` debug events with step indexes."""
        import repro.core.executor as executor_mod
        from repro.core.store import TensorStore
        from repro.plan import compile_program

        w = mm_fc_workload()
        machine = tiny_machine()
        plan = compile_program(machine, w.program)
        rng = np.random.default_rng(0)
        store = TensorStore()
        for t in list(w.inputs.values()) + list(w.params.values()):
            store.bind(t, rng.normal(size=t.shape))

        wd = obs.install_watchdog(Watchdog())
        log = obs.get_event_log()
        log.enable()
        old_stride = executor_mod.REPLAY_PROGRESS_STRIDE
        executor_mod.REPLAY_PROGRESS_STRIDE = 2
        try:
            FractalExecutor(machine, store).run_program(w.program, plan=plan)
        finally:
            executor_mod.REPLAY_PROGRESS_STRIDE = old_stride
        assert wd.beats >= plan.n_steps
        names = [e["event"] for e in log.events()]
        assert "replay.start" in names and "replay.end" in names
        progress = [e for e in log.events() if e["event"] == "replay.progress"]
        assert progress
        assert all(e["steps"] == plan.n_steps for e in progress)
        assert progress[0]["step"] == 2


class TestMetricsServer:
    def test_scrape_during_simulation_is_valid_openmetrics(self):
        """Acceptance: a live /metrics scrape during a simulation returns
        a valid OpenMetrics exposition including sim + executor series."""
        log = obs.get_event_log()
        log.enable()
        wd = obs.install_watchdog(Watchdog())
        with telemetry.enabled_scope() as (reg, _tr):
            run_functional(mm_fc_workload())
            with MetricsServer(registry=reg, event_log=log,
                               watchdog=wd) as server:
                FractalSimulator(tiny_machine(),
                                 collect_profiles=False).simulate(
                    mm_fc_workload().program)
                status, text = http_get(server.url + "/metrics")
        assert status == 200
        assert check_openmetrics(text) == []
        assert "repro_executor_kernel_calls" in text
        assert "repro_sim_" in text
        assert "repro_obs_healthy 1" in text

    def test_healthz_flips_unhealthy_under_injected_stall(self):
        """Acceptance: /healthz goes 200 -> 503 when progress stops."""
        t = [0.0]
        wd = Watchdog(stall_after_s=0.05, clock=lambda: t[0])
        with MetricsServer(watchdog=wd) as server:
            status, body = http_get(server.url + "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            t[0] = 1.0  # inject the stall: no beats for 1 simulated second
            try:
                status, body = http_get(server.url + "/healthz")
            except urllib.error.HTTPError as e:
                status, body = e.code, e.read().decode()
            assert status == 503
            doc = json.loads(body)
            assert doc["status"] == "stalled" and not doc["healthy"]
            wd.beat()  # recovery
            status, body = http_get(server.url + "/healthz")
            assert status == 200

    def test_healthz_document_carries_uptime_and_sources(self):
        t = [0.0]
        wd = Watchdog(stall_after_s=30.0, clock=lambda: t[0])
        wd.beat("sim")
        t[0] = 4.0
        with MetricsServer(watchdog=wd) as server:
            status, body = http_get(server.url + "/healthz")
        assert status == 200
        doc = json.loads(body)
        assert doc["uptime_s"] == pytest.approx(4.0)
        assert doc["sources"]["sim"]["last_beat_age_s"] == pytest.approx(4.0)

    def test_events_endpoint_filters(self):
        log = obs.get_event_log()
        log.enable()
        log.emit("executor", "program.start", "info")
        log.emit("ops", "dispatch.fail", "error", error="boom")
        with MetricsServer(event_log=log) as server:
            _, body = http_get(server.url + "/events?severity=error")
            events = json.loads(body)
            assert len(events) == 1
            assert events[0]["event"] == "dispatch.fail"
            _, body = http_get(server.url + "/events?subsystem=executor&n=1")
            assert json.loads(body)[0]["subsystem"] == "executor"

    def test_unknown_route_404s_and_index_lists_endpoints(self):
        with MetricsServer() as server:
            try:
                status, _ = http_get(server.url + "/nope")
            except urllib.error.HTTPError as e:
                status = e.code
            assert status == 404
            _, body = http_get(server.url + "/")
            assert "/metrics" in body and "/healthz" in body


# ---------------------------------------------------------------------------
# RunReport v3 sections
# ---------------------------------------------------------------------------


class TestRunReportV3:
    def test_events_and_health_sections_validate(self):
        log = EventLog(enabled=True)
        log.emit("executor", "program.start", "info")
        wd = Watchdog(stall_after_s=5.0)
        report = telemetry.build_run_report(
            benchmark="mm_fc", machine="tiny",
            event_log=log, health=wd.health_section())
        doc = report.to_dict()
        assert doc["schema_version"] == 3
        assert telemetry.validate_document(doc) == []
        assert doc["events"]["total"] == 1
        assert doc["health"]["healthy"] is True

    def test_v2_documents_without_obs_sections_still_validate(self):
        report = telemetry.build_run_report(benchmark="b", machine="m")
        doc = report.to_dict()
        doc["schema_version"] = 2
        doc.pop("events", None)
        doc.pop("health", None)
        assert telemetry.validate_document(doc) == []

    def test_validate_rejects_malformed_sections(self):
        doc = telemetry.build_run_report(benchmark="b",
                                         machine="m").to_dict()
        doc["events"] = {"total": -1}
        assert any("events" in p for p in telemetry.validate_document(doc))
        doc["events"] = None
        doc["health"] = {"healthy": "yes"}
        assert any("health" in p for p in telemetry.validate_document(doc))

    def test_installed_watchdog_auto_populates_health(self):
        obs.install_watchdog(Watchdog(stall_after_s=9.0))
        doc = telemetry.build_run_report(benchmark="b",
                                        machine="m").to_dict()
        assert doc["health"]["stall_after_s"] == 9.0
