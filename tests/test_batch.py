"""Vectorized leaf-batch replay tests: suite-wide bit-identity, the
tensor arena, schema-v3 cache round-trips/poisoning, batched counters,
the fallback default policy, and the sentinel wiring for the new metrics.

The acceptance bar for the vectorization pass is *bit-identity*: for
every paper benchmark on both machine instances, replaying the batched
schedule must produce byte-for-byte the arrays the classic step loop
produces.  Everything else here defends the supporting structure -- the
arena never aliases two concurrently-live tensors, a tampered
BatchedStep table can never steer the executor, and a collapse of
``batched_speedup`` (or growth of fallback lanes) trips the perf-trend
sentinel.
"""

from __future__ import annotations

import json
import warnings
from typing import Dict, Tuple

import numpy as np
import pytest

from conftest import tiny_machine
from repro import (
    FractalExecutor,
    Instruction,
    Opcode,
    Tensor,
    TensorStore,
    cambricon_f1,
    cambricon_f100,
    telemetry,
)
from repro.obs import RunHistory, analyze_history, metric_polarity
from repro.obs.history import points_from_report
from repro.ops.batch import batched_kernel_for, batched_opcodes
from repro.plan import (
    DiskPlanCache,
    PlanCache,
    PlanFormatError,
    batched_table,
    compile_cached,
    compile_program,
    machine_fingerprint,
    plan_from_doc,
)
from repro.analysis import program_digest
from repro.workloads import profile_benchmark, profile_benchmark_names

pytestmark = pytest.mark.plan

#: canonical suite names ('matmul' is an alias of 'MATMUL').
SUITE = [n for n in profile_benchmark_names() if n != "matmul"]

_MACHINES = {"f1": cambricon_f1, "f100": cambricon_f100}

#: (machine_key, benchmark) -> (machine, workload, plan); compiling the
#: F100 models dominates the cost of this module, so every test shares
#: one compilation per combination.
_PLANS: Dict[Tuple[str, str], tuple] = {}


def _suite_plan(machine_key: str, name: str):
    got = _PLANS.get((machine_key, name))
    if got is None:
        machine = _MACHINES[machine_key]()
        w = profile_benchmark(name)
        plan = compile_program(machine, w.program)
        got = _PLANS[(machine_key, name)] = (machine, w, plan)
    return got


def _bound_tensors(w):
    return list(w.inputs.values()) + list(w.params.values())


def _replay_outputs(machine, w, plan, batch):
    """Run the workload (replaying ``plan``) and return its output arrays."""
    rng = np.random.default_rng(0)
    store = TensorStore()
    for t in _bound_tensors(w):
        store.bind(t, rng.normal(size=t.shape))
    executor = FractalExecutor(machine, store)
    executor.run_program(w.program, plan=plan, batch=batch)
    return executor, {n: store.read(t.region()) for n, t in w.outputs.items()}


# -- suite-wide bit-identity --------------------------------------------------

class TestSuiteBitIdentity:
    """Batched replay == unbatched replay, byte for byte, on every
    (benchmark, machine) combination of the paper suite.  (Unbatched
    replay is itself bit-identical to recursion -- test_plan.py -- so
    this chains to the recursive reference.)"""

    @pytest.mark.parametrize("machine_key", ["f1", "f100"])
    @pytest.mark.parametrize("name", SUITE)
    def test_batched_replay_bit_identical(self, machine_key, name):
        machine, w, plan = _suite_plan(machine_key, name)
        _, plain = _replay_outputs(machine, w, plan, batch=False)
        executor, batched = _replay_outputs(machine, w, plan, batch=True)
        assert executor.stats.batched_steps == \
            plan.replay_schedule().batched_steps
        for out_name in plain:
            np.testing.assert_array_equal(batched[out_name], plain[out_name])


# -- the stacked-kernel registry ---------------------------------------------

class TestBatchedKernelRegistry:
    def test_registered_opcodes_are_the_bit_identical_set(self):
        ops = set(batched_opcodes())
        assert Opcode.MATMUL in ops
        assert Opcode.ACT1D in ops
        # Collapsed convolutions take a different BLAS path than the
        # reference im2col loop, so they are deliberately absent: their
        # lanes run the counted per-lane fallback instead.
        assert Opcode.CV2D not in ops
        assert Opcode.CV3D not in ops
        assert Opcode.MERGE1D not in ops

    def test_kernel_for_mirrors_registry(self):
        for op in Opcode:
            kern = batched_kernel_for(op)
            assert (kern is not None) == (op in set(batched_opcodes()))


# -- default engine policy ----------------------------------------------------

class TestDefaultPolicy:
    """``batch=None`` engages the schedule only when every lowered lane
    has a stacked kernel; fallback groups pay gather/scatter copies with
    no stacked call to amortize them, so conv-heavy plans keep the
    classic loop unless ``batch=True`` forces the schedule."""

    def test_fully_covered_plan_defaults_to_batched(self):
        machine, w, plan = _suite_plan("f1", "mm_fc")
        schedule = plan.replay_schedule()
        assert schedule.fully_batched and schedule.fallback_lanes == 0
        executor, _ = _replay_outputs(machine, w, plan, batch=None)
        assert executor.stats.batched_steps == schedule.batched_steps
        assert executor.stats.batch_fallbacks == 0

    def test_fallback_plan_defaults_to_classic(self):
        machine, w, plan = _suite_plan("f1", "ResNet-152")
        schedule = plan.replay_schedule()
        assert schedule.has_batches and not schedule.fully_batched
        assert schedule.fallback_lanes > 0
        executor, _ = _replay_outputs(machine, w, plan, batch=None)
        assert executor.stats.batched_steps == 0

    def test_forced_batching_counts_every_fallback_lane(self):
        machine, w, plan = _suite_plan("f1", "ResNet-152")
        schedule = plan.replay_schedule()
        executor, _ = _replay_outputs(machine, w, plan, batch=True)
        assert executor.stats.batch_fallbacks == schedule.fallback_lanes
        assert executor.stats.batched_lanes == schedule.batched_lanes


# -- the tensor arena ---------------------------------------------------------

class TestArenaLayout:
    """K-Means on F1 owns hundreds of small intermediates -- enough churn
    to exercise recycling, re-zeroing, and the free-list coalescing."""

    def _schedule(self):
        _, _, plan = _suite_plan("f1", "K-Means")
        return plan, plan.replay_schedule()

    def _live_intervals(self, plan, items):
        """Independent re-derivation of each plan-owned tensor's live
        interval in schedule-item ordinals (the allocator's oracle)."""
        external = set(plan.external_uids())
        first: Dict[int, int] = {}
        last: Dict[int, int] = {}
        sizes: Dict[int, int] = {}
        for ordinal, item in enumerate(items):
            steps = plan.steps[item.start:item.stop]
            for step in steps:
                for r in list(step.inst.inputs) + list(step.inst.outputs):
                    uid = r.tensor.uid
                    if uid in external:
                        continue
                    first.setdefault(uid, ordinal)
                    last[uid] = ordinal
                    sizes[uid] = r.tensor.nelems
        return first, last, sizes

    def test_concurrently_live_tensors_never_overlap(self):
        plan, schedule = self._schedule()
        arena = schedule.arena
        assert arena.bindings  # the plan owns real intermediates
        first, last, _sizes = self._live_intervals(plan, schedule.items)
        spans = [(t.uid, off, off + t.nelems) for t, off in arena.bindings]
        assert {uid for uid, _, _ in spans} == set(first)
        for i, (uid_a, lo_a, hi_a) in enumerate(spans):
            for uid_b, lo_b, hi_b in spans[i + 1:]:
                if first[uid_a] <= last[uid_b] and first[uid_b] <= last[uid_a]:
                    assert hi_a <= lo_b or hi_b <= lo_a, (
                        f"live tensors {uid_a} and {uid_b} share arena bytes")

    def test_high_water_matches_the_liveness_oracle(self):
        plan, schedule = self._schedule()
        arena = schedule.arena
        first, last, sizes = self._live_intervals(plan, schedule.items)
        peak = 0
        for ordinal in range(len(schedule.items)):
            live = sum(sizes[uid] for uid in sizes
                       if first[uid] <= ordinal <= last[uid])
            peak = max(peak, live)
        total = sum(sizes.values())
        # The packing cannot beat the liveness peak, must recycle (stay
        # below the no-reuse total), and stays under the analyzer's
        # step-granular high-water mark (which also counts externals).
        assert peak <= arena.total_elems < total
        assert arena.nbytes <= plan.stats.peak_live_bytes

    def test_zero_items_reference_real_bindings(self):
        _, schedule = self._schedule()
        arena = schedule.arena
        assert arena.zero_items  # recycling actually happened
        n_items = len(schedule.items)
        for ordinal, bi in arena.zero_items:
            assert 0 <= bi < len(arena.bindings)
            assert 0 <= ordinal < n_items

    def test_attach_arena_binds_views_of_one_buffer(self):
        _, schedule = self._schedule()
        arena = schedule.arena
        store = TensorStore()
        views = store.attach_arena(arena.bindings, arena.total_elems)
        assert store.arena_bytes == arena.nbytes
        assert len(views) == len(arena.bindings)
        for (tensor, _off), view in zip(arena.bindings, views):
            assert view.shape == tensor.shape
            assert view.base is not None  # a view, not an allocation
            np.testing.assert_array_equal(store.read(tensor.region()), view)


# -- schema v3: disk round-trip, migration, poisoning -------------------------

def _groupy_plan():
    """A small plan with real fusion groups (tiny machine, one matmul)."""
    n = 96
    a, b, c = Tensor("a", (n, n)), Tensor("b", (n, n)), Tensor("c", (n, n))
    program = [Instruction(Opcode.MATMUL, (a.region(), b.region()),
                           (c.region(),))]
    machine = tiny_machine()
    plan = compile_program(machine, program)
    assert plan.fusion_groups  # precondition for every test below
    return machine, program, plan


class TestSchemaV3Cache:
    def test_doc_round_trip_preserves_batched_table(self):
        machine, program, plan = _groupy_plan()
        doc = json.loads(json.dumps(plan.to_doc()))
        assert doc["version"] == 3 and doc["batched"]
        back = plan_from_doc(doc, plan.externals,
                             machine_fingerprint=plan.machine_fingerprint)
        assert batched_table(back.batched) == batched_table(plan.batched)
        rng = np.random.default_rng(5)
        arrays = {r.tensor.uid: rng.normal(size=r.tensor.shape)
                  for r in program[0].inputs}
        results = []
        for use_plan, batch in ((None, None), (back, True)):
            store = TensorStore()
            for r in program[0].inputs:
                store.bind(r.tensor, arrays[r.tensor.uid])
            FractalExecutor(machine, store).run_program(
                program, plan=use_plan, batch=batch)
            results.append(store.read(program[0].outputs[0]))
        np.testing.assert_array_equal(results[1], results[0])

    def test_tampered_batched_table_is_rejected(self):
        _, _, plan = _groupy_plan()
        doc = plan.to_doc()
        doc["batched"][0]["lanes"] += 1
        with pytest.raises(PlanFormatError,
                           match="batched-step table does not match"):
            plan_from_doc(doc, plan.externals)

    def test_missing_batched_table_is_rejected(self):
        _, _, plan = _groupy_plan()
        doc = plan.to_doc()
        del doc["batched"]
        with pytest.raises(PlanFormatError, match="batched-step table"):
            plan_from_doc(doc, plan.externals)

    def test_poisoned_disk_entry_warns_and_recompiles(self, tmp_path):
        machine, program, plan = _groupy_plan()
        disk = DiskPlanCache(tmp_path)
        fp = machine_fingerprint(machine)
        digest = program_digest(program)
        disk.store(fp, digest, plan)
        path = disk._path(fp, digest)
        doc = json.loads(path.read_text(encoding="utf-8"))
        doc["batched"][0]["stop"] += 1  # cache poisoning
        path.write_text(json.dumps(doc), encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="batched-step table"):
            fresh = compile_cached(machine, program, disk_dir=tmp_path,
                                   memory_cache=PlanCache())
        assert batched_table(fresh.batched) == batched_table(plan.batched)

    def test_v2_entry_is_a_silent_miss(self, tmp_path):
        """Pre-batching (v2) cache files live under a v2 filename: the v3
        lookup never opens them, so migration is a plain miss + recompile
        with no warning noise."""
        machine, program, plan = _groupy_plan()
        disk = DiskPlanCache(tmp_path)
        fp = machine_fingerprint(machine)
        digest = program_digest(program)
        v3_path = disk._path(fp, digest)
        assert "plan-v3-" in v3_path.name
        v2_path = v3_path.parent / v3_path.name.replace("plan-v3-",
                                                        "plan-v2-")
        v2_path.parent.mkdir(parents=True, exist_ok=True)
        v2_doc = plan.to_doc()
        v2_doc["version"] = 2
        del v2_doc["batched"]
        v2_path.write_text(json.dumps(v2_doc), encoding="utf-8")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            fresh = compile_cached(machine, program, disk_dir=tmp_path,
                                   memory_cache=PlanCache())
        assert fresh.n_steps == plan.n_steps
        assert v3_path.exists()  # the recompile persisted a v3 entry
        assert v2_path.exists()  # ... without touching the stale v2 one

    def test_v2_document_under_v3_name_warns_and_recompiles(self, tmp_path):
        machine, program, plan = _groupy_plan()
        disk = DiskPlanCache(tmp_path)
        fp = machine_fingerprint(machine)
        digest = program_digest(program)
        disk.store(fp, digest, plan)
        path = disk._path(fp, digest)
        doc = json.loads(path.read_text(encoding="utf-8"))
        doc["version"] = 2
        path.write_text(json.dumps(doc), encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="plan version"):
            fresh = compile_cached(machine, program, disk_dir=tmp_path,
                                   memory_cache=PlanCache())
        assert fresh.n_steps == plan.n_steps


# -- executor counters and observability --------------------------------------

class TestBatchedCounters:
    def test_batched_counters_published(self):
        machine, w, plan = _suite_plan("f1", "K-Means")
        schedule = plan.replay_schedule()
        rng = np.random.default_rng(0)
        with telemetry.enabled_scope() as (registry, _tracer):
            telemetry.reset()
            store = TensorStore()
            for t in _bound_tensors(w):
                store.bind(t, rng.normal(size=t.shape))
            executor = FractalExecutor(machine, store)
            executor.run_program(w.program, plan=plan, batch=True)
            assert registry.value("plan.batched_steps") == \
                schedule.batched_steps
            assert registry.value("plan.batched_lanes") == \
                schedule.batched_lanes
            assert registry.value("ops.batch_fallbacks") == 0
            assert schedule.arena.nbytes > 0
            assert registry.gauge("store.arena_bytes").value == \
                schedule.arena.nbytes
        assert executor.stats.batched_steps == schedule.batched_steps
        assert executor.stats.batched_lanes == schedule.batched_lanes

    def test_alias_scan_skip_counted_and_correct(self):
        """An in-place ACT1D step carries a precomputed copy-mask: the
        schedule path skips the runtime overlap scan (counted) and still
        produces the reference result."""
        t = Tensor("x", (64,))
        program = [Instruction(Opcode.ACT1D, (t.region(),), (t.region(),),
                               {"func": "relu"})]
        machine = tiny_machine()
        plan = compile_program(machine, program)
        assert not all(s.safe_zero_copy for s in plan.steps)
        store = TensorStore()
        store.bind(t, np.linspace(-1, 1, 64))
        executor = FractalExecutor(machine, store)
        executor.run_program(program, plan=plan, batch=True)
        assert executor.stats.alias_scan_skips > 0
        np.testing.assert_array_equal(
            store.read(t.region()),
            np.maximum(np.linspace(-1, 1, 64), 0.0))

    def test_batched_replay_beats_and_reports_progress(self):
        """The vectorized engine honors the classic loop's observability
        contract: one watchdog beat per plan step (bulk per group) and
        strided ``replay.progress`` events."""
        import repro.core.executor as executor_mod
        from repro import obs
        from repro.obs import Watchdog

        machine, program, plan = _groupy_plan()
        rng = np.random.default_rng(2)
        store = TensorStore()
        for r in program[0].inputs:
            if not store.has(r.tensor):
                store.bind(r.tensor, rng.normal(size=r.tensor.shape))
        wd = obs.install_watchdog(Watchdog())
        log = obs.get_event_log()
        log.reset()
        log.enable()
        old_stride = executor_mod.REPLAY_PROGRESS_STRIDE
        executor_mod.REPLAY_PROGRESS_STRIDE = 2
        try:
            FractalExecutor(machine, store).run_program(program, plan=plan,
                                                        batch=True)
        finally:
            executor_mod.REPLAY_PROGRESS_STRIDE = old_stride
            log.disable()
            log.reset()
            obs.install_watchdog(None)
        assert wd.beats >= plan.n_steps


# -- sentinel / run-history wiring --------------------------------------------

class TestSentinelWiring:
    def test_polarity_of_batching_metrics(self):
        assert metric_polarity("batched_speedup") == "down_bad"
        assert metric_polarity("replay_speedup") == "down_bad"
        assert metric_polarity("batch_fallbacks") == "up_bad"

    def test_speedup_collapse_flags_regression(self, tmp_path):
        history = RunHistory(tmp_path)
        history.append([
            {"benchmark": "mm_fc", "machine": "Cambricon-F100",
             "metric": "batched_speedup", "value": v, "ts": 1000.0 + i,
             "source": "test"}
            for i, v in enumerate([2.3] * 10 + [1.05])
        ])
        [entry] = analyze_history(history).entries
        assert entry.status == "regression"

    def test_fallback_growth_flags_regression(self, tmp_path):
        history = RunHistory(tmp_path)
        history.append([
            {"benchmark": "paper-suite", "machine": "Cambricon-F1",
             "metric": "batch_fallbacks", "value": v, "ts": 1000.0 + i,
             "source": "test"}
            for i, v in enumerate([0.0] * 10 + [544.0])
        ])
        [entry] = analyze_history(history).entries
        assert entry.status == "regression"

    def test_points_from_report_extracts_batching_metrics(self):
        doc = {
            "benchmark": "paper-suite", "machine": "Cambricon-F1",
            "counters": {"ops.batch_fallbacks": 544},
            "notes": {"plan_microbench": {
                "benchmark": "mm_fc",
                "speedup": 2.9, "warm_replay_s": 0.09,
                "batched_speedup": 2.3, "warm_batched_s": 0.04,
            }},
        }
        points = {p["metric"]: p for p in points_from_report(doc)}
        assert points["batch_fallbacks"]["value"] == 544
        assert points["batched_speedup"]["value"] == pytest.approx(2.3)
        assert points["batched_speedup"]["benchmark"] == "mm_fc"
        assert points["warm_batched_s"]["value"] == pytest.approx(0.04)
