"""Fuzz suites: random machines x random programs through the full stack.

These don't check golden values -- they check that *no* configuration
violates the system's invariants: functional execution always matches the
reference kernels, the timing simulator never crashes or produces
non-physical numbers, and the binary format round-trips everything the
builder can produce.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    FractalExecutor,
    Instruction,
    Opcode,
    Tensor,
    TensorStore,
    custom_machine,
)
from repro.core.executor import run_reference
from repro.frontend import decode_program, encode_program
from repro.sim import FractalSimulator

# -- strategies -----------------------------------------------------------------

machines = st.builds(
    lambda fanouts, mem_exp: custom_machine(
        "fuzz",
        list(fanouts),
        [1 << (mem_exp - 2 * i) for i in range(len(fanouts) + 1)],
        [1e9] * (len(fanouts) + 1),
        core_peak_ops=1e11,
    ),
    fanouts=st.lists(st.integers(1, 6), min_size=1, max_size=3),
    mem_exp=st.integers(14, 20),
)


@st.composite
def random_instruction(draw):
    kind = draw(st.sampled_from(["matmul", "conv", "pool", "eltwise",
                                 "sort", "euclid", "hsum"]))
    rng_dim = lambda lo, hi: draw(st.integers(lo, hi))
    if kind == "matmul":
        m, k, n = rng_dim(1, 12), rng_dim(1, 12), rng_dim(1, 12)
        a, b = Tensor("a", (m, k)), Tensor("b", (k, n))
        c = Tensor("c", (m, n))
        return Instruction(Opcode.MATMUL, (a.region(), b.region()),
                           (c.region(),))
    if kind == "conv":
        n, hw, cin, cout = rng_dim(1, 3), rng_dim(3, 8), rng_dim(1, 3), rng_dim(1, 4)
        x = Tensor("x", (n, hw, hw, cin))
        w = Tensor("w", (3, 3, cin, cout))
        out = Tensor("o", (n, hw - 2, hw - 2, cout))
        return Instruction(Opcode.CV2D, (x.region(), w.region()),
                           (out.region(),), {"stride": 1})
    if kind == "pool":
        n, hw, c = rng_dim(1, 3), rng_dim(4, 9), rng_dim(1, 4)
        x = Tensor("x", (n, hw, hw, c))
        out = Tensor("o", (n, hw // 2, hw // 2, c))
        return Instruction(Opcode.MAX2D, (x.region(),), (out.region(),),
                           {"kh": 2, "kw": 2, "sh": 2, "sw": 2})
    if kind == "eltwise":
        n = rng_dim(1, 64)
        a, b, o = (Tensor(s, (n,)) for s in "abo")
        op = draw(st.sampled_from([Opcode.ADD1D, Opcode.SUB1D, Opcode.MUL1D]))
        return Instruction(op, (a.region(), b.region()), (o.region(),))
    if kind == "sort":
        n = rng_dim(1, 48)
        x, o = Tensor("x", (n,)), Tensor("o", (n,))
        return Instruction(Opcode.SORT1D, (x.region(),), (o.region(),))
    if kind == "euclid":
        n, m, d = rng_dim(1, 8), rng_dim(1, 8), rng_dim(1, 8)
        x, y = Tensor("x", (n, d)), Tensor("y", (m, d))
        o = Tensor("o", (n, m))
        return Instruction(Opcode.EUCLIDIAN1D, (x.region(), y.region()),
                           (o.region(),))
    n = rng_dim(1, 64)
    x, o = Tensor("x", (n,)), Tensor("o", (1,))
    return Instruction(Opcode.HSUM1D, (x.region(),), (o.region(),))


# -- fuzz: functional stack -------------------------------------------------------

@settings(deadline=None, max_examples=40)
@given(machine=machines, inst=random_instruction(), seed=st.integers(0, 9999))
def test_fuzz_functional_equivalence(machine, inst, seed):
    """Any machine x any instruction: fractal == reference."""
    rng = np.random.default_rng(seed)
    frac, ref = TensorStore(), TensorStore()
    for r in inst.inputs:
        arr = rng.normal(size=r.tensor.shape)
        frac.bind(r.tensor, arr)
        ref.bind(r.tensor, arr)
    run_reference(inst, ref)
    FractalExecutor(machine, frac).run(inst)
    np.testing.assert_allclose(frac.read(inst.outputs[0]),
                               ref.read(inst.outputs[0]),
                               atol=1e-8, rtol=1e-6)


# -- fuzz: timing stack -------------------------------------------------------------

@settings(deadline=None, max_examples=40)
@given(machine=machines, inst=random_instruction(),
       flags=st.tuples(st.booleans(), st.booleans(), st.booleans(),
                       st.booleans()))
def test_fuzz_simulator_invariants(machine, inst, flags):
    """Any machine x instruction x feature combination: physical results."""
    machine = machine.with_features(
        use_ttt=flags[0], use_broadcast=flags[1],
        use_concatenation=flags[2], use_sibling_links=flags[3])
    rep = FractalSimulator(machine, collect_profiles=False).simulate([inst])
    assert rep.total_time > 0
    assert np.isfinite(rep.total_time)
    assert rep.work == inst.work()
    assert rep.attained_ops <= machine.peak_ops * 1.01
    assert rep.root_traffic >= 0
    assert rep.root.served_bytes >= 0


@settings(deadline=None, max_examples=15)
@given(machine=machines, inst=random_instruction())
def test_fuzz_simulation_deterministic(machine, inst):
    r1 = FractalSimulator(machine, collect_profiles=False).simulate([inst])
    r2 = FractalSimulator(machine, collect_profiles=False).simulate([inst])
    assert r1.total_time == r2.total_time
    assert r1.root_traffic == r2.root_traffic


# -- fuzz: binary format --------------------------------------------------------------

@settings(deadline=None, max_examples=40)
@given(insts=st.lists(random_instruction(), min_size=1, max_size=5))
def test_fuzz_encoding_round_trip(insts):
    _, decoded = decode_program(encode_program(insts))
    assert len(decoded) == len(insts)
    for a, b in zip(insts, decoded):
        assert a.signature() == b.signature()


@settings(deadline=None, max_examples=30)
@given(insts=st.lists(random_instruction(), min_size=1, max_size=3),
       cut=st.floats(0.1, 0.95))
def test_fuzz_truncated_binaries_rejected_cleanly(insts, cut):
    """Truncation must raise EncodingError, never crash differently."""
    from repro.frontend import EncodingError
    data = encode_program(insts)
    truncated = data[: max(1, int(len(data) * cut))]
    if truncated == data:
        return
    with pytest.raises(EncodingError):
        decode_program(truncated)


# -- fuzz: static analyzer ------------------------------------------------------

@settings(deadline=None, max_examples=40)
@given(insts=st.lists(random_instruction(), min_size=1, max_size=6))
def test_fuzz_analyzer_no_false_positives(insts):
    """Executor-accepted programs are never flagged as errors.

    Every program ``random_instruction`` generates is well-formed (the
    functional fuzz above executes them), so under bare-program
    conventions the analyzer must report zero *errors* on any
    concatenation of them.  Warnings (dead writes between unrelated
    instructions) are fine.
    """
    from repro.analysis import analyze
    result = analyze(insts, name="fuzz")
    assert result.ok, result.format()


@settings(deadline=None, max_examples=25)
@given(machine=machines, inst=random_instruction(), seed=st.integers(0, 9999))
def test_fuzz_analyzer_clean_implies_executable(machine, inst, seed):
    """Differential agreement: analyzer-clean => executes without raising."""
    from repro.analysis import analyze
    assert analyze([inst], name="fuzz").ok
    rng = np.random.default_rng(seed)
    store = TensorStore()
    for r in inst.inputs:
        store.bind(r.tensor, rng.normal(size=r.tensor.shape))
    FractalExecutor(machine, store).run(inst)  # must not raise
    out = store.read(inst.outputs[0])
    assert np.all(np.isfinite(out))
