"""Self-clean invariant: every program the repo ships must be analyzer-clean.

The static analyzer (``repro.analysis``) is only trustworthy if the
programs we hold up as exemplars pass it with zero errors.  This module
pins that invariant for the three places programs come from:

* assembly sources under ``examples/programs/``,
* the seven Table-5 benchmark builders in ``workloads/suite.py``
  (both small/test scale and paper scale), and
* compiler-lowered networks (``compiler.lowering.lower``).

The benchmark builders are additionally held to *zero warnings* -- a dead
write or dtype mix in our own suite would be a bug, not a style issue.
"""

from pathlib import Path

import pytest

from repro.analysis import analyze, analyze_workload
from repro.compiler import Graph, lower, optimize
from repro.frontend import assemble
from repro.workloads.suite import PAPER_BENCHMARKS, paper_benchmark, small_benchmark

PROGRAMS = Path(__file__).resolve().parent.parent / "examples" / "programs"
BENCHMARKS = sorted(PAPER_BENCHMARKS)


# -- assembly sources -----------------------------------------------------------

@pytest.mark.parametrize(
    "source", sorted(PROGRAMS.glob("*.fisa")), ids=lambda p: p.name
)
def test_shipped_assembly_programs_clean(source):
    # assemble() lints by default, so merely assembling asserts zero
    # errors; we re-run the analyzer to assert zero *warnings* too.
    workload = assemble(source.read_text(), name=source.name)
    result = analyze_workload(workload)
    assert result.ok, result.format()
    assert not result.warnings, result.format()


def test_examples_directory_not_empty():
    """Guard against the glob silently matching nothing."""
    assert list(PROGRAMS.glob("*.fisa"))


# -- benchmark suite builders ---------------------------------------------------

@pytest.mark.parametrize("name", BENCHMARKS)
def test_small_benchmarks_clean(name):
    result = analyze_workload(small_benchmark(name))
    assert result.ok, result.format()
    assert not result.warnings, result.format()


@pytest.mark.parametrize("name", BENCHMARKS)
def test_paper_benchmarks_clean(name):
    result = analyze_workload(paper_benchmark(name))
    assert result.ok, result.format()
    assert not result.warnings, result.format()


# -- compiler-lowered programs --------------------------------------------------

def _cnn_graph():
    g = Graph("cnn")
    x = g.input("img", (1, 12, 12, 3))
    h = g.conv2d(x, 8, 3, padding=1, activation="relu")
    h = g.maxpool(h, 2)
    h = g.flatten(h)
    g.output(g.dense(h, 10))
    return g


def _residual_graph():
    g = Graph("res")
    x = g.input("x", (1, 8, 8, 4))
    h = g.conv2d(x, 4, 3, padding=1, activation="relu")
    h = g.add(h, x)
    g.output(g.activation(h, "relu"))
    return g


@pytest.mark.parametrize("build", [_cnn_graph, _residual_graph],
                         ids=["cnn", "residual"])
def test_lowered_graphs_clean(build):
    for graph in (build(), optimize(build())[0]):
        workload = lower(graph)  # lowering itself asserts zero errors
        result = analyze_workload(workload)
        assert result.ok, result.format()


def test_lowered_bare_program_clean_without_declarations():
    """The lowered instruction stream must also pass under bare-program
    conventions (no declared inputs/outputs), the mode the executor's
    pre-flight uses."""
    workload = lower(_cnn_graph())
    result = analyze(workload.program, name=workload.name)
    assert result.ok, result.format()
