"""Sweep utility tests."""

import csv
import io

import pytest

from repro import Instruction, Opcode, Tensor, custom_machine
from repro.core.machine import KB, MB
from repro.sim.sweep import (
    FEATURE_VARIANTS,
    SweepRecord,
    format_table,
    run_sweep,
    to_csv,
)


def _machines():
    return {
        "small": custom_machine("small", [2], [MB, 64 * KB], [8e9] * 2,
                                core_peak_ops=50e9),
        "wide": custom_machine("wide", [8], [4 * MB, 64 * KB], [8e9] * 2,
                               core_peak_ops=50e9),
    }


def _workloads():
    def mm(n):
        a, b = Tensor("a", (n, n)), Tensor("b", (n, n))
        c = Tensor("c", (n, n))
        return [Instruction(Opcode.MATMUL, (a.region(), b.region()),
                            (c.region(),))]
    return {"mm64": mm(64), "mm128": mm(128)}


class TestRunSweep:
    def test_full_grid(self):
        records = run_sweep(_machines(), _workloads(),
                            {"baseline": {}, "no-ttt": {"use_ttt": False}})
        assert len(records) == 2 * 2 * 2
        cells = {(r.machine, r.variant, r.workload) for r in records}
        assert ("wide", "no-ttt", "mm128") in cells

    def test_default_variant(self):
        records = run_sweep(_machines(), _workloads())
        assert all(r.variant == "baseline" for r in records)

    def test_progress_callback(self):
        seen = []
        run_sweep({"small": _machines()["small"]}, _workloads(),
                  progress=seen.append)
        assert seen == ["small/baseline/mm64", "small/baseline/mm128"]

    def test_records_physical(self):
        for r in run_sweep(_machines(), _workloads()):
            assert r.total_time > 0
            assert 0 < r.peak_fraction <= 1.0
            assert r.root_traffic > 0

    def test_feature_variants_registry(self):
        assert "no-ttt" in FEATURE_VARIANTS
        assert FEATURE_VARIANTS["no-optimizations"]["use_ttt"] is False


class TestParallelSweep:
    def test_workers_match_serial_byte_identical(self):
        variants = {"baseline": {}, "no-ttt": {"use_ttt": False}}
        serial = run_sweep(_machines(), _workloads(), variants)
        parallel = run_sweep(_machines(), _workloads(), variants, workers=2)
        assert parallel == serial  # same records, same grid order
        assert to_csv(parallel) == to_csv(serial)

    def test_workers_progress_fires_per_cell_in_grid_order(self):
        seen = []
        run_sweep({"small": _machines()["small"]}, _workloads(),
                  {"baseline": {}, "no-ttt": {"use_ttt": False}},
                  progress=seen.append, workers=2)
        assert seen == [
            "small/baseline/mm64", "small/baseline/mm128",
            "small/no-ttt/mm64", "small/no-ttt/mm128",
        ]

    def test_workers_one_falls_back_to_serial(self):
        records = run_sweep({"small": _machines()["small"]}, _workloads(),
                            workers=1)
        assert len(records) == 2


class TestSweepObservability:
    """Trace propagation, worker telemetry shipping, and the run ledger."""

    @pytest.fixture(autouse=True)
    def clean_obs(self, tmp_path, monkeypatch):
        from repro import obs, telemetry
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger"))
        log = obs.get_event_log()
        log.disable()
        log.reset()
        telemetry.disable()
        telemetry.reset()
        yield
        log = obs.get_event_log()
        log.disable()
        log.reset()
        telemetry.disable()
        telemetry.reset()

    def test_parallel_sweep_ships_worker_telemetry(self):
        from urllib.request import urlopen

        from repro import obs, telemetry

        telemetry.enable()
        obs.get_event_log().enable()
        server = obs.MetricsServer(port=0)
        server.start()
        scraped = {}

        def scrape(_msg):
            # fires in the parent as each cell's telemetry is merged
            with urlopen(f"http://127.0.0.1:{server.port}/metrics",
                         timeout=5) as resp:
                scraped["text"] = resp.read().decode()

        try:
            run_sweep({"small": _machines()["small"]}, _workloads(),
                      {"baseline": {}, "no-ttt": {"use_ttt": False}},
                      progress=scrape, workers=2)
            with urlopen(f"http://127.0.0.1:{server.port}/metrics",
                         timeout=5) as resp:
                final = resp.read().decode()
        finally:
            server.stop()
        # mid-sweep scrape (after the first merge) already shows worker series
        assert 'worker="0"' in scraped["text"]
        assert 'worker="0"' in final and 'worker="1"' in final
        assert "repro_worker_wall_seconds_total" in final
        assert obs.check_openmetrics(final) == []

    def test_parallel_sweep_writes_one_trace(self):
        from repro import obs, telemetry

        telemetry.enable()
        run_sweep({"small": _machines()["small"]}, _workloads(),
                  {"baseline": {}, "no-ttt": {"use_ttt": False}},
                  workers=2)
        ledger = obs.get_ledger()
        rows = ledger.rows()
        # one row per cell plus the parent sweep row, all one trace
        assert [r["kind"] for r in rows] == ["sweep-cell", "sweep-cell",
                                             "sweep"]
        assert len({r["trace_id"] for r in rows}) == 1
        assert [r.get("worker") for r in rows] == [0, 1, None]
        cell = rows[0]
        assert cell["machine"] == "small" and cell["variant"] == "baseline"
        assert cell["makespan_s"] > 0
        [trace_id] = ledger.traces()
        assert trace_id == rows[0]["trace_id"]

    def test_serial_sweep_also_lands_in_ledger(self):
        from repro import obs

        run_sweep({"small": _machines()["small"]}, _workloads())
        rows = obs.get_ledger().rows()
        assert [r["kind"] for r in rows] == ["sweep-cell", "sweep"]
        assert len({r["trace_id"] for r in rows}) == 1

    def test_sweep_respects_disabled_ledger(self, monkeypatch, tmp_path):
        from repro import obs
        monkeypatch.setenv("REPRO_LEDGER", "off")
        records = run_sweep({"small": _machines()["small"]}, _workloads(),
                            workers=2)
        assert len(records) == 2
        assert obs.get_ledger() is None


class TestExport:
    def test_csv_round_trip(self):
        records = run_sweep({"small": _machines()["small"]}, _workloads())
        text = to_csv(records)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == len(records)
        assert parsed[0]["machine"] == "small"
        assert float(parsed[0]["total_time"]) > 0

    def test_csv_empty(self):
        assert to_csv([]) == ""

    def test_format_table(self):
        records = run_sweep({"small": _machines()["small"]}, _workloads())
        table = format_table(records)
        assert "mm64" in table and "of peak" in table
