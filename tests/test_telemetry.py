"""Telemetry subsystem tests: counters, spans, RunReports, instrumentation.

Everything here carries the ``telemetry`` marker (registered in
pyproject.toml) so the counter tests are selectable as a group; the whole
module runs in tier-1.
"""

import json
import time

import numpy as np
import pytest

from repro import Instruction, Opcode, Tensor, custom_machine, telemetry
from repro.core.executor import FractalExecutor
from repro.core.machine import KB
from repro.core.store import TensorStore
from repro.sim import FractalSimulator
from repro.telemetry import (
    SCHEMA,
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    CounterRegistry,
    Tracer,
    build_run_report,
    validate_document,
)
from repro.workloads import matmul_workload, mm_fc_workload, profile_benchmark

from conftest import tiny_machine

pytestmark = pytest.mark.telemetry


@pytest.fixture(autouse=True)
def clean_global_telemetry():
    """Every test starts and ends with disabled, empty global telemetry."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def run_functional(workload, machine=None, seed=0):
    machine = machine or tiny_machine()
    rng = np.random.default_rng(seed)
    store = TensorStore()
    for t in list(workload.inputs.values()) + list(workload.params.values()):
        store.bind(t, rng.normal(size=t.shape))
    executor = FractalExecutor(machine, store)
    executor.run_program(workload.program)
    return executor


# ---------------------------------------------------------------------------
# CounterRegistry
# ---------------------------------------------------------------------------


class TestCounterRegistry:
    def test_counter_gauge_histogram(self):
        reg = CounterRegistry(enabled=True)
        reg.counter("a.b").inc()
        reg.counter("a.b").inc(4)
        reg.gauge("depth").set(3)
        reg.gauge("depth").set_max(2)  # lower: ignored
        for v in (1.0, 3.0, 200.0):
            reg.histogram("lat").observe(v)
        snap = reg.snapshot()
        assert snap["a.b"] == 5
        assert snap["depth"] == 3
        assert snap["lat"]["count"] == 3
        assert snap["lat"]["max"] == 200.0
        assert snap["lat"]["min"] == 1.0

    def test_labels_create_distinct_series(self):
        reg = CounterRegistry(enabled=True)
        reg.count("x", 1, labels={"level": 0})
        reg.count("x", 2, labels={"level": 1})
        reg.count("x", 3, labels={"level": 0})
        assert reg.value("x", {"level": 0}) == 4
        assert reg.value("x", {"level": 1}) == 2
        assert "x{level=0}" in reg.snapshot()

    def test_label_order_is_canonical(self):
        reg = CounterRegistry(enabled=True)
        reg.count("y", 1, labels={"a": 1, "b": 2})
        reg.count("y", 1, labels={"b": 2, "a": 1})
        assert reg.value("y", {"a": 1, "b": 2}) == 2

    def test_disabled_registry_is_noop(self):
        reg = CounterRegistry(enabled=False)
        c = reg.counter("never")
        c.inc(100)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1.0)
        assert reg.snapshot() == {}
        assert reg.value("never") == 0

    def test_reset_clears_series_not_flag(self):
        reg = CounterRegistry(enabled=True)
        reg.count("z")
        reg.reset()
        assert reg.snapshot() == {}
        assert reg.enabled

    def test_series_prefix_filter(self):
        reg = CounterRegistry(enabled=True)
        reg.count("executor.instructions")
        reg.count("sim.runs")
        assert [i.name for i in reg.series("executor.")] == ["executor.instructions"]


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_depth_and_parent(self):
        tr = Tracer(enabled=True)
        with tr.span("outer"):
            with tr.span("mid"):
                with tr.span("inner"):
                    pass
        spans = {s.name: s for s in tr.spans()}
        assert spans["outer"].depth == 0 and spans["outer"].parent is None
        assert spans["mid"].depth == 1 and spans["mid"].parent == spans["outer"].id
        assert spans["inner"].depth == 2

    def test_wall_clock_duration(self):
        tr = Tracer(enabled=True)
        with tr.span("sleep"):
            time.sleep(0.01)
        (s,) = tr.spans()
        assert s.duration >= 0.009

    def test_containment(self):
        tr = Tracer(enabled=True)
        with tr.span("parent"):
            with tr.span("child"):
                pass
        spans = {s.name: s for s in tr.spans()}
        assert spans["parent"].start <= spans["child"].start
        assert spans["child"].end <= spans["parent"].end + 1e-9

    def test_disabled_records_nothing(self):
        tr = Tracer(enabled=False)
        with tr.span("ghost"):
            pass
        assert tr.spans() == []

    def test_ring_buffer_caps_and_counts_drops(self):
        tr = Tracer(enabled=True, capacity=4)
        for i in range(10):
            with tr.span(f"s{i}"):
                pass
        spans = tr.spans()
        assert len(spans) == 4
        assert tr.dropped == 6
        assert [s.name for s in spans] == ["s6", "s7", "s8", "s9"]

    def test_rollups(self):
        tr = Tracer(enabled=True)
        for _ in range(3):
            with tr.span("op:MatMul", cat="op"):
                pass
        roll = tr.rollups()
        assert roll["op:MatMul"]["count"] == 3
        assert roll["op:MatMul"]["cat"] == "op"
        assert roll["op:MatMul"]["total_s"] >= roll["op:MatMul"]["max_s"]

    def test_export_jsonl(self, tmp_path):
        tr = Tracer(enabled=True)
        with tr.span("a", cat="x", foo=1):
            pass
        path = tmp_path / "spans.jsonl"
        assert tr.export_jsonl(str(path)) == 1
        (line,) = path.read_text().strip().splitlines()
        obj = json.loads(line)
        assert obj["name"] == "a" and obj["args"] == {"foo": 1}

    def test_chrome_events_nest(self):
        tr = Tracer(enabled=True)
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        events = [e for e in tr.to_chrome_events() if e["ph"] == "X"]
        assert {e["args"]["depth"] for e in events} == {0, 1}


# ---------------------------------------------------------------------------
# Executor + decomposition instrumentation
# ---------------------------------------------------------------------------


class TestExecutorCounters:
    def test_stats_cover_fanouts_leafops_bytes(self):
        executor = run_functional(mm_fc_workload())
        stats = executor.stats
        assert stats.kernel_calls > 0
        assert stats.fanouts > 0
        assert stats.fanout_parts >= 2 * stats.fanouts
        assert stats.leaf_ops.get("MatMul", 0) > 0
        assert stats.bytes_read > 0 and stats.bytes_written > 0
        assert sum(stats.leaf_ops.values()) == stats.kernel_calls

    def test_registry_mirrors_executor_counters(self):
        with telemetry.enabled_scope() as (reg, _tr):
            executor = run_functional(mm_fc_workload())
        assert reg.value("executor.kernel_calls") == executor.stats.kernel_calls
        assert reg.value("executor.leaf_ops", {"opcode": "MatMul"}) == \
            executor.stats.leaf_ops["MatMul"]
        assert reg.value("executor.bytes_read") == executor.stats.bytes_read
        # level-0 instruction counter must match the top-level program.
        assert reg.value("executor.instructions", {"level": 0}) == \
            executor.stats.instructions_per_level[0]

    def test_repeated_runs_publish_deltas_not_totals(self):
        w = matmul_workload(12)
        machine = tiny_machine()
        rng = np.random.default_rng(0)
        store = TensorStore()
        for t in w.inputs.values():
            store.bind(t, rng.normal(size=t.shape))
        with telemetry.enabled_scope() as (reg, _tr):
            executor = FractalExecutor(machine, store)
            executor.run_program(w.program)
            executor.run_program(w.program)
        # Registry total equals the stats total (not stats + first-run again).
        assert reg.value("executor.kernel_calls") == executor.stats.kernel_calls

    def test_decomposition_counters(self):
        with telemetry.enabled_scope() as (reg, _tr):
            run_functional(mm_fc_workload())
        splits = [i for i in reg.series("decompose.parallel_splits")]
        assert splits and sum(i.value for i in splits) > 0
        assert reg.value("decompose.parallel_parts") > 0

    def test_span_nesting_program_instruction_op(self):
        with telemetry.enabled_scope() as (_reg, tracer):
            run_functional(mm_fc_workload())
        spans = tracer.spans()
        by_name = {}
        for s in spans:
            by_name.setdefault(s.name.split(":")[0], []).append(s)
        assert "executor.program" in by_name
        assert "inst" in by_name and "op" in by_name
        # >= 2 nested levels below the program span.
        assert max(s.depth for s in spans) >= 2
        inst = by_name["inst"][0]
        prog = by_name["executor.program"][0]
        assert inst.parent == prog.id


# ---------------------------------------------------------------------------
# Simulator cache counters (satellite: repeated-layer >0 hits, single 0)
# ---------------------------------------------------------------------------


def one_level_machine():
    return custom_machine("one", [2], [64 * KB, 8 * KB], [1e9] * 2)


class TestSimulatorCacheCounters:
    def test_single_instruction_program_has_zero_sig_hits(self):
        a, b, c = Tensor("a", (8, 8)), Tensor("b", (8, 8)), Tensor("c", (8, 8))
        inst = Instruction(Opcode.MATMUL, (a.region(), b.region()), (c.region(),))
        sim = FractalSimulator(one_level_machine(), collect_profiles=False)
        rep = sim.simulate([inst])
        assert rep.cache is not None
        assert rep.cache.sig_hits == 0
        assert rep.cache.sig_misses >= 1
        assert rep.cache.nodes_memoized == 0

    def test_repeated_layer_network_hits_sig_cache(self):
        # mm_fc repeats structurally identical MatMul steps -> the
        # representative-child memoization must fire.
        w = mm_fc_workload()
        sim = FractalSimulator(tiny_machine(), collect_profiles=False)
        rep = sim.simulate(w.program)
        assert rep.cache.sig_hits > 0
        assert 0.0 < rep.cache.sig_hit_rate < 1.0
        assert rep.cache.nodes_simulated > 0

    def test_cache_registry_mirroring_and_busy_counters(self):
        with telemetry.enabled_scope() as (reg, _tr):
            w = mm_fc_workload()
            machine = tiny_machine()
            sim = FractalSimulator(machine, collect_profiles=False)
            rep = sim.simulate(w.program)
        label = {"machine": machine.name}
        assert reg.value("sim.sig_cache.hits", label) == rep.cache.sig_hits
        assert reg.value("sim.sig_cache.misses", label) == rep.cache.sig_misses
        assert reg.value("sim.runs", label) == 1
        busy = reg.series("sim.busy_seconds")
        assert busy and sum(i.value for i in busy) > 0

    def test_plan_cache_engages_on_long_uniform_streams(self):
        # A large single matmul at root decomposes into many identical
        # steps; past warm-up the plan summary must be reused.
        w = matmul_workload(512)
        sim = FractalSimulator(one_level_machine(), collect_profiles=False)
        rep = sim.simulate(w.program)
        assert rep.cache.plan_hits > 0


# ---------------------------------------------------------------------------
# RunReport
# ---------------------------------------------------------------------------


class TestRunReport:
    def build(self):
        with telemetry.enabled_scope() as (reg, tracer):
            executor = run_functional(profile_benchmark("mm_fc"))
            sim = FractalSimulator(tiny_machine(), collect_profiles=False)
            rep = sim.simulate(profile_benchmark("mm_fc").program)
            return build_run_report(
                "mm_fc", "tiny", registry=reg, tracer=tracer,
                exec_stats=executor.stats, sim_report=rep)

    def test_document_schema(self):
        doc = self.build().to_dict()
        assert doc["schema"] == SCHEMA
        assert doc["schema_version"] == SCHEMA_VERSION
        assert validate_document(doc) == []
        assert doc["executor"]["instructions"] > 0
        assert doc["executor"]["leaf_ops"]
        assert doc["executor"]["bytes_moved"] > 0
        assert "sig_hits" in doc["simulator"]["cache"]
        assert doc["spans"]  # rollups present
        assert doc["counters"]

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "rr.json"
        self.build().write(str(path))
        doc = json.loads(path.read_text())
        assert validate_document(doc) == []

    def test_validate_flags_problems(self):
        assert validate_document({}) != []
        assert any("schema_version" in p for p in
                   validate_document({"schema": SCHEMA, "schema_version": 0}))
        assert any("future" in p for p in
                   validate_document({"schema": SCHEMA,
                                      "schema_version": SCHEMA_VERSION + 1}))

    def test_v1_documents_still_accepted(self):
        """Schema policy: pre-attribution (v1) documents stay diffable."""
        doc = self.build().to_dict()
        doc["schema_version"] = 1
        del doc["attribution"]
        del doc["spans_dropped"]
        assert 1 in SUPPORTED_VERSIONS
        assert validate_document(doc) == []

    def test_attribution_section_present_and_sums(self):
        doc = self.build().to_dict()
        assert doc["schema_version"] == 3
        attr = doc["attribution"]
        total = sum(sum(cats.values())
                    for cats in attr["per_level_s"].values())
        assert total == pytest.approx(attr["makespan_s"], rel=1e-9)
        assert attr["classification"].endswith("-bound")

    def test_validate_rejects_bad_spans_dropped(self):
        doc = self.build().to_dict()
        assert doc["spans_dropped"] == 0
        doc["spans_dropped"] = -1
        assert any("spans_dropped" in p for p in validate_document(doc))
        doc["spans_dropped"] = True  # bools are not counts
        assert any("spans_dropped" in p for p in validate_document(doc))

    def test_validate_rejects_inconsistent_attribution(self):
        doc = self.build().to_dict()
        doc["attribution"]["per_level_s"]["0"]["compute"] += \
            doc["attribution"]["makespan_s"]
        assert any("makespan" in p for p in validate_document(doc))

    def test_spans_dropped_propagates_from_tracer(self):
        tracer = Tracer(enabled=True, capacity=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        report = build_run_report("x", "y", tracer=tracer)
        assert report.spans_dropped == tracer.dropped > 0
        assert report.to_dict()["spans_dropped"] == tracer.dropped


# ---------------------------------------------------------------------------
# Overhead smoke test (satellite: disabled-telemetry slowdown <5%)
# ---------------------------------------------------------------------------


class TestDisabledOverhead:
    def test_disabled_guard_cost_under_5_percent_of_matmul_run(self):
        """The disabled fast path is a flag check per instrumentation site.

        Measure the matmul suite's functional runtime, count the
        instrumentation events it triggered, then time that many guard
        evaluations: the guard budget must stay under 5% of the run.
        (A direct A/B against un-instrumented code is impossible at
        runtime; the guard cost *is* the disabled-telemetry slowdown.)
        """
        assert not telemetry.enabled()
        w = matmul_workload(24)
        machine = tiny_machine()
        rng = np.random.default_rng(0)
        store = TensorStore()
        for t in w.inputs.values():
            store.bind(t, rng.normal(size=t.shape))

        best = float("inf")
        for _ in range(3):
            s = TensorStore()
            for t in w.inputs.values():
                s.bind(t, store.read(t.region()))
            executor = FractalExecutor(machine, s)
            t0 = time.perf_counter()
            executor.run_program(w.program)
            best = min(best, time.perf_counter() - t0)

        stats = executor.stats
        # one guard per fractal node, kernel dispatch, fan-out and publish.
        events = (sum(stats.instructions_per_level.values())
                  + 2 * stats.kernel_calls + stats.fanouts + 8)
        registry, tracer = telemetry.get_registry(), telemetry.get_tracer()
        t0 = time.perf_counter()
        for _ in range(events):
            if registry.enabled or tracer.enabled:  # pragma: no cover
                raise AssertionError("telemetry unexpectedly enabled")
        guard_cost = time.perf_counter() - t0
        assert guard_cost < 0.05 * best, (
            f"disabled-telemetry guards cost {guard_cost * 1e3:.3f} ms vs "
            f"{best * 1e3:.3f} ms run ({guard_cost / best:.1%})")


# ---------------------------------------------------------------------------
# enabled_scope semantics
# ---------------------------------------------------------------------------


class TestGlobalState:
    def test_enabled_scope_restores_prior_state(self):
        assert not telemetry.enabled()
        with telemetry.enabled_scope():
            assert telemetry.enabled()
        assert not telemetry.enabled()

    def test_span_helper_noop_when_disabled(self):
        with telemetry.span("nothing"):
            pass
        assert telemetry.get_tracer().spans() == []


# ---------------------------------------------------------------------------
# Histogram percentile/rollup edge cases (satellite: PR 4)
# ---------------------------------------------------------------------------


class TestHistogramEdgeCases:
    def _hist(self):
        return CounterRegistry(enabled=True).histogram("lat")

    def test_empty_histogram_percentiles_are_none(self):
        h = self._hist()
        assert h.percentile(50) is None
        assert h.percentile(0) is None
        assert h.percentile(100) is None
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["p50"] is None and snap["p99"] is None
        assert snap["mean"] == 0.0  # "no data" mean is 0.0, percentile None

    def test_single_sample_collapses_every_percentile(self):
        h = self._hist()
        h.observe(7.25)
        for q in (0, 1, 50, 90, 99, 100):
            assert h.percentile(q) == 7.25
        snap = h.snapshot()
        assert snap["p50"] == snap["p90"] == snap["p99"] == 7.25
        assert snap["min"] == snap["max"] == 7.25

    def test_nan_observations_are_dropped_and_counted(self):
        h = self._hist()
        h.observe(1.0)
        h.observe(float("nan"))
        h.observe(3.0)
        assert h.count == 2
        assert h.nan_dropped == 1
        assert h.total == pytest.approx(4.0)
        snap = h.snapshot()
        assert snap["nan_dropped"] == 1
        assert snap["mean"] == pytest.approx(2.0)
        # percentiles stay within the observed (non-NaN) range
        assert 1.0 <= snap["p50"] <= 3.0

    def test_all_nan_histogram_behaves_like_empty(self):
        h = self._hist()
        for _ in range(3):
            h.observe(float("nan"))
        assert h.count == 0
        assert h.nan_dropped == 3
        assert h.percentile(50) is None
        assert h.snapshot()["min"] is None

    def test_percentiles_bounded_and_monotone(self):
        h = self._hist()
        for v in (0.5, 1.0, 2.0, 4.0, 9.0, 100.0, 1000.0):
            h.observe(v)
        qs = [h.percentile(q) for q in (1, 25, 50, 75, 90, 99)]
        assert all(h.vmin <= x <= h.vmax for x in qs)
        assert qs == sorted(qs)

    def test_percentile_clamps_out_of_range_q(self):
        h = self._hist()
        h.observe(1.0)
        h.observe(10.0)
        assert h.percentile(-5) == h.vmin
        assert h.percentile(250) == h.vmax


# ---------------------------------------------------------------------------
# Tracer export crash-safety (satellite: PR 4)
# ---------------------------------------------------------------------------


class TestTracerExportSafety:
    def test_failed_export_leaves_no_partial_file(self, tmp_path):
        """A span carrying a non-JSON arg must raise -- and leave neither
        the target file nor a leaked .tmp behind."""
        tr = Tracer(enabled=True)
        with tr.span("good", cat="x"):
            pass
        with tr.span("bad", cat="x", payload=object()):
            pass
        path = tmp_path / "spans.jsonl"
        with pytest.raises(TypeError):
            tr.export_jsonl(str(path))
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []  # no .tmp litter

    def test_failed_export_preserves_previous_file(self, tmp_path):
        """Atomic replace: a failing re-export keeps the prior export."""
        path = tmp_path / "spans.jsonl"
        tr = Tracer(enabled=True)
        with tr.span("first", cat="x"):
            pass
        assert tr.export_jsonl(str(path)) == 1
        before = path.read_text()
        with tr.span("poison", cat="x", payload={1, 2, 3}):
            pass
        with pytest.raises(TypeError):
            tr.export_jsonl(str(path))
        assert path.read_text() == before
        assert sorted(p.name for p in tmp_path.iterdir()) == ["spans.jsonl"]

    def test_successful_export_replaces_atomically(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text("stale\n")
        tr = Tracer(enabled=True)
        with tr.span("fresh", cat="x"):
            pass
        assert tr.export_jsonl(str(path)) == 1
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "fresh"
        assert not (tmp_path / "spans.jsonl.tmp").exists()
