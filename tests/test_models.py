"""Analytic model tests: roofline, MBOI, GPU baselines."""

import pytest
from hypothesis import given, strategies as st

from repro.model.gpu import ALL_GPUS, DGX1, GTX1080TI, gpu_attained
from repro.model.mboi import (
    average_mboi,
    mboi_curve,
    mboi_inverse,
    measured_mboi,
    theoretical_mboi,
)
from repro.model.roofline import RooflinePoint, attainable, ridge_point, roofline_table

MB = 1 << 20


class TestRoofline:
    def test_attainable_memory_bound(self):
        assert attainable(oi=2, peak_ops=100, bandwidth=10) == 20

    def test_attainable_compute_bound(self):
        assert attainable(oi=50, peak_ops=100, bandwidth=10) == 100

    def test_ridge_point(self):
        assert ridge_point(100, 10) == 10

    def test_point_bound_classification(self):
        p = RooflinePoint("x", 5, 40)
        assert p.bound(100, 10) == "memory"
        assert RooflinePoint("y", 50, 90).bound(100, 10) == "compute"

    def test_efficiency(self):
        p = RooflinePoint("x", 5, 25)
        assert p.efficiency(100, 10) == pytest.approx(0.5)

    def test_table_renders(self):
        rows = roofline_table([RooflinePoint("a", 5, 25)], 100, 10)
        assert len(rows) >= 3
        assert "ridge" in rows[-1]


class TestMBOITheory:
    def test_matmul_monotone(self):
        vals = [theoretical_mboi("MatMul", m) for m in (MB, 4 * MB, 64 * MB)]
        assert vals[0] < vals[1] < vals[2]

    def test_pool_constant(self):
        assert (theoretical_mboi("Pool2D", MB)
                == theoretical_mboi("Pool2D", 64 * MB))

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            theoretical_mboi("nope", MB)

    def test_inverse_round_trip(self):
        target = theoretical_mboi("MatMul", 8 * MB)
        m = mboi_inverse(target, "MatMul")
        assert m == pytest.approx(8 * MB, rel=0.01)

    def test_inverse_caps_at_hi(self):
        assert mboi_inverse(1e12, "Pool2D", hi=1 << 20) == 1 << 20


class TestMBOIMeasured:
    def test_measured_monotone_matmul(self):
        small = measured_mboi("MatMul", 256 << 10)
        big = measured_mboi("MatMul", 16 * MB)
        assert big > small

    def test_measured_within_factor_of_theory(self):
        """Fig 10: measured tracks the theoretical curve."""
        for m in (MB, 8 * MB):
            measured = measured_mboi("MatMul", m)
            theory = theoretical_mboi("MatMul", m)
            assert theory / 6 < measured < theory * 6

    def test_conv_measured_positive(self):
        assert measured_mboi("Conv2D", 2 * MB) > 1.0

    def test_pool_measured_low_constantish(self):
        lo = measured_mboi("Pool2D", MB)
        hi = measured_mboi("Pool2D", 32 * MB)
        assert lo < 2.0
        assert hi / lo < 3.0  # pooling cannot gain intensity from memory

    def test_curve_shape(self):
        curve = mboi_curve("MatMul", [MB, 4 * MB])
        assert len(curve) == 2
        m, measured, theory = curve[0]
        assert m == MB and measured > 0 and theory > 0

    def test_average_mboi_between_components(self):
        avg = average_mboi(4 * MB)
        parts = [measured_mboi(a, 4 * MB) for a in ("MatMul", "Conv2D", "Pool2D")]
        assert min(parts) <= avg <= max(parts)


class TestGPUModels:
    def test_attained_below_peak(self):
        for gpu in ALL_GPUS.values():
            for bench in gpu.profiles:
                assert gpu.attained(bench) <= gpu.peak_ops

    def test_matmul_is_best_benchmark(self):
        g = GTX1080TI
        assert g.attained("MATMUL") == max(g.attained(b) for b in g.profiles)

    def test_lvq_collapse(self):
        """Control-flow-dominated LVQ attains a tiny fraction of peak
        (paper: F1 beats 1080Ti by up to 659x on the worst benchmark)."""
        assert GTX1080TI.attained("LVQ") < 0.005 * GTX1080TI.peak_ops

    def test_dgx_root_is_host_link(self):
        assert DGX1.root_bandwidth == pytest.approx(84.24 * (1 << 30))

    def test_gpu_attained_helper(self):
        assert gpu_attained("DGX-1", "VGG-16") == DGX1.attained("VGG-16")

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            GTX1080TI.attained("nope")

    def test_deep_learning_oi_hierarchy(self):
        """DGX keeps data in HBM across kernels -> far higher root OI than
        the single card (the paper's '85x higher' observation)."""
        assert (DGX1.operational_intensity("K-NN")
                > 10 * GTX1080TI.operational_intensity("K-NN"))


@given(st.floats(0.1, 1e4), st.floats(1e9, 1e15), st.floats(1e8, 1e12))
def test_attainable_is_min_of_roofs(oi, peak, bw):
    got = attainable(oi, peak, bw)
    assert got == pytest.approx(min(peak, oi * bw))
