"""Workload generator tests: Table-5 fidelity and functional correctness of
the miniature benchmark suite."""

import numpy as np
import pytest

from repro import FractalExecutor, TensorStore
from repro.core.executor import run_reference
from repro.core.isa import Opcode
from repro.workloads import (
    PAPER_BENCHMARKS,
    alexnet,
    kmeans_workload,
    knn_workload,
    lvq_workload,
    matmul_workload,
    mlp,
    paper_benchmark,
    resnet152,
    small_benchmark,
    svm_workload,
    vgg16,
)
from repro.workloads.datasets import clustered_samples, random_images, random_matrices

from conftest import tiny_machine


class TestTable5Fidelity:
    def test_vgg16_parameters(self):
        """Table 5: 1.38e8 parameters."""
        w = vgg16(batch=1)
        assert w.param_count == pytest.approx(1.38e8, rel=0.01)

    def test_vgg16_ops_per_image(self):
        """Table 5: 3.09e10 ops per image."""
        w = vgg16(batch=1)
        assert w.work == pytest.approx(3.09e10, rel=0.05)

    def test_resnet152_parameters(self):
        """Table 5: 6.03e7 parameters."""
        w = resnet152(batch=1)
        assert w.param_count == pytest.approx(6.03e7, rel=0.01)

    def test_resnet152_ops_per_image(self):
        """Table 5: 2.26e10 ops per image."""
        w = resnet152(batch=1)
        assert w.work == pytest.approx(2.26e10, rel=0.05)

    def test_ops_scale_with_batch(self):
        assert vgg16(batch=4).work == pytest.approx(4 * vgg16(batch=1).work,
                                                    rel=1e-6)

    def test_matmul_order(self):
        w = matmul_workload(1024)
        assert w.work == 2 * 1024 ** 3

    def test_knn_distance_dominates(self):
        """Paper: distance computation is >=95% of k-NN."""
        w = knn_workload(n_samples=8192, dims=512, categories=128, batch=2048)
        dist = sum(i.work() for i in w.program
                   if i.opcode is Opcode.EUCLIDIAN1D)
        assert dist / w.work >= 0.90

    def test_lvq_mix(self):
        """LVQ: IP-dominated by op count (it must clear the F1 ridge point,
        Fig 15a) while carrying a long element-wise update chain that
        dominates *CPU time* (Table 1 -- asserted in the Table-1 bench)."""
        w = lvq_workload(n_samples=8192, dims=512, batch=2048)
        eltw = sum(i.work() for i in w.program
                   if i.opcode in (Opcode.ADD1D, Opcode.SUB1D, Opcode.MUL1D))
        ip = sum(i.work() for i in w.program
                 if i.opcode is Opcode.EUCLIDIAN1D)
        assert ip > eltw  # ops: distances dominate
        assert eltw / w.work > 0.005  # but the update chain is substantial

    def test_svm_ip_dominates(self):
        """Paper Table 1: SVM is ~99% IP (kernel + decision MatMul)."""
        w = svm_workload(n_sv=512, n_samples=2048, dims=128, batch=1024)
        ip = sum(i.work() for i in w.program
                 if i.opcode in (Opcode.EUCLIDIAN1D, Opcode.MATMUL))
        assert ip / w.work > 0.95

    def test_alexnet_has_lrn_and_pool(self):
        ops = {i.opcode for i in alexnet(batch=1).program}
        assert Opcode.LRN in ops and Opcode.MAX2D in ops

    def test_mlp_is_mmm_dominated(self):
        """Paper Table 1: DNN is 99.9% MMM."""
        w = mlp(batch=8)
        mm = sum(i.work() for i in w.program if i.opcode is Opcode.MATMUL)
        assert mm / w.work > 0.99


class TestSuite:
    def test_paper_factories_exist(self):
        assert set(PAPER_BENCHMARKS) == {
            "VGG-16", "ResNet-152", "K-NN", "K-Means", "LVQ", "SVM", "MATMUL"}

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            paper_benchmark("nope")
        with pytest.raises(KeyError):
            small_benchmark("nope")

    @pytest.mark.parametrize("name", sorted(PAPER_BENCHMARKS))
    def test_small_benchmarks_build(self, name):
        w = small_benchmark(name)
        assert len(w.program) >= 1
        assert w.work > 0


class TestFunctionalExecution:
    """Every miniature benchmark must execute fractally to the same numbers
    as the reference kernels."""

    @pytest.mark.parametrize("name", sorted(PAPER_BENCHMARKS))
    def test_small_benchmark_correct(self, rng, name):
        w = small_benchmark(name)
        frac, ref = TensorStore(), TensorStore()
        for t in list(w.inputs.values()) + list(w.params.values()):
            arr = 0.1 * rng.normal(size=t.shape)
            frac.bind(t, arr)
            ref.bind(t, arr)
        for inst in w.program:
            run_reference(inst, ref)
        FractalExecutor(tiny_machine(fanouts=(2, 2),
                                     mems=(1 << 18, 1 << 16, 1 << 14)),
                        frac).run_program(w.program)
        for t in w.outputs.values():
            np.testing.assert_allclose(frac.read(t.region()),
                                       ref.read(t.region()),
                                       atol=1e-7, rtol=1e-6)


class TestDatasets:
    def test_clustered_shapes(self):
        x, labels, centers = clustered_samples(n_samples=256, dims=16,
                                               categories=8)
        assert x.shape == (256, 16)
        assert labels.shape == (256,)
        assert centers.shape == (8, 16)
        assert labels.min() >= 0 and labels.max() < 8

    def test_clusters_are_separable(self):
        x, labels, centers = clustered_samples(n_samples=512, dims=32,
                                               categories=4, spread=0.1)
        d = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(-1)
        assert (d.argmin(axis=1) == labels).mean() > 0.99

    def test_seeded_reproducibility(self):
        a1, _, _ = clustered_samples(64, 8, 4, seed=1)
        a2, _, _ = clustered_samples(64, 8, 4, seed=1)
        np.testing.assert_array_equal(a1, a2)

    def test_random_matrices(self):
        a, b = random_matrices(32)
        assert a.shape == b.shape == (32, 32)

    def test_random_images(self):
        assert random_images(2, 8).shape == (2, 8, 8, 3)


class TestBuilderDetails:
    def test_padding_preserves_semantics(self, rng):
        """Explicit padding: a 'same' conv equals numpy's padded conv."""
        from repro.ops.conv import conv2d

        w = vgg16(batch=1, input_size=32, num_classes=4)
        img = next(t for t in w.inputs.values())
        store = TensorStore()
        arr = rng.normal(size=img.shape)
        store.bind(img, arr)
        for t in w.params.values():
            store.bind(t, 0.1 * rng.normal(size=t.shape))
        # run just the first two instructions: pad + conv
        pad_inst, conv_inst = w.program[0], w.program[1]
        run_reference(pad_inst, store)
        run_reference(conv_inst, store)
        weight = conv_inst.inputs[1]
        want = conv2d(np.pad(arr, ((0, 0), (1, 1), (1, 1), (0, 0))),
                      store.read(weight))
        np.testing.assert_allclose(store.read(conv_inst.outputs[0]), want,
                                   atol=1e-9)

    def test_workload_io_bytes_positive(self):
        assert vgg16(batch=1, input_size=32).io_bytes() > 0

    def test_resnet_block_structure(self):
        w = resnet152(batch=1, input_size=64, blocks=[2, 2, 2, 2])
        adds = [i for i in w.program if i.opcode is Opcode.ADD1D]
        assert len(adds) == 8  # one shortcut add per block
