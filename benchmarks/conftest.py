"""Shared machinery for the reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper and
prints it (run ``pytest benchmarks/ --benchmark-only -s`` to see the
output).  Expensive simulations are shared through session-scoped fixtures
so the whole harness stays in the minutes range.

Every suite simulation also writes a machine-readable RunReport
(``BENCH_<machine>.json``, schema in docs/TELEMETRY.md) into
``$REPRO_BENCH_REPORT_DIR`` (default ``benchmarks/reports/``) -- the
artifact perf PRs diff against.

The suite runs under the observability layer (docs/OBSERVABILITY.md): the
structured event log is armed, a flight recorder checkpoints the counters
per benchmark, and an uncaught exception dumps a crash bundle under
``$REPRO_BENCH_CRASH_DIR`` (default ``benchmarks/reports/crash_bundles/``)
before the failure propagates to pytest.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import pytest

sys.stdout.reconfigure(line_buffering=True)

from repro import cambricon_f1, cambricon_f100, obs, telemetry

# Keep the suite's run-ledger rows and run-history time series next to
# its other artifacts unless the caller routed them elsewhere (or
# disabled them outright).  The history store feeds `repro sentinel`
# (docs/OBSERVABILITY.md), so it lands at reports/history.jsonl where CI
# persists it.
_bench_reports = Path(os.environ.get(
    "REPRO_BENCH_REPORT_DIR",
    str(Path(__file__).resolve().parent / "reports")))
os.environ.setdefault("REPRO_LEDGER", str(_bench_reports / "ledger"))
os.environ.setdefault("REPRO_HISTORY", str(_bench_reports))
from repro.perf import attribute_report
from repro.sim import FractalSimulator
from repro.workloads import PAPER_BENCHMARKS, paper_benchmark


@dataclass
class BenchResult:
    """One (machine, benchmark) simulation outcome."""

    name: str
    machine: str
    total_time: float
    attained_ops: float
    operational_intensity: float
    root_traffic: int
    peak_fraction: float
    #: critical-path summary: {makespan_s, dominant, totals_s} (or None
    #: for reports predating attribution).
    attribution: Optional[Dict] = None


def _report_dir() -> Path:
    return Path(os.environ.get(
        "REPRO_BENCH_REPORT_DIR",
        str(Path(__file__).resolve().parent / "reports")))


def _plan_microbench(machine, benchmark: str = "mm_fc",
                     reps: int = 5) -> Dict[str, object]:
    """Cold recursive execution vs warm plan replay on one benchmark.

    Functional-scale subject (``mm_fc``), min-of-``reps`` wall-clock for
    both paths, identical inputs.  The resulting ``speedup`` (cold /
    warm) lands in the suite RunReport's notes and is what
    ``tools/perf_gate.py --min-replay-speedup`` gates on.
    """
    import time

    import numpy as np

    from repro.core.executor import FractalExecutor
    from repro.core.store import TensorStore
    from repro.plan import compile_program
    from repro.workloads import profile_benchmark

    w = profile_benchmark(benchmark)
    rng = np.random.default_rng(0)
    bound = list(w.inputs.values()) + list(w.params.values())
    arrays = {t.uid: rng.normal(size=t.shape) for t in bound}

    def fresh_store() -> TensorStore:
        store = TensorStore()
        for t in bound:
            store.bind(t, arrays[t.uid])
        return store

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    cold = best_of(lambda: FractalExecutor(
        machine, fresh_store()).run_program(w.program))
    plan = compile_program(machine, w.program)
    # ``batch=False`` pins the classic step-by-step loop so ``speedup``
    # keeps its historical meaning (recursion vs unbatched replay) and
    # ``batched_speedup`` isolates exactly what vectorization buys.
    warm = best_of(lambda: FractalExecutor(
        machine, fresh_store()).run_program(w.program, plan=plan,
                                            batch=False))
    schedule = plan.replay_schedule()  # built once, outside the timing
    warm_batched = best_of(lambda: FractalExecutor(
        machine, fresh_store()).run_program(w.program, plan=plan,
                                            batch=True))
    return {
        "benchmark": benchmark,
        "reps": reps,
        "cold_recursive_s": cold,
        "warm_replay_s": warm,
        "warm_batched_s": warm_batched,
        "speedup": (cold / warm) if warm > 0 else float("inf"),
        "batched_speedup": (warm / warm_batched) if warm_batched > 0
                           else float("inf"),
        "batched_steps": schedule.batched_steps,
        "batched_lanes": schedule.batched_lanes,
        "arena_bytes": schedule.arena.nbytes,
        "plan_steps": plan.n_steps,
        "compile_s": plan.compile_seconds,
    }


def _write_suite_report(machine, results: Dict[str, BenchResult],
                        registry, tracer, event_log=None,
                        plan_microbench: Optional[Dict] = None) -> None:
    """One ``BENCH_<machine>.json`` RunReport for the whole suite."""
    report = telemetry.build_run_report(
        benchmark="paper-suite",
        machine=machine.name,
        registry=registry,
        tracer=tracer,
        event_log=event_log,
        notes={
            "command": "benchmarks/conftest",
            **({"plan_microbench": plan_microbench}
               if plan_microbench else {}),
            "benchmarks": {
                name: {
                    "total_time_s": r.total_time,
                    "attained_ops": r.attained_ops,
                    "operational_intensity": r.operational_intensity,
                    "root_traffic_bytes": r.root_traffic,
                    "peak_fraction": r.peak_fraction,
                    **({"attribution": r.attribution}
                       if r.attribution else {}),
                }
                for name, r in sorted(results.items())
            },
        },
    )
    out_dir = _report_dir()
    try:
        out_dir.mkdir(parents=True, exist_ok=True)
        slug = machine.name.lower().replace(" ", "_").replace("-", "_")
        out_path = out_dir / f"BENCH_{slug}.json"
        report.write(str(out_path))
        obs.record_report(report, kind="bench-suite", out=str(out_path))
    except OSError as err:  # report writing must never fail the harness
        print(f"[bench] could not write suite RunReport: {err}")


def _crash_dir() -> str:
    return os.environ.get("REPRO_BENCH_CRASH_DIR",
                          str(_report_dir() / "crash_bundles"))


def _profile_hz() -> float:
    """Sampling rate requested via ``$REPRO_BENCH_PROFILE`` (0 = off).

    ``1``/``true`` arm the profiler at the default 200 Hz; any other
    number is taken as the rate itself (``REPRO_BENCH_PROFILE=500``).
    """
    raw = os.environ.get("REPRO_BENCH_PROFILE", "").strip().lower()
    if raw in ("", "0", "false", "off", "no"):
        return 0.0
    if raw in ("1", "true", "on", "yes"):
        return 200.0
    try:
        hz = float(raw)
    except ValueError:
        print(f"[bench] ignoring REPRO_BENCH_PROFILE={raw!r} (not a number)")
        return 0.0
    return hz if hz > 0 else 0.0


def _write_suite_profile(machine, profiler) -> None:
    """Profile JSON + flamegraph HTML next to the BENCH report (fail-soft)."""
    from repro.obs.flame import render_flamegraph_html
    from repro.obs.prof import record_profile

    slug = machine.name.lower().replace(" ", "_").replace("-", "_")
    doc = profiler.to_doc(benchmark="paper-suite", machine=machine.name,
                          meta={"command": "benchmarks/conftest"})
    out_dir = _report_dir()
    try:
        out_dir.mkdir(parents=True, exist_ok=True)
        json_path = out_dir / f"profile_{slug}.json"
        with open(json_path, "w", encoding="utf-8") as f:
            import json

            json.dump(doc, f, indent=2)
            f.write("\n")
        with open(out_dir / f"flame_{slug}.html", "w", encoding="utf-8") as f:
            f.write(render_flamegraph_html(doc))
        record_profile(doc, path=json_path, command="benchmarks/conftest")
        print(f"[bench] wrote {json_path} ({doc['samples']} samples)")
    except OSError as err:  # profiling must never fail the harness
        print(f"[bench] could not write suite profile: {err}")


def _simulate_suite(machine) -> Dict[str, BenchResult]:
    out: Dict[str, BenchResult] = {}
    # Measure the compile/replay microbenchmark *before* arming telemetry:
    # the per-dispatch instrumentation is common to both paths and would
    # flatten the cold/warm ratio, and production replay runs untraced.
    try:
        microbench = _plan_microbench(machine)
    except Exception as err:  # noqa: BLE001 - informational only
        print(f"[bench] plan microbenchmark failed: {err}")
        microbench = None
    event_log = obs.get_event_log()
    prior_events = event_log.enabled
    event_log.reset()
    event_log.enable()
    recorder = obs.FlightRecorder(event_log=event_log)
    recorder.report_context.update({"benchmark": "paper-suite",
                                    "machine": machine.name})
    try:
        with telemetry.enabled_scope() as (registry, tracer), \
                obs.ensure_trace(suite="paper-suite"), \
                obs.event_context(suite="paper-suite", machine=machine.name), \
                obs.crash_scope(_crash_dir(),
                                reason=f"bench-suite-{machine.name}",
                                recorder=recorder):
            telemetry.reset()
            # Opt-in suite profiling ($REPRO_BENCH_PROFILE): sample the
            # whole simulation pass and drop profile_<machine>.json plus a
            # flamegraph next to the BENCH report.
            profiler = None
            hz = _profile_hz()
            if hz and obs.get_profiler() is None:
                profiler = obs.SamplingProfiler(hz=hz, tracer=tracer,
                                                registry=registry)
                profiler.start()
            try:
                recorder.mark("suite.start")
                for name in PAPER_BENCHMARKS:
                    _simulate_one(machine, name, out, recorder)
                recorder.mark("suite.end")
                # Write the report while the profiler is still live so
                # build_run_report embeds its summary as notes.profile
                # (diff-exempt; see repro.perf.diff._SKIPPED_PREFIXES).
                _write_suite_report(machine, out, registry, tracer,
                                    event_log=event_log,
                                    plan_microbench=microbench)
            finally:
                if profiler is not None and profiler.running:
                    profiler.stop()
            if profiler is not None:
                _write_suite_profile(machine, profiler)
    finally:
        event_log.enabled = prior_events
    return out


def _simulate_one(machine, name: str, out: Dict[str, BenchResult],
                  recorder) -> None:
    with obs.event_context(benchmark=name):
        w = paper_benchmark(name)
        sim = FractalSimulator(machine, collect_profiles=False)
        rep = sim.simulate(w.program)
        recorder.mark(f"bench.{name}")
        attr = attribute_report(rep) if rep.attribution else None
        out[name] = BenchResult(
            name=name,
            machine=machine.name,
            total_time=rep.total_time,
            attained_ops=rep.attained_ops,
            operational_intensity=rep.operational_intensity,
            root_traffic=rep.root_traffic,
            peak_fraction=rep.peak_fraction(machine.peak_ops),
            attribution=({
                "makespan_s": attr.makespan,
                "dominant": attr.dominant(),
                "classification": attr.classify(),
                "totals_s": attr.totals(),
            } if attr is not None else None),
        )


@pytest.fixture(scope="session")
def f1_suite():
    """All seven paper benchmarks simulated on Cambricon-F1."""
    return _simulate_suite(cambricon_f1())


@pytest.fixture(scope="session")
def f100_suite():
    """All seven paper benchmarks simulated on Cambricon-F100."""
    return _simulate_suite(cambricon_f100())


def show(title: str, rows) -> None:
    """Print a benchmark table with a recognizable banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}")
    for row in rows:
        print(row)
    print(bar)
