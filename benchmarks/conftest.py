"""Shared machinery for the reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper and
prints it (run ``pytest benchmarks/ --benchmark-only -s`` to see the
output).  Expensive simulations are shared through session-scoped fixtures
so the whole harness stays in the minutes range.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict

import pytest

sys.stdout.reconfigure(line_buffering=True)

from repro import cambricon_f1, cambricon_f100
from repro.sim import FractalSimulator
from repro.workloads import PAPER_BENCHMARKS, paper_benchmark


@dataclass
class BenchResult:
    """One (machine, benchmark) simulation outcome."""

    name: str
    machine: str
    total_time: float
    attained_ops: float
    operational_intensity: float
    root_traffic: int
    peak_fraction: float


def _simulate_suite(machine) -> Dict[str, BenchResult]:
    out: Dict[str, BenchResult] = {}
    for name in PAPER_BENCHMARKS:
        w = paper_benchmark(name)
        sim = FractalSimulator(machine, collect_profiles=False)
        rep = sim.simulate(w.program)
        out[name] = BenchResult(
            name=name,
            machine=machine.name,
            total_time=rep.total_time,
            attained_ops=rep.attained_ops,
            operational_intensity=rep.operational_intensity,
            root_traffic=rep.root_traffic,
            peak_fraction=rep.peak_fraction(machine.peak_ops),
        )
    return out


@pytest.fixture(scope="session")
def f1_suite():
    """All seven paper benchmarks simulated on Cambricon-F1."""
    return _simulate_suite(cambricon_f1())


@pytest.fixture(scope="session")
def f100_suite():
    """All seven paper benchmarks simulated on Cambricon-F100."""
    return _simulate_suite(cambricon_f100())


def show(title: str, rows) -> None:
    """Print a benchmark table with a recognizable banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}")
    for row in rows:
        print(row)
    print(bar)
