"""Section 7 scalability claims.

1. Traffic: "By analysis of memory bounded operational intensity,
   Cambricon-F reduces 73.4%~98.8% of the memory traffic between DRAM and
   chips when compared to graphics memory traffic in GPU."  Measured here
   as the F1 root-port traffic vs the 1080Ti's DRAM traffic for the same
   FISA programs (kernel-level GPU simulator).

2. Batch size: "The operational intensity benefits from greater
   sub-problem scale, i.e. from larger batch size used" -- Cambricon-F's
   OI must grow with batch as weights amortize.

3. Scale-out: a task that fits the machine should scale near-linearly
   with more cards (the fractal pipeline keeps every level busy).
"""

from conftest import show
from repro import cambricon_f1, cambricon_f100
from repro.core.machine import CORE_PEAK_OPS, GB, KB, MB, LevelSpec, Machine
from repro.gpusim import GPUSimulator, GTX_1080TI_DEVICE
from repro.gpusim.kernels import lower_to_kernels
from repro.sim import FractalSimulator
from repro.workloads import PAPER_BENCHMARKS, paper_benchmark, vgg16


def traffic_comparison():
    rows = [f"{'benchmark':11s} {'F1 root':>10s} {'GPU DRAM':>10s} {'cut':>8s}"]
    cuts = {}
    f1 = cambricon_f1()
    for name in PAPER_BENCHMARKS:
        w = paper_benchmark(name)
        rep = FractalSimulator(f1, collect_profiles=False).simulate(w.program)
        gpu_bytes = sum(k.dram_bytes
                        for k in lower_to_kernels(w.program, GTX_1080TI_DEVICE))
        cut = 1 - rep.root_traffic / gpu_bytes
        cuts[name] = cut
        rows.append(f"{name:11s} {rep.root_traffic / 2**30:8.2f}Gi "
                    f"{gpu_bytes / 2**30:8.2f}Gi {cut:8.1%}")
    rows.append("(paper: 73.4%~98.8% traffic reduction)")
    return rows, cuts


def batch_sweep():
    rows = [f"{'batch':>6s} {'F100 OI':>9s} {'F100 attained':>14s}"]
    ois = []
    for batch in (4, 8, 16, 32, 64):
        w = vgg16(batch=batch)
        rep = FractalSimulator(cambricon_f100(),
                               collect_profiles=False).simulate(w.program)
        ois.append(rep.operational_intensity)
        rows.append(f"{batch:6d} {rep.operational_intensity:9.1f} "
                    f"{rep.attained_ops / 1e12:12.2f} T")
    rows.append("(OI grows with batch: weights amortize across images)")
    return rows, ois


def _with_cards(n_cards: int) -> Machine:
    """An F100-style server with a variable card count."""
    return Machine(
        name=f"F100-{n_cards}card",
        levels=[
            LevelSpec("Server", n_cards, 1, 1 << 40,
                      32 * GB * n_cards, n_cards * 512 * CORE_PEAK_OPS),
            LevelSpec("Card", 2, 0, 32 * GB, 512 * GB, 512 * CORE_PEAK_OPS),
            LevelSpec("Chip", 8, 16, 256 * MB, 512 * GB, 256 * CORE_PEAK_OPS),
            LevelSpec("FMP", 32, 16, 8 * MB, 512 * GB, 32 * CORE_PEAK_OPS),
            LevelSpec("Core", 0, 0, 256 * KB, 80 * GB, CORE_PEAK_OPS),
        ],
    )


def scale_out():
    from repro.workloads import matmul_workload
    w = matmul_workload(16384)
    rows = [f"{'cards':>6s} {'peak':>8s} {'time':>10s} {'attained':>10s} "
            f"{'scaling':>8s}"]
    base_time = None
    times = []
    for cards in (1, 2, 4, 8):
        m = _with_cards(cards)
        rep = FractalSimulator(m, collect_profiles=False).simulate(w.program)
        if base_time is None:
            base_time = rep.total_time
        speedup = base_time / rep.total_time
        times.append((cards, speedup))
        rows.append(f"{cards:6d} {m.peak_ops / 1e12:6.0f} T "
                    f"{rep.total_time * 1e3:8.2f}ms "
                    f"{rep.attained_ops / 1e12:8.1f} T {speedup:7.2f}x")
    rows.append("(per-card bandwidth held constant; compute-bound MATMUL "
                "should scale near-linearly)")
    return rows, times


def test_traffic_reduction(benchmark):
    rows, cuts = benchmark.pedantic(traffic_comparison, rounds=1, iterations=1)
    show("Section 7 -- DRAM traffic: Cambricon-F1 vs GPU", rows)
    # the paper's claim: substantial cuts on compute-shaped benchmarks
    big = [name for name, c in cuts.items() if c > 0.7]
    assert len(big) >= 4, cuts
    assert max(cuts.values()) > 0.9


def test_batch_size_helps_oi(benchmark):
    rows, ois = benchmark.pedantic(batch_sweep, rounds=1, iterations=1)
    show("Section 6 -- batch size vs operational intensity (VGG-16)", rows)
    assert ois[-1] > ois[0] * 1.5


def test_scale_out(benchmark):
    rows, times = benchmark.pedantic(scale_out, rounds=1, iterations=1)
    show("Section 7 -- scale-out with card count (MATMUL 16384)", rows)
    by_cards = dict(times)
    assert by_cards[8] > 3.0  # at least half-efficient at 8 cards
