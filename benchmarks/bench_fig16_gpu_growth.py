"""Fig 16: growth in cores and memory bandwidth of NVIDIA GPUs since 2009.

Paper: core count grew 67.6%/yr during 2009-2013 but only 8.8%/yr for the
last five years, while bandwidth has held ~15%/yr -- GPUs can no longer buy
performance with cores because the memory system does not keep up.
"""

from conftest import show
from repro.cost.survey import (
    NVIDIA_GPU_TREND,
    gpu_bandwidth_growth,
    gpu_core_growth,
)


def build_table():
    rows = [f"{'Year':>5s} {'GPU':14s} {'Cores':>6s} {'BW (GB/s)':>10s}"]
    for p in NVIDIA_GPU_TREND:
        rows.append(f"{p.year:>5d} {p.name:14s} {p.cores:>6d} "
                    f"{p.bandwidth_gb_s:>10.1f}")
    early = (gpu_core_growth(2009, 2013) - 1) * 100
    late = (gpu_core_growth(2013, 2018) - 1) * 100
    bw = (gpu_bandwidth_growth() - 1) * 100
    rows.append(f"core growth 2009-2013: {early:5.1f}%/yr (paper 67.6%)")
    rows.append(f"core growth 2013-2018: {late:5.1f}%/yr (paper  8.8%)")
    rows.append(f"bandwidth growth:      {bw:5.1f}%/yr (paper ~15%)")
    return rows


def test_fig16_gpu_growth(benchmark):
    rows = benchmark(build_table)
    show("Figure 16 -- NVIDIA GPU cores / bandwidth growth", rows)
    assert gpu_core_growth(2009, 2013) > 1.5
    assert gpu_core_growth(2013, 2018) < 1.15
    assert 1.05 < gpu_bandwidth_growth() < 1.30
