"""Table 8: hardware characteristics comparison vs GPUs and ASICs.

Paper's headline: Cambricon-F1 has the highest power efficiency
(3.02 Tops/W) and area efficiency (0.51 Tops/mm2); the F100 chip is
comparable to the TPU in area efficiency at slightly lower power
efficiency.
"""

import pytest

from conftest import show
from repro.cost.compare import CARD_COMPARISON, chip_comparison_table, fractal_chips


def build_table():
    rows = chip_comparison_table()
    rows.append("")
    rows.append(f"{'Card':10s} {'DRAM':>6s} {'Peak':>7s} {'Power':>8s}")
    for name, c in CARD_COMPARISON.items():
        power = "-" if c["power_w"] != c["power_w"] else f"{c['power_w']:.2f}"
        rows.append(f"{name:10s} {c['dram_gb']:4.0f}GB {c['peak_tops']:6.1f}T "
                    f"{power:>8s}")
    return rows


def test_table8_comparison(benchmark):
    rows = benchmark(build_table)
    show("Table 8 -- hardware characteristics comparison", rows)
    f1, f100 = fractal_chips()
    assert f1.power_efficiency == pytest.approx(3.02, rel=0.08)
    assert f1.area_efficiency == pytest.approx(0.51, rel=0.10)
    assert f100.area_efficiency == pytest.approx(0.29, rel=0.15)
    # card-level claims: F1 card has 40.57% more peak at 45.11% of the
    # 1080Ti's power; the F100 card 1.90x the V100's peak at 67.34% power
    cards = CARD_COMPARISON
    assert cards["Cam-F1"]["peak_tops"] / cards["1080Ti"]["peak_tops"] == \
        pytest.approx(1.4057, rel=0.01)
    assert cards["Cam-F1"]["power_w"] / cards["1080Ti"]["power_w"] == \
        pytest.approx(0.4511, rel=0.01)
    assert cards["Cam-F100"]["peak_tops"] / cards["V100"]["peak_tops"] == \
        pytest.approx(1.90, rel=0.02)
    assert cards["Cam-F100"]["power_w"] / cards["V100"]["power_w"] == \
        pytest.approx(0.6734, rel=0.01)
