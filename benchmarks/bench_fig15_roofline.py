"""Fig 15: roofline comparison -- Cambricon-F1 vs GTX-1080Ti and
Cambricon-F100 vs DGX-1 on the seven benchmarks.

Paper's shape:
* (a) every benchmark's operational intensity on Cambricon-F1 reaches the
  ridge point, so the root bandwidth is never the bottleneck; F1 attains
  57.4-99.8% of peak and beats the 1080Ti on every benchmark (1.42x-659x);
* (b) Cambricon-F100 beats DGX-1 on every benchmark (1.74x-8.58x, 2.82x on
  average); deep-learning tasks are root-bandwidth-slope points for both
  systems, control-flow-heavy K-Means/LVQ collapse on the GPU.
"""

import math

from conftest import show
from repro import cambricon_f1, cambricon_f100
from repro.model.gpu import DGX1, GTX1080TI
from repro.model.roofline import ridge_point
from repro.workloads import PAPER_BENCHMARKS


def _panel(suite, machine, gpu):
    ridge = ridge_point(machine.peak_ops, machine.root_bandwidth)
    rows = [f"--- {machine.name} vs {gpu.name} "
            f"(F ridge point {ridge:.1f} ops/B) ---",
            f"{'benchmark':11s} {'F OI':>8s} {'F attained':>11s} "
            f"{'of peak':>8s} {'GPU OI':>8s} {'GPU attained':>13s} "
            f"{'speedup':>8s}"]
    speedups = {}
    for name in PAPER_BENCHMARKS:
        res = suite[name]
        gpu_ops = gpu.attained(name)
        speedup = res.attained_ops / gpu_ops
        speedups[name] = speedup
        rows.append(
            f"{name:11s} {res.operational_intensity:8.1f} "
            f"{res.attained_ops / 1e12:9.2f} T {res.peak_fraction:8.1%} "
            f"{gpu.operational_intensity(name):8.1f} "
            f"{gpu_ops / 1e12:11.2f} T {speedup:7.2f}x"
        )
    geo = math.exp(sum(math.log(s) for s in speedups.values()) / len(speedups))
    rows.append(f"{'geomean speedup':>55s}: {geo:.2f}x")
    return rows, speedups, geo


def test_fig15a_f1_vs_1080ti(benchmark, f1_suite):
    rows, speedups, geo = benchmark.pedantic(
        _panel, args=(f1_suite, cambricon_f1(), GTX1080TI),
        rounds=1, iterations=1)
    rows.append("(paper: 1.42x-659x, 5.14x average; F1 attains 57.4-99.8%)")
    show("Figure 15a -- Cambricon-F1 vs GTX-1080Ti roofline", rows)
    assert all(s > 1.0 for s in speedups.values())  # F1 wins everywhere
    assert max(speedups.values()) > 100  # the LVQ blowout
    assert 3.0 < geo < 12.0  # same regime as the paper's 5.14x

    # "operational intensity of all seven benchmarks ... reached the ridge"
    ridge = ridge_point(cambricon_f1().peak_ops, cambricon_f1().root_bandwidth)
    for name, res in f1_suite.items():
        assert res.operational_intensity > ridge, name


def test_fig15b_f100_vs_dgx1(benchmark, f100_suite):
    rows, speedups, geo = benchmark.pedantic(
        _panel, args=(f100_suite, cambricon_f100(), DGX1),
        rounds=1, iterations=1)
    rows.append("(paper: 1.74x-8.58x, 2.82x average)")
    show("Figure 15b -- Cambricon-F100 vs DGX-1 roofline", rows)
    assert all(s > 1.0 for s in speedups.values())  # F100 wins everywhere
    assert 1.5 < geo < 6.0  # same regime as the paper's 2.82x
    # on ML tasks the GPU stack achieves far higher root OI (paper: ~85x)
    assert (DGX1.operational_intensity("K-NN")
            > 20 * f100_suite["K-NN"].operational_intensity)
