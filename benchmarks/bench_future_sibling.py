"""Future-work exploration (paper Section 8): sibling interconnect.

"Building interconnection among sibling nodes for Cambricon-F may further
improve performance, we left this exploration for future works."  We built
it: with sibling links enabled, g(.) reductions run as a ring all-reduce
among the FFUs and spatial halos travel neighbour-to-neighbour.

Exploration result: within this model the links buy essentially nothing at
realistic link bandwidths -- the H-tree's LFU path plus the sequential-
accumulation optimization already absorb reduction traffic, so the
father-son-only topology the paper chose is vindicated rather than
improved upon.
"""

from conftest import show
from repro import Tensor, Instruction, Opcode, cambricon_f1
from repro.core.machine import GB
from repro.sim import FractalSimulator
from repro.workloads import knn_workload, resnet152


def _sort(n):
    x, o = Tensor("x", (n,)), Tensor("o", (n,))
    return Instruction(Opcode.SORT1D, (x.region(),), (o.region(),))


def run_sweep():
    workloads = {
        "ResNet-152": resnet152(batch=8).program,
        "K-NN": knn_workload(n_samples=65_536).program,
        "SORT-16M": [_sort(1 << 24)],
    }
    link_bws = [64 * GB, 256 * GB, 512 * GB]
    results = {}
    for name, program in workloads.items():
        base = FractalSimulator(cambricon_f1(),
                                collect_profiles=False).simulate(program)
        row = {"base": base.total_time}
        for bw in link_bws:
            machine = cambricon_f1().with_features(
                use_sibling_links=True, sibling_link_bandwidth=bw)
            rep = FractalSimulator(machine,
                                   collect_profiles=False).simulate(program)
            row[bw] = rep.total_time
        results[name] = row
    return results, link_bws


def test_future_sibling_links(benchmark):
    results, link_bws = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [f"{'workload':12s} {'H-tree':>10s} "
            + " ".join(f"{bw // GB:>5d}GB/s" for bw in link_bws)]
    for name, row in results.items():
        cells = " ".join(f"{row['base'] / row[bw] - 1:+8.1%}"
                         for bw in link_bws)
        rows.append(f"{name:12s} {row['base'] * 1e3:8.2f}ms {cells}")
    rows.append("(positive = sibling links faster than the plain H-tree)")
    rows.append("finding: <2% movement everywhere -- the LFU path and "
                "sequential accumulation already absorb g(.) traffic, "
                "supporting the paper's father-son-only topology")
    show("Future work -- sibling interconnect exploration", rows)
    # the exploration must stay within a sane envelope: sibling links never
    # catastrophically help or hurt in this model
    for name, row in results.items():
        for bw in link_bws:
            ratio = row["base"] / row[bw]
            assert 0.9 < ratio < 1.25, (name, bw, ratio)
