"""Fig 1: power efficiency of machine-learning accelerators, 2012-2018.

Paper: efficiency keeps increasing ~3.2x per year; 1213x total improvement
from NeuFlow (0.23 TOPS/W, 2012) to Conv-RAM (28.1 TOPS/W, 2018).
"""

from conftest import show
from repro.cost.survey import ACCELERATOR_EFFICIENCY_TREND, efficiency_growth


def build_table():
    rows = [f"{'Year':>5s} {'Accelerator':14s} {'TOPS/W':>8s} {'Tech':>12s}"]
    for p in ACCELERATOR_EFFICIENCY_TREND:
        rows.append(f"{p.year:>5d} {p.name:14s} {p.tops_per_watt:8.2f} "
                    f"{p.technology:>12s}")
    first, last = (ACCELERATOR_EFFICIENCY_TREND[0],
                   ACCELERATOR_EFFICIENCY_TREND[-1])
    rows.append(f"annual growth: {efficiency_growth():.2f}x "
                f"(paper: 3.2x); total: "
                f"{last.tops_per_watt / first.tops_per_watt:.0f}x "
                f"(paper: 1213x)")
    return rows


def test_fig01_efficiency_trend(benchmark):
    rows = benchmark(build_table)
    show("Figure 1 -- accelerator power-efficiency trend", rows)
    assert efficiency_growth() > 2.0
