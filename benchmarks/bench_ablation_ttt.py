"""Section 3.6 ablation: the Tensor Transposition Table.

Paper: a five-level 2048-core machine reaches only 3% of peak on
ResNet-152 without the TTT (93.36% root-bandwidth utilization -- pure
re-fetch traffic), and 62% with it: a 20x improvement.  We reproduce the
direction and magnitude class: switching the TTT off multiplies the root
traffic and collapses attained performance.
"""

from conftest import show
from repro import cambricon_f100
from repro.sim import FractalSimulator
from repro.workloads import resnet152


def run_ablation():
    w = resnet152(batch=16)
    results = {}
    for label, flags in (("TTT on", {}), ("TTT off", {"use_ttt": False})):
        machine = cambricon_f100().with_features(**flags) if flags else cambricon_f100()
        rep = FractalSimulator(machine, collect_profiles=False).simulate(w.program)
        results[label] = rep
    return results


def test_ablation_ttt(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    on, off = results["TTT on"], results["TTT off"]
    machine_peak = cambricon_f100().peak_ops
    speedup = off.total_time / on.total_time
    traffic_cut = 1 - on.root_traffic / off.root_traffic
    rows = [
        f"{'config':8s} {'time':>10s} {'of peak':>9s} {'root traffic':>14s}",
        f"{'TTT on':8s} {on.total_time * 1e3:8.2f}ms "
        f"{on.peak_fraction(machine_peak):9.2%} "
        f"{on.root_traffic / 2**30:12.2f}Gi",
        f"{'TTT off':8s} {off.total_time * 1e3:8.2f}ms "
        f"{off.peak_fraction(machine_peak):9.2%} "
        f"{off.root_traffic / 2**30:12.2f}Gi",
        f"speedup from TTT: {speedup:.2f}x; traffic cut {traffic_cut:.1%}",
        "(paper: 3% -> 62% of peak on ResNet-152, a 20x improvement)",
    ]
    show("Ablation -- Tensor Transposition Table (ResNet-152)", rows)
    assert speedup > 1.5
    assert on.root_traffic < off.root_traffic * 0.7
