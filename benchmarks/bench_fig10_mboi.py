"""Fig 10: Memory-Bounded Operational Intensity, measured vs theoretical,
for three representative algorithms on a Cambricon-F node.

Paper's shape: MatMul's MBOI rises with memory (~sqrt), convolution rises
then saturates, pooling stays flat near zero -- which is why memory helps
compute-intense primitives and the average (MBOI_ref) drives node sizing.
"""

from conftest import show
from repro.model.mboi import measured_mboi, theoretical_mboi

MB = 1 << 20
SIZES = [256 << 10, 512 << 10, MB, 2 * MB, 4 * MB, 8 * MB, 16 * MB, 32 * MB]


def build_table():
    algos = ["MatMul", "Conv2D", "Pool2D"]
    rows = [f"{'Memory':>8s}  " + "  ".join(
        f"{a + ' meas':>12s} {a + ' theo':>12s}" for a in algos)]
    curves = {a: [] for a in algos}
    for m in SIZES:
        cells = [f"{m / MB:6.2f}MB"]
        for a in algos:
            meas = measured_mboi(a, m)
            theo = theoretical_mboi(a, m)
            curves[a].append((m, meas, theo))
            cells.append(f"{meas:12.1f} {theo:12.1f}")
        rows.append("  ".join(cells))
    return rows, curves


def test_fig10_mboi(benchmark):
    rows, curves = benchmark.pedantic(build_table, rounds=1, iterations=1)
    show("Figure 10 -- MBOI(M), measured vs theoretical (ops/byte)", rows)
    mm = curves["MatMul"]
    # MatMul MBOI grows monotonically with memory
    assert mm[-1][1] > mm[0][1] * 3
    # Pooling is memory-insensitive
    pool = curves["Pool2D"]
    assert pool[-1][1] < pool[0][1] * 3
    # measured tracks theory within a small factor everywhere
    for m, meas, theo in mm:
        assert theo / 8 < meas < theo * 8
