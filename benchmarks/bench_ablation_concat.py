"""Section 3.6 ablation: pipeline concatenation.

Paper: 93.11% of ResNet-152's instructions can be pre-assigned to the FFUs
one FISA cycle early, hiding child-pipeline refills and gaining 13.0%
overall performance.
"""

from conftest import show
from repro import cambricon_f100
from repro.sim import FractalSimulator
from repro.workloads import resnet152


def run_ablation():
    w = resnet152(batch=16)
    on = FractalSimulator(cambricon_f100(),
                          collect_profiles=False).simulate(w.program)
    off_machine = cambricon_f100().with_features(use_concatenation=False)
    off = FractalSimulator(off_machine, collect_profiles=False).simulate(w.program)
    return on, off


def test_ablation_concatenation(benchmark):
    on, off = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    gain = off.total_time / on.total_time - 1
    preassign = on.stats.preassign_fraction
    rows = [
        f"concat on : {on.total_time * 1e3:8.2f} ms",
        f"concat off: {off.total_time * 1e3:8.2f} ms",
        f"gain: {gain:.1%} (paper: 13.0%)",
        f"pre-assignable instructions: {preassign:.2%} (paper: 93.11%)",
    ]
    show("Ablation -- pipeline concatenation (ResNet-152)", rows)
    assert on.total_time <= off.total_time
    assert preassign > 0.75  # paper: 93.11%
