"""Table 7: Cambricon-F layout characteristics (45 nm).

The leaf-core breakdown is the published layout; the chip totals are our
cost-model roll-up, shown against the paper's placed-and-routed numbers.
"""

import pytest

from conftest import show
from repro import cambricon_f1, cambricon_f100
from repro.cost.layout import chip_cost, table7_rows


def build_table():
    rows = table7_rows(cambricon_f1(), cambricon_f100())
    f1 = chip_cost(cambricon_f1(), "FMP")
    f100 = chip_cost(cambricon_f100(), "Chip")
    rows.append("")
    rows.append(f"model vs paper: F1 chip {f1.area_mm2:.1f} mm2 / "
                f"{f1.power_w:.2f} W  (paper 29.21 / 4.94)")
    rows.append(f"model vs paper: F100 chip {f100.area_mm2:.1f} mm2 / "
                f"{f100.power_w:.2f} W  (paper 415.11 / 42.87)")
    return rows


def test_table7_layout(benchmark):
    rows = benchmark(build_table)
    show("Table 7 -- layout characteristics", rows)
    f1 = chip_cost(cambricon_f1(), "FMP")
    f100 = chip_cost(cambricon_f100(), "Chip")
    assert f1.area_mm2 == pytest.approx(29.21, rel=0.10)
    assert f1.power_w == pytest.approx(4.935, rel=0.10)
    assert f100.area_mm2 == pytest.approx(415.1, rel=0.10)
    assert f100.power_w == pytest.approx(42.87, rel=0.10)
