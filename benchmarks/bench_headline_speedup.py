"""Headline numbers (abstract / conclusion): performance, efficiency and
area advantages of the Cambricon-F instances over the GPU baselines.

Paper: 5.14x / 2.82x better performance, 11.39x / 8.37x better energy
efficiency, 93.8% / 74.5% smaller area vs 1080Ti / V100 respectively.
"""

import math

from conftest import show
from repro.cost.compare import ACCELERATOR_CHIPS, fractal_chips
from repro.model.gpu import DGX1, GTX1080TI
from repro.workloads import PAPER_BENCHMARKS

#: paper-measured average benchmark power draws (Section 6)
F1_CARD_POWER = 83.1
F100_CARDS_POWER = 614.5


def build_table(f1_suite, f100_suite):
    rows = []
    results = {}
    for label, suite, gpu, f_power, gpu_power in (
        ("Cambricon-F1  vs 1080Ti", f1_suite, GTX1080TI,
         F1_CARD_POWER, GTX1080TI.measured_power),
        ("Cambricon-F100 vs DGX-1", f100_suite, DGX1,
         F100_CARDS_POWER, DGX1.measured_power),
    ):
        logs = [math.log(suite[b].attained_ops / gpu.attained(b))
                for b in PAPER_BENCHMARKS]
        perf = math.exp(sum(logs) / len(logs))
        efficiency = perf * (gpu_power / f_power)
        results[label] = (perf, efficiency)
        rows.append(f"{label}: {perf:5.2f}x performance, "
                    f"{efficiency:5.2f}x energy efficiency "
                    f"(power {f_power:.1f} W vs {gpu_power:.1f} W)")
    f1_chip, f100_chip = fractal_chips()
    area_1080 = ACCELERATOR_CHIPS["1080Ti"].area_mm2
    area_v100 = ACCELERATOR_CHIPS["V100"].area_mm2
    save1 = 1 - f1_chip.area_mm2 / area_1080
    save100 = 1 - f100_chip.area_mm2 / area_v100
    rows.append(f"area: F1 chip {f1_chip.area_mm2:.0f} mm2 vs 1080Ti "
                f"{area_1080:.0f} mm2 -> {save1:.1%} smaller (paper 93.8%)")
    rows.append(f"area: F100 chip {f100_chip.area_mm2:.0f} mm2 vs V100 "
                f"{area_v100:.0f} mm2 -> {save100:.1%} smaller (paper 74.5%)")
    rows.append("(paper: 5.14x/2.82x perf, 11.39x/8.37x efficiency)")
    return rows, results, (save1, save100)


def test_headline_speedups(benchmark, f1_suite, f100_suite):
    rows, results, (save1, save100) = benchmark.pedantic(
        build_table, args=(f1_suite, f100_suite), rounds=1, iterations=1)
    show("Headline -- performance / efficiency / area advantages", rows)
    perf1, eff1 = results["Cambricon-F1  vs 1080Ti"]
    perf100, eff100 = results["Cambricon-F100 vs DGX-1"]
    assert 3.0 < perf1 < 12.0      # paper 5.14x
    assert 1.5 < perf100 < 6.0     # paper 2.82x
    assert eff1 > 8.0              # paper 11.39x
    assert eff100 > 5.0            # paper 8.37x
    assert 0.85 < save1 < 0.97     # paper 93.8%
    assert 0.40 < save100 < 0.85   # paper 74.5%
