"""Fig 13: execution timeline of the Fig-11 k-NN program on the two
Cambricon-F instances.

Paper's shape: on Cambricon-F1 the execution is heavily decomposed and the
tail (sorting/counting) is communication-dominated; on Cambricon-F100 the
total time is dominated by top-level-hierarchy communication (the root link
is the narrow resource while the 2048 cores idle).
"""

from conftest import show
from repro import cambricon_f1, cambricon_f100
from repro.sim import FractalSimulator
from repro.sim.trace import flatten_timeline, level_busy_fractions, render_ascii
from repro.workloads import knn_workload


def run_instance(machine, level_names):
    w = knn_workload()  # Table-5 scale: 262,144 x 512, 128 categories
    sim = FractalSimulator(machine, collect_profiles=True)
    rep = sim.simulate(w.program)
    segs = flatten_timeline(rep.root, max_depth=2)
    busy = level_busy_fractions(segs, rep.total_time)
    art = render_ascii(rep, width=100, max_depth=2, level_names=level_names)
    # the paper's zoom panels (Fig 13b / 13d): a 0.4 ms window
    zoom = render_ascii(rep, width=100, max_depth=2, level_names=level_names,
                        window=(0.0, min(0.4e-3, rep.total_time)))
    return rep, busy, art + "\nzoom:\n" + zoom


def build_tables():
    f1_rep, f1_busy, f1_art = run_instance(
        cambricon_f1(), ["Chip", "FMP", "Core"])
    f100_rep, f100_busy, f100_art = run_instance(
        cambricon_f100(), ["Server", "Card", "Chip", "FMP", "Core"])
    return (f1_rep, f1_busy, f1_art), (f100_rep, f100_busy, f100_art)


def test_fig13_knn_timeline(benchmark):
    (f1_rep, f1_busy, f1_art), (f100_rep, f100_busy, f100_art) = \
        benchmark.pedantic(build_tables, rounds=1, iterations=1)
    rows = [f"Cambricon-F1  total: {f1_rep.total_time * 1e3:.3f} ms "
            f"(paper Fig 13a: ~3 ms scale)", f1_art, ""]
    for lv, kinds in sorted(f1_busy.items()):
        rows.append(f"  F1 L{lv} busy: " + "  ".join(
            f"{k}={v:.1%}" for k, v in sorted(kinds.items())))
    rows += ["", f"Cambricon-F100 total: {f100_rep.total_time * 1e3:.3f} ms "
             f"(paper Fig 13c: ~1.8 ms scale)", f100_art, ""]
    for lv, kinds in sorted(f100_busy.items()):
        rows.append(f"  F100 L{lv} busy: " + "  ".join(
            f"{k}={v:.1%}" for k, v in sorted(kinds.items())))
    show("Figure 13 -- k-NN execution timelines", rows)

    # Both runs land in the low-millisecond regime the paper plots.
    assert 1e-4 < f1_rep.total_time < 0.1
    assert 1e-4 < f100_rep.total_time < 0.1
    # F100's top level is communication-dominated: root DMA busier than
    # the fraction of time its own compute ceiling is the limiter.
    f100_l1 = f100_busy.get(1, {})
    assert f100_l1.get("dma", 0) > 0
