"""Section 3.6 ablation: data broadcasting.

Paper: broadcasting shared operands once to all FFUs improves ResNet-152
performance by 19.0% and cuts local memory traffic by 24.2%.
"""

from conftest import show
from repro import cambricon_f100
from repro.sim import FractalSimulator
from repro.workloads import resnet152


def run_ablation():
    w = resnet152(batch=16)
    on = FractalSimulator(cambricon_f100(),
                          collect_profiles=False).simulate(w.program)
    off_machine = cambricon_f100().with_features(use_broadcast=False)
    off = FractalSimulator(off_machine, collect_profiles=False).simulate(w.program)
    return on, off


def test_ablation_broadcast(benchmark):
    on, off = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    gain = off.total_time / on.total_time - 1
    traffic_cut = 1 - on.root_traffic / off.root_traffic
    rows = [
        f"broadcast on : {on.total_time * 1e3:8.2f} ms, "
        f"root traffic {on.root_traffic / 2**30:.2f} Gi",
        f"broadcast off: {off.total_time * 1e3:8.2f} ms, "
        f"root traffic {off.root_traffic / 2**30:.2f} Gi",
        f"performance gain: {gain:.1%} (paper: 19.0%)",
        f"traffic cut: {traffic_cut:.1%} (paper: 24.2% of local traffic)",
    ]
    show("Ablation -- data broadcasting (ResNet-152)", rows)
    assert on.total_time <= off.total_time
    assert on.root_traffic <= off.root_traffic