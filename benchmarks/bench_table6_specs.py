"""Table 6: specification of the Cambricon-F instances."""

from conftest import show
from repro import cambricon_f1, cambricon_f100
from repro.core.machine import GB, TOPS


def build_table():
    rows = []
    for m in (cambricon_f100(), cambricon_f1()):
        rows.append(m.describe())
        rows.append("")
    return rows


def test_table6_specs(benchmark):
    rows = benchmark(build_table)
    show("Table 6 -- Cambricon-F instance specifications", rows)
    f100, f1 = cambricon_f100(), cambricon_f1()
    # Table-6 anchor values
    assert f100.total_cores == 2048
    assert abs(f100.peak_ops / TOPS - 956) < 5
    assert f100.root_bandwidth == 128 * GB
    assert f1.total_cores == 32
    assert abs(f1.peak_ops / TOPS - 14.9) < 0.2
    assert f1.root_bandwidth == 512 * GB
