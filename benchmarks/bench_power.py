"""Section 6 power measurements: average benchmark power of the
Cambricon-F cards, from the energy model fed with simulated data movement
(the paper's own methodology: traffic from the simulator, memory costs
DESTINY-style, the rest from layout).

Paper: the Cambricon-F1 card consumes 83.1 W on average across the
benchmarks (1080Ti: 199.9 W); the four Cambricon-F100 cards consume
614.5 W (eight V100-SXM2: 1986.5 W).
"""

import statistics

from conftest import show
from repro import cambricon_f1, cambricon_f100
from repro.cost.energy import estimate_energy
from repro.model.gpu import DGX1, GTX1080TI
from repro.sim import FractalSimulator
from repro.workloads import PAPER_BENCHMARKS, paper_benchmark

PAPER_POWER = {"Cambricon-F1": 83.1, "Cambricon-F100": 614.5}


def measure(machine, skip=()):
    sim_powers = {}
    for name in PAPER_BENCHMARKS:
        if name in skip:
            continue
        rep = FractalSimulator(machine,
                               collect_profiles=False).simulate(
            paper_benchmark(name).program)
        er = estimate_energy(machine, rep, name)
        sim_powers[name] = er
    return sim_powers


def build_table():
    out = {}
    rows = []
    for machine, skip in ((cambricon_f1(), ("MATMUL",)), (cambricon_f100(), ())):
        reports = measure(machine, skip)
        avg = statistics.mean(r.average_power_w for r in reports.values())
        out[machine.name] = avg
        rows.append(f"--- {machine.name} "
                    f"(paper measured avg {PAPER_POWER[machine.name]} W) ---")
        for name, er in reports.items():
            bd = er.breakdown()
            rows.append(f"  {name:11s} {er.average_power_w:7.1f} W  "
                        f"(compute {bd['compute']:.0%}, memory {bd['memory']:.0%}, "
                        f"static+DRAM {bd['static']:.0%})")
        rows.append(f"  {'average':11s} {avg:7.1f} W")
    rows.append(f"GPU baselines (paper-measured): 1080Ti "
                f"{GTX1080TI.measured_power} W, DGX-1 GPUs {DGX1.measured_power} W")
    return rows, out


def test_power_model(benchmark):
    rows, out = benchmark.pedantic(build_table, rounds=1, iterations=1)
    show("Section 6 -- average benchmark power (energy model)", rows)
    assert abs(out["Cambricon-F1"] - 83.1) / 83.1 < 0.15
    assert abs(out["Cambricon-F100"] - 614.5) / 614.5 < 0.25
