"""Cross-check: the calibrated roofline GPU baselines vs the independent
kernel-level GPU simulator, on the same FISA workload programs.

Two substitution strategies for the paper's GPU testbeds must agree on the
verdict (Cambricon-F wins every benchmark) even though they were built
differently: `repro.model.gpu` is calibrated to the paper's reported
observations; `repro.gpusim` times library-kernel streams from first
principles (cuBLAS tiling, launch latency, host link).
"""

from conftest import show
from repro.gpusim import GPUSimulator, GTX_1080TI_DEVICE, V100_DEVICE
from repro.model.gpu import DGX1, GTX1080TI
from repro.workloads import PAPER_BENCHMARKS, paper_benchmark


def build_table(f1_suite, f100_suite):
    gtx = GPUSimulator(GTX_1080TI_DEVICE)
    dgx = GPUSimulator(V100_DEVICE, n_gpus=8, host_bandwidth=84.24 * 2 ** 30)
    rows = [f"{'benchmark':11s} {'1080Ti cal':>11s} {'1080Ti sim':>11s} "
            f"{'launch%':>8s} {'DGX cal':>9s} {'DGX sim':>9s} "
            f"{'F1 wins':>8s} {'F100 wins':>10s}"]
    verdicts = []
    for name in PAPER_BENCHMARKS:
        w = paper_benchmark(name)
        sim1 = gtx.simulate(w.program)
        sim8 = dgx.simulate(w.program)
        f1_wins = f1_suite[name].attained_ops > sim1.attained_ops
        f100_wins = f100_suite[name].attained_ops > sim8.attained_ops
        verdicts.append((name, f1_wins, f100_wins))
        rows.append(
            f"{name:11s} {GTX1080TI.attained(name) / 1e12:9.2f} T "
            f"{sim1.attained_ops / 1e12:9.2f} T {sim1.launch_fraction:8.1%} "
            f"{DGX1.attained(name) / 1e12:7.1f} T "
            f"{sim8.attained_ops / 1e12:7.1f} T "
            f"{'yes' if f1_wins else 'NO':>8s} {'yes' if f100_wins else 'NO':>10s}"
        )
    rows.append("(cal = roofline model calibrated to the paper; "
                "sim = first-principles kernel simulator)")
    return rows, verdicts


def test_gpusim_crosscheck(benchmark, f1_suite, f100_suite):
    rows, verdicts = benchmark.pedantic(
        build_table, args=(f1_suite, f100_suite), rounds=1, iterations=1)
    show("Cross-check -- calibrated GPU model vs kernel simulator", rows)
    # Fig 15's verdict must hold under the independent substrate too.
    for name, f1_wins, f100_wins in verdicts:
        assert f1_wins, f"F1 lost {name} under the kernel simulator"
        assert f100_wins, f"F100 lost {name} under the kernel simulator"
