"""Table 4: estimated power and performance of different Cambricon-F
hierarchy designs at iso-capability (512 cores, 238 TFlops).

Paper's shape: the flat 1-512 design attains the highest raw performance
but pays an order of magnitude more power and area (its efficiency is
~15x worse); 1-2-16-512 is the efficiency sweet spot; adding a fifth level
costs a little performance for little benefit.
"""

from conftest import show
from repro.cost.dse import explore_design_space
from repro.sim import FractalSimulator
from repro.workloads import matmul_workload, resnet152, vgg16

PAPER = {
    "1-512": (1035.02, 140.92, 0.14, 5662.72),
    "1-2-16-512": (55.66, 113.34, 2.04, 184.91),
    "1-4-16-512": (57.52, 107.12, 1.86, 263.64),
    "1-4-16-64-512": (68.83, 104.94, 1.52, 208.72),
}


def _performance(machine) -> float:
    """Geometric-mean attained ops/s over VGG-16 / ResNet-152 / MATMUL."""
    workloads = [
        vgg16(batch=8),
        resnet152(batch=8),
        matmul_workload(8192),
    ]
    prod = 1.0
    for w in workloads:
        rep = FractalSimulator(machine, collect_profiles=False).simulate(w.program)
        prod *= rep.attained_ops
    return prod ** (1.0 / len(workloads))


def build_table():
    points = explore_design_space(performance_fn=_performance)
    rows = [f"{'Hierarchy':15s} {'Power(W)':>9s} {'Perf(Tops)':>11s} "
            f"{'Eff(Tops/J)':>12s} {'Area(mm2)':>10s}   "
            f"{'[paper: W / Tops / Tops/J / mm2]'}"]
    for p in points:
        paper = PAPER[p.hierarchy]
        rows.append(
            f"{p.hierarchy:15s} {p.power_w:9.2f} {p.performance_tops:11.2f} "
            f"{p.efficiency_tops_per_j:12.3f} {p.area_mm2:10.1f}   "
            f"[{paper[0]:.0f} / {paper[1]:.0f} / {paper[2]:.2f} / {paper[3]:.0f}]"
        )
    return rows, points


def test_table4_design_space(benchmark):
    rows, points = benchmark.pedantic(build_table, rounds=1, iterations=1)
    show("Table 4 -- design-space exploration @ 238 TFlops", rows)
    by_name = {p.hierarchy: p for p in points}
    flat = by_name["1-512"]
    best = by_name["1-2-16-512"]
    # the paper's qualitative conclusions
    assert flat.power_w > 2 * best.power_w
    assert flat.area_mm2 > 2 * best.area_mm2
    assert best.efficiency_tops_per_j > 3 * flat.efficiency_tops_per_j
    assert all(p.performance_tops > 0 for p in points)
