"""Table 1: decomposition of machine-learning techniques into computing
primitives.

The paper profiles CPU execution time; we use the library's CPU-time model
(`repro.workloads.profile.cpu_time_shares`): GEMM-shaped primitives run at
BLAS rates while element-wise/pooling/sorting passes are memory- or
branch-bound, reproducing the table's structure -- CNN is CONV-dominated,
DNN is pure MMM, k-NN/SVM are IP-dominated, LVQ is ELTW-heavy, k-means is
IP/MMM with a small ELTW/COUNT tail.
"""

from conftest import show
from repro.workloads import (
    alexnet,
    kmeans_workload,
    knn_workload,
    lvq_workload,
    mlp,
    svm_workload,
)
from repro.workloads.profile import PRIMITIVES, cpu_time_shares


def build_table():
    cases = [
        ("CNN (AlexNet)", alexnet(batch=4, input_size=227)),
        ("DNN (MLP)", mlp(batch=64)),
        ("k-Means", kmeans_workload(n_samples=16384, dims=512, k=128,
                                    batch=2048)),
        ("k-NN", knn_workload(n_samples=16384, dims=512, categories=128,
                              batch=2048)),
        ("SVM", svm_workload(n_sv=1024, n_samples=8192, dims=512, batch=2048)),
        ("LVQ", lvq_workload(n_samples=16384, dims=512, batch=2048)),
    ]
    rows = [f"{'ML technique':14s} " + " ".join(f"{c:>8s}" for c in PRIMITIVES)]
    results = {}
    for name, workload in cases:
        shares = cpu_time_shares(workload.program)
        results[name] = shares
        rows.append(f"{name:14s} " + " ".join(
            f"{shares[c]:8.2%}" if shares[c] else f"{'-':>8s}"
            for c in PRIMITIVES))
    rows.append("(CPU-time shares under a BLAS-vs-memory-bound throughput "
                "model; compare paper Table 1)")
    return rows, results


def test_table1_primitive_breakdown(benchmark):
    rows, results = benchmark(build_table)
    show("Table 1 -- primitive breakdown of ML techniques", rows)
    # qualitative checks against the paper's table
    assert results["CNN (AlexNet)"]["CONV"] > 0.85        # paper: 94.7%
    assert results["DNN (MLP)"]["MMM"] > 0.97             # paper: 99.9%
    assert results["k-NN"]["IP"] > 0.90                   # paper: 99.6%
    assert results["SVM"]["IP"] + results["SVM"]["MMM"] > 0.92  # paper: 99.3%
    assert results["LVQ"]["ELTW"] > results["LVQ"]["IP"]  # paper: 59.8 vs 39.9
    # paper folds the centroid-update GEMM into IP; count both columns
    assert results["k-Means"]["IP"] + results["k-Means"]["MMM"] > 0.90
