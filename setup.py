"""Shim for environments without the `wheel` package (PEP 660 editable
installs need bdist_wheel); `pip install -e . --no-build-isolation
--no-use-pep517` falls back to `setup.py develop` through this file."""
from setuptools import setup

setup()
