"""A kernel-level GPU timing simulator -- the baseline, built rather than
assumed.

`repro.model.gpu` carries roofline constants calibrated to the paper's
reported measurements; this package is the independent cross-check: it
maps the *same* FISA workload programs onto CUDA-style kernel launches and
times them against an SM/memory model.  Per-kernel launch overhead falls
out naturally, which is exactly the mechanism behind the paper's
observation that control-flow-heavy K-Means/LVQ collapse on GPUs.
"""

from .device import GPUDevice, GTX_1080TI_DEVICE, V100_DEVICE
from .kernels import KernelLaunch, lower_to_kernels
from .simulator import GPUSimReport, GPUSimulator

__all__ = [
    "GPUDevice",
    "GTX_1080TI_DEVICE",
    "V100_DEVICE",
    "KernelLaunch",
    "lower_to_kernels",
    "GPUSimReport",
    "GPUSimulator",
]
