"""GPU kernel-stream timing.

Each kernel costs a fixed launch latency (driver + framework runtime,
serialized on the host) plus the larger of its compute and DRAM times at
the device's sustained rates.  Multi-GPU systems run data-parallel: device
work divides across GPUs, but launches stay serialized on the host and
per-batch inputs cross the host link.

This is deliberately first-principles: the control-flow penalty the paper
reports for K-Means/LVQ emerges from launch counts, not from tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.isa import Instruction
from .device import GPUDevice
from .kernels import KernelLaunch, lower_to_kernels


@dataclass
class GPUSimReport:
    """Timing outcome of one FISA program on a GPU system."""

    device: str
    n_gpus: int
    total_time: float
    work: float
    kernel_count: int
    launch_time: float
    compute_time: float
    memory_time: float
    host_transfer_time: float
    by_kind: Dict[str, float] = field(default_factory=dict)

    @property
    def attained_ops(self) -> float:
        return self.work / self.total_time if self.total_time else 0.0

    @property
    def launch_fraction(self) -> float:
        return self.launch_time / self.total_time if self.total_time else 0.0


class GPUSimulator:
    """Times FISA programs on a GPU device model."""

    def __init__(self, device: GPUDevice, n_gpus: int = 1,
                 host_bandwidth: Optional[float] = None):
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        self.device = device
        self.n_gpus = n_gpus
        #: host->device link; None means inputs are resident (single-card
        #: benchmarks against graphics memory, as in Fig 15a)
        self.host_bandwidth = host_bandwidth

    def simulate(self, program: Sequence[Instruction]) -> GPUSimReport:
        kernels = lower_to_kernels(list(program), self.device)
        launch_time = 0.0
        busy_time = 0.0
        compute_time = 0.0
        memory_time = 0.0
        by_kind: Dict[str, float] = {}
        work = 0.0
        for k in kernels:
            work += k.flops
            rate = (self.device.effective_gemm_ops() if k.kind == "gemm"
                    else self.device.effective_simt_ops())
            t_compute = k.flops / (rate * self.n_gpus)
            t_memory = k.dram_bytes / (self.device.effective_bandwidth()
                                       * self.n_gpus)
            t_busy = max(t_compute, t_memory)
            t_launch = k.launches * self.device.kernel_launch_latency
            launch_time += t_launch
            busy_time += t_busy
            compute_time += t_compute
            memory_time += t_memory
            by_kind[k.kind] = by_kind.get(k.kind, 0.0) + t_busy + t_launch

        host_time = 0.0
        if self.host_bandwidth:
            seen = set()
            in_bytes = 0
            for inst in program:
                for r in inst.inputs:
                    t = r.tensor
                    if t.space == "global" and t.uid not in seen:
                        seen.add(t.uid)
                        in_bytes += t.nbytes // 2 * 4  # fp16 -> fp32
            host_time = in_bytes / self.host_bandwidth

        # launches serialize on the host; device work overlaps the PCIe
        # stream but not the launch gaps
        total = launch_time + max(busy_time, host_time)
        return GPUSimReport(
            device=self.device.name,
            n_gpus=self.n_gpus,
            total_time=total,
            work=work,
            kernel_count=sum(k.launches for k in kernels),
            launch_time=launch_time,
            compute_time=compute_time,
            memory_time=memory_time,
            host_transfer_time=host_time,
            by_kind=by_kind,
        )
