"""FISA program -> CUDA-style kernel stream.

A GPU runs the same benchmarks as a sequence of library kernel launches
(cuBLAS GEMM, cuDNN convolution, thrust sort, element-wise grids...).
This module performs that mapping so both substrates execute *the same
workload definition*; per-kernel DRAM traffic follows standard
shared-memory tiling analysis, with fp32 operands (the paper's TensorFlow
baselines).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..core.isa import Instruction, Opcode, POOL_OPCODES
from .device import GPUDevice

#: GPU element size (fp32 TensorFlow baselines)
ELEM = 4


@dataclass(frozen=True)
class KernelLaunch:
    """One logical library call: possibly several hardware launches."""

    name: str
    kind: str  # "gemm" | "simt" | "stream"
    flops: float
    dram_bytes: float
    launches: int = 1


def _gemm_tile(device: GPUDevice) -> int:
    """Square shared-memory tile side for a GEMM-shaped kernel."""
    return max(16, int(math.sqrt(device.sm_shared_bytes / (2 * ELEM))))


def _gemm_traffic(m: int, k: int, n: int, device: GPUDevice) -> float:
    """DRAM bytes of a tiled GEMM: A re-read per column tile, B per row
    tile, C written once."""
    ts = _gemm_tile(device)
    a_reads = m * k * max(1, math.ceil(n / ts))
    b_reads = k * n * max(1, math.ceil(m / ts))
    return ELEM * (a_reads + b_reads + m * n)


def lower_instruction(inst: Instruction, device: GPUDevice) -> List[KernelLaunch]:
    """Map one FISA instruction to its GPU kernel(s)."""
    op = inst.opcode
    work = float(inst.work())
    io = float(inst.io_bytes()) / 2 * ELEM  # fp16 bytes -> fp32 bytes

    if op is Opcode.MATMUL:
        m, k = inst.inputs[0].shape
        _, n = inst.inputs[1].shape
        return [KernelLaunch("gemm", "gemm", work,
                             _gemm_traffic(m, k, n, device))]

    if op in (Opcode.CV2D, Opcode.CV3D):
        # implicit-GEMM convolution: activations ~once (im2col overhead
        # ~20%), weights once per output tile pass, output once.
        x, w = inst.inputs[0], inst.inputs[1]
        out = inst.outputs[0]
        bytes_ = ELEM * (1.2 * x.nelems + 4 * w.nelems + out.nelems)
        return [KernelLaunch(op.value.lower(), "gemm", work, bytes_)]

    if op is Opcode.EUCLIDIAN1D:
        n_, d = inst.inputs[0].shape
        m_, _ = inst.inputs[1].shape
        return [KernelLaunch("pdist", "gemm", work,
                             _gemm_traffic(n_, d, m_, device))]

    if op in POOL_OPCODES or op is Opcode.LRN:
        return [KernelLaunch(op.value.lower(), "stream", work, io)]

    if op is Opcode.SORT1D:
        n_ = inst.inputs[0].nelems
        passes = max(1, math.ceil(math.log2(max(2, n_)) / 4))  # radix-16
        return [KernelLaunch("sort", "stream", work,
                             2.0 * passes * n_ * ELEM, launches=2 * passes)]

    if op is Opcode.MERGE1D:
        return [KernelLaunch("merge", "stream", work, 2 * io)]

    if op in (Opcode.COUNT1D, Opcode.HSUM1D, Opcode.HPROD1D):
        return [KernelLaunch("reduce", "stream", work, io, launches=2)]

    # element-wise grid (Add/Sub/Mul/Act)
    return [KernelLaunch(op.value.lower(), "stream", work, io)]


def lower_to_kernels(program: List[Instruction],
                     device: GPUDevice) -> List[KernelLaunch]:
    """The whole FISA program as a GPU kernel stream."""
    out: List[KernelLaunch] = []
    for inst in program:
        out.extend(lower_instruction(inst, device))
    return out
