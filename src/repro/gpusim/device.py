"""GPU device models.

Published microarchitectural parameters for the baselines the paper
measures against.  Sustained efficiencies reflect well-known library
behaviour (cuBLAS GEMM ~75-85% of peak at large sizes, memory-bound
kernels ~80% of DRAM bandwidth) rather than per-benchmark tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1 << 30


@dataclass(frozen=True)
class GPUDevice:
    """One GPU chip as the kernel simulator sees it."""

    name: str
    sm_count: int
    peak_ops: float  # ops/s across the chip
    dram_bandwidth: float  # bytes/s
    l2_bytes: int
    sm_shared_bytes: int  # programmer-managed shared memory per SM
    kernel_launch_latency: float  # seconds of fixed cost per launch
    #: sustained fraction of peak for dense GEMM-shaped kernels (cuBLAS)
    gemm_efficiency: float
    #: sustained fraction of peak for other compute-bound kernels
    simt_efficiency: float
    #: sustained fraction of DRAM bandwidth for streaming kernels
    stream_efficiency: float

    def effective_gemm_ops(self) -> float:
        return self.peak_ops * self.gemm_efficiency

    def effective_simt_ops(self) -> float:
        return self.peak_ops * self.simt_efficiency

    def effective_bandwidth(self) -> float:
        return self.dram_bandwidth * self.stream_efficiency


#: GTX 1080Ti: 28 SMs (GP102), 10.6 Tops (fp32 FMA counted as 2 ops),
#: 484 GB/s GDDR5X, 96 KB shared memory per SM.  Launch latency ~8 us under
#: a framework runtime (TensorFlow session overheads included).
GTX_1080TI_DEVICE = GPUDevice(
    name="GTX-1080Ti",
    sm_count=28,
    peak_ops=10.6e12,
    dram_bandwidth=484 * GB,
    l2_bytes=2816 << 10,
    sm_shared_bytes=96 << 10,
    kernel_launch_latency=8e-6,
    gemm_efficiency=0.80,
    simt_efficiency=0.55,
    stream_efficiency=0.80,
)

#: Tesla V100-SXM2: 80 SMs, 125 Tops (tensor cores), 900 GB/s HBM2.
V100_DEVICE = GPUDevice(
    name="V100-SXM2",
    sm_count=80,
    peak_ops=125e12,
    dram_bandwidth=900 * GB,
    l2_bytes=6 << 20,
    sm_shared_bytes=96 << 10,
    kernel_launch_latency=8e-6,
    gemm_efficiency=0.70,
    simt_efficiency=0.50,
    stream_efficiency=0.80,
)
