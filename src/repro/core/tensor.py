"""Logical tensors and region algebra.

Cambricon-F instructions never address raw bytes: every operand is a region
of a tensor living in the *parent* node's memory ("all operands are
external", Section 4 of the paper).  Decomposition therefore manipulates
*regions* -- rectangular sub-boxes of logical tensors.  This module provides
the small algebra the rest of the system builds on:

* :class:`DType` -- element types with byte widths.
* :class:`Tensor` -- a named logical tensor (shape + dtype + address space).
* :class:`Region` -- a rectangular view into a tensor, with volume/byte
  accounting, overlap tests and hashable signatures (used as TTT keys and
  broadcast-dedup keys).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple


class DType:
    """An element type, defined by a name and a byte width."""

    _registry = {}

    def __init__(self, name: str, itemsize: int):
        self.name = name
        self.itemsize = itemsize
        DType._registry[name] = self

    def __repr__(self) -> str:
        return f"dtype({self.name})"

    def __eq__(self, other) -> bool:
        return isinstance(other, DType) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("DType", self.name))

    @classmethod
    def from_name(cls, name: str) -> "DType":
        return cls._registry[name]


#: 16-bit fixed/float data, the native width of the Cambricon-F MAC array.
FP16 = DType("fp16", 2)
#: 32-bit accumulation / reduction type.
FP32 = DType("fp32", 4)
#: 32-bit integer, used by COUNT1D outputs and index tensors.
INT32 = DType("int32", 4)


_tensor_counter = itertools.count()


@dataclass(frozen=True)
class Tensor:
    """A named logical tensor.

    ``space`` identifies the address space the tensor lives in.  The root
    program allocates tensors in space ``"global"``; the demotion decoder
    rebinds operands into per-node local spaces as instructions descend the
    fractal hierarchy.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: DType = FP16
    space: str = "global"
    uid: int = field(default_factory=lambda: next(_tensor_counter))

    def __post_init__(self):
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"tensor {self.name!r} has non-positive dim: {self.shape}")

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nelems(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def nbytes(self) -> int:
        return self.nelems * self.dtype.itemsize

    def region(self) -> "Region":
        """The full-tensor region."""
        return Region(self, tuple((0, d) for d in self.shape))

    def __getitem__(self, slices) -> "Region":
        return self.region()[slices]


def _normalize_bounds(
    bounds: Sequence[Tuple[int, int]], shape: Tuple[int, ...]
) -> Tuple[Tuple[int, int], ...]:
    if len(bounds) != len(shape):
        raise ValueError(f"rank mismatch: bounds {bounds} vs shape {shape}")
    out = []
    for (lo, hi), dim in zip(bounds, shape):
        if not (0 <= lo < hi <= dim):
            raise ValueError(f"bounds ({lo}, {hi}) invalid for dim {dim}")
        out.append((lo, hi))
    return tuple(out)


@dataclass(frozen=True)
class Region:
    """A rectangular view ``tensor[lo0:hi0, lo1:hi1, ...]``.

    Regions are immutable; slicing produces new regions whose bounds are
    expressed in the *original* tensor's coordinates, so two regions of the
    same tensor can always be compared for overlap.
    """

    tensor: Tensor
    bounds: Tuple[Tuple[int, int], ...]

    def __post_init__(self):
        object.__setattr__(
            self, "bounds", _normalize_bounds(self.bounds, self.tensor.shape)
        )

    # -- geometry ---------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(hi - lo for lo, hi in self.bounds)

    @property
    def ndim(self) -> int:
        return len(self.bounds)

    @property
    def nelems(self) -> int:
        n = 1
        for lo, hi in self.bounds:
            n *= hi - lo
        return n

    @property
    def nbytes(self) -> int:
        return self.nelems * self.tensor.dtype.itemsize

    @property
    def dtype(self) -> DType:
        return self.tensor.dtype

    def is_full(self) -> bool:
        return all(lo == 0 and hi == d for (lo, hi), d in zip(self.bounds, self.tensor.shape))

    # -- slicing ----------------------------------------------------------

    def slice_dim(self, dim: int, start: int, stop: int) -> "Region":
        """Sub-region along one dimension, in *region-local* coordinates."""
        lo, hi = self.bounds[dim]
        new_lo, new_hi = lo + start, lo + stop
        if not (lo <= new_lo < new_hi <= hi):
            raise ValueError(
                f"slice [{start}:{stop}) out of range for dim {dim} of extent {hi - lo}"
            )
        bounds = list(self.bounds)
        bounds[dim] = (new_lo, new_hi)
        return Region(self.tensor, tuple(bounds))

    def __getitem__(self, slices) -> "Region":
        if not isinstance(slices, tuple):
            slices = (slices,)
        if len(slices) > self.ndim:
            raise ValueError("too many indices")
        region = self
        for dim, sl in enumerate(slices):
            if sl is Ellipsis:
                raise ValueError("Ellipsis not supported; give explicit slices")
            if isinstance(sl, int):
                region = region.slice_dim(dim, sl, sl + 1)
            elif isinstance(sl, slice):
                if sl.step not in (None, 1):
                    raise ValueError("strided regions are not supported")
                extent = region.shape[dim]
                start = 0 if sl.start is None else sl.start
                stop = extent if sl.stop is None else sl.stop
                region = region.slice_dim(dim, start, stop)
            else:
                raise TypeError(f"bad index {sl!r}")
        return region

    def split_dim(self, dim: int, parts: int) -> Tuple["Region", ...]:
        """Split a dimension into ``parts`` near-equal contiguous chunks.

        Chunks differ by at most one element; empty chunks are dropped (when
        ``parts`` exceeds the extent, fewer regions are returned).
        """
        extent = self.shape[dim]
        parts = max(1, min(parts, extent))
        base, rem = divmod(extent, parts)
        out, offset = [], 0
        for i in range(parts):
            size = base + (1 if i < rem else 0)
            if size == 0:
                continue
            out.append(self.slice_dim(dim, offset, offset + size))
            offset += size
        return tuple(out)

    def split_dim_halo(
        self, dim: int, parts: int, halo_lo: int, halo_hi: int
    ) -> Tuple["Region", ...]:
        """Split with a halo (overlap) on each side -- input-dependent splits.

        Each chunk is expanded by up to ``halo_lo`` elements on the low side
        and ``halo_hi`` on the high side, clipped to the region.  Used for
        spatial convolution/pooling splits (Table 2 "Overlapped" redundancy).
        """
        core = self.split_dim(dim, parts)
        lo0, _ = self.bounds[dim]
        extent = self.shape[dim]
        out = []
        for chunk in core:
            lo, hi = chunk.bounds[dim]
            lo = max(lo0, lo - halo_lo)
            hi = min(lo0 + extent, hi + halo_hi)
            bounds = list(chunk.bounds)
            bounds[dim] = (lo, hi)
            out.append(Region(chunk.tensor, tuple(bounds)))
        return tuple(out)

    # -- relations --------------------------------------------------------

    def same_tensor(self, other: "Region") -> bool:
        return self.tensor.uid == other.tensor.uid

    def overlaps(self, other: "Region") -> bool:
        """True when the two regions share at least one element."""
        if not self.same_tensor(other):
            return False
        return all(
            a_lo < b_hi and b_lo < a_hi
            for (a_lo, a_hi), (b_lo, b_hi) in zip(self.bounds, other.bounds)
        )

    def contains(self, other: "Region") -> bool:
        if not self.same_tensor(other):
            return False
        return all(
            a_lo <= b_lo and b_hi <= a_hi
            for (a_lo, a_hi), (b_lo, b_hi) in zip(self.bounds, other.bounds)
        )

    def intersection(self, other: "Region") -> Optional["Region"]:
        if not self.overlaps(other):
            return None
        bounds = tuple(
            (max(a_lo, b_lo), min(a_hi, b_hi))
            for (a_lo, a_hi), (b_lo, b_hi) in zip(self.bounds, other.bounds)
        )
        return Region(self.tensor, bounds)

    # -- identity ---------------------------------------------------------

    def key(self) -> Tuple:
        """Hashable identity usable as a TTT / broadcast-dedup key."""
        return (self.tensor.uid, self.bounds)

    def local_slices(self, parent: "Region") -> Tuple[slice, ...]:
        """numpy-style slices of this region inside ``parent``'s box."""
        if not parent.contains(self):
            raise ValueError("region is not contained in parent")
        return tuple(
            slice(lo - p_lo, hi - p_lo)
            for (lo, hi), (p_lo, _) in zip(self.bounds, parent.bounds)
        )

    def __repr__(self) -> str:
        dims = ",".join(f"{lo}:{hi}" for lo, hi in self.bounds)
        return f"{self.tensor.name}[{dims}]"


def total_bytes(regions: Iterable[Region]) -> int:
    """Sum of region sizes (duplicates counted once by key)."""
    seen, total = set(), 0
    for r in regions:
        k = r.key()
        if k in seen:
            continue
        seen.add(k)
        total += r.nbytes
    return total
