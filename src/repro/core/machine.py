"""Cambricon-F machine instances (paper Table 6).

A machine is a list of :class:`LevelSpec` rows, top (L0) to leaf.  Every
node at level *i* has ``fanout`` FFU children that are level *i+1* nodes
with the same ISA -- the fractal von Neumann architecture.  Because all
siblings are identical, the whole machine is fully described by one row per
level, which is also what makes the recursive timing simulation cacheable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

GB = 1 << 30
MB = 1 << 20
KB = 1 << 10
TOPS = 1e12
GOPS = 1e9


@dataclass(frozen=True)
class LevelSpec:
    """One hierarchy level (one row of Table 6).

    ``mem_bandwidth`` is the byte/s bandwidth of this node's local memory
    (which serves as the "global memory" of its children); ``peak_ops`` is
    the peak arithmetic throughput of the whole subtree rooted here.
    """

    name: str
    fanout: int  # number of FFU children; 0 marks the leaf accelerator
    n_lfus: int
    mem_bytes: int
    mem_bandwidth: float  # bytes / second
    peak_ops: float  # ops / second for the subtree

    @property
    def is_leaf(self) -> bool:
        return self.fanout == 0


@dataclass(frozen=True)
class Machine:
    """A Cambricon-F instance: hierarchy levels plus global toggles.

    The feature flags correspond to the Section 3.6 optimizations and exist
    so the ablation benchmarks can switch them off.
    """

    name: str
    levels: Sequence[LevelSpec]
    use_ttt: bool = True
    use_broadcast: bool = True
    use_concatenation: bool = True
    #: the paper's future work (Section 8): direct links between sibling
    #: FFUs.  When enabled, halo overlaps travel neighbour-to-neighbour and
    #: g(.) reductions run as a ring all-reduce among the FFUs instead of
    #: round-tripping through the parent's memory and LFUs.
    use_sibling_links: bool = False
    sibling_link_bandwidth: float = 64 * (1 << 30)  # bytes/s per link
    #: LFU throughput as a fraction of one child subtree's peak; LFUs are
    #: lightweight vector units, far below the FFU MAC arrays.
    lfu_relative_throughput: float = 0.25
    #: controller decode latency per instruction, seconds (1k cycles @1GHz).
    decode_latency: float = 1e-6

    def __post_init__(self):
        object.__setattr__(self, "levels", tuple(self.levels))
        if not self.levels:
            raise ValueError("machine needs at least one level")
        if not self.levels[-1].is_leaf:
            raise ValueError("last level must be the leaf accelerator (fanout 0)")
        for lv in self.levels[:-1]:
            if lv.is_leaf:
                raise ValueError("only the last level may be a leaf")

    # -- structure ----------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self.levels)

    def level(self, i: int) -> LevelSpec:
        return self.levels[i]

    def nodes_at(self, i: int) -> int:
        """Number of nodes at level ``i`` across the whole machine."""
        n = 1
        for lv in self.levels[:i]:
            n *= lv.fanout
        return n

    @property
    def total_cores(self) -> int:
        return self.nodes_at(self.depth - 1)

    @property
    def peak_ops(self) -> float:
        return self.levels[0].peak_ops

    @property
    def root_bandwidth(self) -> float:
        return self.levels[0].mem_bandwidth

    def with_features(self, **flags) -> "Machine":
        """Copy with Section-3.6 feature toggles changed (for ablations)."""
        return replace(self, **flags)

    def describe(self) -> str:
        rows = [f"{self.name}: {self.depth} levels, {self.total_cores} cores, "
                f"{self.peak_ops / TOPS:.1f} Tops peak"]
        for i, lv in enumerate(self.levels):
            rows.append(
                f"  L{i} {lv.name:<7} fanout={lv.fanout:<4} lfus={lv.n_lfus:<3} "
                f"mem={_fmt_bytes(lv.mem_bytes):>8} bw={lv.mem_bandwidth / GB:6.1f} GB/s "
                f"peak={lv.peak_ops / TOPS:8.3f} Tops"
            )
        return "\n".join(rows)


def _fmt_bytes(n: int) -> str:
    for unit, size in (("TB", 1 << 40), ("GB", GB), ("MB", MB), ("KB", KB)):
        if n >= size:
            return f"{n / size:.0f} {unit}"
    return f"{n} B"


#: Peak performance of one leaf Core: a 16x16 MAC array at 1 GHz, counting a
#: multiply and an add as two ops, derated to the paper's quoted 0.466 Tops
#: (956 Tops / 2048 cores -- the array loses a few percent to edge effects).
CORE_PEAK_OPS = 466.8e9


def cambricon_f1() -> Machine:
    """Cambricon-F1: the desktop-scale card (Table 6, bottom)."""
    return Machine(
        name="Cambricon-F1",
        levels=[
            LevelSpec("Chip", 1, 0, 32 * GB, 512 * GB, 32 * CORE_PEAK_OPS),
            LevelSpec("FMP", 32, 16, 8 * MB, 512 * GB, 32 * CORE_PEAK_OPS),
            LevelSpec("Core", 0, 0, 256 * KB, 80 * GB, CORE_PEAK_OPS),
        ],
    )


def cambricon_f100() -> Machine:
    """Cambricon-F100: the server-scale instance (Table 6, top)."""
    return Machine(
        name="Cambricon-F100",
        levels=[
            LevelSpec("Server", 4, 1, 1 << 40, 128 * GB, 2048 * CORE_PEAK_OPS),
            LevelSpec("Card", 2, 0, 32 * GB, 512 * GB, 512 * CORE_PEAK_OPS),
            LevelSpec("Chip", 8, 16, 256 * MB, 512 * GB, 256 * CORE_PEAK_OPS),
            LevelSpec("FMP", 32, 16, 8 * MB, 512 * GB, 32 * CORE_PEAK_OPS),
            LevelSpec("Core", 0, 0, 256 * KB, 80 * GB, CORE_PEAK_OPS),
        ],
    )


def custom_machine(
    name: str,
    fanouts: Sequence[int],
    mem_bytes: Sequence[int],
    bandwidths: Sequence[float],
    core_peak_ops: float = CORE_PEAK_OPS,
    n_lfus: Optional[Sequence[int]] = None,
) -> Machine:
    """Build an arbitrary hierarchy (used by the Table-4 design-space sweep).

    ``fanouts`` has one entry per non-leaf level; ``mem_bytes`` and
    ``bandwidths`` have one entry per level including the leaf.
    """
    depth = len(fanouts) + 1
    if len(mem_bytes) != depth or len(bandwidths) != depth:
        raise ValueError("mem_bytes and bandwidths must cover every level incl. leaf")
    lfus = list(n_lfus) if n_lfus is not None else [max(1, f // 2) for f in fanouts] + [0]
    cores_below = 1
    for f in fanouts:
        cores_below *= f
    levels: List[LevelSpec] = []
    remaining = cores_below
    for i, f in enumerate(fanouts):
        levels.append(
            LevelSpec(f"L{i}", f, lfus[i], int(mem_bytes[i]), float(bandwidths[i]),
                      remaining * core_peak_ops)
        )
        remaining //= f
    levels.append(
        LevelSpec("Core", 0, 0, int(mem_bytes[-1]), float(bandwidths[-1]), core_peak_ops)
    )
    return Machine(name=name, levels=levels)
