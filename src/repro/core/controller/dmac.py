"""DMA Controller (DMAC).

One DMA engine per node moves operands between the node's local storage and
its parent's memory.  Requests are processed sequentially in list order
(matching the allocation-list design of Section 3.5); LD-stage loads,
WB-stage stores and broadcasts all contend for the same engine, which is
what the pipeline scheduler models as a single shared resource.

The DMAC also computes effective transfer rates: siblings share the parent
memory's bandwidth, so a private transfer runs at ``parent_bw / fanout``
(capped by the local memory's own bandwidth) while a broadcast pushes one
copy at the full parent rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .demotion import DMAKind, DMARequest


@dataclass
class TransferLog:
    """Aggregate traffic counters for one node over a simulation."""

    load_bytes: int = 0
    store_bytes: int = 0
    broadcast_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.load_bytes + self.store_bytes + self.broadcast_bytes


class DMAController:
    """Timing + accounting for one node's DMA engine."""

    def __init__(self, private_rate: float, broadcast_rate: float):
        if private_rate <= 0 or broadcast_rate <= 0:
            raise ValueError("rates must be positive")
        self.private_rate = private_rate
        self.broadcast_rate = broadcast_rate
        self.log = TransferLog()

    def transfer_time(self, requests: List[DMARequest]) -> float:
        """Seconds to service ``requests`` back-to-back on this engine."""
        seconds = 0.0
        for req in requests:
            if req.kind is DMAKind.BROADCAST:
                seconds += req.nbytes / self.broadcast_rate
                self.log.broadcast_bytes += req.nbytes
            elif req.kind is DMAKind.LOAD:
                seconds += req.nbytes / self.private_rate
                self.log.load_bytes += req.nbytes
            else:
                seconds += req.nbytes / self.private_rate
                self.log.store_bytes += req.nbytes
        return seconds

    def bytes_time(self, nbytes: int, broadcast: bool = False) -> float:
        """Seconds for a raw byte count (used by the pipeline scheduler)."""
        rate = self.broadcast_rate if broadcast else self.private_rate
        return nbytes / rate
