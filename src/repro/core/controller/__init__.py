"""The Cambricon-F node controller (paper Section 3.3, Fig 7).

Three phases in pipeline stages: sequential decomposition (SD), demotion
(DD) and parallel decomposition (PD), plus the reduction controller (RC)
steering g(.) operations and the DMA controller (DMAC) moving operands
between this node's memory and its parent's.
"""

from .demotion import DecodedInstruction, DemotionDecoder, DMARequest
from .dmac import DMAController
from .parallel import ParallelDecomposer, ParallelPlan
from .reduction import Commission, ReductionController
from .sequential import SequentialDecomposer

__all__ = [
    "DecodedInstruction",
    "DemotionDecoder",
    "DMARequest",
    "DMAController",
    "ParallelDecomposer",
    "ParallelPlan",
    "Commission",
    "ReductionController",
    "SequentialDecomposer",
]
