"""Sequential Decomposer (SD).

SD fetches instructions from the instruction queue (IQ) and decomposes each
into a sequentially-executed list regarding the hardware limitation -- here,
that one step's working set must fit a recycled memory segment.  SD runs
asynchronously ahead of the rest of the pipeline, filling the sub-level
queue (SQ).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from ..decomposition import shrink_sequential
from ..isa import Instruction


class SequentialDecomposer:
    """IQ -> SQ transformer bounded by a working-set capacity."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.iq: Deque[Instruction] = deque()
        self.sq: Deque[Instruction] = deque()
        self.decomposed_count = 0

    def push(self, instructions: Iterable[Instruction]) -> None:
        """Load input instructions into IQ."""
        self.iq.extend(instructions)

    def pump(self) -> int:
        """Decompose everything currently in IQ into SQ; returns #steps added."""
        added = 0
        while self.iq:
            inst = self.iq.popleft()
            steps = self.decompose(inst)
            self.sq.extend(steps)
            added += len(steps)
        return added

    def decompose(self, inst: Instruction) -> List[Instruction]:
        """Sequentially decompose one instruction to capacity."""
        steps = shrink_sequential(inst, self.capacity_bytes)
        self.decomposed_count += 1
        return steps

    def next_step(self) -> Optional[Instruction]:
        return self.sq.popleft() if self.sq else None

    def __len__(self) -> int:
        return len(self.sq)
