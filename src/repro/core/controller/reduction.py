"""Reduction Controller (RC).

RC normally performs g(.) reduction operations on the node's LFUs during
the RD pipeline stage.  When it predicts a significantly shorter execution
on the FFUs -- or the node has no LFUs at all -- it instead writes the
operation into the commission register; PD appends the commissioned
operation to the FFU stream at the start of the next FISA cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

from ..isa import Instruction


class ReductionTarget(enum.Enum):
    LFU = "lfu"
    COMMISSION = "commission"  # delegated to FFUs via the commission register


@dataclass(frozen=True)
class Commission:
    """RC's routing decision for the reductions of one FISA cycle."""

    target: ReductionTarget
    instructions: List[Instruction]
    predicted_lfu_time: float
    predicted_ffu_time: float

    @property
    def work(self) -> int:
        return sum(i.work() for i in self.instructions)


class ReductionController:
    """Routes reduction instructions between LFUs and FFUs.

    ``speedup_threshold`` is the factor by which the FFU path must beat the
    LFU path before RC pays the commission overhead (the paper only
    commissions for "significantly reduced execution time").
    """

    def __init__(
        self,
        lfu_ops_per_s: float,
        ffu_ops_per_s: float,
        speedup_threshold: float = 4.0,
    ):
        self.lfu_ops_per_s = lfu_ops_per_s
        self.ffu_ops_per_s = ffu_ops_per_s
        self.speedup_threshold = speedup_threshold
        self.lfu_cycles = 0
        self.commissioned_cycles = 0

    def route(self, reductions: Sequence[Instruction]) -> Commission:
        """Decide where this cycle's g(.) instructions execute."""
        insts = list(reductions)
        work = sum(i.work() for i in insts)
        lfu_time = work / self.lfu_ops_per_s if self.lfu_ops_per_s > 0 else float("inf")
        ffu_time = work / self.ffu_ops_per_s if self.ffu_ops_per_s > 0 else float("inf")
        if not insts:
            return Commission(ReductionTarget.LFU, insts, 0.0, 0.0)
        lfu_unavailable = self.lfu_ops_per_s <= 0
        ffu_wins = ffu_time * self.speedup_threshold < lfu_time
        if lfu_unavailable or ffu_wins:
            self.commissioned_cycles += 1
            return Commission(ReductionTarget.COMMISSION, insts, lfu_time, ffu_time)
        self.lfu_cycles += 1
        return Commission(ReductionTarget.LFU, insts, lfu_time, ffu_time)
