"""Demotion Decoder (DD) -- the key controller component.

For each sub-level instruction, DD:

1. checks operand dependencies against in-flight instructions and stalls on
   read-after-write hazards (unless the TTT can forward the local copy);
2. checks storage requirements, allocates local memory space, and generates
   DMA instructions for loads and write-backs;
3. consults the Tensor Transposition Table and rebinds operands that are
   already locally resident, eliding their DMA loads;
4. binds the new local addresses to the operands of the sub-level
   instruction handed to PD and RC.

Operands fall into two classes:

* *external* -- regions of tensors in the parent's memory: allocated in the
  current FISA cycle's recycled segment and DMA-transferred;
* *local* -- partial tensors created by this node's own sequential
  decomposition: they live across multiple FISA cycles, so they are placed
  in the static segment (allocated once, keyed by the parity of the owning
  FISA-level instruction) and never cross the parent link.

When an allocation does not fit (oversized unsplittable steps, or partial
sets larger than the static segment) DD falls back to *streaming*: the
operand is processed directly against parent memory, charged as DMA traffic
with no local residency (so no TTT record).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa import Instruction
from ..memory.allocator import AllocationError, Block, NodeMemoryManager
from ..memory.ttt import TensorTranspositionTable
from ..tensor import Region


class DMAKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    BROADCAST = "broadcast"


@dataclass(frozen=True)
class DMARequest:
    """One DMA transfer between parent memory and local storage."""

    region_key: Tuple
    nbytes: int
    kind: DMAKind
    local_offset: int  # -1 for streamed transfers with no local residency


@dataclass
class DecodedInstruction:
    """DD output for one FISA cycle: the instruction with bound operands
    plus its DMA plan and hazard information."""

    index: int
    inst: Instruction
    loads: List[DMARequest] = field(default_factory=list)
    stores: List[DMARequest] = field(default_factory=list)
    #: index of the in-flight instruction whose WB must complete before our
    #: LD may start (RAW hazard that the TTT could not forward); None if clear.
    stall_on: Optional[int] = None
    ttt_hits: int = 0
    elided_bytes: int = 0
    forwarded: bool = False
    streamed_bytes: int = 0

    @property
    def load_bytes(self) -> int:
        return sum(r.nbytes for r in self.loads)

    @property
    def store_bytes(self) -> int:
        return sum(r.nbytes for r in self.stores)


class DemotionDecoder:
    """Decodes upper-level instructions into locally-bound sub-instructions.

    ``local_uids`` is the set of tensor uids created by this node's own
    decomposition (SD partials); everything else is external.  ``window``
    tracks the outputs of the last three decoded instructions (the ones
    still in the LD/EX/RD/WB pipeline) for RAW detection.
    """

    PIPELINE_WINDOW = 3

    def __init__(
        self,
        memory: NodeMemoryManager,
        ttt: Optional[TensorTranspositionTable] = None,
        local_uids: Optional[Set[int]] = None,
    ):
        self.memory = memory
        self.ttt = ttt
        self.local_uids: Set[int] = set(local_uids or ())
        self._static_blocks: Dict[int, Block] = {}
        self._window: List[Tuple[int, List[Region]]] = []
        self.decoded_count = 0
        self.total_elided_bytes = 0
        self.total_streamed_bytes = 0
        self.stall_count = 0

    def mark_local(self, uid: int) -> None:
        """Register a tensor as node-local (an SD-created partial)."""
        self.local_uids.add(uid)

    def decode(
        self, index: int, inst: Instruction, owner: Optional[int] = None
    ) -> DecodedInstruction:
        """Run one sub-level instruction through the demotion phase.

        ``owner`` is the index of the FISA-level instruction this step was
        sequentially decomposed from (selects the static-segment parity).
        """
        self.memory.begin_fisa_cycle(index)
        if self.ttt is not None:
            self.ttt.begin_cycle(index)

        decoded = DecodedInstruction(index=index, inst=inst)

        seen: Set[Tuple] = set()
        for region in inst.inputs:
            key = region.key()
            if key in seen:
                continue
            seen.add(key)
            if region.tensor.uid in self.local_uids:
                self._touch_local(region, owner if owner is not None else index)
            else:
                self._load_external(region, decoded)
            if decoded.stall_on is None:
                writer = self._raw_writer(region)
                if writer is not None and not decoded.forwarded:
                    decoded.stall_on = writer

        acc = bool(inst.attrs.get("accumulate", False))
        acc_local = bool(inst.attrs.get("acc_local_out", False))
        chain = inst.attrs.get("acc_chain")
        for region in inst.outputs:
            if region.key() in seen:
                continue
            seen.add(region.key())
            if region.tensor.uid in self.local_uids:
                self._touch_local(region, owner if owner is not None else index)
            else:
                self._handle_output(region, decoded, acc, acc_local, chain,
                                    owner if owner is not None else index)

        self._push_window(index, list(inst.outputs))
        self.decoded_count += 1
        self.total_elided_bytes += decoded.elided_bytes
        self.total_streamed_bytes += decoded.streamed_bytes
        if decoded.stall_on is not None:
            self.stall_count += 1
        return decoded

    # -- operand classes ------------------------------------------------------

    def _touch_local(self, region: Region, owner: int) -> None:
        """Static-segment residency for an SD partial (allocated once)."""
        uid = region.tensor.uid
        if uid in self._static_blocks:
            return
        try:
            self._static_blocks[uid] = self.memory.alloc_static(
                region.tensor.nbytes, tag=f"sd:{region.tensor.name}", owner=owner
            )
        except AllocationError:
            # Spill: the partial overflows the static segment and lives in
            # parent memory instead; its producers/consumers stream it.
            self._static_blocks[uid] = Block("spilled", -1, region.tensor.nbytes,
                                             f"spill:{region.tensor.name}", owner)
            self.local_uids.discard(uid)

    def _load_external(self, region: Region, decoded: DecodedInstruction) -> None:
        record = self.ttt.lookup(region) if self.ttt is not None else None
        if record is not None:
            decoded.ttt_hits += 1
            decoded.elided_bytes += region.nbytes
            if record.is_output:
                decoded.forwarded = True
            return
        try:
            block = self.memory.alloc(region.nbytes, tag=f"in:{region.tensor.name}")
            offset = block.offset
        except AllocationError:
            offset = -1  # streamed: no residency
            decoded.streamed_bytes += region.nbytes
        decoded.loads.append(DMARequest(region.key(), region.nbytes, DMAKind.LOAD, offset))
        if self.ttt is not None and offset >= 0:
            self.ttt.record(region, offset, is_output=False)

    def _store_external(self, region: Region, decoded: DecodedInstruction) -> None:
        try:
            block = self.memory.alloc(region.nbytes, tag=f"out:{region.tensor.name}")
            offset = block.offset
        except AllocationError:
            offset = -1
            decoded.streamed_bytes += region.nbytes
        decoded.stores.append(DMARequest(region.key(), region.nbytes, DMAKind.STORE, offset))
        if self.ttt is not None and offset >= 0:
            self.ttt.record(region, offset, is_output=True)

    def _handle_output(
        self,
        region: Region,
        decoded: DecodedInstruction,
        acc: bool,
        acc_local: bool,
        chain,
        owner: int,
    ) -> None:
        """Place an external output, honouring accumulation-chain residency.

        A chain's running sum lives in the static segment under its region
        key: the first part establishes residency (loading the prior value
        from the parent if this node itself received an accumulating
        instruction), middle parts touch it for free, and the last part
        issues the single write-back and retires the entry.
        """
        if not (acc or acc_local):
            self._store_external(region, decoded)
            return
        key = ("acc", region.key())
        block = self._static_blocks.get(key)
        if block is None:
            static_owner = chain if chain is not None else owner
            try:
                block = self.memory.alloc_static(
                    region.nbytes, tag=f"acc:{region.tensor.name}", owner=static_owner
                )
            except AllocationError:
                block = Block("spilled", -1, region.nbytes,
                              f"spill:{region.tensor.name}", static_owner)
            self._static_blocks[key] = block
            if acc:
                # This node inherited a partial sum: fetch the prior value.
                decoded.loads.append(
                    DMARequest(region.key(), region.nbytes, DMAKind.LOAD, block.offset)
                )
        elif block.offset < 0:
            # Spilled chain: every touch streams through the parent.
            decoded.loads.append(
                DMARequest(region.key(), region.nbytes, DMAKind.LOAD, -1))
            decoded.streamed_bytes += region.nbytes
        if not acc_local:
            decoded.stores.append(
                DMARequest(region.key(), region.nbytes, DMAKind.STORE, block.offset)
            )
            self._static_blocks.pop(key, None)  # chain complete
            if self.ttt is not None and block.offset >= 0:
                self.ttt.record(region, block.offset, is_output=True)

    # -- hazards -------------------------------------------------------------

    def _raw_writer(self, region: Region) -> Optional[int]:
        """Index of the most recent in-flight instruction writing ``region``."""
        for idx, outputs in reversed(self._window):
            for out in outputs:
                if out.overlaps(region):
                    return idx
        return None

    def _push_window(self, index: int, outputs: List[Region]) -> None:
        self._window.append((index, outputs))
        if len(self._window) > self.PIPELINE_WINDOW:
            self._window.pop(0)
