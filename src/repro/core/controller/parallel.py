"""Parallel Decomposer (PD).

PD subdivides a sub-level instruction into fractal instructions assigned to
the node's FFUs.  It also identifies *shared* operands -- input regions that
appear in every FFU's part (e.g. the weight tensor of a batch-split
convolution) -- which the data-broadcasting mechanism transfers once instead
of per-FFU.  At the start of each FISA cycle PD additionally drains the
commission register: reduction operations RC has delegated back to the FFUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..decomposition import Split, decompose_parallel
from ..isa import Instruction


@dataclass
class ParallelPlan:
    """PD output: the FFU parts, their shared operands, and g(.) metadata."""

    split: Optional[Split]
    #: the undivided instruction (inherited whole by one FFU when no rule
    #: can split it)
    whole: Optional[Instruction] = None
    #: region keys present in *every* part's inputs (broadcast candidates)
    shared_keys: Set[Tuple] = field(default_factory=set)
    #: shared operand bytes (counted once)
    shared_bytes: int = 0
    commissioned: List[Instruction] = field(default_factory=list)

    @property
    def parts(self) -> List[Instruction]:
        if self.split is None:
            return []
        return self.split.parts

    @property
    def reduction(self) -> List[Instruction]:
        if self.split is None:
            return []
        return self.split.reduction


class ParallelDecomposer:
    """Splits instructions across ``n_ffus`` and tracks shared operands."""

    def __init__(self, n_ffus: int):
        if n_ffus < 1:
            raise ValueError("need at least one FFU")
        self.n_ffus = n_ffus
        self._commission_register: List[Instruction] = []
        self.plans_made = 0

    def commission(self, instructions: List[Instruction]) -> None:
        """RC writes delegated reductions into the commission register (CMR)."""
        self._commission_register.extend(instructions)

    def plan_drain(self) -> List[Instruction]:
        """Drain and return any still-pending commissioned instructions
        (called once after the last FISA cycle of a program)."""
        drained, self._commission_register = self._commission_register, []
        return drained

    def plan(self, inst: Instruction) -> ParallelPlan:
        """Fan ``inst`` out across the FFUs; drains the commission register."""
        commissioned, self._commission_register = self._commission_register, []
        split = decompose_parallel(inst, self.n_ffus)
        plan = ParallelPlan(split=split, whole=inst, commissioned=commissioned)
        if split is not None and len(split.parts) > 1:
            plan.shared_keys, plan.shared_bytes = shared_operands(split.parts)
        self.plans_made += 1
        return plan


def shared_operands(parts: List[Instruction]) -> Tuple[Set[Tuple], int]:
    """Input region keys common to every part, and their total bytes."""
    key_sets = [
        {r.key() for r in p.inputs}
        for p in parts
    ]
    common = set.intersection(*key_sets) if key_sets else set()
    if not common:
        return set(), 0
    by_key = {r.key(): r for p in parts for r in p.inputs}
    return common, sum(by_key[k].nbytes for k in common)
