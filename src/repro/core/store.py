"""Concrete tensor storage for functional execution.

The functional executor models every node's memory as views into one global
store: a mapping from tensor uid to a numpy array.  (Physically the data
would be copied down the hierarchy; numerically, views are equivalent, and
the *timing* simulator is the component that accounts for the copies.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .tensor import Region, Tensor


class TensorStore:
    """Maps logical tensors to backing numpy arrays.

    ``zero_copy_reads`` / ``copied_reads`` are plain-int tallies of the
    :meth:`read` fast and slow paths (mirrored into the telemetry registry
    as ``store.zero_copy_reads`` / ``store.copied_reads`` by the executor;
    kept as bare attributes because ``read`` is the hottest line of
    functional execution).  ``static_zero_copy`` counts operand reads whose
    runtime aliasing-guard scan was skipped entirely because the plan
    analyzer proved the step alias-free (``PlanStep.safe_zero_copy``);
    the executor bumps it, the store just hosts the tally next to its
    siblings.
    """

    def __init__(self):
        self._arrays: Dict[int, np.ndarray] = {}
        self._tensors: Dict[int, Tensor] = {}
        self._arena: Optional[np.ndarray] = None
        self.zero_copy_reads: int = 0
        self.copied_reads: int = 0
        self.static_zero_copy: int = 0
        #: size of the last arena attached by :meth:`attach_arena` (the
        #: executor mirrors it as the ``store.arena_bytes`` gauge).
        self.arena_bytes: int = 0

    def bind(self, tensor: Tensor, array: np.ndarray) -> None:
        """Attach a concrete array (copied) as the tensor's contents."""
        arr = np.asarray(array, dtype=np.float64)
        if arr.shape != tensor.shape:
            raise ValueError(f"shape mismatch: tensor {tensor.shape}, array {arr.shape}")
        self._arrays[tensor.uid] = arr.copy()
        self._tensors[tensor.uid] = tensor

    def ensure(self, tensor: Tensor) -> np.ndarray:
        """Materialize (zero-filled) storage for ``tensor`` if absent."""
        if tensor.uid not in self._arrays:
            self._arrays[tensor.uid] = np.zeros(tensor.shape, dtype=np.float64)
            self._tensors[tensor.uid] = tensor
        return self._arrays[tensor.uid]

    def has(self, tensor: Tensor) -> bool:
        return tensor.uid in self._arrays

    def read(self, region: Region, copy: bool = True) -> np.ndarray:
        """The region's contents.

        By default a private copy (callers may mutate it freely).  With
        ``copy=False`` -- the zero-copy fast path on the hottest line of
        functional execution -- a **read-only view** of the backing array
        is returned instead: no bytes move, and an in-place-mutating caller
        trips numpy's writeable guard rather than corrupting the store.
        Callers must only take the view when the region cannot alias a
        pending write (see ``FractalExecutor._read_operands``).
        """
        base = self.ensure(region.tensor)
        view = base[tuple(slice(lo, hi) for lo, hi in region.bounds)]
        if copy:
            self.copied_reads += 1
            return view.copy()
        view.flags.writeable = False  # fresh view object; base is untouched
        self.zero_copy_reads += 1
        return view

    def _coerce(self, region: Region, value, verb: str) -> np.ndarray:
        """Validate/shape ``value`` for storage into ``region``.

        1-D opcode outputs (sort/merge/count/hsum) are flat; an exact-size
        reshape is allowed so rank-1 results land in rank-N regions.  Shared
        by :meth:`write` and :meth:`write_accumulate` (the two copies had
        drifted apart in their error prefixes only).
        """
        value = np.asarray(value, dtype=np.float64)
        if value.shape != region.shape:
            if value.size == region.nelems:
                value = value.reshape(region.shape)
            else:
                raise ValueError(
                    f"{verb} shape mismatch: region {region.shape}, "
                    f"value {value.shape}"
                )
        return value

    def write(self, region: Region, value: np.ndarray) -> None:
        base = self.ensure(region.tensor)
        slices = tuple(slice(lo, hi) for lo, hi in region.bounds)
        base[slices] = self._coerce(region, value, "write")

    def write_accumulate(self, region: Region, value: np.ndarray) -> None:
        """Add ``value`` into the region (MAC-array style accumulation)."""
        base = self.ensure(region.tensor)
        slices = tuple(slice(lo, hi) for lo, hi in region.bounds)
        base[slices] += self._coerce(region, value, "accumulate")

    def attach_arena(self, bindings: Sequence[Tuple[Tensor, int]],
                     total_elems: int) -> List[np.ndarray]:
        """Back a set of tensors with slots of one flat preallocated buffer.

        ``bindings`` maps each tensor to its element offset (from
        :class:`repro.plan.batch.ArenaLayout`); a fresh zeroed float64
        buffer of ``total_elems`` is allocated and each tensor is bound to
        a contiguous view of it, so batched replay resolves intermediates
        with offset arithmetic instead of growing ``_arrays`` one
        ``np.zeros`` at a time.  Returns the views in binding order (the
        executor re-zeroes recycled slots through them).  Existing
        bindings for the same uids are replaced; the caller guarantees
        slot lifetimes do not overlap while their tensors are live.
        """
        buf = np.zeros(int(total_elems), dtype=np.float64)
        self._arena = buf
        self.arena_bytes = buf.nbytes
        views: List[np.ndarray] = []
        arrays, tensors = self._arrays, self._tensors
        for tensor, offset in bindings:
            shape = tensor.shape
            view = buf[offset:offset + tensor.nelems]
            if len(shape) != 1:  # rank-1 slots are already shaped
                view = view.reshape(shape)
            arrays[tensor.uid] = view
            tensors[tensor.uid] = tensor
            views.append(view)
        return views

    def tensor(self, uid: int) -> Optional[Tensor]:
        return self._tensors.get(uid)

    def array(self, tensor: Tensor) -> np.ndarray:
        """Direct reference to the backing array (read-only use)."""
        return self.ensure(tensor)
