"""Concrete tensor storage for functional execution.

The functional executor models every node's memory as views into one global
store: a mapping from tensor uid to a numpy array.  (Physically the data
would be copied down the hierarchy; numerically, views are equivalent, and
the *timing* simulator is the component that accounts for the copies.)
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .tensor import Region, Tensor


class TensorStore:
    """Maps logical tensors to backing numpy arrays."""

    def __init__(self):
        self._arrays: Dict[int, np.ndarray] = {}
        self._tensors: Dict[int, Tensor] = {}

    def bind(self, tensor: Tensor, array: np.ndarray) -> None:
        """Attach a concrete array (copied) as the tensor's contents."""
        arr = np.asarray(array, dtype=np.float64)
        if arr.shape != tensor.shape:
            raise ValueError(f"shape mismatch: tensor {tensor.shape}, array {arr.shape}")
        self._arrays[tensor.uid] = arr.copy()
        self._tensors[tensor.uid] = tensor

    def ensure(self, tensor: Tensor) -> np.ndarray:
        """Materialize (zero-filled) storage for ``tensor`` if absent."""
        if tensor.uid not in self._arrays:
            self._arrays[tensor.uid] = np.zeros(tensor.shape, dtype=np.float64)
            self._tensors[tensor.uid] = tensor
        return self._arrays[tensor.uid]

    def has(self, tensor: Tensor) -> bool:
        return tensor.uid in self._arrays

    def read(self, region: Region) -> np.ndarray:
        """The region's contents (a copy, so kernels cannot alias)."""
        base = self.ensure(region.tensor)
        slices = tuple(slice(lo, hi) for lo, hi in region.bounds)
        return base[slices].copy()

    def write(self, region: Region, value: np.ndarray) -> None:
        base = self.ensure(region.tensor)
        slices = tuple(slice(lo, hi) for lo, hi in region.bounds)
        value = np.asarray(value, dtype=np.float64)
        if value.shape != region.shape:
            # 1-D opcode outputs (sort/merge/count/hsum) are flat; allow an
            # exact-size reshape so rank-1 results land in rank-1 regions.
            if value.size == region.nelems:
                value = value.reshape(region.shape)
            else:
                raise ValueError(
                    f"write shape mismatch: region {region.shape}, value {value.shape}"
                )
        base[slices] = value

    def write_accumulate(self, region: Region, value: np.ndarray) -> None:
        """Add ``value`` into the region (MAC-array style accumulation)."""
        base = self.ensure(region.tensor)
        slices = tuple(slice(lo, hi) for lo, hi in region.bounds)
        value = np.asarray(value, dtype=np.float64)
        if value.shape != region.shape:
            if value.size == region.nelems:
                value = value.reshape(region.shape)
            else:
                raise ValueError(
                    f"accumulate shape mismatch: region {region.shape}, value {value.shape}"
                )
        base[slices] += value

    def tensor(self, uid: int) -> Optional[Tensor]:
        return self._tensors.get(uid)

    def array(self, tensor: Tensor) -> np.ndarray:
        """Direct reference to the backing array (read-only use)."""
        return self.ensure(tensor)
