"""FISA -- the Fractal Instruction Set Architecture (paper Section 3.2).

A FISA instruction is a 3-tuple ``(O, P, G)``: an operation, a finite set of
operands and a granularity indicator.  Here operands are :class:`Region`
views of tensors in the enclosing node's memory, and the granularity
indicator is derived from the operand shapes (it is what the sequential and
parallel decomposers shrink as instructions descend the hierarchy).

The opcode list is the paper's Table 3: deep-learning primitives (Cv2D,
Cv3D, pooling, LRN), linear algebra (MatMul, Euclidian1D), sort, count, and
the reduction group (element-wise, horizontal reductions, merge) that "tend
to execute on LFUs".
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .tensor import Region


class Opcode(enum.Enum):
    """FISA operations (paper Table 3)."""

    # Deep learning
    CV2D = "Cv2D"
    CV3D = "Cv3D"
    MAX2D = "Max2D"
    MIN2D = "Min2D"
    AVG2D = "Avg2D"
    LRN = "Lrn"
    # Linear algebra
    MATMUL = "MatMul"
    EUCLIDIAN1D = "Euclidian1D"
    # Sort / count
    SORT1D = "Sort1D"
    COUNT1D = "Count1D"
    # Reduction group (LFU-leaning)
    ADD1D = "Add1D"
    SUB1D = "Sub1D"
    MUL1D = "Mul1D"
    ACT1D = "Act1D"
    HSUM1D = "HSum1D"
    HPROD1D = "HProd1D"
    MERGE1D = "Merge1D"

    def __repr__(self) -> str:  # terse in traces
        return self.value


#: Opcodes the paper groups as "Reduction" in Table 3.  These have low
#: operational intensity; the reduction controller prefers executing them on
#: the node's local functional units.
REDUCTION_OPCODES = frozenset(
    {
        Opcode.ADD1D,
        Opcode.SUB1D,
        Opcode.MUL1D,
        Opcode.ACT1D,
        Opcode.HSUM1D,
        Opcode.HPROD1D,
        Opcode.MERGE1D,
    }
)

#: Pooling opcodes share decomposition and work models.
POOL_OPCODES = frozenset({Opcode.MAX2D, Opcode.MIN2D, Opcode.AVG2D})


class DependencyKind(enum.Enum):
    """How a fractal split's operand subsets relate (paper Section 2.2)."""

    INDEPENDENT = "independent"
    INPUT_DEPENDENT = "input-dependent"
    OUTPUT_DEPENDENT = "output-dependent"


@dataclass(frozen=True)
class SourceLoc:
    """Where an instruction came from in a source artifact.

    The assembler stamps every instruction it parses with the ``.fisa``
    file, 1-based line and 1-based column of the opcode token; analyzer
    diagnostics (``repro.analysis``) thread it back to the user.  Locations
    are *metadata*: they never participate in instruction equality, hashing
    or structural signatures, so a located instruction is interchangeable
    with an unlocated one everywhere else in the stack.
    """

    file: str = "<program>"
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        if self.column:
            return f"{self.file}:{self.line}:{self.column}"
        if self.line:
            return f"{self.file}:{self.line}"
        return self.file


@dataclass(frozen=True)
class Instruction:
    """A FISA instruction ``I = (O, P, G)``.

    ``inputs`` and ``outputs`` are regions of tensors in the memory of the
    node that receives this instruction; ``attrs`` holds scalar parameters
    (strides, pool windows, activation kind, ...).  Instructions are
    immutable -- the controller rewrites operands by constructing new
    instances.
    """

    opcode: Opcode
    inputs: Tuple[Region, ...]
    outputs: Tuple[Region, ...]
    attrs: Dict[str, object] = field(default_factory=dict)
    #: source location metadata (assembler-stamped); excluded from __eq__,
    #: __hash__ and signature() -- see :class:`SourceLoc`.
    loc: Optional[SourceLoc] = None

    def __post_init__(self):
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "outputs", tuple(self.outputs))
        # attrs participates in hashing via the frozen signature only
        object.__setattr__(self, "attrs", dict(self.attrs))

    def __hash__(self) -> int:
        return hash(self.signature() + tuple(r.key() for r in self.inputs + self.outputs))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Instruction)
            and self.opcode == other.opcode
            and self.inputs == other.inputs
            and self.outputs == other.outputs
            and self.attrs == other.attrs
        )

    # -- classification ----------------------------------------------------

    @property
    def is_reduction_style(self) -> bool:
        """True for the Table-3 "Reduction" opcode group."""
        return self.opcode in REDUCTION_OPCODES

    # -- the G of (O, P, G) --------------------------------------------------

    @property
    def granularity(self) -> int:
        """Granularity indicator: total output elements of the instruction."""
        return sum(r.nelems for r in self.outputs)

    # -- accounting ----------------------------------------------------------

    def io_bytes(self) -> int:
        """Bytes moved if every operand is DMA-transferred exactly once."""
        seen, total = set(), 0
        for r in self.inputs + self.outputs:
            if r.key() in seen:
                continue
            seen.add(r.key())
            total += r.nbytes
        return total

    def work(self) -> int:
        """Arithmetic operation count (multiply and add counted separately,
        matching how the paper quotes peak Tops)."""
        return _WORK_MODELS[self.opcode](self)

    def operational_intensity(self) -> float:
        """ops / byte, at this instruction's granularity."""
        return self.work() / max(1, self.io_bytes())

    # -- identity ------------------------------------------------------------

    def signature(self) -> Tuple:
        """Structural signature: opcode + operand shapes/dtypes + attrs.

        Two instructions with equal signatures take identical time on
        identical nodes; the timing simulator caches on this.  The value is
        computed once and memoized (instructions are immutable).
        """
        cached = self.__dict__.get("_sig")
        if cached is not None:
            return cached
        sig = (
            self.opcode,
            tuple((r.shape, r.dtype.name) for r in self.inputs),
            tuple((r.shape, r.dtype.name) for r in self.outputs),
            # acc_chain is a globally unique chain id -- bookkeeping for the
            # static allocator, not structure -- so it is excluded here.
            tuple(sorted((k, v) for k, v in self.attrs.items() if k != "acc_chain")),
        )
        object.__setattr__(self, "_sig", sig)
        return sig

    def with_operands(
        self,
        inputs: Optional[Tuple[Region, ...]] = None,
        outputs: Optional[Tuple[Region, ...]] = None,
    ) -> "Instruction":
        return Instruction(
            self.opcode,
            self.inputs if inputs is None else tuple(inputs),
            self.outputs if outputs is None else tuple(outputs),
            dict(self.attrs),
            loc=self.loc,
        )

    def __repr__(self) -> str:
        ins = ", ".join(map(repr, self.inputs))
        outs = ", ".join(map(repr, self.outputs))
        attrs = f" {self.attrs}" if self.attrs else ""
        return f"{self.opcode.value} {outs} <- {ins}{attrs}"


# ---------------------------------------------------------------------------
# Work (operation count) models
# ---------------------------------------------------------------------------


def _work_matmul(inst: Instruction) -> int:
    a, b = inst.inputs[0], inst.inputs[1]
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"MatMul shape mismatch: {a.shape} @ {b.shape}")
    return 2 * m * k * n


def _work_cv2d(inst: Instruction) -> int:
    w = inst.inputs[1]
    out = inst.outputs[0]
    kh, kw, cin, _cout = w.shape
    n, ho, wo, cout = out.shape
    return 2 * n * ho * wo * cout * kh * kw * cin


def _work_cv3d(inst: Instruction) -> int:
    w = inst.inputs[1]
    out = inst.outputs[0]
    kd, kh, kw, cin, _cout = w.shape
    n, do, ho, wo, cout = out.shape
    return 2 * n * do * ho * wo * cout * kd * kh * kw * cin


def _work_pool(inst: Instruction) -> int:
    out = inst.outputs[0]
    kh = int(inst.attrs.get("kh", 2))
    kw = int(inst.attrs.get("kw", 2))
    return out.nelems * kh * kw


def _work_lrn(inst: Instruction) -> int:
    out = inst.outputs[0]
    size = int(inst.attrs.get("size", 5))
    # square, windowed sum, scale, pow, multiply
    return out.nelems * (size + 4)


def _work_euclidian(inst: Instruction) -> int:
    x, y = inst.inputs[0], inst.inputs[1]
    n, d = x.shape
    m, d2 = y.shape
    if d != d2:
        raise ValueError(f"Euclidian1D dim mismatch: {x.shape} vs {y.shape}")
    return 3 * n * m * d  # sub, square, accumulate


def _work_sort(inst: Instruction) -> int:
    n = inst.inputs[0].nelems
    return max(1, int(n * max(1.0, math.log2(max(2, n)))))


def _work_count(inst: Instruction) -> int:
    return inst.inputs[0].nelems


def _work_eltwise(inst: Instruction) -> int:
    return inst.outputs[0].nelems


def _work_unary(inst: Instruction) -> int:
    return 2 * inst.outputs[0].nelems


def _work_horizontal(inst: Instruction) -> int:
    return inst.inputs[0].nelems


def _work_merge(inst: Instruction) -> int:
    return sum(r.nelems for r in inst.inputs)


_WORK_MODELS = {
    Opcode.MATMUL: _work_matmul,
    Opcode.CV2D: _work_cv2d,
    Opcode.CV3D: _work_cv3d,
    Opcode.MAX2D: _work_pool,
    Opcode.MIN2D: _work_pool,
    Opcode.AVG2D: _work_pool,
    Opcode.LRN: _work_lrn,
    Opcode.EUCLIDIAN1D: _work_euclidian,
    Opcode.SORT1D: _work_sort,
    Opcode.COUNT1D: _work_count,
    Opcode.ADD1D: _work_eltwise,
    Opcode.SUB1D: _work_eltwise,
    Opcode.MUL1D: _work_eltwise,
    Opcode.ACT1D: _work_unary,
    Opcode.HSUM1D: _work_horizontal,
    Opcode.HPROD1D: _work_horizontal,
    Opcode.MERGE1D: _work_merge,
}


def program_work(instructions) -> int:
    """Total arithmetic operations of an instruction sequence."""
    return sum(i.work() for i in instructions)
