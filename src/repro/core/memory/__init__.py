"""Node-local memory management: the Fig-9 segmented allocator and the
Tensor Transposition Table (Section 3.5 / 3.6)."""

from .allocator import AllocationError, Block, NodeMemoryManager
from .ttt import TensorTranspositionTable, TTTRecord

__all__ = [
    "AllocationError",
    "Block",
    "NodeMemoryManager",
    "TensorTranspositionTable",
    "TTTRecord",
]
