"""The Cambricon-F node memory controller (paper Section 3.5, Fig 9).

Local storage is divided into four segments: three *recycled* segments and
one *static* segment managed as two stacks.  The design leverages the
separable time order of controller allocations:

* blocks allocated by PD live only through EX (and sometimes RD);
* blocks allocated by DD live for one whole FISA cycle;
* blocks allocated by SD may live across multiple FISA cycles.

Because at most four in-flight instructions touch memory at once (LD, EX,
RD, WB -- and the one entering LD can reuse the space of the one leaving
WB), three recycled segments rotated round-robin suffice for the per-cycle
blocks.  SD-lifetime blocks go to the static segment, allocated from
alternate ends by instruction parity so adjacent instructions' lifecycles
never overlap.  Nothing is ever explicitly freed: a segment is simply reset
when its slot is reassigned, matching the paper's "new instruction will
directly refill with new data".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


class AllocationError(Exception):
    """A request did not fit its segment."""


@dataclass(frozen=True)
class Block:
    """A placed allocation: absolute [offset, offset+size) in local storage."""

    segment: str
    offset: int
    size: int
    tag: str
    owner: int  # FISA-cycle index of the owning instruction

    @property
    def end(self) -> int:
        return self.offset + self.size

    def overlaps(self, other: "Block") -> bool:
        return self.offset < other.end and other.offset < self.end


class _RecycledSegment:
    """Bump allocator reset whenever its pipeline slot is reassigned.

    Allocation is strictly in request-list order -- "memory space is always
    allocated in the list order, which is consistent with the time order
    that Controller requests" -- so placement is a single cursor.
    """

    def __init__(self, name: str, base: int, size: int):
        self.name = name
        self.base = base
        self.size = size
        self.cursor = 0
        self.owner: Optional[int] = None
        self.blocks: List[Block] = []
        self.high_water = 0

    def reset(self, owner: int) -> None:
        self.cursor = 0
        self.owner = owner
        self.blocks = []

    def alloc(self, size: int, tag: str) -> Block:
        if size < 0:
            raise ValueError("negative allocation")
        if self.cursor + size > self.size:
            raise AllocationError(
                f"{self.name}: {size} B does not fit ({self.size - self.cursor} B left)"
            )
        block = Block(self.name, self.base + self.cursor, size, tag,
                      self.owner if self.owner is not None else -1)
        self.cursor += size
        self.high_water = max(self.high_water, self.cursor)
        self.blocks.append(block)
        return block


class _StaticSegment:
    """Double-ended stacks for SD-lifetime blocks, keyed by parity.

    Even-parity instructions allocate upward from the bottom, odd-parity
    downward from the top.  When an instruction of some parity begins, the
    previous same-parity instruction's blocks are dead (only *adjacent*
    instructions can overlap in time), so that end is reset first.
    """

    def __init__(self, base: int, size: int):
        self.base = base
        self.size = size
        self.bottom = 0  # next free from the low end (even parity)
        self.top = size  # next free from the high end (odd parity)
        self.owner = {0: None, 1: None}
        self.blocks: Dict[int, List[Block]] = {0: [], 1: []}
        self.high_water = 0

    def begin(self, owner: int) -> None:
        parity = owner % 2
        self.owner[parity] = owner
        self.blocks[parity] = []
        if parity == 0:
            self.bottom = 0
        else:
            self.top = self.size

    def alloc(self, owner: int, size: int, tag: str) -> Block:
        parity = owner % 2
        if self.owner[parity] != owner:
            self.begin(owner)
        if self.bottom + size > self.top:
            raise AllocationError(
                f"static: {size} B does not fit ({self.top - self.bottom} B between stacks)"
            )
        if parity == 0:
            block = Block("static-even", self.base + self.bottom, size, tag, owner)
            self.bottom += size
        else:
            block = Block("static-odd", self.base + self.top - size, size, tag, owner)
            self.top -= size
        self.blocks[parity].append(block)
        self.high_water = max(self.high_water, self.bottom + (self.size - self.top))
        return block


class NodeMemoryManager:
    """Fig-9 memory controller for one Cambricon-F node.

    ``capacity`` is the node's local storage; ``static_fraction`` of it is
    the static segment, and the rest is split into three equal recycled
    segments.  :meth:`begin_fisa_cycle` rotates the recycled segments across
    instructions (cycle ``i`` uses segment ``i mod 3``, recycling the space
    of instruction ``i - 3``, which has left the pipeline).
    """

    N_RECYCLED = 3

    def __init__(self, capacity: int, static_fraction: float = 0.25):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < static_fraction < 1.0:
            raise ValueError("static_fraction must be in (0, 1)")
        self.capacity = capacity
        static_size = int(capacity * static_fraction)
        recycled_size = (capacity - static_size) // self.N_RECYCLED
        self.recycled = [
            _RecycledSegment(f"recycled{k}", k * recycled_size, recycled_size)
            for k in range(self.N_RECYCLED)
        ]
        self.static = _StaticSegment(self.N_RECYCLED * recycled_size, static_size)
        self._cycle: Optional[int] = None

    # -- segment sizing (what SD must fit a step into) -----------------------

    @property
    def recycled_segment_bytes(self) -> int:
        return self.recycled[0].size

    @property
    def static_segment_bytes(self) -> int:
        return self.static.size

    # -- allocation API -------------------------------------------------------

    def begin_fisa_cycle(self, index: int) -> None:
        """Enter FISA cycle ``index``; recycles segment ``index mod 3``."""
        if self._cycle is not None and index <= self._cycle:
            raise ValueError("FISA cycle indices must strictly increase")
        self._cycle = index
        self.recycled[index % self.N_RECYCLED].reset(index)

    def alloc(self, nbytes: int, tag: str = "") -> Block:
        """Per-cycle allocation (DD / PD blocks) in the cycle's segment."""
        if self._cycle is None:
            raise AllocationError("no FISA cycle begun")
        return self.recycled[self._cycle % self.N_RECYCLED].alloc(nbytes, tag)

    def alloc_static(self, nbytes: int, tag: str = "", owner: Optional[int] = None) -> Block:
        """SD-lifetime allocation in the double-ended static segment.

        ``owner`` is the index of the owning *FISA-level* instruction (the
        one SD decomposed), whose parity picks the stack end; it defaults to
        the current cycle index.
        """
        if self._cycle is None and owner is None:
            raise AllocationError("no FISA cycle begun")
        return self.static.alloc(self._cycle if owner is None else owner, nbytes, tag)

    # -- introspection ----------------------------------------------------------

    def live_blocks(self) -> List[Block]:
        """All blocks whose owning slot has not been recycled yet."""
        out: List[Block] = []
        for seg in self.recycled:
            out.extend(seg.blocks)
        out.extend(self.static.blocks[0])
        out.extend(self.static.blocks[1])
        return out

    def utilization(self) -> float:
        """Peak fraction of local storage ever occupied."""
        used = sum(seg.high_water for seg in self.recycled) + self.static.high_water
        return used / self.capacity
