"""Tensor Transposition Table (paper Section 3.6).

The TTT records which parent-memory regions are currently resident in local
storage so the Demotion Decoder can rebind a load to a local address and
skip the DMA.  Two mechanisms ride on it:

* *load elision* -- an adjacent instruction re-reading the same input region
  (e.g. convolution weights across sequential batch chunks) hits the table;
* *pipeline forwarding* -- an instruction whose input is exactly the
  previous instruction's output reads the local copy instead of waiting for
  (and re-fetching after) the write-back.

Consistency is guaranteed without a protocol by a validity period of two
FISA cycles: the table is split into two banks, an instruction entering EX
claims the bank the before-previous instruction used (overwriting its
records), so no record outlives the data it points to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..tensor import Region


@dataclass(frozen=True)
class TTTRecord:
    """One table entry: a parent region resident at a local address."""

    region_key: Tuple
    local_offset: int
    nbytes: int
    cycle: int
    is_output: bool  # True when the resident copy is an instruction result


class TensorTranspositionTable:
    """Two-bank resident-region table with a two-cycle validity period."""

    def __init__(self):
        self._banks: Tuple[Dict[Tuple, TTTRecord], Dict[Tuple, TTTRecord]] = ({}, {})
        self._cycle: Optional[int] = None
        self.hits = 0
        self.misses = 0
        self.forwards = 0

    def begin_cycle(self, index: int) -> None:
        """Enter FISA cycle ``index``; reclaims (clears) bank ``index mod 2``.

        Records written two cycles ago lived in this bank and are now
        expired -- exactly the paper's validity mechanism.
        """
        self._cycle = index
        self._banks[index % 2].clear()

    def record(self, region: Region, local_offset: int, is_output: bool = False) -> None:
        """Note that ``region`` is resident locally (written this cycle)."""
        if self._cycle is None:
            raise RuntimeError("begin_cycle must be called first")
        rec = TTTRecord(region.key(), local_offset, region.nbytes, self._cycle, is_output)
        self._banks[self._cycle % 2][region.key()] = rec

    def lookup(self, region: Region) -> Optional[TTTRecord]:
        """Find a still-valid resident copy of ``region`` (exact match).

        Checks the current bank first (records from this cycle), then the
        other bank (records from the previous cycle).  Counts hit/miss and
        forward statistics for the evaluation.
        """
        if self._cycle is None:
            return None
        key = region.key()
        for bank_idx in (self._cycle % 2, (self._cycle + 1) % 2):
            rec = self._banks[bank_idx].get(key)
            if rec is not None:
                self.hits += 1
                if rec.is_output:
                    self.forwards += 1
                return rec
        self.misses += 1
        return None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def valid_records(self) -> int:
        return len(self._banks[0]) + len(self._banks[1])
