"""Differential verification harness.

The repository's core guarantee is that fractal execution is
*semantics-preserving*: any program, any machine, same numbers as the
reference kernels.  This module packages that check as a library feature
(and a CLI command), so users extending the ISA or the decomposition rules
can verify their changes against the whole workload suite in one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .executor import FractalExecutor, run_reference
from .isa import Instruction
from .machine import Machine, cambricon_f1
from .store import TensorStore
from .tensor import Tensor


@dataclass
class TensorMismatch:
    """One output tensor that diverged."""

    tensor: str
    max_abs_error: float
    mismatched_elements: int
    total_elements: int


@dataclass
class VerificationReport:
    """Outcome of one differential run."""

    program_name: str
    machine_name: str
    instructions: int
    outputs_checked: int
    max_abs_error: float = 0.0
    mismatches: List[TensorMismatch] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        line = (f"{verdict}: {self.program_name} on {self.machine_name} "
                f"({self.instructions} instructions, "
                f"{self.outputs_checked} outputs, "
                f"max |err| {self.max_abs_error:.2e})")
        for m in self.mismatches:
            line += (f"\n  {m.tensor}: {m.mismatched_elements}/"
                     f"{m.total_elements} elements off, "
                     f"max |err| {m.max_abs_error:.2e}")
        return line


def _gather_tensors(program: Sequence[Instruction]) -> Dict[int, Tensor]:
    out: Dict[int, Tensor] = {}
    for inst in program:
        for r in inst.inputs + inst.outputs:
            out.setdefault(r.tensor.uid, r.tensor)
    return out


def verify_program(
    program: Sequence[Instruction],
    machine: Optional[Machine] = None,
    inputs: Optional[Dict[str, np.ndarray]] = None,
    outputs: Optional[Iterable[Tensor]] = None,
    seed: int = 0,
    atol: float = 1e-7,
    rtol: float = 1e-6,
    name: str = "program",
    input_scale: float = 0.25,
    preflight: bool = False,
) -> VerificationReport:
    """Run ``program`` fractally and against the reference kernels.

    ``inputs`` maps tensor names to arrays; unspecified source tensors get
    seeded random data scaled by ``input_scale`` (kept small so deep
    networks don't blow up numerically and absolute errors stay readable).
    ``outputs`` restricts which tensors are compared (default: every tensor
    any instruction writes).  ``preflight=True`` additionally runs the
    static analyzer first and raises
    :class:`repro.analysis.AnalysisError` on any error-severity
    diagnostic, so malformed programs fail fast instead of mid-run.
    """
    machine = machine if machine is not None else cambricon_f1()
    program = list(program)
    if preflight:
        from ..analysis import analyze

        analyze(program, name=name).raise_if_errors()
    tensors = _gather_tensors(program)
    written = {r.tensor.uid for inst in program for r in inst.outputs}
    sources = [t for uid, t in tensors.items() if uid not in written]
    check = list(outputs) if outputs is not None else [
        tensors[uid] for uid in written
        if tensors[uid].space == "global"]

    rng = np.random.default_rng(seed)
    frac, ref = TensorStore(), TensorStore()
    supplied = inputs or {}
    for t in sources:
        arr = supplied.get(t.name)
        if arr is None:
            arr = input_scale * rng.normal(size=t.shape)
        frac.bind(t, arr)
        ref.bind(t, arr)

    for inst in program:
        run_reference(inst, ref)
    FractalExecutor(machine, frac).run_program(program)

    report = VerificationReport(
        program_name=name,
        machine_name=machine.name,
        instructions=len(program),
        outputs_checked=len(check),
    )
    for t in check:
        got = frac.read(t.region())
        want = ref.read(t.region())
        err = np.abs(got - want)
        max_err = float(err.max()) if err.size else 0.0
        report.max_abs_error = max(report.max_abs_error, max_err)
        bad = int((err > atol + rtol * np.abs(want)).sum())
        if bad:
            report.mismatches.append(TensorMismatch(
                tensor=t.name,
                max_abs_error=max_err,
                mismatched_elements=bad,
                total_elements=int(err.size),
            ))
    return report


def verify_suite(machine: Optional[Machine] = None,
                 seed: int = 0) -> List[VerificationReport]:
    """Differentially verify every miniature paper benchmark."""
    from ..workloads import PAPER_BENCHMARKS, small_benchmark

    reports = []
    for bench in sorted(PAPER_BENCHMARKS):
        w = small_benchmark(bench)
        reports.append(verify_program(
            w.program, machine=machine, seed=seed, name=bench,
            outputs=list(w.outputs.values())))
    return reports
