"""Functional fractal executor.

Runs a FISA program on a :class:`~repro.core.machine.Machine` by *actually
following the fractal execution model*: at every non-leaf node the
sequential decomposer shrinks the instruction to the node's memory capacity,
the parallel decomposer fans the pieces out across the FFUs, children
recurse, and g(.) reduction instructions run on the node's LFUs.  Only leaf
nodes (and LFUs) touch the numpy kernels.

The point of this component is *verification*: for any machine shape, the
result must be bit-identical (up to float tolerance) to running the
reference kernel directly.  The test-suite checks exactly that, which
validates every decomposition rule end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

import numpy as np

from .. import obs, ops, telemetry
from ..obs import prof as _prof
from .decomposition import decompose_parallel, shrink_sequential
from .isa import Instruction, Opcode
from .machine import Machine
from .store import TensorStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (plan imports core)
    from ..plan import FractalPlan


@dataclass
class ExecutionStats:
    """Counters collected during a functional run.

    Always-on (the updates are a handful of dict/int operations per fractal
    node, dwarfed by the numpy kernels); mirrored into the global
    :mod:`repro.telemetry` registry after each ``run_program`` when
    telemetry is enabled.
    """

    kernel_calls: int = 0
    lfu_calls: int = 0
    instructions_per_level: Dict[int, int] = field(default_factory=dict)
    max_depth_reached: int = 0
    #: parallel fan-outs taken (one per successful PD split) and the total
    #: child instructions they produced.
    fanouts: int = 0
    fanout_parts: int = 0
    #: sequential-decomposition steps emitted by SD at non-leaf nodes.
    seq_steps: int = 0
    #: leaf kernel invocations by opcode mnemonic.
    leaf_ops: Dict[str, int] = field(default_factory=dict)
    #: tensor bytes read from / written to the store by kernels and LFUs.
    bytes_read: int = 0
    bytes_written: int = 0
    #: batched replay: BatchedStep groups executed and the plan steps
    #: (lanes) they covered with one stacked kernel call each.
    batched_steps: int = 0
    batched_lanes: int = 0
    #: lanes executed by the counted per-lane fallback because their
    #: opcode has no bit-identical stacked kernel (repro.ops.batch).
    batch_fallbacks: int = 0
    #: runtime operand-aliasing scans skipped because the schedule carries
    #: the analyzer's interference result as a precomputed copy-mask.
    alias_scan_skips: int = 0

    def count(self, level: int) -> None:
        self.instructions_per_level[level] = self.instructions_per_level.get(level, 0) + 1
        self.max_depth_reached = max(self.max_depth_reached, level)

    def merge_plan(self, plan_stats) -> None:
        """Fold a compiled plan's precomputed stats into this run's counters.

        Replay performs exactly the work the recursion would have, so the
        plan-time numbers (:class:`repro.plan.PlanStats`) are added verbatim
        instead of being re-derived step by step on the hot path.
        """
        self.kernel_calls += plan_stats.kernel_calls
        self.lfu_calls += plan_stats.lfu_calls
        for level, n in plan_stats.instructions_per_level.items():
            self.instructions_per_level[level] = (
                self.instructions_per_level.get(level, 0) + n)
        self.max_depth_reached = max(self.max_depth_reached,
                                     plan_stats.max_depth_reached)
        self.fanouts += plan_stats.fanouts
        self.fanout_parts += plan_stats.fanout_parts
        self.seq_steps += plan_stats.seq_steps
        for opcode, n in plan_stats.leaf_ops.items():
            self.leaf_ops[opcode] = self.leaf_ops.get(opcode, 0) + n
        self.bytes_read += plan_stats.bytes_read
        self.bytes_written += plan_stats.bytes_written

    def counter_series(self) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], int]:
        """Flatten into ``{(name, labels): value}`` for registry mirroring."""
        out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], int] = {
            ("executor.kernel_calls", ()): self.kernel_calls,
            ("executor.lfu_calls", ()): self.lfu_calls,
            ("executor.fanouts", ()): self.fanouts,
            ("executor.fanout_parts", ()): self.fanout_parts,
            ("executor.seq_steps", ()): self.seq_steps,
            ("executor.bytes_read", ()): self.bytes_read,
            ("executor.bytes_written", ()): self.bytes_written,
            ("plan.batched_steps", ()): self.batched_steps,
            ("plan.batched_lanes", ()): self.batched_lanes,
            ("ops.batch_fallbacks", ()): self.batch_fallbacks,
            ("executor.alias_scan_skips", ()): self.alias_scan_skips,
        }
        for level, n in self.instructions_per_level.items():
            out[("executor.instructions", (("level", str(level)),))] = n
        for opcode, n in self.leaf_ops.items():
            out[("executor.leaf_ops", (("opcode", opcode),))] = n
        return out


#: replay emits one ``replay.progress`` debug event per this many steps,
#: so a tailed live run shows motion without flooding the ring.
REPLAY_PROGRESS_STRIDE = 1024


class FractalExecutor:
    """Executes FISA programs through recursive fractal decomposition."""

    def __init__(
        self,
        machine: Machine,
        store: Optional[TensorStore] = None,
        apply_sequential: bool = True,
        preflight: bool = False,
    ):
        self.machine = machine
        self.store = store if store is not None else TensorStore()
        self.apply_sequential = apply_sequential
        #: opt-in pre-flight: statically analyze programs before running
        #: them and refuse on analyzer errors (repro.analysis).
        self.preflight = preflight
        self.stats = ExecutionStats()
        #: counter values already mirrored into the telemetry registry, so
        #: repeated ``run_program`` calls publish deltas, never double-count.
        self._published: Dict = {}

    # -- public API ---------------------------------------------------------

    def compile(self, program: Iterable[Instruction], use_cache: bool = True,
                plan_cache_dir=None) -> "FractalPlan":
        """Compile ``program`` into a replayable :class:`FractalPlan`.

        With ``use_cache`` (the default) the plan comes from the process-
        wide signature-keyed cache (and, when ``plan_cache_dir`` is given,
        the on-disk store) -- repeated compiles of the same shapes on the
        same machine are near-free.  Pass the result back to
        :meth:`run_program` (or call :meth:`run_plan`) to skip all
        decomposition on warm runs.
        """
        from ..plan import compile_cached, compile_program

        program = list(program)
        if self.preflight:
            from ..analysis import analyze

            analyze(program, name="preflight").raise_if_errors()
        if use_cache:
            return compile_cached(self.machine, program,
                                  apply_sequential=self.apply_sequential,
                                  disk_dir=plan_cache_dir)
        return compile_program(self.machine, program,
                               apply_sequential=self.apply_sequential)

    def run_program(self, program: Iterable[Instruction],
                    plan: Optional["FractalPlan"] = None,
                    batch: Optional[bool] = None) -> TensorStore:
        """Execute an instruction sequence top-down; returns the store.

        With ``preflight=True`` the program is first run through the static
        analyzer and an :class:`repro.analysis.AnalysisError` is raised on
        any error-severity diagnostic -- a fast reject instead of a numpy
        failure (or silent divergence) deep inside the recursion.

        With ``plan`` (from :meth:`compile`) the decomposition recursion is
        skipped entirely and the flattened plan is replayed instead --
        bit-identical results, compile-once/run-many cost.  ``batch``
        selects the replay mode (see :meth:`run_plan`).
        """
        if plan is not None:
            return self.run_plan(plan, batch=batch)
        program = list(program)
        if self.preflight:
            from ..analysis import analyze  # deferred: keeps core import-light

            analyze(program, name="preflight").raise_if_errors()
        tracer = telemetry.get_tracer()
        log = obs.logger("executor")
        with tracer.span("executor.program", cat="program",
                         machine=self.machine.name,
                         instructions=len(program)):
            log.info("program.start", machine=self.machine.name,
                     instructions=len(program))
            for index, inst in enumerate(program):
                obs.beat("executor")
                with obs.event_context(instruction=index,
                                       opcode=inst.opcode.value), \
                        tracer.span(f"inst:{inst.opcode.value}",
                                    cat="instruction"):
                    try:
                        self._run(inst, level=0)
                    except Exception as err:
                        log.error("instruction.fail", instruction=index,
                                  opcode=inst.opcode.value,
                                  error=f"{type(err).__name__}: {err}")
                        raise
            log.info("program.end", kernel_calls=self.stats.kernel_calls,
                     max_depth=self.stats.max_depth_reached)
        _prof.clear_step()
        self._publish_counters()
        return self.store

    def run(self, inst: Instruction) -> TensorStore:
        with telemetry.get_tracer().span(f"inst:{inst.opcode.value}",
                                         cat="instruction"):
            self._run(inst, level=0)
        _prof.clear_step()
        self._publish_counters()
        return self.store

    def run_plan(self, plan: "FractalPlan",
                 batch: Optional[bool] = None) -> TensorStore:
        """Replay a compiled plan: the warm path of compile-once/run-many.

        Executes the flattened kernel/LFU steps in their recorded order --
        no ``shrink_sequential``, no ``decompose_parallel``, no rule
        searches -- producing results bit-identical to the recursive path.
        The plan's precomputed stats are merged up front (replay performs
        exactly that work; on a mid-replay failure the stats overstate the
        completed portion, which errs on the visible side).

        ``batch`` selects the replay engine:

        * ``None`` (default): vectorized schedule replay when the plan
          lowered at least one :class:`~repro.plan.batch.BatchedStep`
          *and* every lowered lane has a stacked kernel -- a fallback
          group pays gather/scatter copies with no stacked call to
          amortize them, so partially covered (conv-heavy) plans keep
          the classic loop;
        * ``True``: always replay through the schedule (even all-singles
          or all-fallback -- the verification/measurement mode);
        * ``False``: always the classic loop -- the reference baseline the
          batched engine is measured (and bit-compared) against.
        """
        if batch is not False:
            schedule = plan.replay_schedule()
            if batch or schedule.fully_batched:
                return self._run_schedule(plan, schedule)
        self.stats.merge_plan(plan.stats)
        tracer = telemetry.get_tracer()
        log = obs.logger("executor")
        store = self.store
        execute = ops.execute
        with tracer.span("executor.replay", cat="program",
                         machine=self.machine.name, steps=plan.n_steps):
            log.info("replay.start", machine=self.machine.name,
                     steps=plan.n_steps)
            # Hoisted profiler check: replay pays one global None-test per
            # run, not per step, when no sampling profiler is active.
            set_step = _prof.set_step if _prof.profiling() else None
            for index, step in enumerate(plan.steps):
                obs.beat("executor")
                if index and index % REPLAY_PROGRESS_STRIDE == 0:
                    log.debug("replay.progress", step=index,
                              steps=plan.n_steps)
                inst = step.inst
                if set_step is not None:
                    set_step(inst.opcode.value, step.level)
                try:
                    if step.safe_zero_copy:
                        # Statically proven alias-free by the plan analyzer
                        # (repro.plan.analysis): skip the runtime overlap
                        # scan and hand the kernel read-only views directly.
                        operands = [store.read(r, copy=False)
                                    for r in inst.inputs]
                        store.static_zero_copy += len(operands)
                    else:
                        operands = self._read_operands(inst)
                    outputs = execute(inst.opcode, operands, step.run_attrs)
                except Exception as err:
                    log.error("replay.fail", opcode=inst.opcode.value,
                              level=step.level, step=index,
                              error=f"{type(err).__name__}: {err}")
                    raise
                if len(outputs) != len(inst.outputs):
                    raise RuntimeError(
                        f"{inst.opcode} produced {len(outputs)} outputs, "
                        f"expected {len(inst.outputs)}")
                if step.accumulate:
                    for region, value in zip(inst.outputs, outputs):
                        store.write_accumulate(region, value)
                else:
                    for region, value in zip(inst.outputs, outputs):
                        store.write(region, value)
            log.info("replay.end", kernel_calls=self.stats.kernel_calls)
        _prof.clear_step()
        registry = telemetry.get_registry()
        if registry.enabled and plan.stats.peak_live_bytes:
            registry.gauge("plan.peak_live_bytes").set_max(
                plan.stats.peak_live_bytes)
        self._publish_counters()
        return self.store

    def _run_schedule(self, plan: "FractalPlan", schedule) -> TensorStore:
        """Vectorized replay: one stacked kernel call per BatchedStep.

        Walks the plan's precompiled :class:`~repro.plan.batch.
        ReplaySchedule` -- singles with precomputed kernels/slices/copy-
        masks interleaved with batched groups whose operands gather as
        strided views -- and is bit-identical to the classic loop by
        construction.  Plan-owned intermediates live in one flat arena
        buffer attached up front; recycled slots are re-zeroed exactly
        when the owning tensor's live interval opens, reproducing
        ``TensorStore.ensure`` zero-fill semantics.

        Observability contracts of the classic loop are preserved: one
        watchdog beat per plan step (bulk form for groups), one
        ``replay.progress`` event per :data:`REPLAY_PROGRESS_STRIDE`
        steps, profiler step attribution per item, and per-opcode
        ``ops.dispatch`` counts (one bulk increment per group).
        """
        self.stats.merge_plan(plan.stats)
        self.stats.batched_steps += schedule.batched_steps
        self.stats.batched_lanes += schedule.batched_lanes
        tracer = telemetry.get_tracer()
        registry = telemetry.get_registry()
        log = obs.logger("executor")
        store = self.store
        # Hoisted once per replay (the classic loop re-checks inside every
        # ops.execute): with telemetry dark, singles call their kernel
        # directly and groups skip span/count bookkeeping.
        fast = not tracer.enabled and not registry.enabled
        with tracer.span("executor.replay", cat="program",
                         machine=self.machine.name, steps=plan.n_steps,
                         batched_steps=schedule.batched_steps):
            log.info("replay.start", machine=self.machine.name,
                     steps=plan.n_steps,
                     batched_steps=schedule.batched_steps,
                     batched_lanes=schedule.batched_lanes)
            arena = schedule.arena
            zero_queue: List = []
            if arena.total_elems:
                views = store.attach_arena(arena.bindings, arena.total_elems)
                zero_queue = [(ordinal, views[bi])
                              for ordinal, bi in arena.zero_items]
            zq_pos, zq_len = 0, len(zero_queue)
            set_step = _prof.set_step if _prof.profiling() else None
            beat = obs.beat
            stride = REPLAY_PROGRESS_STRIDE
            next_progress = stride
            for ordinal, item in enumerate(schedule.items):
                while zq_pos < zq_len and zero_queue[zq_pos][0] <= ordinal:
                    zero_queue[zq_pos][1][...] = 0.0
                    zq_pos += 1
                stop = item.stop
                beat("executor", stop - item.start)
                while next_progress < stop:
                    log.debug("replay.progress", step=next_progress,
                              steps=plan.n_steps)
                    next_progress += stride
                if set_step is not None:
                    set_step(item.opval, item.level)
                try:
                    if item.batched:
                        self._exec_batched_item(item, store, fast,
                                                registry, tracer)
                    else:
                        self._exec_single_item(item, store, fast)
                except Exception as err:
                    log.error("replay.fail", opcode=item.opval,
                              level=item.level, step=item.start,
                              error=f"{type(err).__name__}: {err}")
                    raise
            log.info("replay.end", kernel_calls=self.stats.kernel_calls,
                     batched_steps=schedule.batched_steps)
        _prof.clear_step()
        if registry.enabled and plan.stats.peak_live_bytes:
            registry.gauge("plan.peak_live_bytes").set_max(
                plan.stats.peak_live_bytes)
        self._publish_counters()
        return store

    def _exec_single_item(self, item, store: TensorStore, fast: bool) -> None:
        """One unfused schedule item: precomputed kernel, slices, mask."""
        if item.copy_mask is None:
            # Statically proven alias-free: read-only views, no scan.
            ensure = store.ensure
            operands = []
            for tensor, sl in item.in_specs:
                view = ensure(tensor)[sl]
                view.flags.writeable = False
                operands.append(view)
            store.zero_copy_reads += item.n_in
            store.static_zero_copy += item.n_in
        else:
            operands = self._read_operands(item.inst, item.copy_mask)
        if fast:
            result = item.kernel(operands, item.run_attrs)
            outputs = result if isinstance(result, tuple) else (result,)
        else:
            outputs = ops.execute(item.opcode, operands, item.run_attrs)
        out_specs = item.out_specs
        if len(outputs) != len(out_specs):
            raise RuntimeError(
                f"{item.opcode} produced {len(outputs)} outputs, "
                f"expected {len(out_specs)}")
        accumulate = item.accumulate
        for (tensor, sl, shape, nelems), value in zip(out_specs, outputs):
            value = np.asarray(value, dtype=np.float64)
            if value.shape != shape:
                if value.size != nelems:
                    verb = "accumulate" if accumulate else "write"
                    raise ValueError(
                        f"{verb} shape mismatch: region {shape}, "
                        f"value {value.shape}")
                value = value.reshape(shape)
            if accumulate:
                store.ensure(tensor)[sl] += value
            else:
                store.ensure(tensor)[sl] = value

    def _exec_batched_item(self, item, store: TensorStore, fast: bool,
                           registry, tracer) -> None:
        """One BatchedStep: gather lanes, one stacked call, scatter back."""
        k = item.k
        operands = [g.gather(store) for g in item.gathers]
        # Every lane read is statically proven scan-free by fusion
        # legality; view gathers are zero-copy, loop gathers materialize.
        for g in item.gathers:
            if g.zero_copy:
                store.zero_copy_reads += k
            else:
                store.copied_reads += k
        store.static_zero_copy += item.n_in * k
        if fast:
            stacked = self._batched_call(item, operands)
        else:
            registry.count("ops.dispatch", k, labels={"opcode": item.opval})
            obs.logger("ops").debug("dispatch.batched", opcode=item.opval,
                                    lanes=k)
            with tracer.span(f"op:{item.opval}", cat="op", lanes=k):
                stacked = self._batched_call(item, operands)
        stacked = np.asarray(stacked, dtype=np.float64)
        want = (k,) + item.out_shape
        if stacked.shape != want:
            if stacked.size != k * item.out_nelems:
                raise ValueError(
                    f"batched write shape mismatch: lanes {want}, "
                    f"value {stacked.shape}")
            stacked = stacked.reshape(want)
        item.scatter.scatter(store, stacked, item.accumulate)

    def _batched_call(self, item, operands):
        """The group's stacked kernel, or the counted per-lane fallback."""
        kern = item.batched_kernel
        if kern is not None:
            return kern(operands, item.run_attrs)
        self.stats.batch_fallbacks += item.k
        lane_kern = item.kernel
        attrs = item.run_attrs
        n_in = item.n_in
        out = np.empty((item.k,) + item.out_shape, dtype=np.float64)
        for i in range(item.k):
            lane = [operands[j][i] for j in range(n_in)]
            value = lane_kern(lane, attrs)
            if isinstance(value, tuple):
                value = value[0]
            value = np.asarray(value, dtype=np.float64)
            out[i] = (value if value.shape == item.out_shape
                      else value.reshape(item.out_shape))
        return out

    def _publish_counters(self) -> None:
        """Mirror stats deltas into the telemetry registry (if enabled)."""
        registry = telemetry.get_registry()
        if not registry.enabled:
            return
        current = self.stats.counter_series()
        current[("store.zero_copy_reads", ())] = self.store.zero_copy_reads
        current[("store.copied_reads", ())] = self.store.copied_reads
        current[("store.static_zero_copy", ())] = self.store.static_zero_copy
        for (name, labels), value in current.items():
            delta = value - self._published.get((name, labels), 0)
            if delta:
                registry.count(name, delta, dict(labels))
        registry.gauge("executor.max_depth").set_max(
            self.stats.max_depth_reached)
        if self.store.arena_bytes:
            registry.gauge("store.arena_bytes").set_max(self.store.arena_bytes)
        self._published = current

    # -- fractal recursion ----------------------------------------------------

    def _run(self, inst: Instruction, level: int) -> None:
        self.stats.count(level)
        spec = self.machine.level(level)
        if spec.is_leaf:
            self._execute_kernel(inst, level)
            return

        steps: List[Instruction]
        if self.apply_sequential:
            steps = shrink_sequential(inst, spec.mem_bytes)
            if len(steps) > 1:
                self.stats.seq_steps += len(steps)
        else:
            steps = [inst]

        for step in steps:
            split = decompose_parallel(step, spec.fanout)
            if split is None:
                # Degenerate granularity: a single FFU inherits the whole step.
                self._run(step, level + 1)
                continue
            self.stats.fanouts += 1
            self.stats.fanout_parts += len(split.parts)
            if obs.get_event_log().enabled:
                obs.log_event("executor", "fanout", "debug", level=level,
                              opcode=step.opcode.value,
                              parts=len(split.parts),
                              reductions=len(split.reduction))
            for part in split.parts:
                self._run(part, level + 1)
            for red in split.reduction:
                self._execute_lfu(red, level)

    # -- execution units ------------------------------------------------------

    def _execute_kernel(self, inst: Instruction, level: int = 0) -> None:
        self.stats.kernel_calls += 1
        mnemonic = inst.opcode.value
        self.stats.leaf_ops[mnemonic] = self.stats.leaf_ops.get(mnemonic, 0) + 1
        _prof.set_step(mnemonic, level)
        try:
            self._apply(inst)
        except Exception as err:
            obs.log_event("executor", "kernel.fail", "error",
                          opcode=mnemonic, level=level,
                          error=f"{type(err).__name__}: {err}")
            raise

    def _execute_lfu(self, inst: Instruction, level: int = 0) -> None:
        self.stats.lfu_calls += 1
        _prof.set_step(inst.opcode.value, level)
        self._apply(inst)

    def _read_operands(self, inst: Instruction,
                       copy_mask: Optional[Tuple[bool, ...]] = None) -> List:
        """Kernel operands for ``inst``, zero-copy wherever it is safe.

        Inputs are handed to kernels as read-only views into the store
        (kernels cannot mutate them) unless an input region overlaps one of
        the instruction's *output* regions -- the aliasing guard: the
        write-back would then stomp bytes a lazy/kept reference might still
        read, so those operands are materialized as copies, exactly as the
        old unconditional-copy path did.

        ``copy_mask`` is the same per-operand verdict precomputed once per
        plan from the analyzer's interference result (schedule replay,
        :class:`repro.plan.batch.SingleItem`): passing it skips the dynamic
        overlap scan entirely -- counted in ``executor.alias_scan_skips``.
        """
        store = self.store
        if copy_mask is not None:
            self.stats.alias_scan_skips += 1
            return [
                store.read(r) if needs_copy else store.read(r, copy=False)
                for r, needs_copy in zip(inst.inputs, copy_mask)
            ]
        outputs = inst.outputs
        return [
            store.read(r) if any(r.overlaps(o) for o in outputs)
            else store.read(r, copy=False)
            for r in inst.inputs
        ]

    def _apply(self, inst: Instruction) -> None:
        inputs = self._read_operands(inst)
        self.stats.bytes_read += sum(r.nbytes for r in inst.inputs)
        self.stats.bytes_written += sum(r.nbytes for r in inst.outputs)
        attrs = {k: v for k, v in inst.attrs.items()
                 if k not in ("accumulate", "acc_local_out", "acc_chain")}
        outputs = ops.execute(inst.opcode, inputs, attrs)
        if len(outputs) != len(inst.outputs):
            raise RuntimeError(
                f"{inst.opcode} produced {len(outputs)} outputs, expected {len(inst.outputs)}"
            )
        accumulate = bool(inst.attrs.get("accumulate", False))
        for region, value in zip(inst.outputs, outputs):
            if accumulate:
                self.store.write_accumulate(region, value)
            else:
                self.store.write(region, value)


def run_reference(inst: Instruction, store: TensorStore) -> None:
    """Run one instruction directly on the reference kernel (ground truth)."""
    inputs = [store.read(r) for r in inst.inputs]
    outputs = ops.execute(inst.opcode, inputs, inst.attrs)
    for region, value in zip(inst.outputs, outputs):
        store.write(region, value)
