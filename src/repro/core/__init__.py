"""Core of the Cambricon-F reproduction: FISA, tensors, decomposition,
machines, and the functional fractal executor."""

from .isa import DependencyKind, Instruction, Opcode, SourceLoc
from .machine import (
    LevelSpec,
    Machine,
    cambricon_f1,
    cambricon_f100,
    custom_machine,
)
from .executor import FractalExecutor
from .store import TensorStore
from .tensor import FP16, FP32, INT32, DType, Region, Tensor

__all__ = [
    "DependencyKind",
    "Instruction",
    "Opcode",
    "SourceLoc",
    "LevelSpec",
    "Machine",
    "cambricon_f1",
    "cambricon_f100",
    "custom_machine",
    "FractalExecutor",
    "TensorStore",
    "FP16",
    "FP32",
    "INT32",
    "DType",
    "Region",
    "Tensor",
]
