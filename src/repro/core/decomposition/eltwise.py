"""Element-wise, horizontal-reduction and activation decomposition rules.

Element-wise operations split independently along any axis (Table 2 "ELTW /
Any / Independent").  Horizontal reductions (HSum, HProd) are
output-dependent: chunk reductions produce scalar partials combined by an
Add (or Mul) chain.
"""

from __future__ import annotations

from ..isa import DependencyKind, Instruction, Opcode
from .base import Split, SplitRule, chain_reduce, make_partial, register_rules


def _widest_dim(inst: Instruction) -> int:
    shape = inst.outputs[0].shape
    return max(range(len(shape)), key=lambda d: shape[d])


def _eltwise_extent(inst: Instruction) -> int:
    # Reshaping copies (same element count, different shape -- e.g. the
    # flatten before a fully-connected layer) cannot be split element-wise:
    # input and output coordinates no longer correspond dimension-wise.
    out_shape = inst.outputs[0].shape
    if any(x.shape != out_shape for x in inst.inputs):
        return 1
    return out_shape[_widest_dim(inst)]


def _split_dim_for(inst: Instruction, n: int) -> int:
    """First dimension wide enough for an n-way split, else the widest.

    Dimension order matters for *slot alignment*: convolutions split batch
    first, so the element-wise ops chained between them must make the same
    choice or the producer-consumer chunks land on different FFUs and
    pipeline forwarding / TTT residency cannot connect them.
    """
    shape = inst.outputs[0].shape
    for d, extent in enumerate(shape):
        if extent >= n:
            return d
    return _widest_dim(inst)


def _eltwise_split(inst: Instruction, n: int) -> Split:
    dim = _split_dim_for(inst, n)
    out_chunks = inst.outputs[0].split_dim(dim, n)
    input_chunks = [x.split_dim(dim, n) for x in inst.inputs]
    parts = [
        inst.with_operands(
            inputs=tuple(chunks[i] for chunks in input_chunks),
            outputs=(out_chunks[i],),
        )
        for i in range(len(out_chunks))
    ]
    return Split(parts, dependency=DependencyKind.INDEPENDENT, axis=f"dim{dim}")


for _op in (Opcode.ADD1D, Opcode.SUB1D, Opcode.MUL1D, Opcode.ACT1D):
    register_rules(
        _op,
        [SplitRule("Any", DependencyKind.INDEPENDENT, "-", "-",
                   _eltwise_extent, _eltwise_split)],
    )


def _horizontal_split(reduce_opcode: Opcode):
    def apply(inst: Instruction, n: int) -> Split:
        x = inst.inputs[0]
        out = inst.outputs[0]
        dim = max(range(x.ndim), key=lambda d: x.shape[d])
        parts, partials = [], []
        for x_i in x.split_dim(dim, n):
            p = make_partial((1,), out.dtype, "h")
            partials.append(p.region())
            parts.append(inst.with_operands(inputs=(x_i,), outputs=(p.region(),)))
        return Split(parts, reduction=chain_reduce(partials, out, reduce_opcode),
                     dependency=DependencyKind.OUTPUT_DEPENDENT, axis=f"dim{dim}")

    return apply


def _horizontal_extent(inst: Instruction) -> int:
    return max(inst.inputs[0].shape)


register_rules(
    Opcode.HSUM1D,
    [SplitRule("Any", DependencyKind.OUTPUT_DEPENDENT, "Add", "-",
               _horizontal_extent, _horizontal_split(Opcode.ADD1D))],
)
register_rules(
    Opcode.HPROD1D,
    [SplitRule("Any", DependencyKind.OUTPUT_DEPENDENT, "Mul", "-",
               _horizontal_extent, _horizontal_split(Opcode.MUL1D))],
)
