"""Fractal decomposition of FISA instructions.

Importing this package registers the split rules for every opcode; the
public API is the rule registry plus the two decomposer entry points used by
the controller (parallel for PD, sequential shrink for SD).
"""

from .base import (
    Split,
    SplitRule,
    best_shrink_split,
    decompose_parallel,
    footprint,
    make_partial,
    register_rules,
    rules_for,
    shrink_sequential,
    splittable_extent,
)

# Rule registration happens at import time, one module per primitive family.
from . import conv as _conv  # noqa: F401
from . import eltwise as _eltwise  # noqa: F401
from . import linalg as _linalg  # noqa: F401
from . import matmul as _matmul  # noqa: F401
from . import pool as _pool  # noqa: F401
from . import sortcount as _sortcount  # noqa: F401

__all__ = [
    "Split",
    "SplitRule",
    "best_shrink_split",
    "decompose_parallel",
    "footprint",
    "make_partial",
    "register_rules",
    "rules_for",
    "shrink_sequential",
    "splittable_extent",
]
