"""Euclidian1D decomposition rules.

``out[n, m]`` = pairwise squared distances of ``X[n, d]`` and ``Y[m, d]``:

* split n: each part gets all of Y (input-dependent);
* split m: each part gets all of X (input-dependent);
* split d: squared distances add across dimension subsets
  (output-dependent, g = Add) -- the length-wise IP row of Table 2.
"""

from __future__ import annotations

from ..isa import DependencyKind, Instruction, Opcode
from .base import Split, SplitRule, chain_reduce, input_redundancy, make_partial, register_rules


def _split_samples(inst: Instruction, n: int) -> Split:
    x, y = inst.inputs
    out = inst.outputs[0]
    parts = [
        inst.with_operands(inputs=(x_i, y), outputs=(o_i,))
        for x_i, o_i in zip(x.split_dim(0, n), out.split_dim(0, n))
    ]
    return Split(parts, dependency=DependencyKind.INPUT_DEPENDENT, axis="n",
                 redundant_bytes=input_redundancy(parts, inst))


def _split_refs(inst: Instruction, n: int) -> Split:
    x, y = inst.inputs
    out = inst.outputs[0]
    parts = [
        inst.with_operands(inputs=(x, y_i), outputs=(o_i,))
        for y_i, o_i in zip(y.split_dim(0, n), out.split_dim(1, n))
    ]
    return Split(parts, dependency=DependencyKind.INPUT_DEPENDENT, axis="m",
                 redundant_bytes=input_redundancy(parts, inst))


def _split_dims(inst: Instruction, n: int) -> Split:
    x, y = inst.inputs
    out = inst.outputs[0]
    parts, partials = [], []
    for x_i, y_i in zip(x.split_dim(1, n), y.split_dim(1, n)):
        p = make_partial(out.shape, out.dtype, "eu")
        partials.append(p.region())
        parts.append(inst.with_operands(inputs=(x_i, y_i), outputs=(p.region(),)))
    return Split(parts, reduction=chain_reduce(partials, out),
                 dependency=DependencyKind.OUTPUT_DEPENDENT, axis="d")


register_rules(
    Opcode.EUCLIDIAN1D,
    [
        SplitRule("Sample-Wise", DependencyKind.INPUT_DEPENDENT, "-", "Refs",
                  lambda i: i.inputs[0].shape[0], _split_samples),
        SplitRule("Reference-Wise", DependencyKind.INPUT_DEPENDENT, "-", "Samples",
                  lambda i: i.inputs[1].shape[0], _split_refs),
        SplitRule("Length-Wise", DependencyKind.OUTPUT_DEPENDENT, "Add", "-",
                  lambda i: i.inputs[0].shape[1], _split_dims),
    ],
)
