"""Fractal decomposition framework (paper Sections 2.2-2.3).

A fractal operation ``f(X) = g(f(X_A), f(X_B), ...)`` is represented here by
a :class:`Split`: the sub-instructions ``f(X_i)`` (the *parts*), and the
retrieving operator ``g`` materialized as a list of ordinary FISA
*reduction* instructions.  Each opcode registers an ordered list of
:class:`SplitRule`\\ s -- the rows of the paper's Table 2 -- and the two
decomposer entry points choose among them:

* :func:`decompose_parallel` -- the Parallel Decomposer (PD): split one
  instruction into up to ``n`` balanced parts for the node's FFUs.
* :func:`shrink_sequential` -- the Sequential Decomposer (SD): binary-split
  an instruction until every piece's working set fits the node's memory
  capacity, yielding a sequential instruction list.

Rules are ordered so that independent and input-dependent axes are preferred
over output-dependent ones; output-dependent splits allocate *partial*
tensors and emit ``g`` instructions (Add chains, Merge) that the Reduction
Controller later steers to LFUs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ... import obs, telemetry
from ..isa import DependencyKind, Instruction, Opcode
from ..tensor import Region, Tensor

_partial_counter = itertools.count()
#: accumulation chains get ids whose parity drives static-segment recycling.
_chain_counter = itertools.count()


def make_partial(shape: Tuple[int, ...], dtype, tag: str) -> Tensor:
    """Allocate a fresh partial-result tensor (lives in node-local space)."""
    return Tensor(
        name=f"%{tag}{next(_partial_counter)}",
        shape=shape,
        dtype=dtype,
        space="partial",
    )


@dataclass
class Split:
    """One application of ``f(X) = g(f(X_A), f(X_B), ...)``.

    ``parts`` compute on operand subsets; ``reduction`` is the ``g``
    instruction list (empty for independent / input-dependent splits).
    ``redundant_bytes`` counts input bytes loaded more than once relative to
    an exact partition (Table 2's "Data Redundancy" column).
    """

    parts: List[Instruction]
    reduction: List[Instruction] = field(default_factory=list)
    dependency: DependencyKind = DependencyKind.INDEPENDENT
    axis: str = ""
    redundant_bytes: int = 0

    @property
    def degree(self) -> int:
        return len(self.parts)


@dataclass(frozen=True)
class SplitRule:
    """A named way to split one opcode (one row of Table 2).

    ``extent`` reports how many ways the rule could split the given
    instruction (the axis length); ``apply`` performs an ``n``-way split.
    """

    name: str
    dependency: DependencyKind
    g_name: str  # human name of the retrieving operator ("-", "Add", "Merge")
    redundancy: str  # human name of the data redundancy ("-", "Weight", ...)
    extent: Callable[[Instruction], int]
    apply: Callable[[Instruction, int], Split]


_RULES: Dict[Opcode, List[SplitRule]] = {}


def register_rules(opcode: Opcode, rules: Sequence[SplitRule]) -> None:
    """Register the ordered (most- to least-preferred) rules for an opcode."""
    _RULES[opcode] = list(rules)


def rules_for(opcode: Opcode) -> List[SplitRule]:
    return list(_RULES.get(opcode, []))


def footprint(inst: Instruction) -> int:
    """Working-set bytes of an instruction (deduplicated operand bytes)."""
    return inst.io_bytes()


def splittable_extent(inst: Instruction) -> int:
    """Largest split degree any rule offers for this instruction."""
    return max((r.extent(inst) for r in rules_for(inst.opcode)), default=1)


def _pick_rule(inst: Instruction, want: int) -> Optional[SplitRule]:
    """First (most preferred) rule that can split at all; among the rules,
    prefer one that can reach the wanted degree, falling back to the best
    available.

    An *accumulating* instruction (its output already holds a partial sum
    from an earlier sequential step) must not be given to an
    output-dependent rule: the g(.) chain would overwrite the accumulated
    output instead of adding to it.
    """
    rules = rules_for(inst.opcode)
    if inst.attrs.get("accumulate"):
        rules = [r for r in rules if r.dependency is not DependencyKind.OUTPUT_DEPENDENT]
    candidates = [r for r in rules if r.extent(inst) >= 2]
    if not candidates:
        return None
    for rule in candidates:
        if rule.extent(inst) >= want:
            return rule
    return max(candidates, key=lambda r: r.extent(inst))


def decompose_parallel(inst: Instruction, n: int) -> Optional[Split]:
    """Split ``inst`` into up to ``n`` parts for n FFUs (the PD stage).

    Returns ``None`` when no rule can split the instruction (degenerate
    granularity); the caller then runs it on a single FFU or an LFU.

    ``acc_local_out`` propagates to the parts: while a sequential
    accumulation chain is open at this node, each child keeps its own slice
    of the running sum resident (its TTT covers consecutive chain steps)
    and only writes back when the chain closes.  ``acc_chain`` is this
    node's static-allocator bookkeeping and is stripped.

    Splits *compose*: when the preferred axis is shorter than ``n`` (a
    batch of 8 facing 512 FFUs), each part is recursively split along the
    next axes until the fan-out is covered -- otherwise most FFUs of a wide
    node would idle.  Inner g(.) reductions run before the outer ones.
    """
    if n < 2:
        return None
    rule = _pick_rule(inst, n)
    if rule is None:
        registry = telemetry.get_registry()
        if registry.enabled:
            registry.count("decompose.degenerate",
                           labels={"opcode": inst.opcode.value})
        if obs.get_event_log().enabled:
            # Degenerate granularity leaves n-1 FFUs idle below this node --
            # worth a structured warning for offline triage.
            obs.log_event("decompose", "degenerate_split", "warn",
                          opcode=inst.opcode.value, fanout=n)
        return None
    degree = min(n, rule.extent(inst))
    split = rule.apply(inst, degree)
    registry = telemetry.get_registry()
    if registry.enabled:
        registry.count("decompose.parallel_splits",
                       labels={"opcode": inst.opcode.value, "rule": rule.name})
        registry.count("decompose.parallel_parts", len(split.parts))
        if split.reduction:
            registry.count("decompose.reductions", len(split.reduction))
        if split.redundant_bytes:
            registry.count("decompose.redundant_bytes", split.redundant_bytes)
    if "acc_chain" in inst.attrs:
        split.parts[:] = [_strip_chain_attrs(p) for p in split.parts]

    remaining = n // max(1, len(split.parts))
    if remaining >= 2:
        parts: List[Instruction] = []
        inner_reductions: List[Instruction] = []
        dependency = split.dependency
        redundancy = split.redundant_bytes
        for part in split.parts:
            sub = decompose_parallel(part, remaining)
            if sub is None:
                parts.append(part)
                continue
            parts.extend(sub.parts)
            inner_reductions.extend(sub.reduction)
            redundancy += sub.redundant_bytes
            dependency = _stronger_dependency(dependency, sub.dependency)
        split = Split(parts=parts,
                      reduction=inner_reductions + split.reduction,
                      dependency=dependency,
                      axis=split.axis + "*",
                      redundant_bytes=redundancy)
    return split


_DEP_ORDER = {
    DependencyKind.INDEPENDENT: 0,
    DependencyKind.INPUT_DEPENDENT: 1,
    DependencyKind.OUTPUT_DEPENDENT: 2,
}


def _stronger_dependency(a: DependencyKind, b: DependencyKind) -> DependencyKind:
    return a if _DEP_ORDER[a] >= _DEP_ORDER[b] else b


def _strip_chain_attrs(inst: Instruction) -> Instruction:
    attrs = {k: v for k, v in inst.attrs.items() if k != "acc_chain"}
    return Instruction(inst.opcode, inst.inputs, inst.outputs, attrs)


def sequentialize_add_reduction(split: Split, inst: Instruction) -> Split:
    """Rewrite an Add-reduction split for *sequential* execution.

    When the parts of an output-dependent split run one after another on the
    same node (SD, not PD), there is no coherence hazard in letting each
    part accumulate directly into the output instead of materializing
    partials and summing them afterwards -- this is what a MAC array does
    natively.  The rewrite:

    * points every part at the original output region;
    * sets ``accumulate=True`` on parts after the first (the first inherits
      the parent's flag, so nested K-splits compose);
    * sets ``acc_local_out=True`` on all but the last part, telling the
      demotion decoder to keep the running sum resident locally and only
      write back once (the paper's controller achieves the same through the
      static memory segment).

    Splits whose g(.) is not a same-shape Add chain (Merge, scalar-combine
    of unequal shapes) are returned unchanged.
    """
    if split.dependency is not DependencyKind.OUTPUT_DEPENDENT or not split.reduction:
        return split
    if any(r.opcode is not Opcode.ADD1D for r in split.reduction):
        return split
    out = inst.outputs[0]
    if any(p.outputs[0].shape != out.shape for p in split.parts):
        return split
    parent_acc = bool(inst.attrs.get("accumulate", False))
    parent_local = bool(inst.attrs.get("acc_local_out", False))
    chain_id = next(_chain_counter)
    new_parts: List[Instruction] = []
    last = len(split.parts) - 1
    for i, part in enumerate(split.parts):
        attrs = dict(part.attrs)
        attrs["accumulate"] = True if i > 0 else parent_acc
        attrs["acc_local_out"] = True if i < last else parent_local
        attrs["acc_chain"] = chain_id
        new_parts.append(Instruction(part.opcode, part.inputs, (out,), attrs))
    return Split(parts=new_parts, reduction=[],
                 dependency=DependencyKind.OUTPUT_DEPENDENT,
                 axis=split.axis + "+acc", redundant_bytes=split.redundant_bytes)


def best_shrink_split(inst: Instruction) -> Optional[Split]:
    """The binary split that most reduces the working set.

    SD's goal differs from PD's: it must *shrink the footprint* toward the
    memory capacity, so it greedily evaluates every registered rule and
    picks the one whose larger half has the smallest working set (ties
    favour reduction-free rules, then Table-2 order).  Without this, a rule
    ordering tuned for FFU fan-out can split one axis down to extent 1
    before touching the axis that actually carries the bytes -- e.g. slicing
    a MatMul's N to single columns while the left matrix stays whole.
    """
    best: Optional[Split] = None
    best_score = None
    current_fp = footprint(inst)
    for order, rule in enumerate(rules_for(inst.opcode)):
        if rule.extent(inst) < 2:
            continue
        split = sequentialize_add_reduction(rule.apply(inst, 2), inst)
        fp = max(footprint(p) for p in split.parts)
        if fp >= current_fp:
            continue  # no progress along this axis
        score = (fp, 1 if split.reduction else 0, order)
        if best_score is None or score < best_score:
            best, best_score = split, score
    return best


def shrink_sequential(
    inst: Instruction, capacity_bytes: int, max_steps: int = 1_000_000
) -> List[Instruction]:
    """Sequentially decompose ``inst`` until each piece fits ``capacity_bytes``.

    This is the SD stage: the result is an ordered instruction list
    (including any ``g`` reduction instructions) that computes ``inst``
    exactly, each step's working set within capacity.  Pieces that cannot be
    split further are emitted as-is even if oversized -- the hardware would
    stream them; the timing model charges their full traffic.
    """
    out: List[Instruction] = []
    stack: List[Instruction] = [inst]
    budget = max_steps
    while stack:
        cur = stack.pop()
        budget -= 1
        if budget < 0:
            raise RuntimeError("sequential decomposition exploded; check capacity")
        if footprint(cur) <= capacity_bytes:
            out.append(cur)
            continue
        split = best_shrink_split(cur)
        if split is None:
            out.append(cur)
            continue
        # Parts run first, then the reduction; stack is LIFO so push reversed.
        for r in reversed(split.reduction):
            stack.append(r)
        for p in reversed(split.parts):
            stack.append(p)
    registry = telemetry.get_registry()
    if registry.enabled and len(out) > 1:
        registry.count("decompose.sequential_steps", len(out),
                       labels={"opcode": inst.opcode.value})
    return out


# ---------------------------------------------------------------------------
# Shared helpers for rule implementations
# ---------------------------------------------------------------------------


def chain_reduce(
    partials: List[Region], out: Region, opcode: Opcode = Opcode.ADD1D
) -> List[Instruction]:
    """Combine ``partials`` pairwise into ``out`` with ``opcode``.

    Produces ``len(partials) - 1`` instructions; intermediates are fresh
    partial tensors, the final instruction writes ``out``.
    """
    if not partials:
        raise ValueError("no partials to reduce")
    if len(partials) == 1:
        # Plain copy via identity activation keeps the instruction stream
        # uniform (one instruction always defines `out`).
        return [Instruction(Opcode.ACT1D, (partials[0],), (out,), {"func": "identity"})]
    acc = partials[0]
    insts: List[Instruction] = []
    for i, nxt in enumerate(partials[1:]):
        last = i == len(partials) - 2
        if last:
            dst = out
        else:
            t = make_partial(acc.shape, acc.dtype, "red")
            dst = t.region()
        insts.append(Instruction(opcode, (acc, nxt), (dst,)))
        acc = dst
    return insts


def input_redundancy(parts: List[Instruction], original: Instruction) -> int:
    """Extra input bytes across parts relative to the original operands."""
    loaded = sum(sum(r.nbytes for r in p.inputs) for p in parts)
    exact = sum(r.nbytes for r in original.inputs)
    return max(0, loaded - exact)
