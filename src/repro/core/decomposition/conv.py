"""Convolution decomposition rules (Table 2 rows "CONV") plus LRN.

For ``Cv2D``: out ``(N, Ho, Wo, Cout)`` from input ``(N, H, W, Cin)`` and
weights ``(Kh, Kw, Cin, Cout)``:

* Batch-wise (N): input-dependent, Weight redundancy;
* Output-channel-wise (Cout): input-dependent, Input redundancy;
* Spatial (H then W): input-dependent, Weight + Overlapped redundancy
  (output rows ``[p0, p1)`` need input rows ``[p0*s, (p1-1)*s + Kh)``);
* Feature-wise (Cin): output-dependent, g = Add over partial sums.

``Cv3D`` mirrors the same rules with a depth axis.  LRN normalizes across
channels only, so it splits independently along N/H/W and never along C.
"""

from __future__ import annotations

from typing import List, Tuple

from ..isa import DependencyKind, Instruction, Opcode
from ..tensor import Region
from .base import Split, SplitRule, chain_reduce, input_redundancy, make_partial, register_rules


def _chunk_offsets(extent: int, n: int) -> List[Tuple[int, int]]:
    """Near-equal contiguous chunks of ``[0, extent)`` (local coordinates)."""
    n = max(1, min(n, extent))
    base, rem = divmod(extent, n)
    out, off = [], 0
    for i in range(n):
        size = base + (1 if i < rem else 0)
        if size:
            out.append((off, off + size))
            off += size
    return out


def _spatial_chunks(
    out_region: Region, in_region: Region, dim_out: int, dim_in: int,
    n: int, kernel: int, stride: int,
) -> List[Tuple[Region, Region]]:
    """Pair output chunks with the exact (haloed) input slabs they need."""
    pairs = []
    for p0, p1 in _chunk_offsets(out_region.shape[dim_out], n):
        o = out_region.slice_dim(dim_out, p0, p1)
        i = in_region.slice_dim(dim_in, p0 * stride, (p1 - 1) * stride + kernel)
        pairs.append((o, i))
    return pairs


# -- Cv2D -------------------------------------------------------------------


def _cv2d_split_batch(inst: Instruction, n: int) -> Split:
    x, w = inst.inputs
    out = inst.outputs[0]
    parts = [
        inst.with_operands(inputs=(x_i, w), outputs=(o_i,))
        for x_i, o_i in zip(x.split_dim(0, n), out.split_dim(0, n))
    ]
    return Split(parts, dependency=DependencyKind.INPUT_DEPENDENT, axis="batch",
                 redundant_bytes=input_redundancy(parts, inst))


def _cv2d_split_cout(inst: Instruction, n: int) -> Split:
    x, w = inst.inputs
    out = inst.outputs[0]
    parts = [
        inst.with_operands(inputs=(x, w_i), outputs=(o_i,))
        for w_i, o_i in zip(w.split_dim(3, n), out.split_dim(3, n))
    ]
    return Split(parts, dependency=DependencyKind.INPUT_DEPENDENT, axis="cout",
                 redundant_bytes=input_redundancy(parts, inst))


def _cv2d_split_spatial(dim_out: int, dim_in: int, kdim: int, axis: str):
    def apply(inst: Instruction, n: int) -> Split:
        x, w = inst.inputs
        out = inst.outputs[0]
        stride = int(inst.attrs.get("stride", 1))
        kernel = w.shape[kdim]
        parts = [
            inst.with_operands(inputs=(x_i, w), outputs=(o_i,))
            for o_i, x_i in _spatial_chunks(out, x, dim_out, dim_in, n, kernel, stride)
        ]
        return Split(parts, dependency=DependencyKind.INPUT_DEPENDENT, axis=axis,
                     redundant_bytes=input_redundancy(parts, inst))

    return apply


def _cv2d_split_cin(inst: Instruction, n: int) -> Split:
    x, w = inst.inputs
    out = inst.outputs[0]
    parts, partials = [], []
    for x_i, w_i in zip(x.split_dim(3, n), w.split_dim(2, n)):
        p = make_partial(out.shape, out.dtype, "cv")
        partials.append(p.region())
        parts.append(inst.with_operands(inputs=(x_i, w_i), outputs=(p.region(),)))
    return Split(parts, reduction=chain_reduce(partials, out),
                 dependency=DependencyKind.OUTPUT_DEPENDENT, axis="cin")


# Rule order follows Table 2 plus slot alignment: batch first, then the
# spatial axes (so chained conv/pool/eltwise layers split the same way and
# forwarding connects producer and consumer on the same FFU), then output
# channels, and the g(.)-requiring feature (cin) split last.
register_rules(
    Opcode.CV2D,
    [
        SplitRule("Batch-Wise", DependencyKind.INPUT_DEPENDENT, "-", "Weight",
                  lambda i: i.inputs[0].shape[0], _cv2d_split_batch),
        SplitRule("Spatial-H", DependencyKind.INPUT_DEPENDENT, "-",
                  "Weight, Overlapped", lambda i: i.outputs[0].shape[1],
                  _cv2d_split_spatial(1, 1, 0, "h")),
        SplitRule("Spatial-W", DependencyKind.INPUT_DEPENDENT, "-",
                  "Weight, Overlapped", lambda i: i.outputs[0].shape[2],
                  _cv2d_split_spatial(2, 2, 1, "w")),
        SplitRule("Output-Channel", DependencyKind.INPUT_DEPENDENT, "-", "Input",
                  lambda i: i.inputs[1].shape[3], _cv2d_split_cout),
        SplitRule("Feature-Wise", DependencyKind.OUTPUT_DEPENDENT, "Add", "-",
                  lambda i: i.inputs[0].shape[3], _cv2d_split_cin),
    ],
)


# -- Cv3D -------------------------------------------------------------------


def _cv3d_split_batch(inst: Instruction, n: int) -> Split:
    x, w = inst.inputs
    out = inst.outputs[0]
    parts = [
        inst.with_operands(inputs=(x_i, w), outputs=(o_i,))
        for x_i, o_i in zip(x.split_dim(0, n), out.split_dim(0, n))
    ]
    return Split(parts, dependency=DependencyKind.INPUT_DEPENDENT, axis="batch",
                 redundant_bytes=input_redundancy(parts, inst))


def _cv3d_split_cout(inst: Instruction, n: int) -> Split:
    x, w = inst.inputs
    out = inst.outputs[0]
    parts = [
        inst.with_operands(inputs=(x, w_i), outputs=(o_i,))
        for w_i, o_i in zip(w.split_dim(4, n), out.split_dim(4, n))
    ]
    return Split(parts, dependency=DependencyKind.INPUT_DEPENDENT, axis="cout",
                 redundant_bytes=input_redundancy(parts, inst))


def _cv3d_split_spatial(dim: int, kdim: int, axis: str):
    def apply(inst: Instruction, n: int) -> Split:
        x, w = inst.inputs
        out = inst.outputs[0]
        stride = int(inst.attrs.get("stride", 1))
        kernel = w.shape[kdim]
        parts = [
            inst.with_operands(inputs=(x_i, w), outputs=(o_i,))
            for o_i, x_i in _spatial_chunks(out, x, dim, dim, n, kernel, stride)
        ]
        return Split(parts, dependency=DependencyKind.INPUT_DEPENDENT, axis=axis,
                     redundant_bytes=input_redundancy(parts, inst))

    return apply


def _cv3d_split_cin(inst: Instruction, n: int) -> Split:
    x, w = inst.inputs
    out = inst.outputs[0]
    parts, partials = [], []
    for x_i, w_i in zip(x.split_dim(4, n), w.split_dim(3, n)):
        p = make_partial(out.shape, out.dtype, "cv3")
        partials.append(p.region())
        parts.append(inst.with_operands(inputs=(x_i, w_i), outputs=(p.region(),)))
    return Split(parts, reduction=chain_reduce(partials, out),
                 dependency=DependencyKind.OUTPUT_DEPENDENT, axis="cin")


register_rules(
    Opcode.CV3D,
    [
        SplitRule("Batch-Wise", DependencyKind.INPUT_DEPENDENT, "-", "Weight",
                  lambda i: i.inputs[0].shape[0], _cv3d_split_batch),
        SplitRule("Spatial-D", DependencyKind.INPUT_DEPENDENT, "-",
                  "Weight, Overlapped", lambda i: i.outputs[0].shape[1],
                  _cv3d_split_spatial(1, 0, "d")),
        SplitRule("Spatial-H", DependencyKind.INPUT_DEPENDENT, "-",
                  "Weight, Overlapped", lambda i: i.outputs[0].shape[2],
                  _cv3d_split_spatial(2, 1, "h")),
        SplitRule("Spatial-W", DependencyKind.INPUT_DEPENDENT, "-",
                  "Weight, Overlapped", lambda i: i.outputs[0].shape[3],
                  _cv3d_split_spatial(3, 2, "w")),
        SplitRule("Output-Channel", DependencyKind.INPUT_DEPENDENT, "-", "Input",
                  lambda i: i.inputs[1].shape[4], _cv3d_split_cout),
        SplitRule("Feature-Wise", DependencyKind.OUTPUT_DEPENDENT, "Add", "-",
                  lambda i: i.inputs[0].shape[4], _cv3d_split_cin),
    ],
)


# -- LRN --------------------------------------------------------------------


def _lrn_split(dim: int, axis: str):
    def apply(inst: Instruction, n: int) -> Split:
        x = inst.inputs[0]
        out = inst.outputs[0]
        parts = [
            inst.with_operands(inputs=(x_i,), outputs=(o_i,))
            for x_i, o_i in zip(x.split_dim(dim, n), out.split_dim(dim, n))
        ]
        return Split(parts, dependency=DependencyKind.INDEPENDENT, axis=axis)

    return apply


register_rules(
    Opcode.LRN,
    [
        SplitRule("Batch-Wise", DependencyKind.INDEPENDENT, "-", "-",
                  lambda i: i.inputs[0].shape[0], _lrn_split(0, "batch")),
        SplitRule("Spatial-H", DependencyKind.INDEPENDENT, "-", "-",
                  lambda i: i.inputs[0].shape[1], _lrn_split(1, "h")),
        SplitRule("Spatial-W", DependencyKind.INDEPENDENT, "-", "-",
                  lambda i: i.inputs[0].shape[2], _lrn_split(2, "w")),
    ],
)
