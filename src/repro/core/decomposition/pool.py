"""Pooling decomposition rules (Table 2 rows "POOL").

Feature-wise (channel) and batch-wise splits are fully independent; spatial
splits are input-dependent with overlapped windows (output rows ``[p0, p1)``
need input rows ``[p0*sh, (p1-1)*sh + kh)``).
"""

from __future__ import annotations

from ..isa import DependencyKind, Instruction, Opcode, POOL_OPCODES
from .base import Split, SplitRule, input_redundancy, register_rules
from .conv import _spatial_chunks


def _pool_split_plain(dim: int, axis: str):
    def apply(inst: Instruction, n: int) -> Split:
        x = inst.inputs[0]
        out = inst.outputs[0]
        parts = [
            inst.with_operands(inputs=(x_i,), outputs=(o_i,))
            for x_i, o_i in zip(x.split_dim(dim, n), out.split_dim(dim, n))
        ]
        return Split(parts, dependency=DependencyKind.INDEPENDENT, axis=axis)

    return apply


def _pool_split_spatial(dim: int, k_attr: str, s_attr: str, axis: str):
    def apply(inst: Instruction, n: int) -> Split:
        x = inst.inputs[0]
        out = inst.outputs[0]
        kernel = int(inst.attrs.get(k_attr, 2))
        stride = int(inst.attrs.get(s_attr, inst.attrs.get(k_attr, 2)))
        parts = [
            inst.with_operands(inputs=(x_i,), outputs=(o_i,))
            for o_i, x_i in _spatial_chunks(out, x, dim, dim, n, kernel, stride)
        ]
        return Split(parts, dependency=DependencyKind.INPUT_DEPENDENT, axis=axis,
                     redundant_bytes=input_redundancy(parts, inst))

    return apply


# Batch first and spatial before channel, aligning pooling splits with the
# convolution layers they chain between (slot-aligned forwarding).
_POOL_RULES = [
    SplitRule("Batch-Wise", DependencyKind.INDEPENDENT, "-", "-",
              lambda i: i.inputs[0].shape[0], _pool_split_plain(0, "batch")),
    SplitRule("Spatial-H", DependencyKind.INPUT_DEPENDENT, "-", "Overlapped",
              lambda i: i.outputs[0].shape[1], _pool_split_spatial(1, "kh", "sh", "h")),
    SplitRule("Spatial-W", DependencyKind.INPUT_DEPENDENT, "-", "Overlapped",
              lambda i: i.outputs[0].shape[2], _pool_split_spatial(2, "kw", "sw", "w")),
    SplitRule("Feature-Wise", DependencyKind.INDEPENDENT, "-", "-",
              lambda i: i.inputs[0].shape[3], _pool_split_plain(3, "channel")),
]

for _op in POOL_OPCODES:
    register_rules(_op, _POOL_RULES)
