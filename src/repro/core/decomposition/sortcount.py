"""Sort, merge and count decomposition rules (Table 2 "SORT" / "COUNT").

Both are output-dependent for *any* split: sorted chunks are combined by the
Merge retrieving operator; partial counts are combined by Add.  A Merge of
more than two runs is itself fractal (merge groups, then merge the group
results); two-run merges are atomic streaming operations.
"""

from __future__ import annotations

from ..isa import DependencyKind, Instruction, Opcode
from .base import Split, SplitRule, chain_reduce, make_partial, register_rules


def _sort_split(inst: Instruction, n: int) -> Split:
    x = inst.inputs[0]
    out = inst.outputs[0]
    parts, partials = [], []
    for x_i in x.split_dim(0, n):
        p = make_partial(x_i.shape, out.dtype, "srt")
        partials.append(p.region())
        parts.append(inst.with_operands(inputs=(x_i,), outputs=(p.region(),)))
    merge = Instruction(Opcode.MERGE1D, tuple(partials), (out,))
    return Split(parts, reduction=[merge],
                 dependency=DependencyKind.OUTPUT_DEPENDENT, axis="any")


register_rules(
    Opcode.SORT1D,
    [SplitRule("Any", DependencyKind.OUTPUT_DEPENDENT, "Merge", "-",
               lambda i: i.inputs[0].shape[0], _sort_split)],
)


def _count_split(inst: Instruction, n: int) -> Split:
    x = inst.inputs[0]
    out = inst.outputs[0]
    dim = max(range(x.ndim), key=lambda d: x.shape[d])
    parts, partials = [], []
    for x_i in x.split_dim(dim, n):
        p = make_partial((1,), out.dtype, "cnt")
        partials.append(p.region())
        parts.append(inst.with_operands(inputs=(x_i,), outputs=(p.region(),)))
    return Split(parts, reduction=chain_reduce(partials, out, Opcode.ADD1D),
                 dependency=DependencyKind.OUTPUT_DEPENDENT, axis="any")


register_rules(
    Opcode.COUNT1D,
    [SplitRule("Any", DependencyKind.OUTPUT_DEPENDENT, "Add", "-",
               lambda i: max(i.inputs[0].shape), _count_split)],
)


def _merge_extent(inst: Instruction) -> int:
    k = len(inst.inputs)
    return k if k > 2 else 1  # two-run merges are atomic (streaming)


def _merge_split(inst: Instruction, n: int) -> Split:
    inputs = list(inst.inputs)
    out = inst.outputs[0]
    n = min(n, len(inputs))
    base, rem = divmod(len(inputs), n)
    groups, idx = [], 0
    for i in range(n):
        size = base + (1 if i < rem else 0)
        if size:
            groups.append(inputs[idx : idx + size])
            idx += size
    parts, partials = [], []
    for group in groups:
        length = sum(r.nelems for r in group)
        p = make_partial((length,), out.dtype, "mrg")
        partials.append(p.region())
        parts.append(Instruction(Opcode.MERGE1D, tuple(group), (p.region(),), dict(inst.attrs)))
    final = Instruction(Opcode.MERGE1D, tuple(partials), (out,), dict(inst.attrs))
    return Split(parts, reduction=[final],
                 dependency=DependencyKind.OUTPUT_DEPENDENT, axis="groups")


register_rules(
    Opcode.MERGE1D,
    [SplitRule("Groups", DependencyKind.OUTPUT_DEPENDENT, "Merge", "-",
               _merge_extent, _merge_split)],
)
