"""MatMul decomposition rules (Table 2 rows "MMM").

For ``C[M, N] = A[M, K] @ B[K, N]``:

* split N ("Right, Vertical"): each part gets all of A -- input-dependent,
  Left-matrix redundancy;
* split M ("Left, Horizontal"): each part gets all of B -- input-dependent,
  Right-matrix redundancy;
* split K ("Left, Vertical"): partial products summed -- output-dependent,
  g = Add.

Preference order N > M > K: the reduction-free splits come first, and
splitting N keeps the (often much larger) left matrix intact for the
broadcast path.
"""

from __future__ import annotations

from typing import List

from ..isa import DependencyKind, Instruction, Opcode
from .base import Split, SplitRule, chain_reduce, input_redundancy, make_partial, register_rules


def _split_n(inst: Instruction, n: int) -> Split:
    a, b = inst.inputs
    c = inst.outputs[0]
    parts: List[Instruction] = []
    for b_i, c_i in zip(b.split_dim(1, n), c.split_dim(1, n)):
        parts.append(inst.with_operands(inputs=(a, b_i), outputs=(c_i,)))
    return Split(
        parts=parts,
        dependency=DependencyKind.INPUT_DEPENDENT,
        axis="N",
        redundant_bytes=input_redundancy(parts, inst),
    )


def _split_m(inst: Instruction, n: int) -> Split:
    a, b = inst.inputs
    c = inst.outputs[0]
    parts: List[Instruction] = []
    for a_i, c_i in zip(a.split_dim(0, n), c.split_dim(0, n)):
        parts.append(inst.with_operands(inputs=(a_i, b), outputs=(c_i,)))
    return Split(
        parts=parts,
        dependency=DependencyKind.INPUT_DEPENDENT,
        axis="M",
        redundant_bytes=input_redundancy(parts, inst),
    )


def _split_k(inst: Instruction, n: int) -> Split:
    a, b = inst.inputs
    c = inst.outputs[0]
    a_chunks = a.split_dim(1, n)
    b_chunks = b.split_dim(0, n)
    parts, partials = [], []
    for a_i, b_i in zip(a_chunks, b_chunks):
        p = make_partial(c.shape, c.dtype, "mm")
        partials.append(p.region())
        parts.append(inst.with_operands(inputs=(a_i, b_i), outputs=(p.region(),)))
    return Split(
        parts=parts,
        reduction=chain_reduce(partials, c, Opcode.ADD1D),
        dependency=DependencyKind.OUTPUT_DEPENDENT,
        axis="K",
    )


def _extent_n(inst: Instruction) -> int:
    return inst.inputs[1].shape[1]


def _extent_m(inst: Instruction) -> int:
    return inst.inputs[0].shape[0]


def _extent_k(inst: Instruction) -> int:
    return inst.inputs[0].shape[1]


register_rules(
    Opcode.MATMUL,
    [
        SplitRule("Right, Vertical (N)", DependencyKind.INPUT_DEPENDENT, "-",
                  "Left Matrix", _extent_n, _split_n),
        SplitRule("Left, Horizontal (M)", DependencyKind.INPUT_DEPENDENT, "-",
                  "Right Matrix", _extent_m, _split_m),
        SplitRule("Left, Vertical (K)", DependencyKind.OUTPUT_DEPENDENT, "Add",
                  "-", _extent_k, _split_k),
    ],
)
