"""Differential RunReport profiling: "did it get slower, and where?".

:func:`diff_documents` compares two RunReport JSON documents (schema v1 or
v2 -- see :mod:`repro.telemetry.report`) leaf by numeric leaf:

* **gated** metrics decide the verdict.  Time-like series (simulated
  total time, attribution seconds, per-level busy/idle seconds, the
  per-benchmark tables in ``notes.benchmarks``) regress when the
  candidate exceeds the baseline by more than the relative threshold;
  throughput-like series (``attained_ops``) regress in the other
  direction.  The defaults cover only *deterministic* simulator
  quantities, so the gate is reproducible run-to-run.
* **informational** metrics (everything else numeric, including the
  wall-clock span rollups) are reported but never fail the diff, unless
  span gating is explicitly enabled.

The result carries an exit code contract shared by ``repro diff`` and
``tools/perf_gate.py``: **0** pass, **3** regression (2 is reserved for
usage/IO errors at the CLI layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, List, Optional, Tuple

#: metric path patterns where *larger candidate value = regression*.
DEFAULT_GATE_UP: Tuple[str, ...] = (
    "simulator.total_time_s",
    "simulator.per_level_busy_s.*",
    "attribution.makespan_s",
    "attribution.totals_s.*",
    "attribution.per_level_s.*",
    "counters.sim.busy_seconds*",
    "counters.sim.idle_seconds*",
    "counters.sim.attributed_seconds*",
    "notes.benchmarks.*.total_time_s",
    "notes.benchmarks.*.attribution.*_s*",
)

#: metric path patterns where *smaller candidate value = regression*.
DEFAULT_GATE_DOWN: Tuple[str, ...] = (
    "simulator.attained_ops",
    "notes.benchmarks.*.attained_ops",
    "notes.benchmarks.*.peak_fraction",
)

#: numeric leaves that are identity/bookkeeping, never compared.
_SKIPPED_PATHS: Tuple[str, ...] = ("schema_version", "spans_dropped")

#: whole sections that are observability metadata, not performance: the v3
#: ``events``/``health`` sections vary run to run (event counts depend on
#: sampling, heartbeat ages are wall clock) and must neither gate nor show
#: up as "added" noise when diffing a v3 report against a v2 baseline.
#: ``notes.profile`` (the sampling profiler's summary) is sampled wall
#: clock too -- profile deltas gate through ``repro flame-diff``, not here.
_SKIPPED_PREFIXES: Tuple[str, ...] = ("events.", "health.", "notes.profile.")


def _skipped(path: str) -> bool:
    return path in _SKIPPED_PATHS or path.startswith(_SKIPPED_PREFIXES)


@dataclass
class DiffConfig:
    """Thresholds and gating patterns for one diff."""

    #: relative change that counts as a regression on gated metrics.
    rel_threshold: float = 0.05
    #: absolute change below which a metric can never regress (noise floor).
    abs_floor: float = 1e-12
    gate_up: Tuple[str, ...] = DEFAULT_GATE_UP
    gate_down: Tuple[str, ...] = DEFAULT_GATE_DOWN
    #: span rollups are wall-clock -- nondeterministic -- so they are
    #: informational unless explicitly gated (with their own threshold).
    gate_spans: bool = False
    span_threshold: float = 0.5


@dataclass
class DiffEntry:
    """One compared metric."""

    path: str
    baseline: Optional[float]
    candidate: Optional[float]
    status: str  # regression | improvement | changed | ok | added | removed
    gated: bool = False

    @property
    def delta(self) -> float:
        if self.baseline is None or self.candidate is None:
            return 0.0
        return self.candidate - self.baseline

    @property
    def rel(self) -> float:
        """Relative change vs the baseline (inf for 0 -> nonzero)."""
        if self.baseline is None or self.candidate is None:
            return 0.0
        if self.baseline == 0.0:
            if self.candidate > 0:
                return float("inf")
            return float("-inf") if self.candidate < 0 else 0.0
        return (self.candidate - self.baseline) / abs(self.baseline)


@dataclass
class DiffResult:
    """Outcome of one baseline/candidate comparison."""

    baseline_name: str
    candidate_name: str
    config: DiffConfig
    entries: List[DiffEntry] = field(default_factory=list)

    @property
    def regressions(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.status == "regression"]

    @property
    def improvements(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.status == "improvement"]

    @property
    def changed(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.status == "changed"]

    @property
    def passed(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        """0 = pass, 3 = at least one gated regression."""
        return 0 if self.passed else 3

    def worst(self) -> Optional[DiffEntry]:
        """The gated regression with the largest relative slip."""
        regs = self.regressions
        if not regs:
            return None
        return max(regs, key=lambda e: abs(e.rel))

    # -- rendering ----------------------------------------------------------

    def to_json_obj(self) -> Dict[str, object]:
        worst = self.worst()
        return {
            "schema": "repro.perf.diff",
            "baseline": self.baseline_name,
            "candidate": self.candidate_name,
            "rel_threshold": self.config.rel_threshold,
            "passed": self.passed,
            "exit_code": self.exit_code,
            "worst_regression": worst.path if worst else None,
            "regressions": [_entry_obj(e) for e in self.regressions],
            "improvements": [_entry_obj(e) for e in self.improvements],
            "changed": [_entry_obj(e) for e in self.changed],
            "compared": sum(e.status not in ("added", "removed")
                            for e in self.entries),
        }

    def format_table(self, limit: int = 20) -> str:
        """Human-readable diff: regressions, improvements, notable changes."""
        lines = [
            f"perf diff: {self.baseline_name} -> {self.candidate_name} "
            f"(threshold {self.config.rel_threshold:.1%})"
        ]

        def block(title: str, entries: List[DiffEntry], cap: int) -> None:
            if not entries:
                return
            lines.append(f"{title} ({len(entries)}):")
            ranked = sorted(entries, key=lambda e: -abs(e.rel))
            for e in ranked[:cap]:
                lines.append(f"  {_fmt_entry(e)}")
            if len(ranked) > cap:
                lines.append(f"  ... and {len(ranked) - cap} more")

        block("REGRESSIONS", self.regressions, limit)
        block("improvements", self.improvements, limit)
        block("changed (informational)", self.changed, limit)
        added = [e for e in self.entries if e.status == "added"]
        removed = [e for e in self.entries if e.status == "removed"]
        if added or removed:
            lines.append(f"metrics only in candidate: {len(added)}, "
                         f"only in baseline: {len(removed)}")
        worst = self.worst()
        if worst is not None:
            lines.append(f"worst regression: {worst.path} ({_fmt_rel(worst.rel)})")
        lines.append("verdict: PASS" if self.passed
                     else "verdict: REGRESSED (exit 3)")
        return "\n".join(lines)


def _entry_obj(e: DiffEntry) -> Dict[str, object]:
    return {
        "path": e.path,
        "baseline": e.baseline,
        "candidate": e.candidate,
        "delta": e.delta,
        "rel": None if abs(e.rel) == float("inf") else e.rel,
        "status": e.status,
        "gated": e.gated,
    }


def _fmt_rel(rel: float) -> str:
    if rel == float("inf"):
        return "+inf%"
    if rel == float("-inf"):
        return "-inf%"
    return f"{rel:+.1%}"


def _fmt_entry(e: DiffEntry) -> str:
    return (f"{e.path:<52s} {e.baseline:>12.6g} -> {e.candidate:>12.6g}  "
            f"{_fmt_rel(e.rel)}")


# ---------------------------------------------------------------------------
# Flattening and comparison
# ---------------------------------------------------------------------------


def flatten_numeric(doc: Dict[str, object], prefix: str = "") -> Dict[str, float]:
    """Flatten nested dicts to ``{dotted.path: float}`` (bools excluded)."""
    out: Dict[str, float] = {}
    for key, value in doc.items():
        path = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[path] = float(value)
        elif isinstance(value, dict):
            out.update(flatten_numeric(value, prefix=f"{path}."))
    return out


def _matches(path: str, patterns: Tuple[str, ...]) -> bool:
    return any(fnmatch(path, pattern) for pattern in patterns)


def _classify(path: str, base: float, cand: float,
              config: DiffConfig) -> Tuple[str, bool]:
    """(status, gated) for one metric present on both sides."""
    delta = cand - base
    if base != 0.0:
        rel = delta / abs(base)
    elif delta > 0:
        rel = float("inf")
    elif delta < 0:
        rel = float("-inf")
    else:
        rel = 0.0
    if path.startswith("spans."):
        if config.gate_spans:
            if rel > config.span_threshold and abs(delta) > config.abs_floor:
                return "regression", True
            if rel < -config.span_threshold:
                return "improvement", True
            return "ok", True
        return ("changed" if abs(rel) > config.rel_threshold else "ok"), False
    if _matches(path, config.gate_up):
        if rel > config.rel_threshold and abs(delta) > config.abs_floor:
            return "regression", True
        if rel < -config.rel_threshold and abs(delta) > config.abs_floor:
            return "improvement", True
        return "ok", True
    if _matches(path, config.gate_down):
        if rel < -config.rel_threshold and abs(delta) > config.abs_floor:
            return "regression", True
        if rel > config.rel_threshold and abs(delta) > config.abs_floor:
            return "improvement", True
        return "ok", True
    return ("changed" if abs(rel) > config.rel_threshold else "ok"), False


def diff_documents(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    config: Optional[DiffConfig] = None,
    baseline_name: str = "baseline",
    candidate_name: str = "candidate",
) -> DiffResult:
    """Compare two RunReport documents (already parsed; v1/v2/v3 all ok --
    v3-only sections are skipped, so v3 candidates diff cleanly against v2
    baselines)."""
    config = config or DiffConfig()
    result = DiffResult(baseline_name=baseline_name,
                        candidate_name=candidate_name, config=config)
    base_flat = {k: v for k, v in flatten_numeric(baseline).items()
                 if not _skipped(k)}
    cand_flat = {k: v for k, v in flatten_numeric(candidate).items()
                 if not _skipped(k)}
    for path in sorted(set(base_flat) | set(cand_flat)):
        base = base_flat.get(path)
        cand = cand_flat.get(path)
        if base is None:
            result.entries.append(DiffEntry(path, None, cand, "added"))
            continue
        if cand is None:
            result.entries.append(DiffEntry(path, base, None, "removed"))
            continue
        status, gated = _classify(path, base, cand, config)
        result.entries.append(DiffEntry(path, base, cand, status, gated))
    return result
