"""``repro.perf`` -- performance explainability on top of repro.telemetry.

Two halves:

* :mod:`repro.perf.attribution` -- the bottleneck attribution engine:
  exact critical-path walks over the timing simulator's stage placements,
  folded into the paper's stall taxonomy (control / DMA / compute /
  reduction) per fractal level, with DMA bandwidth accounting.
* :mod:`repro.perf.diff` -- the differential profiler: compares two
  RunReport documents (counters, span rollups, attribution) against
  relative thresholds and drives the ``repro diff`` CLI and
  ``tools/perf_gate.py`` regression gate.

Like :mod:`repro.telemetry`, this package is zero-dependency and
duck-typed against the simulator's dataclasses; it never imports
``repro.sim`` or numpy.
"""

from .attribution import (
    CATEGORIES,
    Attribution,
    CriticalSegment,
    attribute_report,
    attribute_schedule,
    attribution_section,
    critical_path,
)
from .diff import DiffConfig, DiffEntry, DiffResult, diff_documents

__all__ = [
    "CATEGORIES",
    "Attribution",
    "CriticalSegment",
    "attribute_report",
    "attribute_schedule",
    "attribution_section",
    "critical_path",
    "DiffConfig",
    "DiffEntry",
    "DiffResult",
    "diff_documents",
]
