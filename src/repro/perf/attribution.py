"""Bottleneck attribution: critical-path walks and stall taxonomy.

The timing simulator produces exact stage placements for every node of the
fractal hierarchy.  This module turns those placements into *answers*:

* :func:`critical_path` walks one node's pipeline schedule backwards from
  the final write-back and partitions the makespan into the stage that was
  executing on the critical path at every instant.  The walk is exact --
  the scheduler's forward recurrence guarantees every stage start equals
  one of its predecessors' ends (or t=0), so the returned segments tile
  ``[0, makespan]`` with no gaps.
* :func:`attribute_schedule` folds the walk into the four-way stall
  taxonomy of the paper's evaluation: **control** (ID / decoder),
  **dma** (LD + WB over the parent link), **compute** (EX on the FFUs)
  and **reduction** (RD on the LFUs), plus the EX seconds per
  instruction so the simulator can recursively expand a parent's
  compute-wait into the child level's own taxonomy.
* :class:`Attribution` wraps the resulting per-fractal-level breakdown
  (level seconds sum to the root makespan) together with per-level DMA
  bandwidth accounting and idle-cause rollups, and classifies the run
  (``dma``-bound, ``compute``-bound, ...).

Everything here is duck-typed against :mod:`repro.sim` dataclasses (the
same convention :mod:`repro.telemetry.report` uses), so this package
imports neither the simulator nor numpy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: the stall taxonomy (Fig-13 / Table-2 resources).  ``idle`` is a guard
#: bucket for float fallout of the walk; it is exactly 0.0 by construction.
CATEGORIES = ("control", "dma", "compute", "reduction", "idle")

#: pipeline stage -> taxonomy category
STAGE_CATEGORY = {
    "id": "control",
    "ld": "dma",
    "wb": "dma",
    "ex": "compute",
    "rd": "reduction",
}

#: predecessor candidates per stage: (stage, instruction-offset) pairs where
#: offset 0 means "same instruction" and -1 "previous instruction" (the
#: resource holder).  LD additionally considers the RAW-stall WB (handled
#: separately, it targets an arbitrary earlier instruction).
_PREDECESSORS = {
    "wb": (("rd", 0), ("wb", -1)),
    "rd": (("ex", 0), ("rd", -1)),
    "ex": (("ld", 0), ("ex", -1)),
    "ld": (("id", 0), ("ld", -1)),
    "id": (("id", -1),),
}


@dataclass(frozen=True)
class CriticalSegment:
    """One interval of the critical path: ``stage`` of instruction ``index``
    was the thing the makespan was waiting on during ``[start, end]``."""

    stage: str
    index: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def _iv(instructions: Sequence, index: int, stage: str):
    return getattr(instructions[index], f"{stage}_iv")


def critical_path(instructions: Sequence, stages: Sequence) -> List[CriticalSegment]:
    """Exact critical path of one scheduled instruction stream.

    ``instructions`` are :class:`repro.sim.pipeline.InstructionSchedule`-like
    objects (``*_iv`` interval attributes); ``stages`` the matching
    :class:`StageTimes`-like inputs (only ``stall_on`` is read).  Returns
    segments ordered by time whose durations sum exactly to the makespan.
    """
    if not instructions:
        return []
    index = max(range(len(instructions)),
                key=lambda k: instructions[k].wb_iv.end)
    stage = "wb"
    reverse: List[CriticalSegment] = []
    guard = 6 * len(instructions) + 8
    while guard > 0:
        guard -= 1
        iv = _iv(instructions, index, stage)
        reverse.append(CriticalSegment(stage, index, iv.start, iv.end))
        start = iv.start
        if start <= 0.0:
            break
        candidates: List[Tuple[str, int]] = []
        for pred_stage, offset in _PREDECESSORS[stage]:
            j = index + offset
            if j >= 0:
                candidates.append((pred_stage, j))
        if stage == "ld":
            stall_on = getattr(stages[index], "stall_on", None)
            if stall_on is not None and 0 <= stall_on < len(instructions):
                candidates.append(("wb", stall_on))
        chosen: Optional[Tuple[str, int]] = None
        best_end = float("-inf")
        best: Optional[Tuple[str, int]] = None
        for cand in candidates:
            end = _iv(instructions, cand[1], cand[0]).end
            if end == start and chosen is None:
                chosen = cand
            if end > best_end:
                best_end, best = end, cand
        if chosen is None:
            # Float-exactness guard: jump to the latest-finishing candidate
            # and book the (theoretical) gap as idle.
            if best is None or best_end >= start:
                break
            reverse.append(CriticalSegment("idle", -1, best_end, start))
            chosen = best
        stage, index = chosen
    segments = list(reversed(reverse))
    return segments


def attribute_schedule(
    instructions: Sequence, stages: Sequence
) -> Tuple[Dict[str, float], List[Tuple[int, float]]]:
    """Fold the critical path into (taxonomy seconds, per-instruction EX).

    Returns ``(totals, exec_path)`` where ``totals`` maps every category in
    :data:`CATEGORIES` to critical-path seconds (summing to the makespan)
    and ``exec_path`` lists ``(instruction_index, seconds)`` for the EX
    segments -- the part a parent level can delegate to its child level.
    """
    totals = dict.fromkeys(CATEGORIES, 0.0)
    exec_path: List[Tuple[int, float]] = []
    for seg in critical_path(instructions, stages):
        category = STAGE_CATEGORY.get(seg.stage, "idle")
        totals[category] += seg.duration
        if seg.stage == "ex" and seg.duration > 0.0:
            exec_path.append((seg.index, seg.duration))
    return totals, exec_path


def merge_scaled(
    dst: Dict[int, Dict[str, float]],
    src: Dict[int, Dict[str, float]],
    scale: float,
) -> None:
    """``dst[level][cat] += scale * src[level][cat]`` for every entry."""
    for level, cats in src.items():
        acc = dst.setdefault(level, dict.fromkeys(CATEGORIES, 0.0))
        for cat, seconds in cats.items():
            acc[cat] = acc.get(cat, 0.0) + scale * seconds


# ---------------------------------------------------------------------------
# Whole-run attribution
# ---------------------------------------------------------------------------


@dataclass
class Attribution:
    """Makespan decomposition of one simulation, per fractal level.

    ``per_level[L][category]`` is critical-path seconds attributed to the
    taxonomy category at hierarchy level ``L``; summed over all levels and
    categories this equals ``makespan`` (to float precision).  ``dma``
    holds per-level DMA engine accounting (bytes over the parent link,
    busy seconds, effective bandwidth) and ``idle`` per-level idle-cause
    seconds -- both follow the simulator's representative-child semantics.
    """

    makespan: float
    per_level: Dict[int, Dict[str, float]] = field(default_factory=dict)
    dma: Dict[int, Dict[str, float]] = field(default_factory=dict)
    idle: Dict[int, Dict[str, float]] = field(default_factory=dict)

    def totals(self) -> Dict[str, float]:
        """Taxonomy seconds summed over every level (sums to makespan)."""
        out = dict.fromkeys(CATEGORIES, 0.0)
        for cats in self.per_level.values():
            for cat, seconds in cats.items():
                out[cat] = out.get(cat, 0.0) + seconds
        return out

    def fractions(self) -> Dict[str, float]:
        """Taxonomy totals as fractions of the makespan."""
        if self.makespan <= 0.0:
            return dict.fromkeys(CATEGORIES, 0.0)
        return {cat: seconds / self.makespan
                for cat, seconds in self.totals().items()}

    def dominant(self) -> str:
        """The bounding resource: category with the largest share."""
        totals = self.totals()
        return max((c for c in CATEGORIES if c != "idle"),
                   key=lambda c: totals.get(c, 0.0))

    def classify(self) -> str:
        """Human tag, e.g. ``"dma-bound"`` (the Fig-13 vocabulary)."""
        return f"{self.dominant()}-bound"

    def dominant_per_level(self) -> Dict[int, str]:
        """Bounding category of each level's own attributed time."""
        out: Dict[int, str] = {}
        for level, cats in sorted(self.per_level.items()):
            if any(v > 0.0 for v in cats.values()):
                out[level] = max((c for c in CATEGORIES if c != "idle"),
                                 key=lambda c: cats.get(c, 0.0))
        return out

    def to_dict(self) -> Dict[str, object]:
        """The RunReport v2 ``attribution`` section."""
        return {
            "makespan_s": self.makespan,
            "dominant": self.dominant(),
            "classification": self.classify(),
            "totals_s": self.totals(),
            "fractions": self.fractions(),
            "per_level_s": {
                str(level): dict(cats)
                for level, cats in sorted(self.per_level.items())
            },
            "per_level_dominant": {
                str(level): cat
                for level, cat in self.dominant_per_level().items()
            },
            "dma": {
                str(level): dict(acc)
                for level, acc in sorted(self.dma.items())
            },
            "idle_s": {
                str(level): dict(causes)
                for level, causes in sorted(self.idle.items())
            },
        }


def attribute_report(sim_report) -> Attribution:
    """Build an :class:`Attribution` from a finished ``SimReport``.

    The simulator computes the per-level critical-path breakdown bottom-up
    during :meth:`simulate` (cached child nodes carry their own); this
    merely packages the root's view with the DMA/idle accounting.
    """
    root = sim_report.root
    per_level = {level: dict(cats)
                 for level, cats in getattr(root, "attribution", {}).items()}
    dma: Dict[int, Dict[str, float]] = {}
    for level, acc in getattr(root, "per_level_dma", {}).items():
        entry = dict(acc)
        bytes_moved = entry.get("load_bytes", 0.0) + entry.get("store_bytes", 0.0)
        entry["bytes"] = bytes_moved
        busy = entry.get("busy_s", 0.0)
        entry["effective_bandwidth"] = bytes_moved / busy if busy > 0 else 0.0
        if sim_report.total_time > 0:
            entry["busy_fraction_of_makespan"] = busy / sim_report.total_time
        dma[level] = entry
    idle = {level: dict(causes)
            for level, causes in getattr(root, "per_level_idle", {}).items()}
    return Attribution(
        makespan=sim_report.total_time,
        per_level=per_level,
        dma=dma,
        idle=idle,
    )


def attribution_section(sim_report) -> Optional[Dict[str, object]]:
    """RunReport section builder (None when the report predates attribution)."""
    if not getattr(getattr(sim_report, "root", None), "attribution", None):
        return None
    return attribute_report(sim_report).to_dict()
