"""Lowering: framework graph -> FISA Workload.

Walks the graph in topological order and emits the FISA instruction
sequence through :class:`~repro.workloads.builder.ProgramBuilder` --
exactly what a Cambricon-F framework backend would be, and (the paper's
point) the *only* backend needed for every machine scale.
"""

from __future__ import annotations

from typing import Dict

from ..analysis import analyze_workload
from ..core.isa import Opcode
from ..core.tensor import Region
from ..workloads.builder import ProgramBuilder, Workload
from .graph import Graph, GraphError


def lower(graph: Graph) -> Workload:
    """Compile a validated graph into a runnable Workload.

    Graph inputs become Workload inputs; conv/dense weights become params;
    marked outputs become Workload outputs.
    """
    graph.validate()
    b = ProgramBuilder(graph.name)
    values: Dict[str, Region] = {}

    for node in graph.topological():
        p = node.param_dict
        if node.op == "input":
            t = b.input(str(p["name"]), node.shape)
            values[node.id] = t.region()
        elif node.op == "conv2d":
            values[node.id] = b.conv2d(
                values[node.inputs[0]], int(p["filters"]),
                int(p["kernel"]), int(p["kernel"]),
                stride=int(p["stride"]), pad=int(p.get("padding", 0)))
        elif node.op == "maxpool":
            values[node.id] = b.pool2d(
                values[node.inputs[0]], Opcode.MAX2D, k=int(p["size"]),
                stride=int(p["stride"]), pad=int(p.get("padding", 0)))
        elif node.op == "avgpool":
            values[node.id] = b.pool2d(
                values[node.inputs[0]], Opcode.AVG2D, k=int(p["size"]),
                stride=int(p["stride"]), pad=int(p.get("padding", 0)))
        elif node.op == "lrn":
            values[node.id] = b.lrn(values[node.inputs[0]],
                                    size=int(p["size"]))
        elif node.op == "activation":
            out = b.tensor("act", values[node.inputs[0]].shape)
            b.emit(Opcode.ACT1D, (values[node.inputs[0]],), (out.region(),),
                   {"func": str(p["func"])})
            values[node.id] = out.region()
        elif node.op == "add":
            values[node.id] = b.add(values[node.inputs[0]],
                                    values[node.inputs[1]])
        elif node.op == "pad":
            values[node.id] = b.pad2d(values[node.inputs[0]],
                                      int(p["amount"]))
        elif node.op == "flatten":
            values[node.id] = b.flatten(values[node.inputs[0]])
        elif node.op == "dense":
            values[node.id] = b.fc(values[node.inputs[0]], int(p["units"]))
        else:
            raise GraphError(f"no lowering for op {node.op!r}")

        if values[node.id].shape != node.shape:
            raise GraphError(
                f"lowering shape mismatch at {node.id}: graph says "
                f"{node.shape}, builder produced {values[node.id].shape}")

    for nid in graph.outputs:
        b.mark_output(values[nid].tensor)
    workload = b.build(compiled_from=graph.name, nodes=len(graph))

    # The lowering contract: emitted programs are always analyzer-clean.
    # A failure here is a compiler bug (bad emission), never a user error --
    # graph.validate() has already rejected malformed graphs above.
    result = analyze_workload(workload)
    if not result.ok:
        details = "; ".join(d.format() for d in result.errors[:10])
        raise GraphError(
            f"lowering of {graph.name!r} emitted an analyzer-rejected "
            f"program (compiler bug): {details}")
    return workload
