"""Reverse-mode differentiation over the framework graph.

Machine-learning computers run training, not just inference; the backward
passes of every supported operator are themselves FISA-expressible
(convolution backward is a convolution over rearranged operands, dense
backward is two MatMuls, ReLU backward is an element-wise mask multiply),
so the same fractal machine executes them.

For execution simplicity the gradient computation is exposed as a
*host-runtime* program: :class:`GradientTape` records runtime calls and
replays the chain rule through FISA operations.  This keeps the autodiff
numerically testable against finite differences while every bulk op still
flows through the fractal executor.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..runtime.host import HostRuntime


class Tape:
    """Records forward operations and their backward closures."""

    def __init__(self, runtime: Optional[HostRuntime] = None):
        self.runtime = runtime or HostRuntime()
        self._backward: List[Callable[[], None]] = []
        self._grads: Dict[int, np.ndarray] = {}

    # -- gradient accumulation ------------------------------------------------

    def grad_of(self, ref: "Var") -> np.ndarray:
        return self._grads.get(id(ref), np.zeros_like(ref.value))

    def _accumulate(self, ref: "Var", grad: np.ndarray) -> None:
        key = id(ref)
        if key in self._grads:
            # gradient accumulation is a FISA Add
            self._grads[key] = self.runtime.add(self._grads[key], grad)
        else:
            self._grads[key] = grad

    # -- ops -------------------------------------------------------------------

    def var(self, value: np.ndarray, trainable: bool = True) -> "Var":
        return Var(np.asarray(value, float), self, trainable)

    def matmul(self, a: "Var", b: "Var") -> "Var":
        out = self.var(self.runtime.matmul(a.value, b.value), trainable=False)

        def backward():
            g = self.grad_of(out)
            self._accumulate(a, self.runtime.matmul(g, b.value.T))
            self._accumulate(b, self.runtime.matmul(a.value.T, g))

        self._backward.append(backward)
        out._parents = (a, b)
        return out

    def add(self, a: "Var", b: "Var") -> "Var":
        out = self.var(self.runtime.add(a.value, b.value), trainable=False)

        def backward():
            g = self.grad_of(out)
            self._accumulate(a, g)
            self._accumulate(b, g)

        self._backward.append(backward)
        out._parents = (a, b)
        return out

    def relu(self, x: "Var") -> "Var":
        out = self.var(self.runtime.activation(x.value, "relu"),
                       trainable=False)

        def backward():
            g = self.grad_of(out)
            mask = (x.value > 0).astype(float)
            self._accumulate(x, self.runtime.mul(g, mask))

        self._backward.append(backward)
        out._parents = (x,)
        return out

    def conv2d(self, x: "Var", w: "Var", stride: int = 1) -> "Var":
        if stride != 1:
            raise NotImplementedError("training conv supports stride 1")
        out = self.var(self.runtime.conv2d(x.value, w.value), trainable=False)

        def backward():
            g = self.grad_of(out)  # (N, Ho, Wo, Cout)
            kh, kw, cin, cout = w.value.shape
            # dX: full-correlation of the padded gradient with the kernel
            # rotated 180 degrees and in/out channels swapped -- itself a
            # Cv2D instruction on the machine.
            flipped = w.value[::-1, ::-1].transpose(0, 1, 3, 2).copy()
            padded = np.pad(g, ((0, 0), (kh - 1, kh - 1),
                                (kw - 1, kw - 1), (0, 0)))
            self._accumulate(x, self.runtime.conv2d(padded, flipped))
            # dW: correlate input with the output gradient: transpose the
            # batch dimension into channels and run Cv2D again.
            x_t = x.value.transpose(3, 1, 2, 0)       # (Cin, H, W, N)
            g_t = g.transpose(1, 2, 0, 3)             # (Ho, Wo, N, Cout)
            dw = self.runtime.conv2d(x_t, g_t)        # (Cin, kh, kw, Cout)
            self._accumulate(w, dw.transpose(1, 2, 0, 3))

        self._backward.append(backward)
        out._parents = (x, w)
        return out

    def mse_loss(self, pred: "Var", target: np.ndarray) -> "Var":
        target = np.asarray(target, float)
        diff = self.runtime.sub(pred.value, target)
        loss_value = self.runtime.hsum(self.runtime.mul(diff, diff))
        loss_value /= diff.size
        out = self.var(np.array([loss_value]), trainable=False)

        def backward():
            g = self.grad_of(out)[0]
            self._accumulate(
                pred, self.runtime.mul(
                    diff, np.full_like(diff, 2.0 * g / diff.size)))

        self._backward.append(backward)
        out._parents = (pred,)
        return out

    # -- engine ------------------------------------------------------------------

    def backward(self, loss: "Var") -> None:
        """Run the chain rule: seed d(loss)/d(loss) = 1, replay in reverse."""
        self._grads = {id(loss): np.ones_like(loss.value)}
        for closure in reversed(self._backward):
            closure()


class Var:
    """A tensor tracked by a tape."""

    def __init__(self, value: np.ndarray, tape: Tape, trainable: bool):
        self.value = value
        self.tape = tape
        self.trainable = trainable
        self._parents: Tuple = ()

    @property
    def grad(self) -> np.ndarray:
        return self.tape.grad_of(self)

    def __repr__(self) -> str:
        return f"Var(shape={self.value.shape}, trainable={self.trainable})"


class SGD:
    """Plain stochastic gradient descent over tape variables.

    The parameter update ``w -= lr * g`` runs as FISA element-wise
    instructions (Mul + Sub), like everything else.
    """

    def __init__(self, lr: float = 0.01):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr

    def step(self, params: List[Var]) -> None:
        for p in params:
            if not p.trainable:
                continue
            runtime = p.tape.runtime
            scaled = runtime.mul(p.grad, np.full_like(p.grad, self.lr))
            p.value = runtime.sub(p.value, scaled)
