"""The framework-level computation graph.

A :class:`Graph` is a DAG of named operator nodes with eager shape
inference: every builder call validates its operands and records the
output shape immediately, so shape errors surface at graph-construction
time (where the user can see them), not at lowering time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class GraphError(ValueError):
    """Invalid graph construction (bad shapes, unknown nodes, cycles)."""


@dataclass(frozen=True)
class Node:
    """One operator instance in the graph."""

    id: str
    op: str
    inputs: Tuple[str, ...]
    shape: Tuple[int, ...]
    params: Tuple[Tuple[str, object], ...] = ()

    @property
    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def signature(self) -> Tuple:
        """Structural identity used by common-subexpression elimination."""
        return (self.op, self.inputs, self.params)


class Graph:
    """Builder-style NN graph with shape inference.

    Every method returns the new node's id, which later calls take as an
    input handle.
    """

    def __init__(self, name: str = "net"):
        self.name = name
        self.nodes: Dict[str, Node] = {}
        self.order: List[str] = []
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self._ids = itertools.count()

    # -- plumbing ---------------------------------------------------------

    def _add(self, op: str, inputs: Sequence[str], shape: Tuple[int, ...],
             **params) -> str:
        for ref in inputs:
            if ref not in self.nodes:
                raise GraphError(f"unknown input node {ref!r}")
        if any(d <= 0 for d in shape):
            raise GraphError(f"{op}: inferred non-positive shape {shape}")
        nid = f"{op}_{next(self._ids)}"
        self.nodes[nid] = Node(nid, op, tuple(inputs), tuple(shape),
                               tuple(sorted(params.items())))
        self.order.append(nid)
        return nid

    def shape(self, nid: str) -> Tuple[int, ...]:
        try:
            return self.nodes[nid].shape
        except KeyError:
            raise GraphError(f"unknown node {nid!r}")

    # -- graph I/O ----------------------------------------------------------

    def input(self, name: str, shape: Tuple[int, ...]) -> str:
        nid = self._add("input", [], tuple(shape), name=name)
        self.inputs.append(nid)
        return nid

    def output(self, nid: str) -> str:
        if nid not in self.nodes:
            raise GraphError(f"unknown node {nid!r}")
        self.outputs.append(nid)
        return nid

    # -- operators ------------------------------------------------------------

    def conv2d(self, x: str, filters: int, kernel: int, stride: int = 1,
               padding: int = 0, activation: Optional[str] = None) -> str:
        n, h, w, _c = self._expect_rank(x, 4, "conv2d")
        ho = (h + 2 * padding - kernel) // stride + 1
        wo = (w + 2 * padding - kernel) // stride + 1
        if ho <= 0 or wo <= 0:
            raise GraphError("conv2d: kernel larger than (padded) input")
        nid = self._add("conv2d", [x], (n, ho, wo, filters), filters=filters,
                        kernel=kernel, stride=stride, padding=padding)
        if activation:
            nid = self.activation(nid, activation)
        return nid

    def maxpool(self, x: str, size: int, stride: Optional[int] = None,
                padding: int = 0) -> str:
        return self._pool(x, "maxpool", size, stride, padding)

    def avgpool(self, x: str, size: int, stride: Optional[int] = None,
                padding: int = 0) -> str:
        return self._pool(x, "avgpool", size, stride, padding)

    def _pool(self, x, op, size, stride, padding) -> str:
        n, h, w, c = self._expect_rank(x, 4, op)
        stride = size if stride is None else stride
        ho = (h + 2 * padding - size) // stride + 1
        wo = (w + 2 * padding - size) // stride + 1
        if ho <= 0 or wo <= 0:
            raise GraphError(f"{op}: window larger than input")
        return self._add(op, [x], (n, ho, wo, c), size=size, stride=stride,
                         padding=padding)

    def lrn(self, x: str, size: int = 5) -> str:
        shape = self._expect_rank(x, 4, "lrn")
        return self._add("lrn", [x], shape, size=size)

    def activation(self, x: str, func: str = "relu") -> str:
        return self._add("activation", [x], self.shape(x), func=func)

    def add(self, a: str, b: str) -> str:
        if self.shape(a) != self.shape(b):
            raise GraphError(
                f"add: shape mismatch {self.shape(a)} vs {self.shape(b)}")
        return self._add("add", [a, b], self.shape(a))

    def pad(self, x: str, amount: int) -> str:
        n, h, w, c = self._expect_rank(x, 4, "pad")
        return self._add("pad", [x], (n, h + 2 * amount, w + 2 * amount, c),
                         amount=amount)

    def flatten(self, x: str) -> str:
        shape = self.shape(x)
        rest = 1
        for d in shape[1:]:
            rest *= d
        return self._add("flatten", [x], (shape[0], rest))

    def dense(self, x: str, units: int, activation: Optional[str] = None) -> str:
        n, _f = self._expect_rank(x, 2, "dense")
        nid = self._add("dense", [x], (n, units), units=units)
        if activation:
            nid = self.activation(nid, activation)
        return nid

    # -- analysis ---------------------------------------------------------------

    def _expect_rank(self, nid: str, rank: int, op: str) -> Tuple[int, ...]:
        shape = self.shape(nid)
        if len(shape) != rank:
            raise GraphError(f"{op}: expected rank-{rank} input, got {shape}")
        return shape

    def consumers(self) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {nid: [] for nid in self.nodes}
        for node in self.nodes.values():
            for ref in node.inputs:
                out[ref].append(node.id)
        return out

    def topological(self) -> List[Node]:
        """Nodes in construction order (the builder only references earlier
        nodes, so construction order is topological by construction)."""
        return [self.nodes[nid] for nid in self.order]

    def validate(self) -> None:
        if not self.outputs:
            raise GraphError("graph has no outputs")
        seen = set()
        for node in self.topological():
            for ref in node.inputs:
                if ref not in seen:
                    raise GraphError(f"{node.id} uses {ref} before definition")
            seen.add(node.id)

    def __len__(self) -> int:
        return len(self.nodes)
