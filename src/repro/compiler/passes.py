"""Graph optimization passes.

Each pass maps Graph -> Graph (a fresh graph; passes never mutate their
input) and reports what it changed.  :func:`optimize` runs the standard
pipeline to fixpoint.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .graph import Graph, Node


def _rebuild(graph: Graph, keep: List[Node],
             remap: Dict[str, str]) -> Graph:
    """Copy ``keep`` (in order) into a new graph, rewriting input refs."""
    out = Graph(graph.name)
    for node in keep:
        inputs = tuple(remap.get(r, r) for r in node.inputs)
        out.nodes[node.id] = Node(node.id, node.op, inputs, node.shape,
                                  node.params)
        out.order.append(node.id)
    out.inputs = [remap.get(n, n) for n in graph.inputs
                  if remap.get(n, n) in out.nodes]
    out.outputs = [remap.get(n, n) for n in graph.outputs]
    return out


def dead_code_elimination(graph: Graph) -> Tuple[Graph, int]:
    """Drop nodes that no output transitively depends on."""
    graph.validate()
    live = set(graph.outputs)
    for node in reversed(graph.topological()):
        if node.id in live:
            live.update(node.inputs)
    keep = [n for n in graph.topological() if n.id in live]
    removed = len(graph) - len(keep)
    return _rebuild(graph, keep, {}), removed


def common_subexpression_elimination(graph: Graph) -> Tuple[Graph, int]:
    """Merge structurally identical nodes (same op, params and inputs).

    NN graphs hit this frequently: shared stems, duplicated pre-processing,
    repeated padding of the same tensor.
    """
    graph.validate()
    remap: Dict[str, str] = {}
    seen: Dict[Tuple, str] = {}
    keep: List[Node] = []
    for node in graph.topological():
        inputs = tuple(remap.get(r, r) for r in node.inputs)
        sig = (node.op, inputs, node.params)
        if node.op != "input" and sig in seen:
            remap[node.id] = seen[sig]
            continue
        seen[sig] = node.id
        keep.append(Node(node.id, node.op, inputs, node.shape, node.params))
    merged = len(graph) - len(keep)
    return _rebuild(graph, keep, remap), merged


def fold_pads(graph: Graph) -> Tuple[Graph, int]:
    """Fold explicit ``pad`` nodes into their sole conv/pool consumer's
    ``padding`` parameter (one materialized padded tensor instead of two)."""
    graph.validate()
    consumers = graph.consumers()
    remap: Dict[str, str] = {}
    folded: Dict[str, int] = {}  # consumer id -> extra padding
    drop = set()
    for node in graph.topological():
        if node.op != "pad" or node.id in graph.outputs:
            continue
        users = consumers[node.id]
        if len(users) != 1:
            continue
        user = graph.nodes[users[0]]
        if user.op not in ("conv2d", "maxpool", "avgpool"):
            continue
        drop.add(node.id)
        remap[node.id] = node.inputs[0]
        folded[user.id] = folded.get(user.id, 0) + node.param_dict["amount"]
    keep: List[Node] = []
    for node in graph.topological():
        if node.id in drop:
            continue
        params = node.param_dict
        if node.id in folded:
            params["padding"] = params.get("padding", 0) + folded[node.id]
        inputs = tuple(remap.get(r, r) for r in node.inputs)
        keep.append(Node(node.id, node.op, inputs, node.shape,
                         tuple(sorted(params.items()))))
    return _rebuild(graph, keep, remap), len(drop)


def optimize(graph: Graph, max_rounds: int = 8) -> Tuple[Graph, Dict[str, int]]:
    """Run the pass pipeline to fixpoint; returns (graph, change counts)."""
    stats = {"dce": 0, "cse": 0, "pad_fold": 0}
    for _ in range(max_rounds):
        changed = 0
        graph, n = fold_pads(graph)
        stats["pad_fold"] += n
        changed += n
        graph, n = common_subexpression_elimination(graph)
        stats["cse"] += n
        changed += n
        graph, n = dead_code_elimination(graph)
        stats["dce"] += n
        changed += n
        if changed == 0:
            break
    return graph, stats
