"""A small neural-network graph compiler targeting FISA.

The paper's core motivation is programming productivity: frameworks have
thousands of operators and porting them to each accelerator scale costs
months.  On Cambricon-F the port is a *compiler to one ISA*: this package
provides the framework-level graph (Keras-style builder with shape
inference), optimization passes (dead-code elimination, common-
subexpression elimination, pad folding), and lowering to a FISA
:class:`~repro.workloads.builder.Workload` that runs on every instance.
"""

from .autodiff import SGD, Tape, Var
from .graph import Graph, GraphError, Node
from .lowering import lower
from .passes import (
    common_subexpression_elimination,
    dead_code_elimination,
    fold_pads,
    optimize,
)

__all__ = [
    "SGD",
    "Tape",
    "Var",
    "Graph",
    "GraphError",
    "Node",
    "lower",
    "common_subexpression_elimination",
    "dead_code_elimination",
    "fold_pads",
    "optimize",
]
