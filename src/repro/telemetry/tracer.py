"""Nested span tracing with a ring-buffered JSONL exporter.

A :class:`Tracer` records *spans*: named, wall-clock-timed intervals that
nest (host -> session -> program -> instruction -> op).  Completed spans
land in a bounded ring buffer -- long runs keep the most recent ``capacity``
spans and drop the oldest, so tracing never grows without bound.

Like the counter registry, the tracer is a cheap no-op while disabled: the
``span`` factory returns a shared reusable null context manager, so an
instrumented call site pays one flag check.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SpanRecord:
    """One completed span (times in seconds relative to the tracer epoch)."""

    id: int
    name: str
    cat: str
    start: float
    duration: float
    depth: int
    parent: Optional[int]
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_json_obj(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "name": self.name,
            "cat": self.cat,
            "start_s": self.start,
            "duration_s": self.duration,
            "depth": self.depth,
            "parent": self.parent,
            "args": self.args,
        }


#: minimum exported Chrome-trace slice width, in microseconds (one "tick").
CHROME_TICK_US = 1e-3


class SliverPlacer:
    """(ts, dur) assignment that keeps zero-width trace slices selectable.

    The trace-event format draws ``ph: "X"`` slices with a minimum visual
    width; two zero-duration events at the same timestamp used to export
    with *identical* ``ts``/``dur`` and render as overlapping slivers --
    Perfetto picks one and hides the rest.  Every sub-tick duration is
    clamped to one tick (:data:`CHROME_TICK_US`), and the *n*-th sub-tick
    event landing on the same ``(pid, tid, tick)`` cell is shifted right
    by ``n`` ticks so each slice occupies its own pixel-width slot.
    Full-width events pass through untouched.
    """

    __slots__ = ("_crowd",)

    def __init__(self) -> None:
        self._crowd: Dict[tuple, int] = {}

    def place(self, pid: int, tid: int, ts_us: float,
              dur_us: float) -> tuple:
        """Return the ``(ts, dur)`` to export for one slice."""
        if dur_us >= CHROME_TICK_US:
            return ts_us, dur_us
        key = (pid, tid, round(ts_us / CHROME_TICK_US))
        n = self._crowd.get(key, 0)
        self._crowd[key] = n + 1
        return ts_us + n * CHROME_TICK_US, CHROME_TICK_US


class _NullSpan:
    """Reusable no-op context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live (open) span; records itself into the tracer on exit."""

    __slots__ = ("_tracer", "id", "name", "cat", "args", "depth", "parent", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self):
        tr = self._tracer
        self.id = tr._next_id
        tr._next_id += 1
        self.parent = tr._stack[-1] if tr._stack else None
        self.depth = len(tr._stack)
        tr._stack.append(self.id)
        tr._names.append(self.name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        t1 = time.perf_counter()
        tr = self._tracer
        if tr._stack and tr._stack[-1] == self.id:
            tr._stack.pop()
            tr._names.pop()
        tr._record(SpanRecord(
            id=self.id,
            name=self.name,
            cat=self.cat,
            start=self._t0 - tr._epoch,
            duration=t1 - self._t0,
            depth=self.depth,
            parent=self.parent,
            args=self.args,
        ))
        return False


class Tracer:
    """Produces nested spans; keeps the newest ``capacity`` in a ring."""

    def __init__(self, enabled: bool = False, capacity: int = 65536):
        self.enabled = enabled
        self.capacity = capacity
        self._epoch = time.perf_counter()
        self._ring: List[SpanRecord] = []
        self._head = 0  # next overwrite position once the ring is full
        self._stack: List[int] = []
        self._names: List[str] = []  # open-span names, parallel to _stack
        self._next_id = 1
        self.dropped = 0  # spans evicted by the ring

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._epoch = time.perf_counter()
        self._ring = []
        self._head = 0
        self._stack = []
        self._names = []
        self._next_id = 1
        self.dropped = 0

    # -- recording --------------------------------------------------------------

    def span(self, name: str, cat: str = "", **args):
        """Context manager timing one nested span (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, args)

    def _record(self, rec: SpanRecord) -> None:
        if len(self._ring) < self.capacity:
            self._ring.append(rec)
        else:
            self._ring[self._head] = rec
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    # -- reading ---------------------------------------------------------------

    def current_span_name(self) -> Optional[str]:
        """Name of the innermost *open* span, or None.

        Safe to call from another thread (the sampling profiler does): it
        is a single racy read of the last element of a list the GIL keeps
        internally consistent -- worst case it returns a just-closed or
        just-opened span's name.
        """
        names = self._names
        return names[-1] if names else None

    def spans(self) -> List[SpanRecord]:
        """Completed spans, oldest first (ring order restored)."""
        if len(self._ring) < self.capacity:
            return sorted(self._ring, key=lambda s: s.start)
        return sorted(self._ring[self._head:] + self._ring[:self._head],
                      key=lambda s: s.start)

    def rollups(self) -> Dict[str, Dict[str, object]]:
        """Aggregate spans by name: count, total/max/mean and *self* duration.

        This is the RunReport's ``spans`` section -- small and diffable even
        when the raw span stream is huge.  ``total_s`` is inclusive (nested
        spans are counted in every ancestor); ``self_total_s`` is exclusive
        -- each span's duration minus its direct children's -- so summing
        it across names does not double-count nesting.  If the ring evicted
        a child but kept its parent, the parent's self time is overstated
        by the evicted child's share (the rollup only sees surviving spans).
        """
        spans = self.spans()
        child_s: Dict[int, float] = {}
        for s in spans:
            if s.parent is not None:
                child_s[s.parent] = child_s.get(s.parent, 0.0) + s.duration
        out: Dict[str, Dict[str, object]] = {}
        for s in spans:
            agg = out.get(s.name)
            if agg is None:
                agg = out[s.name] = {
                    "cat": s.cat, "count": 0, "total_s": 0.0, "max_s": 0.0,
                    "self_total_s": 0.0,
                }
            agg["count"] += 1
            agg["total_s"] += s.duration
            agg["self_total_s"] += max(0.0, s.duration - child_s.get(s.id, 0.0))
            if s.duration > agg["max_s"]:
                agg["max_s"] = s.duration
        for agg in out.values():
            agg["mean_s"] = agg["total_s"] / agg["count"]
        return dict(sorted(out.items()))

    # -- export ------------------------------------------------------------------

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per completed span; returns the span count.

        Crash-safe: the stream goes to a context-managed temporary file
        that is atomically renamed onto ``path`` only after every span
        serialized.  If serialization raises mid-write (a span carrying a
        non-JSON arg), the handle is closed by the ``with`` block, the
        partial temp file is removed, and ``path`` is left untouched --
        no leaked fd, no torn export.
        """
        spans = self.spans()
        tmp = f"{path}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as f:
                for s in spans:
                    f.write(json.dumps(s.to_json_obj()))
                    f.write("\n")
        except BaseException:
            with contextlib.suppress(OSError):
                os.remove(tmp)
            raise
        os.replace(tmp, path)
        return len(spans)

    def to_chrome_events(self, pid: int = 900, tid: int = 0) -> List[Dict]:
        """Trace-event (Perfetto) ``X`` events for every completed span.

        Spans share one thread track; Perfetto nests them by interval
        containment, which holds by construction for single-threaded runs.
        """
        events: List[Dict] = [
            {"name": "process_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": "functional execution (spans)"}},
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": "host/session/program/instruction"}},
        ]
        spans = self.spans()
        base = min((s.start for s in spans), default=0.0)
        placer = SliverPlacer()
        for s in spans:
            ts, dur = placer.place(pid, tid, (s.start - base) * 1e6,
                                   s.duration * 1e6)
            events.append({
                "name": s.name,
                "cat": s.cat or "span",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": ts,
                "dur": dur,
                "args": dict(s.args, depth=s.depth),
            })
        return events
