"""Machine-readable run reports.

A :class:`RunReport` is one schema-versioned JSON document merging

* the counter registry snapshot (``counters``),
* span rollups from the tracer (``spans``),
* functional-executor statistics (``executor``), and
* timing-simulator statistics incl. cache hit rates (``simulator``)

for one (benchmark, machine) run.  It is the artifact perf work diffs
against: ``repro profile`` writes one per invocation and the benchmark
harness writes one per machine (the ``BENCH_*.json`` trajectory).

Schema policy (documented in docs/TELEMETRY.md): ``schema`` names the
document type and never changes; ``schema_version`` is a monotonically
increasing integer bumped whenever a field is removed or its meaning
changes.  *Adding* fields does not bump the version -- consumers must
ignore unknown keys.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Dict, List, Optional

SCHEMA = "repro.telemetry.run_report"
SCHEMA_VERSION = 1

#: top-level keys every RunReport document carries.
REQUIRED_KEYS = ("schema", "schema_version", "created", "benchmark",
                 "machine", "counters", "spans")


@dataclass
class RunReport:
    """One run's merged telemetry (see module docstring for schema policy)."""

    benchmark: str
    machine: str
    counters: Dict[str, object] = field(default_factory=dict)
    spans: Dict[str, Dict[str, object]] = field(default_factory=dict)
    executor: Optional[Dict[str, object]] = None
    simulator: Optional[Dict[str, object]] = None
    notes: Dict[str, object] = field(default_factory=dict)
    created: str = ""

    def __post_init__(self):
        if not self.created:
            self.created = time.strftime("%Y-%m-%dT%H:%M:%S%z")

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "schema": SCHEMA,
            "schema_version": SCHEMA_VERSION,
            "created": self.created,
            "benchmark": self.benchmark,
            "machine": self.machine,
            "counters": self.counters,
            "spans": self.spans,
        }
        if self.executor is not None:
            doc["executor"] = self.executor
        if self.simulator is not None:
            doc["simulator"] = self.simulator
        if self.notes:
            doc["notes"] = self.notes
        return doc

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_json())
            f.write("\n")


def validate_document(doc: Dict[str, object]) -> List[str]:
    """Light structural validation; returns a list of problems (empty = ok).

    Meant for tests and for consumers deciding whether a ``BENCH_*.json``
    they picked up is diffable against what they produce.
    """
    problems: List[str] = []
    for key in REQUIRED_KEYS:
        if key not in doc:
            problems.append(f"missing key {key!r}")
    if doc.get("schema") not in (None, SCHEMA):
        problems.append(f"unknown schema {doc.get('schema')!r}")
    version = doc.get("schema_version")
    if version is not None and (not isinstance(version, int) or version < 1):
        problems.append(f"bad schema_version {version!r}")
    if version is not None and isinstance(version, int) and version > SCHEMA_VERSION:
        problems.append(f"document is from the future (v{version} > v{SCHEMA_VERSION})")
    for key in ("counters", "spans"):
        if key in doc and not isinstance(doc[key], dict):
            problems.append(f"{key!r} must be an object")
    return problems


# ---------------------------------------------------------------------------
# Section builders (duck-typed: no imports from repro.core / repro.sim here,
# keeping the telemetry package dependency-free and import-light).
# ---------------------------------------------------------------------------


def executor_section(stats) -> Dict[str, object]:
    """Serialize a :class:`repro.core.executor.ExecutionStats`."""
    per_level = {str(k): v for k, v in
                 sorted(stats.instructions_per_level.items())}
    return {
        "instructions": sum(stats.instructions_per_level.values()),
        "instructions_per_level": per_level,
        "kernel_calls": stats.kernel_calls,
        "lfu_calls": stats.lfu_calls,
        "max_depth_reached": stats.max_depth_reached,
        "fanouts": stats.fanouts,
        "fanout_parts": stats.fanout_parts,
        "seq_steps": stats.seq_steps,
        "leaf_ops": dict(sorted(stats.leaf_ops.items())),
        "bytes_read": stats.bytes_read,
        "bytes_written": stats.bytes_written,
        "bytes_moved": stats.bytes_read + stats.bytes_written,
    }


def simulator_section(report) -> Dict[str, object]:
    """Serialize a :class:`repro.sim.simulator.SimReport`."""
    stats = asdict(report.stats) if is_dataclass(report.stats) else dict(report.stats)
    section: Dict[str, object] = {
        "machine": report.machine_name,
        "total_time_s": report.total_time,
        "work_ops": report.work,
        "attained_ops": report.attained_ops,
        "root_traffic_bytes": report.root_traffic,
        "operational_intensity": (
            report.operational_intensity
            if report.root_traffic else None),
        "per_level_busy_s": {
            str(level): dict(busy)
            for level, busy in sorted(report.per_level_busy.items())
        },
        "stats": stats,
    }
    cache = getattr(report, "cache", None)
    if cache is not None:
        section["cache"] = cache.as_dict() if hasattr(cache, "as_dict") \
            else dict(cache)
    return section


def build_run_report(
    benchmark: str,
    machine: str,
    registry=None,
    tracer=None,
    exec_stats=None,
    sim_report=None,
    notes: Optional[Dict[str, object]] = None,
) -> RunReport:
    """Assemble a RunReport from whichever telemetry sources exist."""
    return RunReport(
        benchmark=benchmark,
        machine=machine,
        counters=registry.snapshot() if registry is not None else {},
        spans=tracer.rollups() if tracer is not None else {},
        executor=executor_section(exec_stats) if exec_stats is not None else None,
        simulator=simulator_section(sim_report) if sim_report is not None else None,
        notes=dict(notes or {}),
    )
