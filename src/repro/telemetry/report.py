"""Machine-readable run reports.

A :class:`RunReport` is one schema-versioned JSON document merging

* the counter registry snapshot (``counters``),
* span rollups from the tracer (``spans``),
* functional-executor statistics (``executor``),
* timing-simulator statistics incl. cache hit rates (``simulator``), and
* (v2) the bottleneck ``attribution`` section plus ``spans_dropped``, and
* (v3) the structured-event ``events`` summary + watchdog ``health``
  section (see docs/OBSERVABILITY.md)

for one (benchmark, machine) run.  It is the artifact perf work diffs
against: ``repro profile`` writes one per invocation, the benchmark
harness writes one per machine (the ``BENCH_*.json`` trajectory), and
``repro diff`` / ``tools/perf_gate.py`` compare two of them.

Schema policy (documented in docs/TELEMETRY.md): ``schema`` names the
document type and never changes; ``schema_version`` is a monotonically
increasing integer bumped whenever a field is removed or its meaning
changes.  *Adding* fields does not bump the version -- consumers must
ignore unknown keys.  **v2** formalized the ``attribution`` section
(critical-path stall taxonomy, see docs/TELEMETRY.md) as a recognized,
validated section; **v3** formalizes the structured-event ``events``
summary and the stall-watchdog ``health`` section (docs/OBSERVABILITY.md).
:func:`validate_document` accepts v1 through v3, and the perf diff
machinery ignores v3-only sections against older baselines.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Dict, List, Optional

SCHEMA = "repro.telemetry.run_report"
SCHEMA_VERSION = 3

#: schema versions validate_document accepts (v1/v2 remain diffable).
SUPPORTED_VERSIONS = (1, 2, 3)

#: top-level keys every RunReport document carries.
REQUIRED_KEYS = ("schema", "schema_version", "created", "benchmark",
                 "machine", "counters", "spans")


@dataclass
class RunReport:
    """One run's merged telemetry (see module docstring for schema policy)."""

    benchmark: str
    machine: str
    counters: Dict[str, object] = field(default_factory=dict)
    spans: Dict[str, Dict[str, object]] = field(default_factory=dict)
    executor: Optional[Dict[str, object]] = None
    simulator: Optional[Dict[str, object]] = None
    #: v2: bottleneck attribution (repro.perf.attribution section).
    attribution: Optional[Dict[str, object]] = None
    #: v2: spans evicted from the tracer ring buffer (0 = rollups complete).
    spans_dropped: int = 0
    #: v3: structured-event summary (repro.obs EventLog.summary()).
    events: Optional[Dict[str, object]] = None
    #: v3: stall-watchdog health section (repro.obs Watchdog.health_section()).
    health: Optional[Dict[str, object]] = None
    notes: Dict[str, object] = field(default_factory=dict)
    created: str = ""

    def __post_init__(self):
        if not self.created:
            self.created = time.strftime("%Y-%m-%dT%H:%M:%S%z")

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "schema": SCHEMA,
            "schema_version": SCHEMA_VERSION,
            "created": self.created,
            "benchmark": self.benchmark,
            "machine": self.machine,
            "counters": self.counters,
            "spans": self.spans,
            "spans_dropped": self.spans_dropped,
        }
        if self.executor is not None:
            doc["executor"] = self.executor
        if self.simulator is not None:
            doc["simulator"] = self.simulator
        if self.attribution is not None:
            doc["attribution"] = self.attribution
        if self.events is not None:
            doc["events"] = self.events
        if self.health is not None:
            doc["health"] = self.health
        if self.notes:
            doc["notes"] = self.notes
        return doc

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_json())
            f.write("\n")


def validate_document(doc: Dict[str, object]) -> List[str]:
    """Light structural validation; returns a list of problems (empty = ok).

    Meant for tests and for consumers (``repro diff``, the perf gate)
    deciding whether a ``BENCH_*.json`` they picked up is diffable against
    what they produce.  Accepts every version in
    :data:`SUPPORTED_VERSIONS`; v1 documents simply lack the v2 sections.
    """
    problems: List[str] = []
    for key in REQUIRED_KEYS:
        if key not in doc:
            problems.append(f"missing key {key!r}")
    if doc.get("schema") not in (None, SCHEMA):
        problems.append(f"unknown schema {doc.get('schema')!r}")
    version = doc.get("schema_version")
    if version is not None and (not isinstance(version, int) or version < 1):
        problems.append(f"bad schema_version {version!r}")
    if version is not None and isinstance(version, int) and version > SCHEMA_VERSION:
        problems.append(f"document is from the future (v{version} > v{SCHEMA_VERSION})")
    for key in ("counters", "spans"):
        if key in doc and not isinstance(doc[key], dict):
            problems.append(f"{key!r} must be an object")
    if "spans_dropped" in doc and (
            not isinstance(doc["spans_dropped"], int)
            or isinstance(doc["spans_dropped"], bool)
            or doc["spans_dropped"] < 0):
        problems.append(f"bad spans_dropped {doc['spans_dropped']!r}")
    problems.extend(_validate_attribution(doc.get("attribution")))
    problems.extend(_validate_events(doc.get("events")))
    problems.extend(_validate_health(doc.get("health")))
    return problems


def _validate_events(section) -> List[str]:
    """Structural checks for the v3 ``events`` summary (if present)."""
    if section is None:
        return []
    if not isinstance(section, dict):
        return ["'events' must be an object"]
    problems: List[str] = []
    for key in ("total", "dropped", "suppressed", "retained"):
        value = section.get(key)
        if value is not None and (not isinstance(value, int)
                                  or isinstance(value, bool) or value < 0):
            problems.append(f"bad events.{key} {value!r}")
    for key in ("by_severity", "by_subsystem"):
        value = section.get(key)
        if value is not None and not isinstance(value, dict):
            problems.append(f"'events.{key}' must be an object")
    return problems


def _validate_health(section) -> List[str]:
    """Structural checks for the v3 ``health`` section (if present)."""
    if section is None:
        return []
    if not isinstance(section, dict):
        return ["'health' must be an object"]
    problems: List[str] = []
    healthy = section.get("healthy")
    if healthy is not None and not isinstance(healthy, bool):
        problems.append(f"bad health.healthy {healthy!r}")
    for key in ("heartbeat_age_s", "stall_after_s", "uptime_s"):
        value = section.get(key)
        if value is not None and (isinstance(value, bool)
                                  or not isinstance(value, (int, float))
                                  or value < 0):
            problems.append(f"bad health.{key} {value!r}")
    return problems


def _validate_attribution(section) -> List[str]:
    """Structural checks for the v2 ``attribution`` section (if present)."""
    if section is None:
        return []
    if not isinstance(section, dict):
        return ["'attribution' must be an object"]
    problems: List[str] = []
    per_level = section.get("per_level_s")
    if per_level is not None and not isinstance(per_level, dict):
        problems.append("'attribution.per_level_s' must be an object")
        per_level = None
    makespan = section.get("makespan_s")
    if makespan is not None and not isinstance(makespan, (int, float)):
        problems.append(f"bad attribution.makespan_s {makespan!r}")
        makespan = None
    if per_level and isinstance(makespan, (int, float)) and makespan > 0:
        total = 0.0
        for cats in per_level.values():
            if isinstance(cats, dict):
                total += sum(v for v in cats.values()
                             if isinstance(v, (int, float)))
        if abs(total - makespan) > 1e-6 * makespan:
            problems.append(
                f"attribution fractions do not sum to the makespan "
                f"({total!r} != {makespan!r})")
    return problems


# ---------------------------------------------------------------------------
# Section builders (duck-typed: no imports from repro.core / repro.sim here,
# keeping the telemetry package dependency-free and import-light).
# ---------------------------------------------------------------------------


def executor_section(stats) -> Dict[str, object]:
    """Serialize a :class:`repro.core.executor.ExecutionStats`."""
    per_level = {str(k): v for k, v in
                 sorted(stats.instructions_per_level.items())}
    return {
        "instructions": sum(stats.instructions_per_level.values()),
        "instructions_per_level": per_level,
        "kernel_calls": stats.kernel_calls,
        "lfu_calls": stats.lfu_calls,
        "max_depth_reached": stats.max_depth_reached,
        "fanouts": stats.fanouts,
        "fanout_parts": stats.fanout_parts,
        "seq_steps": stats.seq_steps,
        "leaf_ops": dict(sorted(stats.leaf_ops.items())),
        "bytes_read": stats.bytes_read,
        "bytes_written": stats.bytes_written,
        "bytes_moved": stats.bytes_read + stats.bytes_written,
    }


def simulator_section(report) -> Dict[str, object]:
    """Serialize a :class:`repro.sim.simulator.SimReport`."""
    stats = asdict(report.stats) if is_dataclass(report.stats) else dict(report.stats)
    section: Dict[str, object] = {
        "machine": report.machine_name,
        "total_time_s": report.total_time,
        "work_ops": report.work,
        "attained_ops": report.attained_ops,
        "root_traffic_bytes": report.root_traffic,
        "operational_intensity": (
            report.operational_intensity
            if report.root_traffic else None),
        "per_level_busy_s": {
            str(level): dict(busy)
            for level, busy in sorted(report.per_level_busy.items())
        },
        "stats": stats,
    }
    per_level_idle = getattr(report, "per_level_idle", None)
    if per_level_idle:
        section["per_level_idle_s"] = {
            str(level): dict(causes)
            for level, causes in sorted(per_level_idle.items())
        }
    cache = getattr(report, "cache", None)
    if cache is not None:
        section["cache"] = cache.as_dict() if hasattr(cache, "as_dict") \
            else dict(cache)
    return section


def build_run_report(
    benchmark: str,
    machine: str,
    registry=None,
    tracer=None,
    exec_stats=None,
    sim_report=None,
    attribution: Optional[Dict[str, object]] = None,
    event_log=None,
    health: Optional[Dict[str, object]] = None,
    notes: Optional[Dict[str, object]] = None,
) -> RunReport:
    """Assemble a RunReport from whichever telemetry sources exist.

    When ``sim_report`` carries per-node attribution (every simulation
    since RunReport v2 does) and no explicit ``attribution`` section is
    given, the section is built automatically via
    :func:`repro.perf.attribution.attribution_section`.

    ``event_log`` (a duck-typed ``repro.obs.EventLog``) contributes the
    v3 ``events`` summary; when ``health`` is not given but a stall
    watchdog is installed (``repro.obs.install_watchdog``), its health
    section is embedded automatically.
    """
    if attribution is None and sim_report is not None:
        # Lazy import: repro.perf is import-light but the telemetry package
        # must stay loadable on its own (and free of import cycles).
        try:
            from ..perf.attribution import attribution_section
        except ImportError:  # pragma: no cover - perf always ships with repro
            attribution_section = None
        if attribution_section is not None:
            attribution = attribution_section(sim_report)
    if health is None:
        # Lazy for the same reason as attribution: repro.obs imports
        # telemetry, so telemetry only reaches back at call time.
        try:
            from ..obs.server import get_watchdog
        except ImportError:  # pragma: no cover - obs ships with repro
            get_watchdog = None
        if get_watchdog is not None:
            watchdog = get_watchdog()
            if watchdog is not None:
                health = watchdog.health_section()
    notes = dict(notes or {})
    if "trace_id" not in notes:
        # Stamp the active trace so the run ledger and `repro trace show`
        # can join this report to its spans/events/counters.
        try:
            from ..obs.trace import current_trace
        except ImportError:  # pragma: no cover - obs ships with repro
            current_trace = None
        if current_trace is not None:
            ctx = current_trace()
            if ctx is not None:
                notes["trace_id"] = ctx.trace_id
                notes["span_id"] = ctx.span_id
    if "profile" not in notes:
        # A live sampling profiler contributes its headline summary; the
        # full profile doc stays an artifact, not a report section.
        try:
            from ..obs.prof import active_profile_summary
        except ImportError:  # pragma: no cover - obs ships with repro
            active_profile_summary = None
        if active_profile_summary is not None:
            summary = active_profile_summary()
            if summary is not None:
                notes["profile"] = summary
    return RunReport(
        benchmark=benchmark,
        machine=machine,
        counters=registry.snapshot() if registry is not None else {},
        spans=tracer.rollups() if tracer is not None else {},
        executor=executor_section(exec_stats) if exec_stats is not None else None,
        simulator=simulator_section(sim_report) if sim_report is not None else None,
        attribution=attribution,
        spans_dropped=int(getattr(tracer, "dropped", 0)) if tracer is not None else 0,
        events=event_log.summary() if event_log is not None else None,
        health=health,
        notes=notes,
    )
