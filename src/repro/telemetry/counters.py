"""Hierarchical perf counters (zero-dependency).

A :class:`CounterRegistry` names instruments with dotted, hierarchical
strings (``executor.instructions``, ``sim.sig_cache.hits``) plus optional
label tags (``level=2``, ``opcode=MatMul``), Prometheus-style.  Three
instrument kinds:

* :class:`Counter` -- monotonically increasing event/byte counts;
* :class:`Gauge`   -- last-write-wins values (depths, sizes);
* :class:`Histogram` -- value distributions with power-of-two buckets.

The registry is *cheap when disabled*: every factory returns a shared
no-op instrument whose mutators do nothing, so instrumented hot paths pay
one attribute check (``registry.enabled``) and nothing else.  Call sites
should fetch instruments at event time (or re-fetch after
:func:`repro.telemetry.enable`), never cache them across an enable/disable
transition.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

#: canonical (sorted) label tuple type: (("level", "2"), ("stage", "dma"))
LabelTuple = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Optional[Dict[str, object]]) -> LabelTuple:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_series(name: str, labels: LabelTuple) -> str:
    """Render ``name{k=v,...}`` -- the flat key used in snapshots/reports."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelTuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self):
        return self.value


class Gauge:
    """A last-write-wins value (also supports ``high-water`` tracking)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelTuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def set_max(self, v: float) -> None:
        if v > self.value:
            self.value = v

    def snapshot(self):
        return self.value


class Histogram:
    """A distribution with power-of-two buckets (plus count/sum/min/max).

    Edge-case contract (exercised by the telemetry tests):

    * an **empty** histogram has ``mean == 0.0`` and every percentile is
      ``None`` -- consumers must treat "no data" as distinct from 0;
    * a **single sample** collapses every percentile to that sample;
    * **NaN** observations are dropped (counted in ``nan_dropped``) so one
      poisoned measurement cannot corrupt ``sum``/``mean``/percentiles.
    """

    __slots__ = ("name", "labels", "count", "total", "vmin", "vmax",
                 "buckets", "nan_dropped")

    def __init__(self, name: str, labels: LabelTuple = ()):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        self.buckets: Dict[int, int] = {}  # exponent e -> values <= 2**e
        self.nan_dropped = 0

    def observe(self, v: float) -> None:
        if v != v:  # NaN guard: never let a poisoned sample in
            self.nan_dropped += 1
            return
        self.count += 1
        self.total += v
        if self.vmin is None or v < self.vmin:
            self.vmin = v
        if self.vmax is None or v > self.vmax:
            self.vmax = v
        e = 0
        x = abs(v)
        while (1 << e) < x and e < 63:
            e += 1
        self.buckets[e] = self.buckets.get(e, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Approximate q-th percentile from the power-of-two buckets.

        Returns ``None`` on an empty histogram.  The bucket upper edge is
        clamped into ``[vmin, vmax]``, so a single sample (or q at the
        extremes) returns an exact observed value rather than a bucket
        boundary.
        """
        if self.count == 0:
            return None
        q = min(100.0, max(0.0, float(q)))
        if self.count == 1 or q == 0.0:
            return self.vmin
        if q == 100.0:
            return self.vmax
        rank = q / 100.0 * self.count
        cumulative = 0
        for e in sorted(self.buckets):
            cumulative += self.buckets[e]
            if cumulative >= rank:
                upper = float(1 << e) if e < 63 else float(2 ** e)
                return min(max(upper, self.vmin), self.vmax)
        return self.vmax  # pragma: no cover - cumulative always reaches count

    def snapshot(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "nan_dropped": self.nan_dropped,
            "buckets": {f"le_2^{e}": n for e, n in sorted(self.buckets.items())},
        }


class _NullInstrument:
    """Shared no-op stand-in handed out while the registry is disabled."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def set_max(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class CounterRegistry:
    """Owns every instrument; hands out no-ops while disabled."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._counters: Dict[Tuple[str, LabelTuple], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelTuple], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelTuple], Histogram] = {}

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every recorded series (the enabled flag is untouched)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- instrument factories -------------------------------------------------

    def counter(self, name: str, labels: Optional[Dict[str, object]] = None):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = (name, _labels_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(*key)
        return inst

    def gauge(self, name: str, labels: Optional[Dict[str, object]] = None):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = (name, _labels_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(*key)
        return inst

    def histogram(self, name: str, labels: Optional[Dict[str, object]] = None):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = (name, _labels_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(*key)
        return inst

    # -- convenience writers ---------------------------------------------------

    def count(self, name: str, n: int = 1,
              labels: Optional[Dict[str, object]] = None) -> None:
        """``counter(name, labels).inc(n)`` in one call."""
        self.counter(name, labels).inc(n)

    def set_gauge(self, name: str, v: float,
                  labels: Optional[Dict[str, object]] = None) -> None:
        self.gauge(name, labels).set(v)

    def observe(self, name: str, v: float,
                labels: Optional[Dict[str, object]] = None) -> None:
        self.histogram(name, labels).observe(v)

    # -- reading ---------------------------------------------------------------

    def __iter__(self) -> Iterator:
        yield from self._counters.values()
        yield from self._gauges.values()
        yield from self._histograms.values()

    def series(self, prefix: str = ""):
        """Every instrument whose dotted name starts with ``prefix``."""
        return [i for i in self if i.name.startswith(prefix)]

    def value(self, name: str, labels: Optional[Dict[str, object]] = None):
        """Read one counter's value (0 when never written)."""
        key = (name, _labels_key(labels))
        for table in (self._counters, self._gauges):
            inst = table.get(key)
            if inst is not None:
                return inst.value
        hist = self._histograms.get(key)
        return hist.snapshot() if hist is not None else 0

    def snapshot(self) -> Dict[str, object]:
        """Flat ``{"name{labels}": value}`` dict -- the RunReport payload.

        Keys are sorted so snapshots diff cleanly between runs.
        """
        out: Dict[str, object] = {}
        for inst in self:
            out[format_series(inst.name, inst.labels)] = inst.snapshot()
        return dict(sorted(out.items()))
