"""``repro.telemetry`` -- unified instrumentation for the whole stack.

Zero-dependency perf counters, nested span tracing, and machine-readable
run reports, threaded through the functional executor, the decomposition
engine, the timing simulator and the host runtime.  See docs/TELEMETRY.md
for the counter catalog, the span schema, and the RunReport schema policy.

Global state
------------

One process-wide :class:`CounterRegistry` and one :class:`Tracer`, both
**disabled by default** so the instrumented hot paths cost a single flag
check.  Turn them on around a region of interest::

    from repro import telemetry

    telemetry.enable()            # or: with telemetry.enabled_scope(): ...
    ...run workloads...
    report = telemetry.build_run_report("mm_fc", "Cambricon-F1",
                                        registry=telemetry.get_registry(),
                                        tracer=telemetry.get_tracer())
    report.write("runreport.json")
    telemetry.disable()
"""

from __future__ import annotations

from contextlib import contextmanager

from .counters import (
    Counter,
    CounterRegistry,
    Gauge,
    Histogram,
    NULL_INSTRUMENT,
    format_series,
)
from .report import (
    RunReport,
    SCHEMA,
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    build_run_report,
    executor_section,
    simulator_section,
    validate_document,
)
from .tracer import SpanRecord, Tracer

__all__ = [
    "Counter",
    "CounterRegistry",
    "Gauge",
    "Histogram",
    "NULL_INSTRUMENT",
    "format_series",
    "RunReport",
    "SCHEMA",
    "SCHEMA_VERSION",
    "SUPPORTED_VERSIONS",
    "build_run_report",
    "executor_section",
    "simulator_section",
    "validate_document",
    "SpanRecord",
    "Tracer",
    "get_registry",
    "get_tracer",
    "enable",
    "disable",
    "reset",
    "enabled",
    "enabled_scope",
    "span",
    "counter",
]

_REGISTRY = CounterRegistry(enabled=False)
_TRACER = Tracer(enabled=False)


def get_registry() -> CounterRegistry:
    """The process-wide counter registry."""
    return _REGISTRY


def get_tracer() -> Tracer:
    """The process-wide span tracer."""
    return _TRACER


def enabled() -> bool:
    """True when either counters or tracing are live."""
    return _REGISTRY.enabled or _TRACER.enabled


def enable(counters: bool = True, tracing: bool = True) -> None:
    """Turn telemetry on (both subsystems by default)."""
    if counters:
        _REGISTRY.enable()
    if tracing:
        _TRACER.enable()


def disable() -> None:
    """Turn both subsystems off (recorded data is kept until :func:`reset`)."""
    _REGISTRY.disable()
    _TRACER.disable()


def reset() -> None:
    """Drop all recorded counters and spans (enabled flags are untouched)."""
    _REGISTRY.reset()
    _TRACER.reset()


@contextmanager
def enabled_scope(counters: bool = True, tracing: bool = True):
    """Enable telemetry inside a ``with`` block, restoring the prior state."""
    prev = (_REGISTRY.enabled, _TRACER.enabled)
    enable(counters=counters, tracing=tracing)
    try:
        yield _REGISTRY, _TRACER
    finally:
        _REGISTRY.enabled, _TRACER.enabled = prev


def span(name: str, cat: str = "", **args):
    """Convenience: a span on the global tracer (no-op when disabled)."""
    return _TRACER.span(name, cat=cat, **args)


def counter(name: str, labels=None):
    """Convenience: a counter on the global registry (no-op when disabled)."""
    return _REGISTRY.counter(name, labels)
