"""Shared diagnostics framework for the FISA static analyzer.

Every analysis pass reports through the same vocabulary: a
:class:`Diagnostic` carries a *stable error code* (``F001`` ... ``F033``),
a :class:`Severity`, a human message, the index of the offending
instruction in the program, and -- when the program came through the
assembler -- the source location of that instruction in the ``.fisa``
file.  :class:`AnalysisResult` aggregates the diagnostics of a whole run
and provides the exit-code semantics the CLI and the pre-flight hooks
build on (errors gate, warnings inform).

The code registry below is the single source of truth; ``docs/ANALYSIS.md``
documents each code with an example, and the negative-path test-suite
asserts every code can fire.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.isa import Instruction, SourceLoc


class Severity(enum.Enum):
    """Diagnostic severity; only errors affect exit codes / pre-flight."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


#: Stable code registry: code -> (default severity, short title).
#: F00x  shape/dtype type-checker      (per-opcode operand signatures)
#: F02x  def-use / liveness            (write-before-read discipline)
#: F03x  decomposition hazard detector (Region overlap races)
#: P1xx  compiled-plan dataflow analyzer (repro.plan.analysis) -- findings
#:       over *flattened* plan steps, where ``index`` is the step index in
#:       ``FractalPlan.steps``, not a program instruction index.
CODES: Dict[str, Tuple[Severity, str]] = {
    # -- type checker ------------------------------------------------------
    "F001": (Severity.ERROR, "wrong operand count for opcode"),
    "F002": (Severity.ERROR, "operand has wrong rank"),
    "F003": (Severity.ERROR, "operand dimensions disagree"),
    "F004": (Severity.ERROR, "output region does not match inferred result"),
    "F005": (Severity.ERROR, "illegal convolution/pooling window"),
    "F006": (Severity.ERROR, "element-wise operand shapes differ"),
    "F007": (Severity.ERROR, "bad attribute value"),
    "F008": (Severity.WARNING, "mixed operand dtypes"),
    "F009": (Severity.WARNING, "unknown attribute key"),
    # -- def-use / liveness ------------------------------------------------
    "F020": (Severity.ERROR, "use before write of a non-input tensor"),
    "F021": (Severity.WARNING, "dead write (result never read, not an output)"),
    "F022": (Severity.WARNING, "declared output never written"),
    # -- decomposition hazards --------------------------------------------
    "F030": (Severity.ERROR, "in-place operand (output overlaps input)"),
    "F031": (Severity.ERROR, "overlapping writes never read in between"),
    "F032": (Severity.WARNING, "write-after-write with intervening read"),
    "F033": (Severity.WARNING, "write-after-read of an overlapping region"),
    # -- plan dataflow analyzer -------------------------------------------
    "P100": (Severity.ERROR,
             "write-write race between unordered isomorphic plan steps"),
    "P110": (Severity.WARNING,
             "operand aliases an output of its own step (runtime copy forced)"),
    "P120": (Severity.WARNING,
             "dead plan step (outputs never consumed, not externally visible)"),
    "P130": (Severity.ERROR,
             "read of a partially-accumulated region (accumulate-ordering "
             "hazard)"),
}

#: Schema stamp of the machine-readable diagnostic record emitted by
#: ``repro lint --json`` / ``repro plan-lint --json`` and stored inside
#: serialized plan documents.  Bump on any layout change.
DIAG_SCHEMA = "repro.diag"
DIAG_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    message: str
    severity: Severity
    #: index of the offending instruction in the analyzed program
    #: (``-1`` for program-level findings such as an unwritten output).
    index: int = -1
    loc: Optional[SourceLoc] = None
    opcode: str = ""

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def format(self) -> str:
        where = ""
        if self.loc is not None:
            where = f"{self.loc}: "
        elif self.index >= 0:
            where = f"inst {self.index}: "
        op = f" [{self.opcode}]" if self.opcode else ""
        return f"{where}{self.severity} {self.code}: {self.message}{op}"

    def __str__(self) -> str:
        return self.format()

    def to_doc(self) -> dict:
        """JSON-serializable record (the ``repro.diag`` schema's item)."""
        doc = {
            "code": self.code,
            "severity": self.severity.value,
            "index": self.index,
            "message": self.message,
        }
        if self.opcode:
            doc["opcode"] = self.opcode
        if self.loc is not None:
            doc["loc"] = {"file": self.loc.file, "line": self.loc.line,
                          "column": self.loc.column}
        return doc


def diagnostic_from_doc(doc: dict) -> Diagnostic:
    """Rebuild a :class:`Diagnostic` from its :meth:`Diagnostic.to_doc`
    record.  Raises :class:`ValueError`/:class:`KeyError` on malformed
    input (callers treat that as a corrupt document)."""
    loc = None
    if "loc" in doc and doc["loc"] is not None:
        raw = doc["loc"]
        loc = SourceLoc(file=str(raw["file"]), line=int(raw["line"]),
                        column=int(raw["column"]))
    return Diagnostic(
        code=str(doc["code"]),
        message=str(doc["message"]),
        severity=Severity(str(doc["severity"])),
        index=int(doc["index"]),
        loc=loc,
        opcode=str(doc.get("opcode", "")),
    )


def diag(
    code: str,
    message: str,
    index: int = -1,
    inst: Optional[Instruction] = None,
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a diagnostic, defaulting severity/location from the registry
    and the instruction's assembler-stamped :class:`SourceLoc`."""
    if code not in CODES:
        raise KeyError(f"unregistered diagnostic code {code!r}")
    sev = severity if severity is not None else CODES[code][0]
    return Diagnostic(
        code=code,
        message=message,
        severity=sev,
        index=index,
        loc=inst.loc if inst is not None else None,
        opcode=inst.opcode.value if inst is not None else "",
    )


@dataclass
class AnalysisResult:
    """All diagnostics of one analyzer run over one program."""

    program_name: str = "program"
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: how many instructions were analyzed (bookkeeping for reports).
    instructions: int = 0

    def extend(self, diags: List[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if not d.is_error]

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings do not gate)."""
        return not self.errors

    @property
    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    def format(self) -> str:
        lines = [d.format() for d in self.diagnostics]
        lines.append(
            f"{self.program_name}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s) in {self.instructions} "
            f"instruction(s)"
        )
        return "\n".join(lines)

    def raise_if_errors(self) -> None:
        if not self.ok:
            raise AnalysisError(self)

    def to_doc(self) -> dict:
        """One result entry of the ``repro.diag`` JSON record."""
        return {
            "name": self.program_name,
            "instructions": self.instructions,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_doc() for d in self.diagnostics],
        }


def result_from_doc(doc: dict) -> AnalysisResult:
    """Rebuild an :class:`AnalysisResult` from :meth:`AnalysisResult.to_doc`."""
    return AnalysisResult(
        program_name=str(doc["name"]),
        diagnostics=[diagnostic_from_doc(d) for d in doc["diagnostics"]],
        instructions=int(doc["instructions"]),
    )


def diagnostics_document(results: "list[AnalysisResult]",
                         tool: str = "lint") -> dict:
    """The stable, schema-versioned record ``repro lint --json`` and
    ``repro plan-lint --json`` print: a header plus one entry per analyzed
    artifact.  Consumers should check ``schema``/``version`` before
    trusting the layout; :func:`results_from_document` is the inverse."""
    return {
        "schema": DIAG_SCHEMA,
        "version": DIAG_SCHEMA_VERSION,
        "tool": tool,
        "results": [r.to_doc() for r in results],
    }


def results_from_document(doc: dict) -> "list[AnalysisResult]":
    """Parse a :func:`diagnostics_document` record back into results.

    Raises :class:`ValueError` when the schema stamp is missing or the
    version is unknown, so consumers fail loudly on incompatible input.
    """
    if doc.get("schema") != DIAG_SCHEMA:
        raise ValueError(
            f"not a {DIAG_SCHEMA} document: schema={doc.get('schema')!r}")
    if doc.get("version") != DIAG_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported {DIAG_SCHEMA} version {doc.get('version')!r} "
            f"(expected {DIAG_SCHEMA_VERSION})")
    return [result_from_doc(r) for r in doc["results"]]


class AnalysisError(ValueError):
    """Raised by pre-flight gates when a program has analyzer errors."""

    def __init__(self, result: AnalysisResult):
        self.result = result
        head = f"static analysis found {len(result.errors)} error(s)"
        body = "\n".join(d.format() for d in result.errors[:20])
        super().__init__(f"{head}:\n{body}" if body else head)
