"""Analyzer entry points: run the three passes over a program.

:func:`analyze` is the low-level API (instruction sequence + optional
declarations); :func:`analyze_workload` adapts a
:class:`~repro.workloads.builder.Workload` (inputs and params are declared
sources, marked outputs are declared sinks).  Both return an
:class:`AnalysisResult`; callers that want a hard gate use
``result.raise_if_errors()`` (the assembler, the graph lowering and the
executor/verify pre-flight all do).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Union

from ..core.isa import Instruction
from ..core.tensor import Tensor
from .defuse import check_defuse
from .diagnostics import AnalysisResult
from .hazards import check_hazards
from .signatures import check_types

TensorLike = Union[Tensor, int]


def _uid_set(tensors: Optional[Iterable[TensorLike]]):
    if tensors is None:
        return None
    return {t.uid if isinstance(t, Tensor) else int(t) for t in tensors}


def analyze(
    program: Sequence[Instruction],
    inputs: Optional[Iterable[TensorLike]] = None,
    outputs: Optional[Iterable[TensorLike]] = None,
    name: str = "program",
) -> AnalysisResult:
    """Statically analyze a FISA program.

    ``inputs`` are tensors (or uids) the runner binds before execution --
    reads from them are always legal; ``outputs`` are tensors the caller
    will consume -- writes to them are never dead.  Passing ``None`` for
    either means "undeclared": the def-use pass then adopts the
    bare-program conventions of ``verify_program`` (see
    :mod:`repro.analysis.defuse`) and only the type and hazard passes can
    produce findings.
    """
    program = list(program)
    in_uids = _uid_set(inputs)
    out_uids = _uid_set(outputs)
    out_tensors: Optional[Dict[int, Tensor]] = None
    if outputs is not None:
        out_tensors = {
            t.uid: t for t in outputs if isinstance(t, Tensor)}

    result = AnalysisResult(program_name=name, instructions=len(program))
    result.extend(check_types(program))
    result.extend(check_defuse(program, in_uids, out_uids, out_tensors))
    result.extend(check_hazards(program))
    result.diagnostics.sort(
        key=lambda d: (d.index if d.index >= 0 else 1 << 30, d.code))
    return result


def analyze_workload(workload) -> AnalysisResult:
    """Analyze a Workload with its declarations (inputs + params are
    sources, marked outputs are sinks)."""
    sources = list(workload.inputs.values()) + list(workload.params.values())
    return analyze(
        workload.program,
        inputs=sources,
        outputs=list(workload.outputs.values()),
        name=workload.name,
    )
