"""Pass 2 -- def-use / liveness analysis.

FISA programs have no load/store instructions: every operand is an
external region, and the only write-before-read discipline is the program
order itself.  This pass walks that order once and checks three things:

* **use before write** (``F020``, error) -- an instruction reads a region
  of a tensor that is neither a declared input/parameter nor overlapped by
  any earlier write.  At run time the store would silently materialize
  zeros; with declarations in hand that is almost always a program bug.
  A *partially* covered read is legal: the explicit-padding idiom writes
  a tensor's interior and reads the whole box, relying on the documented
  zero-fill of the border (see ``ProgramBuilder.pad2d``).
* **dead writes** (``F021``, warning) -- a result no later instruction
  reads and that is not a declared output.
* **unwritten outputs** (``F022``, warning) -- a declared output tensor
  no instruction ever writes.

When the program carries no declarations (``inputs``/``outputs`` =
``None``), the pass falls back to the convention of
:func:`repro.core.verify.verify_program`: tensors that are read before any
write are *sources* the runner will bind, and every written tensor is a
potential output -- so F020/F021/F022 cannot fire on bare instruction
lists, only on declared Workloads and assembled ``.fisa`` programs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.isa import Instruction
from ..core.tensor import Region, Tensor
from .diagnostics import Diagnostic, diag


def check_defuse(
    program: Sequence[Instruction],
    inputs: Optional[Set[int]] = None,
    outputs: Optional[Set[int]] = None,
    output_tensors: Optional[Dict[int, Tensor]] = None,
) -> List[Diagnostic]:
    """Run the def-use pass.  ``inputs``/``outputs`` are tensor-uid sets
    (``None`` = undeclared); ``output_tensors`` maps declared output uids
    to tensors for nicer F022 messages."""
    diags: List[Diagnostic] = []
    writes: Dict[int, List[Tuple[int, Region]]] = {}
    reads: Dict[int, List[Tuple[int, Region]]] = {}

    def record_read(index: int, region: Region) -> None:
        reads.setdefault(region.tensor.uid, []).append((index, region))

    for index, inst in enumerate(program):
        accumulate = bool(inst.attrs.get("accumulate", False))
        for r in inst.inputs:
            uid = r.tensor.uid
            record_read(index, r)
            if inputs is None or uid in inputs:
                continue
            if r.tensor.space != "global":
                continue  # decomposition-internal partials manage their own
            prior = writes.get(uid, [])
            if not any(w.overlaps(r) for _, w in prior):
                where = ("never written" if not prior else
                         "disjoint from every earlier write")
                diags.append(diag(
                    "F020",
                    f"read of {r!r} which is not a declared input and is "
                    f"{where} at this point (the store would read zeros)",
                    index, inst))
        for r in inst.outputs:
            if accumulate:
                # read-modify-write: the prior value is consumed.
                record_read(index, r)
            writes.setdefault(r.tensor.uid, []).append((index, r))

    # -- dead writes (needs declared outputs to be meaningful) -------------
    if outputs is not None:
        for uid, wlist in writes.items():
            if uid in outputs:
                continue
            rlist = reads.get(uid, [])
            for index, w in wlist:
                seen_later = any(
                    ridx > index and r.overlaps(w) for ridx, r in rlist)
                if not seen_later and w.tensor.space == "global":
                    inst = program[index]
                    diags.append(diag(
                        "F021",
                        f"result {w!r} is never read and "
                        f"{w.tensor.name!r} is not a declared output",
                        index, inst))

    # -- unwritten declared outputs ----------------------------------------
    if outputs is not None:
        for uid in sorted(outputs):
            if uid not in writes:
                t = (output_tensors or {}).get(uid)
                label = t.name if t is not None else f"uid {uid}"
                diags.append(diag(
                    "F022",
                    f"declared output {label!r} is never written by the "
                    f"program",
                    index=-1))
    return diags
