"""Pass 1 -- the shape/dtype type-checker.

Encodes the per-opcode operand signature of every Table-3 FISA operation
and checks each instruction of a program against it: operand arity and
rank, dimension agreement (MatMul inner dims, Euclidian1D feature dims,
convolution channels), window legality for Cv2D/Cv3D and the pooling
group, variadic Merge1D sizing, reduction-group arity, attribute domains
and dtype compatibility.

The checks mirror what the numpy reference kernels (:mod:`repro.ops`)
would reject at run time -- the point of the pass is to reject the same
programs *before* execution, with stable codes and source locations
instead of a traceback from deep inside the executor.

Rank conventions follow ``docs/ISA.md``: the ``*1D`` opcode group is
rank-agnostic (kernels flatten, and :class:`~repro.core.store.TensorStore`
re-shapes exact-size results), so those signatures constrain *element
counts*, not ranks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..core.isa import Instruction, Opcode
from ..ops.eltwise import activation_names
from .diagnostics import Diagnostic, diag

# -- small helpers ----------------------------------------------------------


def _arity(
    inst: Instruction, index: int, n_in: Optional[int], n_out: int = 1,
    min_in: Optional[int] = None,
) -> List[Diagnostic]:
    """Check operand counts.  ``n_in=None`` with ``min_in`` = variadic."""
    out: List[Diagnostic] = []
    if n_in is not None and len(inst.inputs) != n_in:
        out.append(diag(
            "F001",
            f"{inst.opcode.value} takes {n_in} input(s), got {len(inst.inputs)}",
            index, inst))
    if min_in is not None and len(inst.inputs) < min_in:
        out.append(diag(
            "F001",
            f"{inst.opcode.value} takes at least {min_in} input(s), "
            f"got {len(inst.inputs)}",
            index, inst))
    if len(inst.outputs) != n_out:
        out.append(diag(
            "F001",
            f"{inst.opcode.value} writes {n_out} output(s), "
            f"got {len(inst.outputs)}",
            index, inst))
    return out


def _rank(inst: Instruction, index: int, operand: str, pos: int,
          want: int) -> List[Diagnostic]:
    regions = inst.inputs if operand == "input" else inst.outputs
    r = regions[pos]
    if r.ndim != want:
        return [diag(
            "F002",
            f"{inst.opcode.value} {operand} {pos} must have rank {want}, "
            f"got rank {r.ndim} region {r!r}",
            index, inst)]
    return []


def _out_shape(inst: Instruction, index: int, want, *,
               exact: bool = False) -> List[Diagnostic]:
    """Output 0 must have shape ``want`` (or equal element count when the
    opcode's result may legally be re-shaped into the region)."""
    got = inst.outputs[0].shape
    if got == tuple(want):
        return []
    if not exact:
        nwant = 1
        for d in want:
            nwant *= d
        if inst.outputs[0].nelems == nwant:
            return []
    return [diag(
        "F004",
        f"{inst.opcode.value} result has shape {tuple(want)} "
        f"({_nelems(want)} elements) but output region is "
        f"{got} ({inst.outputs[0].nelems} elements)",
        index, inst)]


def _nelems(shape: Sequence[int]) -> int:
    n = 1
    for d in shape:
        n *= d
    return n


def _positive_int_attr(inst: Instruction, index: int, key: str,
                       default: int) -> List[Diagnostic]:
    val = inst.attrs.get(key, default)
    if not isinstance(val, int) or isinstance(val, bool) or val < 1:
        return [diag(
            "F007",
            f"attribute {key}={val!r} must be a positive integer",
            index, inst)]
    return []


def _same_input_dtypes(inst: Instruction, index: int) -> List[Diagnostic]:
    names = {r.dtype.name for r in inst.inputs}
    if len(names) > 1:
        return [diag(
            "F008",
            f"{inst.opcode.value} mixes operand dtypes {sorted(names)}; "
            f"results accumulate in the widest type",
            index, inst)]
    return []


# -- per-opcode checkers ----------------------------------------------------


def _check_matmul(inst: Instruction, index: int) -> List[Diagnostic]:
    out = _arity(inst, index, 2)
    if out:
        return out
    out += _rank(inst, index, "input", 0, 2)
    out += _rank(inst, index, "input", 1, 2)
    out += _rank(inst, index, "output", 0, 2)
    if out:
        return out
    (m, k), (k2, n) = inst.inputs[0].shape, inst.inputs[1].shape
    if k != k2:
        out.append(diag(
            "F003",
            f"MatMul inner dimensions disagree: "
            f"{inst.inputs[0].shape} @ {inst.inputs[1].shape}",
            index, inst))
    else:
        out += _out_shape(inst, index, (m, n), exact=True)
    out += _same_input_dtypes(inst, index)
    return out


def _check_euclidian(inst: Instruction, index: int) -> List[Diagnostic]:
    out = _arity(inst, index, 2)
    if out:
        return out
    out += _rank(inst, index, "input", 0, 2)
    out += _rank(inst, index, "input", 1, 2)
    out += _rank(inst, index, "output", 0, 2)
    if out:
        return out
    (n, d), (m, d2) = inst.inputs[0].shape, inst.inputs[1].shape
    if d != d2:
        out.append(diag(
            "F003",
            f"Euclidian1D feature dimensions disagree: "
            f"{inst.inputs[0].shape} vs {inst.inputs[1].shape}",
            index, inst))
    else:
        out += _out_shape(inst, index, (n, m), exact=True)
    out += _same_input_dtypes(inst, index)
    return out


def _check_cv2d(inst: Instruction, index: int) -> List[Diagnostic]:
    out = _arity(inst, index, 2)
    if out:
        return out
    out += _rank(inst, index, "input", 0, 4)
    out += _rank(inst, index, "input", 1, 4)
    out += _rank(inst, index, "output", 0, 4)
    out += _positive_int_attr(inst, index, "stride", 1)
    if out:
        return out
    n, h, w, cin = inst.inputs[0].shape
    kh, kw, cin2, cout = inst.inputs[1].shape
    stride = int(inst.attrs.get("stride", 1))
    if cin != cin2:
        out.append(diag(
            "F003",
            f"Cv2D channel mismatch: input Cin={cin}, weight Cin={cin2}",
            index, inst))
        return out
    ho = (h - kh) // stride + 1
    wo = (w - kw) // stride + 1
    if ho <= 0 or wo <= 0:
        out.append(diag(
            "F005",
            f"Cv2D window {kh}x{kw} (stride {stride}) does not fit "
            f"input {h}x{w} (convolutions are valid-only; pad explicitly)",
            index, inst))
        return out
    out += _out_shape(inst, index, (n, ho, wo, cout), exact=True)
    return out


def _check_cv3d(inst: Instruction, index: int) -> List[Diagnostic]:
    out = _arity(inst, index, 2)
    if out:
        return out
    out += _rank(inst, index, "input", 0, 5)
    out += _rank(inst, index, "input", 1, 5)
    out += _rank(inst, index, "output", 0, 5)
    out += _positive_int_attr(inst, index, "stride", 1)
    if out:
        return out
    n, d, h, w, cin = inst.inputs[0].shape
    kd, kh, kw, cin2, cout = inst.inputs[1].shape
    stride = int(inst.attrs.get("stride", 1))
    if cin != cin2:
        out.append(diag(
            "F003",
            f"Cv3D channel mismatch: input Cin={cin}, weight Cin={cin2}",
            index, inst))
        return out
    do = (d - kd) // stride + 1
    ho = (h - kh) // stride + 1
    wo = (w - kw) // stride + 1
    if min(do, ho, wo) <= 0:
        out.append(diag(
            "F005",
            f"Cv3D window {kd}x{kh}x{kw} (stride {stride}) does not fit "
            f"input {d}x{h}x{w}",
            index, inst))
        return out
    out += _out_shape(inst, index, (n, do, ho, wo, cout), exact=True)
    return out


def _check_pool(inst: Instruction, index: int) -> List[Diagnostic]:
    out = _arity(inst, index, 1)
    if out:
        return out
    out += _rank(inst, index, "input", 0, 4)
    out += _rank(inst, index, "output", 0, 4)
    kh_default = 2
    out += _positive_int_attr(inst, index, "kh", kh_default)
    out += _positive_int_attr(inst, index, "kw", kh_default)
    if out:
        return out
    kh = int(inst.attrs.get("kh", 2))
    kw = int(inst.attrs.get("kw", 2))
    out += _positive_int_attr(inst, index, "sh", kh)
    out += _positive_int_attr(inst, index, "sw", kw)
    if out:
        return out
    sh = int(inst.attrs.get("sh", kh))
    sw = int(inst.attrs.get("sw", kw))
    n, h, w, c = inst.inputs[0].shape
    ho = (h - kh) // sh + 1
    wo = (w - kw) // sw + 1
    if ho <= 0 or wo <= 0:
        out.append(diag(
            "F005",
            f"{inst.opcode.value} window {kh}x{kw} "
            f"(stride {sh}x{sw}) does not fit input {h}x{w}",
            index, inst))
        return out
    out += _out_shape(inst, index, (n, ho, wo, c), exact=True)
    return out


def _check_lrn(inst: Instruction, index: int) -> List[Diagnostic]:
    out = _arity(inst, index, 1)
    if out:
        return out
    out += _positive_int_attr(inst, index, "size", 5)
    out += _out_shape(inst, index, inst.inputs[0].shape, exact=True)
    return out


def _check_eltwise_binary(inst: Instruction, index: int) -> List[Diagnostic]:
    out = _arity(inst, index, 2)
    if out:
        return out
    a, b = inst.inputs
    if a.shape != b.shape:
        out.append(diag(
            "F006",
            f"{inst.opcode.value} operands must have identical shapes, "
            f"got {a.shape} and {b.shape}",
            index, inst))
        return out
    out += _out_shape(inst, index, a.shape)
    out += _same_input_dtypes(inst, index)
    return out


def _check_act(inst: Instruction, index: int) -> List[Diagnostic]:
    out = _arity(inst, index, 1)
    if out:
        return out
    func = inst.attrs.get("func", "relu")
    if func not in activation_names():
        out.append(diag(
            "F007",
            f"unknown activation func={func!r}; one of {activation_names()}",
            index, inst))
    out += _out_shape(inst, index, inst.inputs[0].shape)
    return out


def _check_horizontal(inst: Instruction, index: int) -> List[Diagnostic]:
    out = _arity(inst, index, 1)
    if out:
        return out
    if inst.outputs[0].nelems != 1:
        out.append(diag(
            "F004",
            f"{inst.opcode.value} reduces to a single element but the "
            f"output region holds {inst.outputs[0].nelems}",
            index, inst))
    return out


def _check_sort(inst: Instruction, index: int) -> List[Diagnostic]:
    out = _arity(inst, index, 1)
    if out:
        return out
    if inst.outputs[0].nelems != inst.inputs[0].nelems:
        out.append(diag(
            "F004",
            f"Sort1D permutes its input: output must hold "
            f"{inst.inputs[0].nelems} elements, region holds "
            f"{inst.outputs[0].nelems}",
            index, inst))
    return out


def _check_count(inst: Instruction, index: int) -> List[Diagnostic]:
    out = _arity(inst, index, 1)
    if out:
        return out
    if inst.outputs[0].nelems != 1:
        out.append(diag(
            "F004",
            f"Count1D produces one element, output region holds "
            f"{inst.outputs[0].nelems}",
            index, inst))
    value = inst.attrs.get("value")
    if value is not None and not isinstance(value, (int, float)):
        out.append(diag(
            "F007",
            f"attribute value={value!r} must be numeric",
            index, inst))
    return out


def _check_merge(inst: Instruction, index: int) -> List[Diagnostic]:
    out = _arity(inst, index, None, min_in=1)
    if out:
        return out
    total = sum(r.nelems for r in inst.inputs)
    if inst.outputs[0].nelems != total:
        out.append(diag(
            "F004",
            f"Merge1D of {len(inst.inputs)} sorted inputs produces "
            f"{total} elements, output region holds "
            f"{inst.outputs[0].nelems}",
            index, inst))
    out += _same_input_dtypes(inst, index)
    return out


_CHECKERS: Dict[Opcode, Callable[[Instruction, int], List[Diagnostic]]] = {
    Opcode.MATMUL: _check_matmul,
    Opcode.EUCLIDIAN1D: _check_euclidian,
    Opcode.CV2D: _check_cv2d,
    Opcode.CV3D: _check_cv3d,
    Opcode.MAX2D: _check_pool,
    Opcode.MIN2D: _check_pool,
    Opcode.AVG2D: _check_pool,
    Opcode.LRN: _check_lrn,
    Opcode.ADD1D: _check_eltwise_binary,
    Opcode.SUB1D: _check_eltwise_binary,
    Opcode.MUL1D: _check_eltwise_binary,
    Opcode.ACT1D: _check_act,
    Opcode.HSUM1D: _check_horizontal,
    Opcode.HPROD1D: _check_horizontal,
    Opcode.SORT1D: _check_sort,
    Opcode.COUNT1D: _check_count,
    Opcode.MERGE1D: _check_merge,
}

#: attribute keys each opcode understands (beyond the decomposition-internal
#: ``accumulate`` / ``acc_local_out`` / ``acc_chain`` flags, always allowed).
_KNOWN_ATTRS: Dict[Opcode, frozenset] = {
    Opcode.CV2D: frozenset({"stride"}),
    Opcode.CV3D: frozenset({"stride"}),
    Opcode.MAX2D: frozenset({"kh", "kw", "sh", "sw"}),
    Opcode.MIN2D: frozenset({"kh", "kw", "sh", "sw"}),
    Opcode.AVG2D: frozenset({"kh", "kw", "sh", "sw"}),
    Opcode.LRN: frozenset({"size", "alpha", "beta", "k"}),
    Opcode.ACT1D: frozenset({"func"}),
    Opcode.COUNT1D: frozenset({"value"}),
}

_INTERNAL_ATTRS = frozenset({"accumulate", "acc_local_out", "acc_chain"})


def _check_attr_keys(inst: Instruction, index: int) -> List[Diagnostic]:
    known = _KNOWN_ATTRS.get(inst.opcode, frozenset())
    out = []
    for key in inst.attrs:
        if key in known or key in _INTERNAL_ATTRS:
            continue
        out.append(diag(
            "F009",
            f"{inst.opcode.value} does not understand attribute {key!r}"
            + (f" (known: {sorted(known)})" if known else ""),
            index, inst))
    return out


# -- structural program signatures ------------------------------------------
#
# The timing simulator memoizes per-*instruction* on
# :meth:`repro.core.isa.Instruction.signature`.  The fractal plan compiler
# (:mod:`repro.plan`) needs the *program-level* analogue: a canonical key
# under which two instruction sequences decompose identically on the same
# machine, including the pattern of tensor sharing between instructions
# (instruction signatures alone cannot distinguish "inst 1 consumes inst
# 0's output" from "inst 1 reads a fresh tensor", and those decompose into
# different data flows).  Tensors are renumbered by first appearance, so
# the signature is stable across processes and tensor-uid counters.


def external_tensors(program: Sequence[Instruction]) -> List:
    """Tensors referenced by ``program`` operands, first-appearance order.

    This ordering is the canonical tensor numbering used by
    :func:`program_signature` and by plan rebinding
    (:meth:`repro.plan.FractalPlan.rebind`): two programs with equal
    signatures have externals lists that correspond position by position.
    """
    seen = {}
    out = []
    for inst in program:
        for r in inst.inputs + inst.outputs:
            uid = r.tensor.uid
            if uid not in seen:
                seen[uid] = len(out)
                out.append(r.tensor)
    return out


def _canonical_operand(region, index: Dict[int, int]) -> tuple:
    uid = region.tensor.uid
    tid = index.setdefault(uid, len(index))
    return (tid, region.bounds, region.tensor.shape, region.tensor.dtype.name)


def program_signature(program: Sequence[Instruction]) -> tuple:
    """Canonical structural signature of an instruction sequence.

    Covers opcodes, attributes (minus the allocator-internal ``acc_chain``
    ids), operand region bounds, tensor shapes/dtypes, and the cross-
    instruction tensor-sharing pattern via first-appearance tensor
    renumbering.  Source locations and tensor names/uids are excluded --
    the signature is identical for any re-build of the same workload.
    """
    index: Dict[int, int] = {}
    out = []
    for inst in program:
        out.append((
            inst.opcode.value,
            tuple(sorted((k, v) for k, v in inst.attrs.items()
                         if k != "acc_chain")),
            tuple(_canonical_operand(r, index) for r in inst.inputs),
            tuple(_canonical_operand(r, index) for r in inst.outputs),
        ))
    return tuple(out)


def program_digest(program: Sequence[Instruction]) -> str:
    """Stable hex digest of :func:`program_signature` (disk-cache keys)."""
    import hashlib

    return hashlib.sha256(
        repr(program_signature(program)).encode("utf-8")).hexdigest()


def check_types(program: Sequence[Instruction]) -> List[Diagnostic]:
    """Type-check every instruction; returns all diagnostics found."""
    out: List[Diagnostic] = []
    for index, inst in enumerate(program):
        checker = _CHECKERS.get(inst.opcode)
        if checker is not None:
            out.extend(checker(inst, index))
        out.extend(_check_attr_keys(inst, index))
    return out
