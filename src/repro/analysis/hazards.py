"""Pass 3 -- the fractal-decomposition hazard detector.

The executor runs program-level instructions strictly in order, and the
parallel decomposer (PD) fans *each one* out across the FFU subtree in an
arbitrary interleaving.  Overlap between ``Region`` operands therefore
falls into two classes:

* **Unsafe under fractal decomposition** (errors).  When an instruction's
  output overlaps one of its own inputs (``F030``), fractal parts write
  bytes that sibling parts still have to read -- the reference kernel
  (which reads all operands before writing) and the fractal execution
  disagree, breaking the paper's semantics-preservation guarantee.  The
  same applies to two overlapping outputs of one instruction (a WAW race
  between parallel parts) and to two instructions that write overlapping
  regions *nobody reads in between* (``F031``): in order the first result
  is silently clobbered -- dead bytes at best, a race as soon as issue
  order is relaxed (pipeline write-back, multi-queue front-ends).
* **Serializes correctly** (warnings).  A write-after-write with an
  intervening read of the overlap (``F032``) and a write-after-read
  (``F033``, anti-dependence) are deterministic under in-order issue; they
  are surfaced because any future instruction-level-parallel scheduler
  must add a dependence edge there.  Plain read-after-write producer ->
  consumer pairs are the *point* of a dataflow program and are not
  reported.

Overlap is computed exactly on the region lattice (byte intervals per
axis, :meth:`Region.overlaps` / :meth:`Region.intersection`), grouped by
backing tensor so the pass stays near-linear on the SSA-style programs
the builders emit.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..core.isa import Instruction
from ..core.tensor import Region
from .diagnostics import Diagnostic, diag


def check_hazards(program: Sequence[Instruction]) -> List[Diagnostic]:
    """Run the hazard pass over a program."""
    diags: List[Diagnostic] = []
    # per-tensor event logs: (instruction index, region)
    writes: Dict[int, List[Tuple[int, Region]]] = {}
    reads: Dict[int, List[Tuple[int, Region]]] = {}

    for index, inst in enumerate(program):
        accumulate = bool(inst.attrs.get("accumulate", False))
        # -- intra-instruction hazards ---------------------------------
        for o in inst.outputs:
            for i in inst.inputs:
                if o.overlaps(i):
                    diags.append(diag(
                        "F030",
                        f"output {o!r} overlaps input {i!r}: fractal parts "
                        f"would read bytes sibling parts already wrote "
                        f"(in-place operands are unsafe under parallel "
                        f"decomposition)",
                        index, inst))
                    break  # one report per output is enough
        for a_pos in range(len(inst.outputs)):
            for b_pos in range(a_pos + 1, len(inst.outputs)):
                a, b = inst.outputs[a_pos], inst.outputs[b_pos]
                if a.overlaps(b):
                    diags.append(diag(
                        "F031",
                        f"outputs {a!r} and {b!r} of one instruction "
                        f"overlap: parallel parts race on the shared bytes",
                        index, inst))

        # -- record events against earlier instructions -----------------
        for r in inst.inputs:
            reads.setdefault(r.tensor.uid, []).append((index, r))
        for o in inst.outputs:
            if accumulate:
                reads.setdefault(o.tensor.uid, []).append((index, o))
            writes.setdefault(o.tensor.uid, []).append((index, o))

    # -- cross-instruction write/write hazards -----------------------------
    for uid, wlist in writes.items():
        rlist = reads.get(uid, [])
        for a_pos in range(len(wlist)):
            i, wi = wlist[a_pos]
            for b_pos in range(a_pos + 1, len(wlist)):
                j, wj = wlist[b_pos]
                if j == i or not wi.overlaps(wj):
                    continue
                overlap = wi.intersection(wj)
                consumed = any(
                    i < ridx <= j and r.overlaps(overlap)
                    for ridx, r in rlist)
                if consumed:
                    diags.append(diag(
                        "F032",
                        f"instruction {j} overwrites {overlap!r} written by "
                        f"instruction {i} (read in between: serializes "
                        f"correctly in program order, but needs a "
                        f"dependence edge under parallel issue)",
                        j, program[j]))
                else:
                    diags.append(diag(
                        "F031",
                        f"instruction {j} overwrites {overlap!r} written by "
                        f"instruction {i} before anyone reads it: the "
                        f"earlier result is lost, and the two writes race "
                        f"under any relaxed issue order",
                        j, program[j]))
                break  # report each write's nearest clobber only

    # -- cross-instruction write-after-read (anti-dependence) --------------
    reported_war: Set[int] = set()
    for uid, rlist in reads.items():
        if uid in reported_war:
            continue
        wlist = writes.get(uid, [])
        for ridx, r in rlist:
            hit = next(
                ((j, w) for j, w in wlist if j > ridx and w.overlaps(r)),
                None)
            if hit is not None:
                j, w = hit
                diags.append(diag(
                    "F033",
                    f"instruction {j} overwrites {w.intersection(r)!r} "
                    f"after instruction {ridx} read it (anti-dependence: "
                    f"fine in order, a WAR race under parallel issue)",
                    j, program[j]))
                reported_war.add(uid)
                break  # one WAR report per tensor keeps the output bounded
    return diags
