"""``repro.analysis`` -- static analysis of FISA programs.

The paper's guarantee is that fractal decomposition is semantics
preserving; ``repro.core.verify`` checks that *dynamically*, after an
execution.  This package is the *static* half of the story: a pre-flight
gate that rejects malformed programs before any decomposition runs, with
stable error codes and ``.fisa`` source locations.  Three passes share one
diagnostics framework:

1. shape/dtype type-checking against the Table-3 operand signatures
   (:mod:`repro.analysis.signatures`, codes ``F001``-``F009``);
2. def-use / liveness analysis (:mod:`repro.analysis.defuse`,
   codes ``F020``-``F022``);
3. fractal-decomposition hazard detection
   (:mod:`repro.analysis.hazards`, codes ``F030``-``F033``).

Entry points: :func:`analyze` / :func:`analyze_workload`; gates raise
:class:`AnalysisError`.  The ``repro lint`` CLI subcommand, the assembler,
``compiler.lowering`` and the executor/verify pre-flight all build on
these.  See ``docs/ANALYSIS.md`` for the full code table.
"""

from .defuse import check_defuse
from .diagnostics import (
    CODES,
    DIAG_SCHEMA,
    DIAG_SCHEMA_VERSION,
    AnalysisError,
    AnalysisResult,
    Diagnostic,
    Severity,
    diagnostic_from_doc,
    diagnostics_document,
    result_from_doc,
    results_from_document,
)
from .hazards import check_hazards
from .pipeline import analyze, analyze_workload
from .signatures import (
    check_types,
    external_tensors,
    program_digest,
    program_signature,
)

__all__ = [
    "CODES",
    "DIAG_SCHEMA",
    "DIAG_SCHEMA_VERSION",
    "AnalysisError",
    "AnalysisResult",
    "Diagnostic",
    "Severity",
    "analyze",
    "analyze_workload",
    "check_defuse",
    "check_hazards",
    "check_types",
    "diagnostic_from_doc",
    "diagnostics_document",
    "external_tensors",
    "program_digest",
    "program_signature",
    "result_from_doc",
    "results_from_document",
]
