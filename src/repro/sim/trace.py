"""Execution timelines (paper Fig 13).

Flattens a :class:`NodeResult` tree into per-level activity segments --
"blue blocks: DMA execution; red blocks: FFUs and LFUs execution" in the
paper's rendering -- and provides an ASCII renderer plus per-level busy
fractions for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .simulator import NodeResult, SimReport


@dataclass(frozen=True)
class Segment:
    """One activity interval of one hierarchy level."""

    level: int
    kind: str  # "dma" | "compute" | "lfu"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def flatten_timeline(
    root: NodeResult, max_depth: Optional[int] = None, max_segments: int = 100_000
) -> List[Segment]:
    """Depth-first flattening of the representative-child profile tree.

    Child profiles are shifted to their parent EX start; because all
    siblings run in lockstep, the representative child's activity stands for
    the whole level.  Traversal stops at ``max_depth`` levels below the root
    or once ``max_segments`` have been collected.
    """
    out: List[Segment] = []

    def visit(node: NodeResult, offset: float, depth: int) -> None:
        if len(out) >= max_segments:
            return
        for kind, s, e in node.own_segments:
            start = max(0.0, offset + s)  # concatenated fills clamp to t=0
            end = max(start, offset + e)
            if end > start:
                out.append(Segment(node.level, kind, start, end))
            if len(out) >= max_segments:
                return
        if max_depth is not None and depth >= max_depth:
            return
        for child_offset, child in node.child_embeds:
            visit(child, offset + child_offset, depth + 1)

    visit(root, 0.0, 0)
    out.sort(key=lambda seg: (seg.level, seg.start))
    return out


def merge_segments(segments: List[Segment], gap: float = 0.0) -> List[Segment]:
    """Coalesce same-level same-kind segments separated by at most ``gap``."""
    merged: List[Segment] = []
    for seg in sorted(segments, key=lambda s: (s.level, s.kind, s.start)):
        if (merged
                and merged[-1].level == seg.level
                and merged[-1].kind == seg.kind
                and seg.start - merged[-1].end <= gap):
            merged[-1] = Segment(seg.level, seg.kind, merged[-1].start,
                                 max(merged[-1].end, seg.end))
        else:
            merged.append(seg)
    merged.sort(key=lambda s: (s.level, s.start))
    return merged


def level_busy_fractions(
    segments: List[Segment], total_time: float
) -> Dict[int, Dict[str, float]]:
    """Fraction of wall-clock each level spends in DMA / compute / LFU.

    Overlapping same-kind segments are unioned so a fraction never exceeds 1.
    """
    by_key: Dict[Tuple[int, str], List[Segment]] = {}
    for seg in segments:
        by_key.setdefault((seg.level, seg.kind), []).append(seg)
    out: Dict[int, Dict[str, float]] = {}
    for (level, kind), segs in by_key.items():
        covered = 0.0
        cur_s = cur_e = None
        for seg in sorted(segs, key=lambda s: s.start):
            if cur_e is None:
                cur_s, cur_e = seg.start, seg.end
            elif seg.start <= cur_e:
                cur_e = max(cur_e, seg.end)
            else:
                covered += cur_e - cur_s
                cur_s, cur_e = seg.start, seg.end
        if cur_e is not None:
            covered += cur_e - cur_s
        out.setdefault(level, {})[kind] = covered / total_time if total_time else 0.0
    return out


def render_ascii(
    report: SimReport,
    width: int = 100,
    max_depth: Optional[int] = None,
    level_names: Optional[List[str]] = None,
    window: Optional[Tuple[float, float]] = None,
) -> str:
    """ASCII art of the Fig-13 timeline: one row per (level, kind).

    ``#`` marks compute activity, ``=`` DMA, ``+`` LFU; each column is a
    fixed slice of the rendered span.  ``window=(t0, t1)`` zooms into a
    sub-interval (the paper's Fig 13b/13d panels).
    """
    total = report.total_time
    if total <= 0:
        return "(empty timeline)"
    t0, t1 = window if window is not None else (0.0, total)
    if not 0.0 <= t0 < t1:
        raise ValueError(f"bad window ({t0}, {t1})")
    span = t1 - t0
    segments = merge_segments(flatten_timeline(report.root, max_depth=max_depth))
    glyphs = {"compute": "#", "dma": "=", "lfu": "+"}
    rows: Dict[Tuple[int, str], List[str]] = {}
    for seg in segments:
        if seg.end <= t0 or seg.start >= t1:
            continue
        key = (seg.level, seg.kind)
        row = rows.setdefault(key, [" "] * width)
        c0 = max(0, min(width - 1, int((seg.start - t0) / span * width)))
        c1 = max(0, min(width - 1, int((seg.end - t0) / span * width)))
        for c in range(c0, c1 + 1):
            row[c] = glyphs[seg.kind]
    header = (f"timeline: {t0 * 1e3:.3f}..{t1 * 1e3:.3f} ms of "
              f"{total * 1e3:.3f} ms, {width} cols "
              f"({span / width * 1e6:.2f} us/col)")
    lines = [header]
    for (level, kind) in sorted(rows):
        name = (level_names[level] if level_names and level < len(level_names)
                else f"L{level}")
        lines.append(f"{name:>8} {kind:>7} |{''.join(rows[(level, kind)])}|")
    return "\n".join(lines)
