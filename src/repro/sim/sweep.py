"""Parameter sweeps over (machine, workload, feature) grids.

The evaluation harness repeatedly needs "simulate these workloads on these
machine variants and tabulate": this module does that once, properly --
records with consistent fields, optional CSV export, and a formatted
table.
"""

from __future__ import annotations

import csv
import io
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.isa import Instruction
from ..core.machine import Machine
from .simulator import FractalSimulator

#: feature-flag presets usable as sweep variants
FEATURE_VARIANTS: Dict[str, Dict[str, bool]] = {
    "baseline": {},
    "no-ttt": {"use_ttt": False},
    "no-broadcast": {"use_broadcast": False},
    "no-concat": {"use_concatenation": False},
    "no-optimizations": {"use_ttt": False, "use_broadcast": False,
                         "use_concatenation": False},
    "sibling-links": {"use_sibling_links": True},
}


@dataclass(frozen=True)
class SweepRecord:
    """One (machine, variant, workload) simulation outcome."""

    machine: str
    variant: str
    workload: str
    total_time: float
    attained_ops: float
    peak_fraction: float
    operational_intensity: float
    root_traffic: int
    ttt_elided_bytes: int
    preassign_fraction: float


def run_sweep(
    machines: Mapping[str, Machine],
    workloads: Mapping[str, Sequence[Instruction]],
    variants: Optional[Mapping[str, Dict[str, bool]]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[SweepRecord]:
    """Simulate every combination; returns one record per cell."""
    variants = dict(variants) if variants is not None else {"baseline": {}}
    records: List[SweepRecord] = []
    for m_name, machine in machines.items():
        for v_name, flags in variants.items():
            variant_machine = machine.with_features(**flags) if flags else machine
            sim = FractalSimulator(variant_machine, collect_profiles=False)
            for w_name, program in workloads.items():
                if progress:
                    progress(f"{m_name}/{v_name}/{w_name}")
                rep = sim.simulate(list(program))
                records.append(SweepRecord(
                    machine=m_name,
                    variant=v_name,
                    workload=w_name,
                    total_time=rep.total_time,
                    attained_ops=rep.attained_ops,
                    peak_fraction=rep.peak_fraction(variant_machine.peak_ops),
                    operational_intensity=rep.operational_intensity,
                    root_traffic=rep.root_traffic,
                    ttt_elided_bytes=rep.stats.elided_bytes,
                    preassign_fraction=rep.stats.preassign_fraction,
                ))
    return records


def to_csv(records: Iterable[SweepRecord]) -> str:
    """Render records as CSV text (header + one row per record)."""
    records = list(records)
    out = io.StringIO()
    if not records:
        return ""
    writer = csv.DictWriter(out, fieldnames=list(asdict(records[0])))
    writer.writeheader()
    for rec in records:
        writer.writerow(asdict(rec))
    return out.getvalue()


def format_table(records: Iterable[SweepRecord]) -> str:
    """Human-readable sweep table."""
    rows = [f"{'machine':14s} {'variant':16s} {'workload':12s} "
            f"{'time':>10s} {'of peak':>8s} {'OI':>8s} {'traffic':>10s}"]
    for r in records:
        rows.append(
            f"{r.machine:14s} {r.variant:16s} {r.workload:12s} "
            f"{r.total_time * 1e3:8.2f}ms {r.peak_fraction:8.1%} "
            f"{r.operational_intensity:8.1f} {r.root_traffic / 2**20:8.1f}Mi"
        )
    return "\n".join(rows)
