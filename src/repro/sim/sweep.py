"""Parameter sweeps over (machine, workload, feature) grids.

The evaluation harness repeatedly needs "simulate these workloads on these
machine variants and tabulate": this module does that once, properly --
records with consistent fields, optional CSV export, a formatted table,
and (``workers=N``) a process-pool mode that simulates independent
(machine, variant) cells in parallel while keeping the output order
deterministic.
"""

from __future__ import annotations

import csv
import io
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.isa import Instruction
from ..core.machine import Machine
from .simulator import FractalSimulator

#: feature-flag presets usable as sweep variants
FEATURE_VARIANTS: Dict[str, Dict[str, bool]] = {
    "baseline": {},
    "no-ttt": {"use_ttt": False},
    "no-broadcast": {"use_broadcast": False},
    "no-concat": {"use_concatenation": False},
    "no-optimizations": {"use_ttt": False, "use_broadcast": False,
                         "use_concatenation": False},
    "sibling-links": {"use_sibling_links": True},
}


@dataclass(frozen=True)
class SweepRecord:
    """One (machine, variant, workload) simulation outcome."""

    machine: str
    variant: str
    workload: str
    total_time: float
    attained_ops: float
    peak_fraction: float
    operational_intensity: float
    root_traffic: int
    ttt_elided_bytes: int
    preassign_fraction: float


def _run_cell(
    m_name: str,
    machine: Machine,
    v_name: str,
    flags: Dict[str, bool],
    workloads: Sequence[Tuple[str, Sequence[Instruction]]],
) -> List[SweepRecord]:
    """Simulate every workload of one (machine, variant) grid cell.

    One :class:`FractalSimulator` per cell (its signature memo warms across
    the cell's workloads, as in the serial path).
    """
    variant_machine = machine.with_features(**flags) if flags else machine
    sim = FractalSimulator(variant_machine, collect_profiles=False)
    records: List[SweepRecord] = []
    for w_name, program in workloads:
        rep = sim.simulate(list(program))
        records.append(SweepRecord(
            machine=m_name,
            variant=v_name,
            workload=w_name,
            total_time=rep.total_time,
            attained_ops=rep.attained_ops,
            peak_fraction=rep.peak_fraction(variant_machine.peak_ops),
            operational_intensity=rep.operational_intensity,
            root_traffic=rep.root_traffic,
            ttt_elided_bytes=rep.stats.elided_bytes,
            preassign_fraction=rep.stats.preassign_fraction,
        ))
    return records


def _simulate_cell(
    m_name: str,
    machine: Machine,
    v_name: str,
    flags: Dict[str, bool],
    workloads: Sequence[Tuple[str, Sequence[Instruction]]],
    obs_wire: Optional[Dict[str, object]] = None,
):
    """Pool entry point for one grid cell; module-level so it pickles.

    Returns ``(records, telemetry)``: with ``obs_wire`` (the parent's
    trace + enable flags, see :func:`repro.obs.worker.build_wire`) the
    cell runs inside a :func:`repro.obs.worker.worker_capture` scope and
    ships back a ``WorkerTelemetry`` bundle; without it (legacy callers)
    telemetry is None.
    """
    if obs_wire is None:
        return _run_cell(m_name, machine, v_name, flags, workloads), None
    from ..obs.events import event_context
    from ..obs.worker import worker_capture
    with worker_capture(obs_wire) as capture, \
            event_context(machine=m_name, variant=v_name):
        records = _run_cell(m_name, machine, v_name, flags, workloads)
    return records, capture.telemetry


def run_sweep(
    machines: Mapping[str, Machine],
    workloads: Mapping[str, Sequence[Instruction]],
    variants: Optional[Mapping[str, Dict[str, bool]]] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
) -> List[SweepRecord]:
    """Simulate every combination; returns one record per cell.

    With ``workers=N`` (N > 1) the independent (machine, variant) cells
    are fanned out over a process pool: each worker process builds its own
    per-cell simulator, and the results are merged back **in grid order**
    (machines x variants x workloads, exactly as the serial path emits
    them), so the record list -- and everything derived from it (CSV,
    tables, committed benchmark artifacts) -- is byte-identical regardless
    of worker count or completion order.  ``progress`` callbacks fire in
    the parent as each cell's results are collected.

    Observability: the whole sweep runs under one trace context (reusing
    an enclosing :func:`repro.obs.trace.trace_scope` when the caller has
    one, minting a fresh trace otherwise).  Pool children re-attach their
    telemetry under that trace and ship :class:`WorkerTelemetry` bundles
    back; the parent merges them into its registries with ``worker=<n>``
    labels (visible on a live ``/metrics``) and appends one run-ledger
    row per cell plus a parent ``sweep`` row -- all fail-soft and
    cost-free when telemetry, the event log, and the ledger are off.
    """
    from ..obs.events import event_context
    from ..obs.ledger import record_run
    from ..obs.trace import ensure_trace
    from ..obs.worker import build_wire, ledger_fields, merge_worker_telemetry
    from ..telemetry import get_registry

    variants = dict(variants) if variants is not None else {"baseline": {}}
    cells = [
        (m_name, machine, v_name, flags)
        for m_name, machine in machines.items()
        for v_name, flags in variants.items()
    ]
    workload_items = list(workloads.items())
    registry = get_registry()
    t0 = time.perf_counter()

    with ensure_trace(sweep=True) as ctx:
        parallel = workers is not None and workers > 1 and len(cells) > 1
        if parallel:
            from concurrent.futures import ProcessPoolExecutor

            records: List[SweepRecord] = []
            profile_samples = 0
            with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
                futures = [
                    pool.submit(_simulate_cell, m_name, machine, v_name,
                                flags, workload_items, build_wire(ctx, i))
                    for i, (m_name, machine, v_name, flags) in enumerate(cells)
                ]
                # Collect in submission (= grid) order; completion order is
                # irrelevant to the merged output.
                for (m_name, _machine, v_name, _flags), future in zip(cells,
                                                                      futures):
                    cell_records, wt = future.result()
                    if wt is not None:
                        merge_worker_telemetry(wt)
                        profile_samples += int(
                            (wt.profile or {}).get("samples", 0))
                        record_run("sweep-cell", machine=m_name,
                                   variant=v_name,
                                   trace_id=wt.trace_id, span_id=wt.span_id,
                                   workloads=len(workload_items),
                                   **ledger_fields(wt))
                    if progress:
                        for w_name, _ in workload_items:
                            progress(f"{m_name}/{v_name}/{w_name}")
                    records.extend(cell_records)
        else:
            records = []
            for m_name, machine, v_name, flags in cells:
                cell_t0 = time.perf_counter()
                with event_context(machine=m_name, variant=v_name):
                    variant_machine = (machine.with_features(**flags)
                                       if flags else machine)
                    sim = FractalSimulator(variant_machine,
                                           collect_profiles=False)
                    for w_name, program in workload_items:
                        if progress:
                            progress(f"{m_name}/{v_name}/{w_name}")
                        rep = sim.simulate(list(program))
                        records.append(SweepRecord(
                            machine=m_name,
                            variant=v_name,
                            workload=w_name,
                            total_time=rep.total_time,
                            attained_ops=rep.attained_ops,
                            peak_fraction=rep.peak_fraction(
                                variant_machine.peak_ops),
                            operational_intensity=rep.operational_intensity,
                            root_traffic=rep.root_traffic,
                            ttt_elided_bytes=rep.stats.elided_bytes,
                            preassign_fraction=rep.stats.preassign_fraction,
                        ))
                record_run("sweep-cell", machine=m_name, variant=v_name,
                           makespan_s=time.perf_counter() - cell_t0,
                           workloads=len(workload_items))
        if registry.enabled:
            registry.count("sweep.cells", len(cells))
        sweep_fields: Dict[str, object] = {}
        if parallel and profile_samples:
            sweep_fields["profile_samples"] = profile_samples
        record_run("sweep", cells=len(cells),
                   workers=workers if parallel else None,
                   workloads=len(workload_items),
                   makespan_s=time.perf_counter() - t0,
                   **sweep_fields)
    return records


def to_csv(records: Iterable[SweepRecord]) -> str:
    """Render records as CSV text (header + one row per record)."""
    records = list(records)
    out = io.StringIO()
    if not records:
        return ""
    writer = csv.DictWriter(out, fieldnames=list(asdict(records[0])))
    writer.writeheader()
    for rec in records:
        writer.writerow(asdict(rec))
    return out.getvalue()


def format_table(records: Iterable[SweepRecord]) -> str:
    """Human-readable sweep table."""
    rows = [f"{'machine':14s} {'variant':16s} {'workload':12s} "
            f"{'time':>10s} {'of peak':>8s} {'OI':>8s} {'traffic':>10s}"]
    for r in records:
        rows.append(
            f"{r.machine:14s} {r.variant:16s} {r.workload:12s} "
            f"{r.total_time * 1e3:8.2f}ms {r.peak_fraction:8.1%} "
            f"{r.operational_intensity:8.1f} {r.root_traffic / 2**20:8.1f}Mi"
        )
    return "\n".join(rows)
