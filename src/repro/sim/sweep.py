"""Parameter sweeps over (machine, workload, feature) grids.

The evaluation harness repeatedly needs "simulate these workloads on these
machine variants and tabulate": this module does that once, properly --
records with consistent fields, optional CSV export, a formatted table,
and (``workers=N``) a process-pool mode that simulates independent
(machine, variant) cells in parallel while keeping the output order
deterministic.
"""

from __future__ import annotations

import csv
import io
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.isa import Instruction
from ..core.machine import Machine
from .simulator import FractalSimulator

#: feature-flag presets usable as sweep variants
FEATURE_VARIANTS: Dict[str, Dict[str, bool]] = {
    "baseline": {},
    "no-ttt": {"use_ttt": False},
    "no-broadcast": {"use_broadcast": False},
    "no-concat": {"use_concatenation": False},
    "no-optimizations": {"use_ttt": False, "use_broadcast": False,
                         "use_concatenation": False},
    "sibling-links": {"use_sibling_links": True},
}


@dataclass(frozen=True)
class SweepRecord:
    """One (machine, variant, workload) simulation outcome."""

    machine: str
    variant: str
    workload: str
    total_time: float
    attained_ops: float
    peak_fraction: float
    operational_intensity: float
    root_traffic: int
    ttt_elided_bytes: int
    preassign_fraction: float


def _simulate_cell(
    m_name: str,
    machine: Machine,
    v_name: str,
    flags: Dict[str, bool],
    workloads: Sequence[Tuple[str, Sequence[Instruction]]],
) -> List[SweepRecord]:
    """Simulate every workload of one (machine, variant) grid cell.

    One :class:`FractalSimulator` per cell (its signature memo warms across
    the cell's workloads, as in the serial path).  Module-level so the
    ``workers=N`` process pool can pickle it.
    """
    variant_machine = machine.with_features(**flags) if flags else machine
    sim = FractalSimulator(variant_machine, collect_profiles=False)
    records: List[SweepRecord] = []
    for w_name, program in workloads:
        rep = sim.simulate(list(program))
        records.append(SweepRecord(
            machine=m_name,
            variant=v_name,
            workload=w_name,
            total_time=rep.total_time,
            attained_ops=rep.attained_ops,
            peak_fraction=rep.peak_fraction(variant_machine.peak_ops),
            operational_intensity=rep.operational_intensity,
            root_traffic=rep.root_traffic,
            ttt_elided_bytes=rep.stats.elided_bytes,
            preassign_fraction=rep.stats.preassign_fraction,
        ))
    return records


def run_sweep(
    machines: Mapping[str, Machine],
    workloads: Mapping[str, Sequence[Instruction]],
    variants: Optional[Mapping[str, Dict[str, bool]]] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
) -> List[SweepRecord]:
    """Simulate every combination; returns one record per cell.

    With ``workers=N`` (N > 1) the independent (machine, variant) cells
    are fanned out over a process pool: each worker process builds its own
    per-cell simulator, and the results are merged back **in grid order**
    (machines x variants x workloads, exactly as the serial path emits
    them), so the record list -- and everything derived from it (CSV,
    tables, committed benchmark artifacts) -- is byte-identical regardless
    of worker count or completion order.  ``progress`` callbacks fire in
    the parent as each cell's results are collected.
    """
    variants = dict(variants) if variants is not None else {"baseline": {}}
    cells = [
        (m_name, machine, v_name, flags)
        for m_name, machine in machines.items()
        for v_name, flags in variants.items()
    ]
    workload_items = list(workloads.items())

    if workers is not None and workers > 1 and len(cells) > 1:
        from concurrent.futures import ProcessPoolExecutor

        records: List[SweepRecord] = []
        with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
            futures = [
                pool.submit(_simulate_cell, m_name, machine, v_name, flags,
                            workload_items)
                for m_name, machine, v_name, flags in cells
            ]
            # Collect in submission (= grid) order; completion order is
            # irrelevant to the merged output.
            for (m_name, _machine, v_name, _flags), future in zip(cells, futures):
                cell_records = future.result()
                if progress:
                    for w_name, _ in workload_items:
                        progress(f"{m_name}/{v_name}/{w_name}")
                records.extend(cell_records)
        return records

    records = []
    for m_name, machine, v_name, flags in cells:
        variant_machine = machine.with_features(**flags) if flags else machine
        sim = FractalSimulator(variant_machine, collect_profiles=False)
        for w_name, program in workload_items:
            if progress:
                progress(f"{m_name}/{v_name}/{w_name}")
            rep = sim.simulate(list(program))
            records.append(SweepRecord(
                machine=m_name,
                variant=v_name,
                workload=w_name,
                total_time=rep.total_time,
                attained_ops=rep.attained_ops,
                peak_fraction=rep.peak_fraction(variant_machine.peak_ops),
                operational_intensity=rep.operational_intensity,
                root_traffic=rep.root_traffic,
                ttt_elided_bytes=rep.stats.elided_bytes,
                preassign_fraction=rep.stats.preassign_fraction,
            ))
    return records


def to_csv(records: Iterable[SweepRecord]) -> str:
    """Render records as CSV text (header + one row per record)."""
    records = list(records)
    out = io.StringIO()
    if not records:
        return ""
    writer = csv.DictWriter(out, fieldnames=list(asdict(records[0])))
    writer.writeheader()
    for rec in records:
        writer.writerow(asdict(rec))
    return out.getvalue()


def format_table(records: Iterable[SweepRecord]) -> str:
    """Human-readable sweep table."""
    rows = [f"{'machine':14s} {'variant':16s} {'workload':12s} "
            f"{'time':>10s} {'of peak':>8s} {'OI':>8s} {'traffic':>10s}"]
    for r in records:
        rows.append(
            f"{r.machine:14s} {r.variant:16s} {r.workload:12s} "
            f"{r.total_time * 1e3:8.2f}ms {r.peak_fraction:8.1%} "
            f"{r.operational_intensity:8.1f} {r.root_traffic / 2**20:8.1f}Mi"
        )
    return "\n".join(rows)
