"""Performance simulation of Cambricon-F machines.

The simulator executes a FISA program *for time, not values*: every node
runs its controller (SD -> DD -> PD -> RC) exactly as the functional
executor does, but instead of touching numpy it schedules the five pipeline
stages (ID/LD/EX/RD/WB) against the node's decoder, DMA engine, FFUs and
LFUs.  A non-leaf EX latency is the recursively simulated child-node
execution; identical sub-instructions (by structural signature) are
simulated once and cached, which is what makes the 2048-core F100 tractable.
"""

from .chrometrace import to_chrome_trace, write_chrome_trace
from .pipeline import PipelineSchedule, StageTimes, schedule_pipeline
from .simulator import FractalSimulator, NodeResult, SimReport
from .trace import flatten_timeline, level_busy_fractions, merge_segments, render_ascii

__all__ = [
    "PipelineSchedule",
    "StageTimes",
    "schedule_pipeline",
    "FractalSimulator",
    "NodeResult",
    "SimReport",
    "to_chrome_trace",
    "write_chrome_trace",
    "flatten_timeline",
    "level_busy_fractions",
    "merge_segments",
    "render_ascii",
]
