"""Recursive fractal timing simulator.

Every node runs the real controller components (SequentialDecomposer,
DemotionDecoder, ParallelDecomposer, ReductionController) against its level
spec, then schedules the resulting stage durations on the 5-stage FISA
pipeline.  A non-leaf instruction's EX latency is the total time of the
recursively simulated child node; since all FFUs of a node execute
structurally identical sub-instructions in lockstep, one representative
child is simulated per distinct instruction signature and the result cached,
making even the 2048-core Cambricon-F100 cheap to simulate.

Bandwidth model: a child's DMA engine moves operands between parent memory
and local storage at ``min(own memory bandwidth, parent bandwidth / parent
fanout)`` -- siblings contend for the parent port.  A *broadcast* operand
(shared by every sibling, identified by the parent's PD) is transferred once
at the full parent rate when data broadcasting is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import obs, telemetry
from ..core.controller.demotion import DemotionDecoder
from ..core.controller.parallel import ParallelDecomposer
from ..core.controller.reduction import ReductionController, ReductionTarget
from ..core.controller.sequential import SequentialDecomposer
from ..core.isa import Instruction
from ..core.machine import Machine
from ..core.memory.allocator import NodeMemoryManager
from ..core.memory.ttt import TensorTranspositionTable
from ..core.tensor import Region
from ..perf.attribution import CATEGORIES, attribute_schedule, merge_scaled
from .pipeline import PipelineSchedule, StageTimes, schedule_pipeline

#: bytes moved through local memory per reduction op (two reads + one write
#: of 2-byte elements) -- caps effective reduction throughput by bandwidth.
_REDUCTION_BYTES_PER_OP = 6.0
#: ops each lightweight LFU sustains (32-lane vector unit at 1 GHz).
LFU_OPS_EACH = 64e9
#: leaf decoder latency; leaves have trivial decoders.
_LEAF_DECODE = 1e-7
#: steps before the per-node plan-summary cache engages (lets the
#: residency/forwarding context reach steady state first).
_PLAN_WARMUP = 64


@dataclass
class NodeStats:
    """Aggregated controller statistics over one node simulation (and the
    representative child path below it)."""

    steps: int = 0
    preassignable: int = 0
    ttt_hits: int = 0
    ttt_lookups: int = 0
    elided_bytes: int = 0
    streamed_bytes: int = 0
    commissioned: int = 0
    raw_stalls: int = 0
    forwarded_stores: int = 0
    forwarded_store_bytes: int = 0

    def merge(self, other: "NodeStats") -> None:
        self.steps += other.steps
        self.preassignable += other.preassignable
        self.ttt_hits += other.ttt_hits
        self.ttt_lookups += other.ttt_lookups
        self.elided_bytes += other.elided_bytes
        self.streamed_bytes += other.streamed_bytes
        self.commissioned += other.commissioned
        self.raw_stalls += other.raw_stalls
        self.forwarded_stores += other.forwarded_stores
        self.forwarded_store_bytes += other.forwarded_store_bytes

    @property
    def preassign_fraction(self) -> float:
        return self.preassignable / self.steps if self.steps else 0.0


@dataclass
class NodeResult:
    """Timing of one node executing one (sub-)program."""

    level: int
    total_time: float
    startup_time: float
    load_bytes: int  # bytes pulled from the parent by this node
    store_bytes: int  # bytes written back to the parent
    work: int
    #: load bytes broken down by transfer class (broadcast vs private vs
    #: neighbour sibling links)
    bc_load_bytes: int = 0
    priv_load_bytes: int = 0
    sibling_load_bytes: int = 0
    #: bytes this node's memory port served to its children (fan-out aware:
    #: private transfers counted once per child, broadcasts once in total)
    served_bytes: int = 0
    per_level_busy: Dict[int, Dict[str, float]] = field(default_factory=dict)
    own_segments: List[Tuple[str, float, float]] = field(default_factory=list)
    child_embeds: List[Tuple[float, "NodeResult"]] = field(default_factory=list)
    stats: NodeStats = field(default_factory=NodeStats)
    #: critical-path stall taxonomy: {level: {category: seconds}} summing to
    #: ``total_time`` over all levels/categories (see repro.perf.attribution).
    attribution: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: DMA engine accounting per level: load/store bytes over the parent
    #: link and busy seconds (representative-child semantics, like
    #: ``per_level_busy``).
    per_level_dma: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: idle-cause seconds per level (keys from repro.sim.pipeline.IDLE_CAUSES).
    per_level_idle: Dict[int, Dict[str, float]] = field(default_factory=dict)


@dataclass
class CacheStats:
    """Hit/miss accounting for the simulator's two memoization layers.

    The *signature cache* memoizes whole child-node simulations keyed on
    structural instruction signatures (all FFUs run in lockstep, so one
    representative child stands for a whole level).  The *plan-summary
    cache* memoizes steady-state PD outcomes per step signature within one
    node.  These accumulate over the simulator's lifetime -- one simulator,
    one workload is the diffable configuration.
    """

    sig_hits: int = 0
    sig_misses: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    #: node simulations actually performed (leaf subset broken out).
    nodes_simulated: int = 0
    leaf_nodes: int = 0

    @property
    def sig_lookups(self) -> int:
        return self.sig_hits + self.sig_misses

    @property
    def sig_hit_rate(self) -> float:
        return self.sig_hits / self.sig_lookups if self.sig_lookups else 0.0

    @property
    def plan_lookups(self) -> int:
        return self.plan_hits + self.plan_misses

    @property
    def plan_hit_rate(self) -> float:
        return self.plan_hits / self.plan_lookups if self.plan_lookups else 0.0

    @property
    def nodes_memoized(self) -> int:
        """Child simulations answered from the signature cache."""
        return self.sig_hits

    def as_dict(self) -> Dict[str, float]:
        return {
            "sig_hits": self.sig_hits,
            "sig_misses": self.sig_misses,
            "sig_hit_rate": self.sig_hit_rate,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_hit_rate": self.plan_hit_rate,
            "nodes_simulated": self.nodes_simulated,
            "nodes_memoized": self.nodes_memoized,
            "leaf_nodes": self.leaf_nodes,
        }


@dataclass
class SimReport:
    """Top-level simulation result for one FISA program on one machine."""

    machine_name: str
    total_time: float
    work: int
    root_load_bytes: int
    root_store_bytes: int
    per_level_busy: Dict[int, Dict[str, float]]
    stats: NodeStats
    root: NodeResult
    #: memoization hit/miss statistics (cumulative over the simulator).
    cache: Optional[CacheStats] = None

    @property
    def attained_ops(self) -> float:
        return self.work / self.total_time if self.total_time > 0 else 0.0

    @property
    def attribution(self) -> Dict[int, Dict[str, float]]:
        """Critical-path stall taxonomy per level (sums to the makespan)."""
        return self.root.attribution

    @property
    def per_level_dma(self) -> Dict[int, Dict[str, float]]:
        """DMA bytes/busy per memory level (representative-child totals)."""
        return self.root.per_level_dma

    @property
    def per_level_idle(self) -> Dict[int, Dict[str, float]]:
        """Idle-cause seconds per level (keys from pipeline.IDLE_CAUSES)."""
        return self.root.per_level_idle

    @property
    def root_traffic(self) -> int:
        """Bytes moved over the root memory port (what the level-1 nodes
        load from and store to the root's memory -- the Fig-15 traffic)."""
        return self.root.served_bytes

    @property
    def operational_intensity(self) -> float:
        """ops per byte of root-memory traffic (the Fig-15 x-axis)."""
        return self.work / self.root_traffic if self.root_traffic else float("inf")

    def peak_fraction(self, peak_ops: float) -> float:
        return self.attained_ops / peak_ops if peak_ops else 0.0


def _key_contained(key: Tuple, regions: Sequence[Region]) -> bool:
    uid, bounds = key
    for reg in regions:
        if reg.tensor.uid != uid:
            continue
        if all(r_lo <= lo and hi <= r_hi
               for (lo, hi), (r_lo, r_hi) in zip(bounds, reg.bounds)):
            return True
    return False


class _SeqContext:
    """Sliding two-cycle window of what each child slot has resident.

    Mirrors the two-bank TTT validity: a record written in FISA cycle i is
    usable in cycles i+1 and i+2 (the bank is reclaimed afterwards).  Slot j
    tracks the j-th part of each parallel split, which maps to the same
    physical FFU across cycles; shared (broadcast) operands appear in every
    slot's set, so they are covered implicitly.
    """

    WINDOW = 2

    def __init__(self):
        self._history: List[List[frozenset]] = []

    def push(self, slot_keys: List[frozenset]) -> None:
        self._history.append(slot_keys)
        if len(self._history) > self.WINDOW:
            self._history.pop(0)

    def recent_for_slot(self, slot: int) -> frozenset:
        out: Set = set()
        for step_slots in self._history:
            if slot < len(step_slots):
                out |= step_slots[slot]
        return frozenset(out)


@dataclass
class _PlanSummary:
    """Cached PD outcome for one step signature at one level: the EX latency
    (max over distinct child sub-instructions), the child fill time, the g(.)
    reduction instructions, and the representative child result."""

    ex_time: float
    ex_fill: float
    reduction: List[Instruction]
    child: Optional[NodeResult]
    #: bytes this step makes the node's memory port serve to its children
    served_bytes: int = 0


class FractalSimulator:
    """Simulates FISA programs on a :class:`Machine` for time and traffic."""

    def __init__(self, machine: Machine, collect_profiles: bool = True):
        self.machine = machine
        self.collect_profiles = collect_profiles
        self._cache: Dict[Tuple, NodeResult] = {}
        self._plan_cache: Dict[Tuple, _PlanSummary] = {}
        #: memoization accounting, exposed on every SimReport and mirrored
        #: into the telemetry registry after each simulate().
        self.cache_stats = CacheStats()

    # -- public API -----------------------------------------------------------

    def simulate(self, program: Sequence[Instruction]) -> SimReport:
        """Simulate the whole machine executing ``program`` from the root."""
        log = obs.logger("sim")
        log.info("simulate.start", machine=self.machine.name,
                 instructions=len(program))
        with telemetry.get_tracer().span("sim.simulate", cat="simulator",
                                         machine=self.machine.name,
                                         instructions=len(program)):
            try:
                root = self._simulate_node(0, list(program),
                                           broadcast_regions=(), is_root=True)
            except Exception as err:
                log.error("simulate.fail", machine=self.machine.name,
                          error=f"{type(err).__name__}: {err}")
                raise
        log.info("simulate.end", machine=self.machine.name,
                 total_time_s=root.total_time, work_ops=root.work,
                 nodes_simulated=self.cache_stats.nodes_simulated,
                 sig_hits=self.cache_stats.sig_hits)
        report = SimReport(
            machine_name=self.machine.name,
            total_time=root.total_time,
            work=root.work,
            root_load_bytes=root.load_bytes,
            root_store_bytes=root.store_bytes,
            per_level_busy=root.per_level_busy,
            stats=root.stats,
            root=root,
            cache=self.cache_stats,
        )
        self._publish_counters(report)
        return report

    def _publish_counters(self, report: SimReport) -> None:
        """Mirror this simulation's stats into the telemetry registry.

        Cache counters are cumulative on the simulator, so the registry is
        *set* (gauge semantics) rather than incremented for them; per-run
        quantities (busy time, traffic, work) are added as counters.
        """
        registry = telemetry.get_registry()
        if not registry.enabled:
            return
        cs = self.cache_stats
        for name, value in (
            ("sim.sig_cache.hits", cs.sig_hits),
            ("sim.sig_cache.misses", cs.sig_misses),
            ("sim.plan_cache.hits", cs.plan_hits),
            ("sim.plan_cache.misses", cs.plan_misses),
            ("sim.nodes_simulated", cs.nodes_simulated),
            ("sim.nodes_memoized", cs.nodes_memoized),
            ("sim.leaf_nodes", cs.leaf_nodes),
        ):
            registry.set_gauge(name, value, labels={"machine": self.machine.name})
        registry.count("sim.runs", labels={"machine": self.machine.name})
        registry.count("sim.work_ops", report.work,
                       labels={"machine": self.machine.name})
        registry.count("sim.root_traffic_bytes", report.root_traffic,
                       labels={"machine": self.machine.name})
        registry.observe("sim.total_time_s", report.total_time,
                         labels={"machine": self.machine.name})
        for level, busy in sorted(report.per_level_busy.items()):
            for stage, seconds in sorted(busy.items()):
                # float-valued counter: accumulated busy seconds per
                # (level, stage) across every simulate() call.
                registry.counter(
                    "sim.busy_seconds",
                    labels={"level": level, "stage": stage},
                ).inc(seconds)
        for level, causes in sorted(report.per_level_idle.items()):
            for cause, seconds in sorted(causes.items()):
                registry.counter(
                    "sim.idle_seconds",
                    labels={"level": level, "cause": cause},
                ).inc(seconds)
        attributed: Dict[str, float] = {}
        for cats in report.root.attribution.values():
            for cat, seconds in cats.items():
                attributed[cat] = attributed.get(cat, 0.0) + seconds
        for cat, seconds in sorted(attributed.items()):
            registry.counter(
                "sim.attributed_seconds",
                labels={"machine": self.machine.name, "category": cat},
            ).inc(seconds)

    def _record_node_accounting(self, result: NodeResult, level: int,
                                sched: PipelineSchedule) -> None:
        """Own-level DMA byte/busy accounting and idle-cause rollup."""
        dma = result.per_level_dma.setdefault(
            level, {"load_bytes": 0.0, "store_bytes": 0.0, "busy_s": 0.0})
        dma["load_bytes"] += float(result.load_bytes)
        dma["store_bytes"] += float(result.store_bytes)
        dma["busy_s"] += sched.dma_busy
        if sched.idle_causes:
            idle = result.per_level_idle.setdefault(level, {})
            for cause, seconds in sched.idle_causes.items():
                idle[cause] = idle.get(cause, 0.0) + seconds

    # -- bandwidth model -------------------------------------------------------

    def _rates(self, level: int) -> Tuple[float, float]:
        """(private, broadcast) transfer rates for a node at ``level``."""
        spec = self.machine.level(level)
        if level == 0:
            return spec.mem_bandwidth, spec.mem_bandwidth
        parent = self.machine.level(level - 1)
        share = parent.mem_bandwidth / max(1, parent.fanout)
        private = min(spec.mem_bandwidth, share)
        if self.machine.use_broadcast:
            broadcast = min(spec.mem_bandwidth, parent.mem_bandwidth)
        else:
            broadcast = private
        return private, broadcast

    # -- node simulation ---------------------------------------------------------

    def _simulate_child(
        self,
        level: int,
        inst: Instruction,
        broadcast_regions: Tuple[Region, ...],
        resident_regions: Tuple[Region, ...] = (),
        deferred_stores: Tuple[Region, ...] = (),
        sibling_regions: Tuple[Region, ...] = (),
    ) -> NodeResult:
        """Simulate (with caching) one child executing one instruction.

        ``resident_regions`` are operands this child already holds from the
        previous parent FISA cycle (its TTT keeps them valid for two
        cycles), so their loads are elided entirely.  ``deferred_stores``
        are output regions the child keeps resident instead of writing back
        (a slot-aligned consumer arrives within the window).
        ``sibling_regions`` are halo overlaps available from a neighbour
        over a sibling link (when the machine has them).
        """
        bc_flags = tuple(
            _key_contained(r.key(), broadcast_regions) for r in inst.inputs
        )
        res_flags = tuple(
            _key_contained(r.key(), resident_regions)
            for r in inst.inputs + inst.outputs
        )
        dfr_flags = tuple(
            _key_contained(r.key(), deferred_stores) for r in inst.outputs
        )
        sib_flags = tuple(
            _key_contained(r.key(), sibling_regions) for r in inst.inputs
        )
        key = (level, inst.signature(), bc_flags, res_flags, dfr_flags,
               sib_flags, self.collect_profiles)
        hit = self._cache.get(key)
        if hit is not None:
            self.cache_stats.sig_hits += 1
            return hit
        self.cache_stats.sig_misses += 1
        result = self._simulate_node(level, [inst], broadcast_regions,
                                     resident_regions=resident_regions,
                                     deferred_stores=deferred_stores,
                                     sibling_regions=sibling_regions)
        self._cache[key] = result
        return result

    def _simulate_node(
        self,
        level: int,
        program: List[Instruction],
        broadcast_regions: Tuple[Region, ...],
        is_root: bool = False,
        resident_regions: Tuple[Region, ...] = (),
        deferred_stores: Tuple[Region, ...] = (),
        sibling_regions: Tuple[Region, ...] = (),
    ) -> NodeResult:
        spec = self.machine.level(level)
        if spec.is_leaf:
            return self._simulate_leaf(level, program, broadcast_regions,
                                       resident_regions, deferred_stores,
                                       sibling_regions)
        self.cache_stats.nodes_simulated += 1
        obs.beat("sim")  # progress for the stall watchdog (no-op when unarmed)

        private_rate, broadcast_rate = self._rates(level)
        memory = NodeMemoryManager(spec.mem_bytes)
        sd = SequentialDecomposer(memory.recycled_segment_bytes)
        ttt = TensorTranspositionTable() if self.machine.use_ttt else None

        # Sequential decomposition; remember which FISA-level instruction each
        # step came from (static-segment parity) and which partial tensors are
        # local to this node (created by our own SD).
        program_uids: Set[int] = set()
        for inst in program:
            for r in inst.inputs + inst.outputs:
                program_uids.add(r.tensor.uid)
        steps: List[Tuple[int, Instruction]] = []
        local_uids: Set[int] = set()
        # A single-instruction program would schedule as one monolithic
        # LD -> EX -> WB with no overlap, so SD additionally chunks it into
        # ~4 steps (the three recycled segments exist precisely to keep that
        # many instructions in flight) -- but never below ~8 decode latencies
        # of transfer, where controller overhead would outweigh the overlap.
        # Multi-instruction programs already pipeline across instructions,
        # and splitting them would push consumers beyond the TTT's two-cycle
        # forwarding window.
        min_chunk = int(private_rate * self.machine.decode_latency * 8)
        for orig_idx, inst in enumerate(program):
            if len(program) == 1:
                fp = inst.io_bytes()
                sd.capacity_bytes = min(memory.recycled_segment_bytes,
                                        max(fp // 4, min_chunk, 1))
            else:
                sd.capacity_bytes = memory.recycled_segment_bytes
            for step in sd.decompose(inst):
                steps.append((orig_idx, step))
                for r in step.inputs + step.outputs:
                    t = r.tensor
                    if t.space == "partial" and t.uid not in program_uids:
                        local_uids.add(t.uid)

        # Pipeline forwarding (Section 3.6): an intermediate result whose
        # every future reader lies within the TTT's two-cycle validity
        # window never needs the round trip through the parent -- the next
        # instruction reads the local copy and the write-back is elided.
        readers: Dict[int, List[Tuple[int, Region]]] = {}
        for idx, (_oi, step) in enumerate(steps):
            for r in step.inputs:
                readers.setdefault(r.tensor.uid, []).append((idx, r))

        def store_forwardable(idx: int, region: Region) -> bool:
            if not self.machine.use_ttt:
                return False
            future = [j for j, rr in readers.get(region.tensor.uid, ())
                      if j > idx and rr.overlaps(region)]
            return bool(future) and max(future) <= idx + 2

        pd = ParallelDecomposer(max(1, spec.fanout))

        # Plans are computed lazily: the steady-state plan-summary cache in
        # the main loop means most steps of a large uniform instruction never
        # need their 32-way split materialized at all.
        plan_memo: Dict[int, object] = {}

        def plan_at(idx: int):
            plan = plan_memo.get(idx)
            if plan is None:
                plan = pd.plan(steps[idx][1])
                plan_memo[idx] = plan
            return plan

        def parts_of(plan) -> List[Instruction]:
            if plan.parts:
                return plan.parts
            return [plan.whole] if plan.whole is not None else []

        # Child-store deferral: when a step's output chunk is consumed only
        # by the next one or two steps *in the same FFU slot*, the child that
        # produced it keeps it resident (its TTT bridges the gap) and the
        # round trip through this node's parent is skipped entirely.  This is
        # the paper's pipeline forwarding -- layer chains (conv -> relu ->
        # pool) stop paying root traffic for intermediates.
        # A child can only keep a chunk resident if it physically fits its
        # static segment; larger chunks must round-trip no matter what.
        child_hold_bytes = self.machine.level(level + 1).mem_bytes // 4

        def defer_at(i: int) -> List[Tuple[Region, ...]]:
            slots: List[Tuple[Region, ...]] = []
            for j, part in enumerate(parts_of(plan_at(i))):
                ds: List[Region] = []
                for out in part.outputs:
                    if out.tensor.uid in local_uids:
                        continue  # SD partial: this node's LFUs need the copy
                    if not self.machine.use_ttt or out.nbytes > child_hold_bytes:
                        continue
                    future = [(k, rr) for k, rr in readers.get(out.tensor.uid, ())
                              if k > i and rr.overlaps(out)]
                    if not future or max(k for k, _ in future) > i + 2:
                        continue
                    aligned = True
                    for k, _rr in future:
                        kparts = parts_of(plan_at(k))
                        if j >= len(kparts) or not any(
                                inp.contains(out) for inp in kparts[j].inputs):
                            aligned = False
                            break
                    if aligned:
                        ds.append(out)
                slots.append(tuple(ds))
            return slots

        dd = DemotionDecoder(memory, ttt, local_uids)
        lfu_rate = min(spec.n_lfus * LFU_OPS_EACH,
                       spec.mem_bandwidth / _REDUCTION_BYTES_PER_OP) \
            if spec.n_lfus > 0 else 0.0
        # Commissioning a reduction moves partials down and results up, so the
        # FFU path sees half the local bandwidth.
        ffu_red_rate = min(spec.peak_ops,
                           (spec.mem_bandwidth / 2) / _REDUCTION_BYTES_PER_OP)
        rc = ReductionController(lfu_rate, ffu_red_rate)

        result = NodeResult(level=level, total_time=0.0, startup_time=0.0,
                            load_bytes=0, store_bytes=0, work=0)
        stage_list: List[StageTimes] = []
        embeds: List[Tuple[int, NodeResult]] = []  # (stage index, child)
        pending_commission: List[Instruction] = []
        seq_ctx = _SeqContext()
        node_plan_cache: Dict[Tuple, _PlanSummary] = {}

        for i, (orig_idx, step) in enumerate(steps):
            decoded = dd.decode(i, step, owner=orig_idx)
            ld_time = wb_time = 0.0
            if not is_root:
                # The root's operands already reside in root (global) memory;
                # only non-root nodes fetch operands over the parent link.
                for req in decoded.loads:
                    if _key_contained(req.region_key, resident_regions):
                        # Held over from the previous parent FISA cycle.
                        result.stats.ttt_hits += 1
                        result.stats.elided_bytes += req.nbytes
                        continue
                    if _key_contained(req.region_key, sibling_regions):
                        # Halo fetched neighbour-to-neighbour, off the
                        # parent port entirely (future-work sibling links).
                        ld_time += req.nbytes / self.machine.sibling_link_bandwidth
                        result.sibling_load_bytes += req.nbytes
                        continue
                    if _key_contained(req.region_key, broadcast_regions):
                        ld_time += req.nbytes / broadcast_rate
                        result.bc_load_bytes += req.nbytes
                        result.load_bytes += req.nbytes
                    else:
                        ld_time += req.nbytes / private_rate
                        result.priv_load_bytes += req.nbytes
                        result.load_bytes += req.nbytes
                out_by_key = {r.key(): r for r in step.outputs}
                for req in decoded.stores:
                    region = out_by_key.get(req.region_key)
                    forwarded = region is not None and store_forwardable(i, region)
                    deferred = _key_contained(req.region_key, deferred_stores)
                    if forwarded or deferred:
                        result.stats.forwarded_stores += 1
                        result.stats.forwarded_store_bytes += req.nbytes
                        continue
                    wb_time += req.nbytes / private_rate
                    result.store_bytes += req.nbytes

            # The step stream of a large uniform instruction is periodic:
            # after a warm-up window the residency/defer context has
            # stabilized, so structurally identical steps reuse one summary
            # instead of re-planning a 32-way split 65k times.
            sig = step.signature()
            summary = None
            if i >= _PLAN_WARMUP:
                summary = node_plan_cache.get(sig)
            if summary is None:
                self.cache_stats.plan_misses += 1
                summary = self._plan_step(level, plan_at(i), defer_at(i), seq_ctx)
                if i >= _PLAN_WARMUP // 2:
                    node_plan_cache[sig] = summary
            else:
                self.cache_stats.plan_hits += 1
            result.served_bytes += summary.served_bytes
            ex_time = summary.ex_time
            ex_fill = summary.ex_fill
            step_child = summary.child

            # Commissioned reductions from the previous cycle execute first.
            for red in pending_commission:
                child = self._run_on_ffus(level, red, pd.n_ffus)
                ex_time += child.total_time
                step_child = step_child or child
            pending_commission = []

            rd_time = 0.0
            if summary.reduction:
                if self.machine.use_sibling_links:
                    # Ring all-reduce among the FFUs: each partial crosses
                    # two links in a pipelined ring, never touching the
                    # parent memory or LFUs.
                    red_bytes = sum(r.outputs[0].nbytes
                                    for r in summary.reduction)
                    rd_time = 2.0 * red_bytes / self.machine.sibling_link_bandwidth
                else:
                    commission = rc.route(summary.reduction)
                    if commission.target is ReductionTarget.LFU:
                        rd_time = commission.predicted_lfu_time
                    else:
                        pending_commission = list(summary.reduction)
                        result.stats.commissioned += 1

            pre_assignable = decoded.stall_on is None and not decoded.forwarded
            stage_list.append(
                StageTimes(
                    decode=self.machine.decode_latency,
                    load=ld_time,
                    exec=ex_time,
                    reduce=rd_time,
                    writeback=wb_time,
                    stall_on=decoded.stall_on,
                    exec_fill=ex_fill,
                    pre_assignable=pre_assignable,
                    label=step.opcode.value,
                )
            )
            if step_child is not None:
                embeds.append((len(stage_list) - 1, step_child))
            result.stats.steps += 1
            result.stats.preassignable += int(pre_assignable)
            result.stats.ttt_hits += decoded.ttt_hits
            result.stats.ttt_lookups += decoded.ttt_hits + len(decoded.loads)
            result.stats.elided_bytes += decoded.elided_bytes
            result.stats.streamed_bytes += decoded.streamed_bytes
            result.stats.raw_stalls += int(decoded.stall_on is not None)

        # Flush reductions commissioned by the final step.
        if pending_commission:
            extra = 0.0
            for red in pending_commission:
                child = self._run_on_ffus(level, red, pd.n_ffus)
                extra += child.total_time
            stage_list.append(StageTimes(decode=self.machine.decode_latency,
                                         exec=extra, label="commission-flush"))

        sched = schedule_pipeline(stage_list, self.machine.use_concatenation)
        result.total_time = sched.total_time
        result.startup_time = sched.startup_time
        result.work = sum(inst.work() for inst in program)

        busy = result.per_level_busy.setdefault(
            level, {"dma": 0.0, "compute": 0.0, "lfu": 0.0})
        busy["dma"] += sched.dma_busy
        busy["compute"] += sched.ffu_busy
        busy["lfu"] += sched.lfu_busy
        self._record_node_accounting(result, level, sched)
        for stage_idx, child in embeds:
            for lv, b in child.per_level_busy.items():
                acc = result.per_level_busy.setdefault(
                    lv, {"dma": 0.0, "compute": 0.0, "lfu": 0.0})
                for k, v in b.items():
                    acc[k] += v
            for lv, d in child.per_level_dma.items():
                acc = result.per_level_dma.setdefault(
                    lv, {"load_bytes": 0.0, "store_bytes": 0.0, "busy_s": 0.0})
                for k, v in d.items():
                    acc[k] = acc.get(k, 0.0) + v
            for lv, causes in child.per_level_idle.items():
                acc = result.per_level_idle.setdefault(lv, {})
                for k, v in causes.items():
                    acc[k] = acc.get(k, 0.0) + v
            result.stats.merge(child.stats)

        # Critical-path stall taxonomy: this node's control/DMA/reduction
        # time is its own; EX time on the critical path is delegated to the
        # child that produced it (scaled into the child's own taxonomy),
        # bottoming out as FFU compute at the leaves.
        totals, exec_path = attribute_schedule(sched.instructions, stage_list)
        attr: Dict[int, Dict[str, float]] = {
            level: dict.fromkeys(CATEGORIES, 0.0)}
        own_attr = attr[level]
        for cat in ("control", "dma", "reduction", "idle"):
            own_attr[cat] += totals[cat]
        child_of_stage = dict(embeds)
        for inst_idx, seconds in exec_path:
            child = child_of_stage.get(inst_idx)
            if (child is not None and child.attribution
                    and child.total_time > 0.0):
                merge_scaled(attr, child.attribution,
                             seconds / child.total_time)
            else:
                # Commission flushes and degenerate children count as this
                # level's compute.
                own_attr["compute"] += seconds
        result.attribution = attr

        if self.collect_profiles:
            for isched in sched.instructions:
                if isched.ld_iv.duration > 0:
                    result.own_segments.append(("dma", isched.ld_iv.start, isched.ld_iv.end))
                if isched.ex_iv.duration > 0:
                    result.own_segments.append(("compute", isched.ex_iv.start, isched.ex_iv.end))
                if isched.rd_iv.duration > 0:
                    result.own_segments.append(("lfu", isched.rd_iv.start, isched.rd_iv.end))
                if isched.wb_iv.duration > 0:
                    result.own_segments.append(("dma", isched.wb_iv.start, isched.wb_iv.end))
            for stage_idx, child in embeds:
                # Align the child profile to the END of the parent's EX
                # interval: under pipeline concatenation the child's fill ran
                # during the *previous* EX, so its profile starts before the
                # interval does (possibly at negative offsets near t=0).
                ex_iv = sched.instructions[stage_idx].ex_iv
                result.child_embeds.append(
                    (ex_iv.end - child.total_time, child))
        return result

    def _plan_step(
        self,
        level: int,
        plan,
        defer_slots,
        ctx: "_SeqContext",
    ) -> _PlanSummary:
        """Child simulation for one (pre-planned) step.

        ``ctx`` remembers what each child slot loaded or produced during the
        previous *two* FISA cycles (the validity window of the two-bank
        TTT); operands needed again are still resident in that child's
        memory and their loads are elided.  ``defer_slots`` lists, per slot,
        the output regions whose write-back the child may skip because a
        slot-aligned consumer follows within the window (pipeline
        forwarding).
        """
        ex_time, ex_fill = 0.0, 0.0
        served = 0
        step_child: Optional[NodeResult] = None
        hold_bytes = self.machine.level(level + 1).mem_bytes // 4
        if plan.parts:
            shared_regions = self._shared_regions(plan)
            groups: Dict[Tuple, List] = {}
            slot_keys: List[frozenset] = []
            for slot, part in enumerate(plan.parts):
                resident: Tuple[Region, ...] = ()
                if self.machine.use_ttt:
                    recent = ctx.recent_for_slot(slot)
                    resident = tuple(r for r in part.inputs + part.outputs
                                     if r.key() in recent
                                     and r.nbytes <= hold_bytes)
                deferred = defer_slots[slot] if slot < len(defer_slots) else ()
                sibling = self._sibling_overlaps(plan.parts, slot,
                                                 shared_regions)
                bc = tuple(_key_contained(r.key(), shared_regions)
                           for r in part.inputs)
                res = tuple(r.key() in {x.key() for x in resident}
                            for r in part.inputs + part.outputs)
                dfr = tuple(_key_contained(r.key(), deferred)
                            for r in part.outputs)
                sib = tuple(_key_contained(r.key(), sibling)
                            for r in part.inputs)
                gk = (part.signature(), bc, res, dfr, sib)
                prev = groups.get(gk)
                if prev is not None:
                    prev[1] += 1
                else:
                    groups[gk] = [part, 1, resident, deferred, sibling]
                # Outputs count as resident too: the next chain step reads
                # its own running sum, and pipeline forwarding reuses results.
                slot_keys.append(frozenset(
                    r.key() for r in part.inputs + part.outputs))
            max_bc = 0
            for part, count, resident, deferred, sibling in groups.values():
                child = self._simulate_child(level + 1, part, shared_regions,
                                             resident, deferred, sibling)
                served += count * (child.priv_load_bytes + child.store_bytes)
                max_bc = max(max_bc, child.bc_load_bytes)
                if step_child is None or child.total_time > step_child.total_time:
                    step_child = child
            served += max_bc  # one broadcast feeds every sibling
            assert step_child is not None
            ex_time = step_child.total_time
            ex_fill = step_child.startup_time
            ctx.push(slot_keys)
        else:
            step = plan.whole
            resident = ()
            if self.machine.use_ttt:
                recent = ctx.recent_for_slot(0)
                resident = tuple(r for r in step.inputs + step.outputs
                                 if r.key() in recent and r.nbytes <= hold_bytes)
            deferred = defer_slots[0] if defer_slots else ()
            step_child = self._simulate_child(level + 1, step, (), resident, deferred)
            served = step_child.load_bytes + step_child.store_bytes
            ex_time = step_child.total_time
            ex_fill = step_child.startup_time
            ctx.push([frozenset(r.key() for r in step.inputs + step.outputs)])

        return _PlanSummary(ex_time, ex_fill, list(plan.reduction), step_child, served)

    def _run_on_ffus(self, level: int, inst: Instruction, n_ffus: int) -> NodeResult:
        """Execute a commissioned reduction on the FFUs (EX-stage work)."""
        from ..core.decomposition import decompose_parallel

        split = decompose_parallel(inst, n_ffus)
        if split is None:
            return self._simulate_child(level + 1, inst, ())
        best: Optional[NodeResult] = None
        for part in split.parts:
            child = self._simulate_child(level + 1, part, ())
            if best is None or child.total_time > best.total_time:
                best = child
        assert best is not None
        return best

    def _shared_regions(self, plan) -> Tuple[Region, ...]:
        by_key = {r.key(): r for p in plan.parts for r in p.inputs}
        return tuple(by_key[k] for k in plan.shared_keys if k in by_key)

    def _sibling_overlaps(self, parts, slot: int,
                          shared_regions) -> Tuple[Region, ...]:
        """Halo regions slot ``slot`` shares with its ring neighbours.

        Only meaningful when the machine has sibling links: the overlapped
        slice of a spatially-split input lives in the neighbour's chunk too,
        so the neighbour can forward it directly.  Fully-shared (broadcast)
        operands are excluded -- they already travel once.
        """
        if not self.machine.use_sibling_links or len(parts) < 2:
            return ()
        me = parts[slot]
        out = []
        for neighbour_idx in (slot - 1, slot + 1):
            if not 0 <= neighbour_idx < len(parts):
                continue
            other = parts[neighbour_idx]
            for mine in me.inputs:
                if _key_contained(mine.key(), shared_regions):
                    continue
                for theirs in other.inputs:
                    inter = mine.intersection(theirs)
                    if inter is not None and inter.nelems < mine.nelems:
                        out.append(inter)
        return tuple(out)

    # -- leaf --------------------------------------------------------------------

    def _simulate_leaf(
        self,
        level: int,
        program: List[Instruction],
        broadcast_regions: Tuple[Region, ...],
        resident_regions: Tuple[Region, ...] = (),
        deferred_stores: Tuple[Region, ...] = (),
        sibling_regions: Tuple[Region, ...] = (),
    ) -> NodeResult:
        spec = self.machine.level(level)
        self.cache_stats.nodes_simulated += 1
        self.cache_stats.leaf_nodes += 1
        private_rate, broadcast_rate = self._rates(level)
        result = NodeResult(level=level, total_time=0.0, startup_time=0.0,
                            load_bytes=0, store_bytes=0, work=0)
        stage_list: List[StageTimes] = []
        for inst in program:
            in_bytes_bc = in_bytes_priv = in_bytes_sibling = 0
            seen: Set[Tuple] = set()
            for r in inst.inputs:
                if r.key() in seen:
                    continue
                seen.add(r.key())
                if _key_contained(r.key(), resident_regions):
                    result.stats.ttt_hits += 1
                    result.stats.elided_bytes += r.nbytes
                    continue
                if _key_contained(r.key(), sibling_regions):
                    result.sibling_load_bytes += r.nbytes
                    in_bytes_sibling += r.nbytes
                    continue
                if _key_contained(r.key(), broadcast_regions):
                    in_bytes_bc += r.nbytes
                else:
                    in_bytes_priv += r.nbytes
            out_total = sum(r.nbytes for r in inst.outputs if r.key() not in seen)
            if inst.attrs.get("accumulate"):
                # Read-modify-write: fetch the prior partial sum, unless this
                # leaf still holds it from the previous chain step.
                for r in inst.outputs:
                    if not _key_contained(r.key(), resident_regions):
                        in_bytes_priv += r.nbytes
                    else:
                        result.stats.ttt_hits += 1
                        result.stats.elided_bytes += r.nbytes
            # Mid-chain sums stay resident; only the closing step writes
            # back.  Deferred stores (pipeline forwarding) are kept too.
            if inst.attrs.get("acc_local_out"):
                out_bytes = 0
            else:
                out_bytes = 0
                for r in inst.outputs:
                    if _key_contained(r.key(), deferred_stores):
                        result.stats.forwarded_stores += 1
                        result.stats.forwarded_store_bytes += r.nbytes
                    else:
                        out_bytes += r.nbytes
            work = inst.work()
            # Compute is MAC-bound or local-SRAM-bound, whichever is worse.
            ex = max(work / spec.peak_ops, inst.io_bytes() / spec.mem_bandwidth)
            stage_list.append(
                StageTimes(
                    decode=_LEAF_DECODE,
                    load=(in_bytes_bc / broadcast_rate
                          + in_bytes_priv / private_rate
                          + in_bytes_sibling / self.machine.sibling_link_bandwidth),
                    exec=ex,
                    reduce=0.0,
                    writeback=out_bytes / private_rate,
                    exec_fill=0.0,
                    label=inst.opcode.value,
                )
            )
            result.load_bytes += in_bytes_bc + in_bytes_priv
            result.bc_load_bytes += in_bytes_bc
            result.priv_load_bytes += in_bytes_priv
            result.store_bytes += out_bytes
            result.work += work
            result.stats.steps += 1
            result.stats.preassignable += 1
        sched = schedule_pipeline(stage_list, self.machine.use_concatenation)
        result.total_time = sched.total_time
        result.startup_time = sched.startup_time
        result.per_level_busy[level] = {
            "dma": sched.dma_busy, "compute": sched.ffu_busy, "lfu": 0.0,
        }
        self._record_node_accounting(result, level, sched)
        # Leaves terminate the attribution recursion: EX here is real FFU
        # compute, so the whole taxonomy lands at this level.
        leaf_totals, _ = attribute_schedule(sched.instructions, stage_list)
        leaf_attr = dict.fromkeys(CATEGORIES, 0.0)
        for cat, seconds in leaf_totals.items():
            leaf_attr[cat] = leaf_attr.get(cat, 0.0) + seconds
        result.attribution = {level: leaf_attr}
        if self.collect_profiles:
            for isched in sched.instructions:
                if isched.ld_iv.duration > 0:
                    result.own_segments.append(("dma", isched.ld_iv.start, isched.ld_iv.end))
                if isched.ex_iv.duration > 0:
                    result.own_segments.append(("compute", isched.ex_iv.start, isched.ex_iv.end))
                if isched.wb_iv.duration > 0:
                    result.own_segments.append(("dma", isched.wb_iv.start, isched.wb_iv.end))
        return result
