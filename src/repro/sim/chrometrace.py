"""Chrome trace export.

Converts a simulation's timeline into the Chrome/Perfetto trace-event JSON
format (``chrome://tracing``), with one process per hierarchy level and
one track per activity kind -- an interactive version of the paper's
Fig 13.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .simulator import SimReport
from .trace import Segment, flatten_timeline, merge_segments

#: activity kind -> trace-event category (drives Perfetto's coloring)
_CATEGORY = {"dma": "memory", "compute": "compute", "lfu": "reduction"}


def to_chrome_trace(
    report: SimReport,
    level_names: Optional[List[str]] = None,
    max_depth: Optional[int] = None,
    merge_gap_fraction: float = 1e-4,
) -> Dict:
    """Build the trace-event dict for one simulation report.

    Durations are exported in microseconds (the format's native unit).
    Adjacent same-kind segments closer than ``merge_gap_fraction`` of the
    total time are merged to keep traces compact.
    """
    segments = merge_segments(
        flatten_timeline(report.root, max_depth=max_depth),
        gap=report.total_time * merge_gap_fraction,
    )
    events: List[Dict] = []
    seen_levels = sorted({seg.level for seg in segments})
    for level in seen_levels:
        name = (level_names[level]
                if level_names and level < len(level_names) else f"L{level}")
        events.append({
            "name": "process_name", "ph": "M", "pid": level, "tid": 0,
            "args": {"name": f"{name} (level {level})"},
        })
        for tid, kind in enumerate(("compute", "dma", "lfu")):
            events.append({
                "name": "thread_name", "ph": "M", "pid": level, "tid": tid,
                "args": {"name": kind},
            })
    tid_of = {"compute": 0, "dma": 1, "lfu": 2}
    for seg in segments:
        events.append({
            "name": seg.kind,
            "cat": _CATEGORY.get(seg.kind, "other"),
            "ph": "X",
            "pid": seg.level,
            "tid": tid_of.get(seg.kind, 3),
            "ts": seg.start * 1e6,
            "dur": max(seg.duration * 1e6, 1e-3),
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "machine": report.machine_name,
            "total_time_ms": report.total_time * 1e3,
            "work_ops": report.work,
        },
    }


def write_chrome_trace(report: SimReport, path: str,
                       level_names: Optional[List[str]] = None,
                       max_depth: Optional[int] = None) -> None:
    """Write the trace JSON to ``path`` (open it in chrome://tracing)."""
    trace = to_chrome_trace(report, level_names, max_depth)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(trace, f)
