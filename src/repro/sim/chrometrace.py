"""Chrome trace export.

Converts a simulation's timeline into the Chrome/Perfetto trace-event JSON
format (``chrome://tracing``), with one process per hierarchy level and
one track per activity kind -- an interactive version of the paper's
Fig 13.

Functional-execution spans (from :mod:`repro.telemetry`) can be merged
into the same trace: pass ``spans=tracer.spans()`` and the host ->
session -> program -> instruction -> op nesting appears as an extra
process alongside the timing-simulator tracks, so one Perfetto view holds
both what the machine *did* and how long the model says it *took*.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from ..telemetry.tracer import SliverPlacer
from .simulator import SimReport
from .trace import flatten_timeline, merge_segments

#: activity kind -> trace-event category (drives Perfetto's coloring)
_CATEGORY = {"dma": "memory", "compute": "compute", "lfu": "reduction"}

#: pid reserved for the functional-execution span process (simulator
#: levels use their level index as pid, which stays far below this).
FUNCTIONAL_PID = 900


def _span_events(spans: Iterable, pid: int = FUNCTIONAL_PID) -> List[Dict]:
    """Trace events for telemetry spans (nested by interval containment)."""
    spans = list(spans)
    events: List[Dict] = []
    if not spans:
        return events
    events.append({
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "functional execution (spans)"},
    })
    events.append({
        "name": "thread_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "host/session/program/instruction/op"},
    })
    base = min(s.start for s in spans)
    placer = SliverPlacer()
    for s in spans:
        ts, dur = placer.place(pid, 0, (s.start - base) * 1e6,
                               s.duration * 1e6)
        events.append({
            "name": s.name,
            "cat": s.cat or "span",
            "ph": "X",
            "pid": pid,
            "tid": 0,
            "ts": ts,
            "dur": dur,
            "args": dict(s.args, depth=s.depth),
        })
    return events


def to_chrome_trace(
    report: SimReport,
    level_names: Optional[List[str]] = None,
    max_depth: Optional[int] = None,
    merge_gap_fraction: float = 1e-4,
    spans: Optional[Iterable] = None,
) -> Dict:
    """Build the trace-event dict for one simulation report.

    Durations are exported in microseconds (the format's native unit).
    Adjacent same-kind segments closer than ``merge_gap_fraction`` of the
    total time are merged to keep traces compact.  ``spans`` (an iterable
    of :class:`repro.telemetry.SpanRecord`) adds a functional-execution
    process to the same trace.

    Zero-segment reports (an empty program, or one whose profile was not
    collected) are legal and produce a valid trace with metadata only.
    Zero-width stages are clamped to a one-tick minimum duration and
    de-overlapped per track (see
    :class:`repro.telemetry.tracer.SliverPlacer`) so co-timestamped
    slivers stay individually visible in Perfetto.
    """
    gap = report.total_time * merge_gap_fraction if report.total_time > 0 else 0.0
    segments = merge_segments(
        flatten_timeline(report.root, max_depth=max_depth), gap=gap,
    )
    events: List[Dict] = []
    seen_levels = sorted({seg.level for seg in segments})
    for level in seen_levels:
        name = (level_names[level]
                if level_names and 0 <= level < len(level_names) else f"L{level}")
        events.append({
            "name": "process_name", "ph": "M", "pid": level, "tid": 0,
            "args": {"name": f"{name} (level {level})"},
        })
        for tid, kind in enumerate(("compute", "dma", "lfu")):
            events.append({
                "name": "thread_name", "ph": "M", "pid": level, "tid": tid,
                "args": {"name": kind},
            })
    tid_of = {"compute": 0, "dma": 1, "lfu": 2}
    placer = SliverPlacer()
    for seg in segments:
        tid = tid_of.get(seg.kind, 3)
        ts, dur = placer.place(seg.level, tid, seg.start * 1e6,
                               seg.duration * 1e6)
        events.append({
            "name": seg.kind,
            "cat": _CATEGORY.get(seg.kind, "other"),
            "ph": "X",
            "pid": seg.level,
            "tid": tid,
            "ts": ts,
            "dur": dur,
        })
    if spans is not None:
        events.extend(_span_events(spans))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "machine": report.machine_name,
            "total_time_ms": report.total_time * 1e3,
            "work_ops": report.work,
        },
    }


def write_chrome_trace(report: SimReport, path: str,
                       level_names: Optional[List[str]] = None,
                       max_depth: Optional[int] = None,
                       spans: Optional[Iterable] = None) -> None:
    """Write the trace JSON to ``path`` (open it in chrome://tracing)."""
    trace = to_chrome_trace(report, level_names, max_depth, spans=spans)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(trace, f)
