"""Discrete-event cross-validation of the pipeline scheduler.

``schedule_pipeline`` computes stage placements with a closed-form forward
recurrence.  This module re-derives the same schedule with an explicit
discrete-event simulation -- resources as FIFO servers, stage completions
as events on a heap -- and the test suite asserts the two agree exactly on
arbitrary stage streams.  If a future change to the recurrence violates
the queueing semantics, the property test catches it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .pipeline import PipelineSchedule, StageTimes

#: stage name -> (resource it occupies, index in the per-instruction chain)
_STAGES = ("id", "ld", "ex", "rd", "wb")
_RESOURCE_OF = {"id": "decoder", "ld": "ld_channel", "ex": "ffu",
                "rd": "lfu", "wb": "wb_channel"}


@dataclass
class _Task:
    inst: int
    stage: str
    duration: float
    start: float = -1.0
    end: float = -1.0


class EventDrivenPipeline:
    """Explicit DES over the five-stage FISA pipeline."""

    def __init__(self, stages: List[StageTimes], use_concatenation: bool = True):
        self.stages = stages
        self.use_concatenation = use_concatenation

    def run(self) -> Dict[Tuple[int, str], Tuple[float, float]]:
        """Returns {(instruction, stage): (start, end)}."""
        tasks: Dict[Tuple[int, str], _Task] = {}
        for i, st in enumerate(self.stages):
            durations = {
                "id": st.decode,
                "ld": st.load,
                "ex": self._ex_duration(i, st),
                "rd": st.reduce,
                "wb": st.writeback,
            }
            for name in _STAGES:
                tasks[(i, name)] = _Task(i, name, durations[name])

        resource_free: Dict[str, float] = {r: 0.0 for r in _RESOURCE_OF.values()}
        done: Dict[Tuple[int, str], float] = {}
        counter = itertools.count()
        # Event heap of candidate start times; tasks are released in strict
        # (instruction, stage-chain) order per resource, matching the
        # in-order issue of the closed form.
        pending = sorted(tasks.values(), key=lambda t: (t.inst,
                                                        _STAGES.index(t.stage)))
        now = 0.0
        for task in pending:
            ready = self._ready_time(task, done)
            resource = _RESOURCE_OF[task.stage]
            start = max(ready, resource_free[resource])
            end = start + task.duration
            resource_free[resource] = end
            task.start, task.end = start, end
            done[(task.inst, task.stage)] = end
            now = max(now, end)
        return {key: (t.start, t.end) for key, t in tasks.items()}

    def _ex_duration(self, i: int, st: StageTimes) -> float:
        if self.use_concatenation and i > 0 and st.pre_assignable:
            return max(0.0, st.exec - st.exec_fill)
        return st.exec

    def _ready_time(self, task: _Task,
                    done: Dict[Tuple[int, str], float]) -> float:
        idx = _STAGES.index(task.stage)
        ready = 0.0
        if idx > 0:
            ready = done[(task.inst, _STAGES[idx - 1])]
        if task.stage == "ld":
            stall_on = self.stages[task.inst].stall_on
            if stall_on is not None and (stall_on, "wb") in done:
                ready = max(ready, done[(stall_on, "wb")])
        return ready

    def total_time(self) -> float:
        placements = self.run()
        return max((end for (_, stage), (_, end) in placements.items()
                    if stage == "wb"), default=0.0)

    def idle_causes(self) -> Dict[str, float]:
        """Per-resource idle seconds in front of real work, re-derived from
        the DES placements (same ``resource.cause`` keys as
        :attr:`repro.sim.pipeline.PipelineSchedule.idle_causes`)."""
        placements = self.run()
        out: Dict[str, float] = {}

        def charge(key: str, seconds: float) -> None:
            if seconds > 0.0:
                out[key] = out.get(key, 0.0) + seconds

        free: Dict[str, float] = {r: 0.0 for r in _RESOURCE_OF.values()}
        for i, st in enumerate(self.stages):
            id_end = placements[(i, "id")][1]
            ld_start = placements[(i, "ld")][0]
            if st.load > 0.0:
                stall_end = None
                if st.stall_on is not None and (st.stall_on, "wb") in placements:
                    stall_end = placements[(st.stall_on, "wb")][1]
                cause = ("dma_ld.raw_stall"
                         if stall_end is not None and stall_end >= id_end
                         else "dma_ld.decode_wait")
                charge(cause, ld_start - free["ld_channel"])
            if self._ex_duration(i, st) > 0.0:
                charge("ffu.operand_wait",
                       placements[(i, "ex")][0] - free["ffu"])
            if st.reduce > 0.0:
                charge("lfu.exec_wait", placements[(i, "rd")][0] - free["lfu"])
            if st.writeback > 0.0:
                charge("dma_wb.upstream_wait",
                       placements[(i, "wb")][0] - free["wb_channel"])
            for stage in _STAGES:
                free[_RESOURCE_OF[stage]] = placements[(i, stage)][1]
        return out


def cross_validate(stages: List[StageTimes],
                   use_concatenation: bool = True,
                   tolerance: float = 1e-9) -> Tuple[bool, float, float]:
    """Run both schedulers; returns (agree, closed_form_total, des_total)."""
    from .pipeline import schedule_pipeline

    closed = schedule_pipeline(stages, use_concatenation)
    des = EventDrivenPipeline(stages, use_concatenation)
    des_total = des.total_time()
    return (abs(closed.total_time - des_total) <= tolerance,
            closed.total_time, des_total)
