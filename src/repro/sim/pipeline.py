"""The 5-stage FISA pipeline scheduler (paper Section 3.4, Fig 7/8).

Stages per instruction: Instruction Decoding (ID), Loading (LD), Execution
(EX), Reduction (RD), Writing Back (WB).  Resources: the decoder serializes
ID; one DMA engine serializes LD, WB and broadcasts; the FFU array
serializes EX across successive instructions (all FFUs work on one FISA
instruction at a time); the LFUs serialize RD.

Pipeline concatenation (Section 3.6) pre-assigns the next instruction's
fractal parts to the FFUs one FISA cycle early, so the child pipelines do
not drain and refill at FISA-cycle boundaries: for pre-assignable
instructions the child's startup (fill) time is overlapped with the
previous EX, shortening the observed EX latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class StageTimes:
    """Input durations (seconds) for one instruction's five stages."""

    decode: float = 0.0
    load: float = 0.0
    exec: float = 0.0
    reduce: float = 0.0
    writeback: float = 0.0
    #: LD may not begin before the WB of this earlier instruction completes
    #: (an unforwarded read-after-write hazard found by DD).
    stall_on: Optional[int] = None
    #: portion of ``exec`` that is child pipeline fill, hidden when this
    #: instruction is pre-assigned (pipeline concatenation).
    exec_fill: float = 0.0
    pre_assignable: bool = True
    label: str = ""


@dataclass
class Interval:
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class InstructionSchedule:
    """Placed intervals of one instruction's stages."""

    index: int
    label: str
    id_iv: Interval
    ld_iv: Interval
    ex_iv: Interval
    rd_iv: Interval
    wb_iv: Interval


#: idle-cause keys recorded by :func:`schedule_pipeline`: ``resource.cause``
#: where the cause names what the resource was *waiting on* before a stage
#: with actual work could begin.
IDLE_CAUSES = (
    "dma_ld.raw_stall",      # LD held back by an unforwarded RAW hazard (WB)
    "dma_ld.decode_wait",    # LD channel starved behind the decoder
    "ffu.operand_wait",      # FFUs starved waiting for operands (LD)
    "lfu.exec_wait",         # LFUs starved waiting for EX results
    "dma_wb.upstream_wait",  # WB channel starved behind EX/RD completion
)


@dataclass
class PipelineSchedule:
    """Result of scheduling a node's instruction stream."""

    instructions: List[InstructionSchedule] = field(default_factory=list)
    total_time: float = 0.0
    dma_busy: float = 0.0
    ffu_busy: float = 0.0
    lfu_busy: float = 0.0
    decoder_busy: float = 0.0
    #: time until the first EX begins -- the node's own fill latency, which a
    #: *parent* applying concatenation can overlap away.
    startup_time: float = 0.0
    #: seconds each resource sat idle *in front of real work*, keyed by
    #: ``resource.cause`` (see :data:`IDLE_CAUSES`).  Gaps before zero-width
    #: stages are not charged -- an idle DMA channel with nothing queued is
    #: not a stall.
    idle_causes: Dict[str, float] = field(default_factory=dict)

    def utilization(self, resource: str = "ffu") -> float:
        busy = {"ffu": self.ffu_busy, "dma": self.dma_busy,
                "lfu": self.lfu_busy, "decoder": self.decoder_busy}[resource]
        return busy / self.total_time if self.total_time > 0 else 0.0


def schedule_pipeline(
    stages: List[StageTimes], use_concatenation: bool = True
) -> PipelineSchedule:
    """Greedy in-order scheduling of the FISA pipeline.

    Instructions issue in order; each stage starts when (a) the previous
    stage of the same instruction is done, (b) its resource is free from the
    previous instruction, and (c) any RAW stall is resolved.
    """
    out = PipelineSchedule()
    # The DMA engine is duplex: loads and write-backs ride separate
    # channels, each in FISA order.  A strictly single-FIFO DMA would chain
    # LD(i+1) behind WB(i) behind EX(i) and forfeit all load/compute
    # overlap, defeating the three recycled memory segments whose whole
    # purpose is to keep that many instructions in flight.
    dec_free = ld_free = wb_free = ffu_free = lfu_free = 0.0
    wb_end: Dict[int, float] = {}

    def charge_idle(key: str, seconds: float) -> None:
        if seconds > 0.0:
            out.idle_causes[key] = out.idle_causes.get(key, 0.0) + seconds

    for i, st in enumerate(stages):
        id_start = dec_free
        id_end = id_start + st.decode
        dec_free = id_end

        ld_ready = id_end
        stall_end: Optional[float] = None
        if st.stall_on is not None and st.stall_on in wb_end:
            stall_end = wb_end[st.stall_on]
            ld_ready = max(ld_ready, stall_end)
        ld_start = max(ld_ready, ld_free)
        if st.load > 0.0:
            cause = ("dma_ld.raw_stall"
                     if stall_end is not None and stall_end >= id_end
                     else "dma_ld.decode_wait")
            charge_idle(cause, ld_start - ld_free)
        ld_end = ld_start + st.load
        ld_free = ld_end

        ex_dur = st.exec
        if use_concatenation and i > 0 and st.pre_assignable:
            ex_dur = max(0.0, st.exec - st.exec_fill)
        ex_start = max(ld_end, ffu_free)
        if ex_dur > 0.0:
            charge_idle("ffu.operand_wait", ex_start - ffu_free)
        ex_end = ex_start + ex_dur
        ffu_free = ex_end

        rd_start = max(ex_end, lfu_free)
        if st.reduce > 0.0:
            charge_idle("lfu.exec_wait", rd_start - lfu_free)
        rd_end = rd_start + st.reduce
        lfu_free = rd_end

        wb_start = max(rd_end, wb_free)
        if st.writeback > 0.0:
            charge_idle("dma_wb.upstream_wait", wb_start - wb_free)
        wb_finish = wb_start + st.writeback
        wb_free = wb_finish
        wb_end[i] = wb_finish

        out.instructions.append(
            InstructionSchedule(
                index=i,
                label=st.label,
                id_iv=Interval(id_start, id_end),
                ld_iv=Interval(ld_start, ld_end),
                ex_iv=Interval(ex_start, ex_end),
                rd_iv=Interval(rd_start, rd_end),
                wb_iv=Interval(wb_start, wb_finish),
            )
        )
        out.decoder_busy += st.decode
        out.dma_busy += st.load + st.writeback
        out.ffu_busy += ex_dur
        out.lfu_busy += st.reduce

    if out.instructions:
        out.total_time = max(s.wb_iv.end for s in out.instructions)
        out.startup_time = out.instructions[0].ex_iv.start
    return out
