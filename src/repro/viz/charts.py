"""Chart layer: line/scatter charts with axes, plus the Fig-13 timeline
renderer, all on top of the raw SVG builder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .svg import Scale, SVGDocument, fmt_tick

#: default series palette
PALETTE = ["#1f6fb2", "#d1495b", "#66a182", "#edae49", "#8661c1", "#3d3d3d"]

_MARGIN = dict(left=70, right=20, top=40, bottom=55)


@dataclass
class _Series:
    name: str
    points: List[Tuple[float, float]]
    color: str
    marker: bool = True


class _Axes:
    """Shared axes scaffolding for the chart classes."""

    def __init__(self, title: str, x_label: str, y_label: str,
                 width: int = 640, height: int = 420,
                 x_log: bool = False, y_log: bool = False):
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.width = width
        self.height = height
        self.x_log = x_log
        self.y_log = y_log
        self.series: List[_Series] = []
        self.hlines: List[Tuple[float, str, str]] = []
        self.segments: List[Tuple[Tuple[float, float], Tuple[float, float], str]] = []

    def add_series(self, name: str, points: Sequence[Tuple[float, float]],
                   color: Optional[str] = None, marker: bool = True) -> None:
        if not points:
            raise ValueError(f"series {name!r} has no points")
        color = color or PALETTE[len(self.series) % len(PALETTE)]
        self.series.append(_Series(name, sorted(points), color, marker))

    def add_hline(self, y: float, label: str = "", color: str = "#888") -> None:
        self.hlines.append((y, label, color))

    def add_segment(self, p1: Tuple[float, float], p2: Tuple[float, float],
                    color: str = "#888") -> None:
        self.segments.append((p1, p2, color))

    # -- rendering -----------------------------------------------------------

    def _domain(self):
        xs = [x for s in self.series for x, _ in s.points]
        ys = [y for s in self.series for _, y in s.points]
        ys += [y for y, _, _ in self.hlines]
        for p1, p2, _ in self.segments:
            xs += [p1[0], p2[0]]
            ys += [p1[1], p2[1]]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if self.x_log:
            x_lo, x_hi = x_lo / 1.5, x_hi * 1.5
        else:
            pad = 0.05 * (x_hi - x_lo or 1.0)
            x_lo, x_hi = x_lo - pad, x_hi + pad
        if self.y_log:
            y_lo, y_hi = y_lo / 2, y_hi * 2
        else:
            pad = 0.08 * (y_hi - y_lo or 1.0)
            y_lo, y_hi = min(y_lo - pad, 0 if y_lo >= 0 else y_lo - pad), y_hi + pad
            if y_lo == y_hi:
                y_hi = y_lo + 1.0
        return x_lo, x_hi, y_lo, y_hi

    def render(self) -> str:
        doc = SVGDocument(self.width, self.height)
        m = _MARGIN
        plot_w = self.width - m["left"] - m["right"]
        plot_h = self.height - m["top"] - m["bottom"]
        x_lo, x_hi, y_lo, y_hi = self._domain()
        sx = Scale(x_lo, x_hi, m["left"], m["left"] + plot_w, log=self.x_log)
        sy = Scale(y_lo, y_hi, m["top"] + plot_h, m["top"], log=self.y_log)

        doc.text(self.width / 2, 20, self.title, size=14, anchor="middle")
        # frame + grid
        doc.rect(m["left"], m["top"], plot_w, plot_h, fill="none",
                 stroke="#333")
        for t in sx.ticks():
            px = sx(t)
            doc.line(px, m["top"], px, m["top"] + plot_h, stroke="#eee")
            doc.text(px, m["top"] + plot_h + 16, fmt_tick(t), size=10,
                     anchor="middle")
        for t in sy.ticks():
            py = sy(t)
            doc.line(m["left"], py, m["left"] + plot_w, py, stroke="#eee")
            doc.text(m["left"] - 6, py + 4, fmt_tick(t), size=10,
                     anchor="end")
        doc.text(m["left"] + plot_w / 2, self.height - 10, self.x_label,
                 size=12, anchor="middle")
        doc.text(16, m["top"] + plot_h / 2, self.y_label, size=12,
                 anchor="middle", rotate=-90)

        for y, label, color in self.hlines:
            py = sy(y)
            doc.line(m["left"], py, m["left"] + plot_w, py, stroke=color,
                     width=1.2, dash="5,4")
            if label:
                doc.text(m["left"] + plot_w - 4, py - 5, label, size=10,
                         fill=color, anchor="end")
        for p1, p2, color in self.segments:
            doc.line(sx(p1[0]), sy(p1[1]), sx(p2[0]), sy(p2[1]),
                     stroke=color, width=1.4)

        self._draw_series(doc, sx, sy)

        # legend
        ly = m["top"] + 8
        for s in self.series:
            doc.line(m["left"] + 8, ly, m["left"] + 28, ly, stroke=s.color,
                     width=2)
            doc.text(m["left"] + 34, ly + 4, s.name, size=10)
            ly += 15
        return doc.render()

    def _draw_series(self, doc, sx, sy):
        raise NotImplementedError

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.render())


class LineChart(_Axes):
    """Connected series with optional markers."""

    def _draw_series(self, doc, sx, sy):
        for s in self.series:
            pts = [(sx(x), sy(y)) for x, y in s.points]
            doc.polyline(pts, stroke=s.color, width=2)
            if s.marker:
                for px, py in pts:
                    doc.circle(px, py, 3, fill=s.color)


class ScatterChart(_Axes):
    """Marker-only series (roofline benchmark points)."""

    def _draw_series(self, doc, sx, sy):
        for s in self.series:
            for x, y in s.points:
                doc.circle(sx(x), sy(y), 4, fill=s.color)


#: timeline activity colors (the paper: blue DMA, red compute)
TIMELINE_COLORS = {"dma": "#2c6fbb", "compute": "#c94040", "lfu": "#e0a426"}


def timeline_chart(segments, total_time: float, title: str,
                   level_names: Optional[Sequence[str]] = None,
                   width: int = 900, row_height: int = 22) -> str:
    """Fig-13 style timeline: one row per (level, kind), colored blocks.

    ``segments`` are :class:`repro.sim.trace.Segment` objects.
    """
    rows: Dict[Tuple[int, str], List] = {}
    for seg in segments:
        rows.setdefault((seg.level, seg.kind), []).append(seg)
    keys = sorted(rows)
    height = 70 + row_height * len(keys)
    doc = SVGDocument(width, height)
    doc.text(width / 2, 20, title, size=14, anchor="middle")
    left, right = 130, width - 20
    span = right - left
    for i, key in enumerate(keys):
        level, kind = key
        y = 40 + i * row_height
        name = (level_names[level]
                if level_names and level < len(level_names) else f"L{level}")
        doc.text(left - 8, y + row_height * 0.7, f"{name} {kind}", size=10,
                 anchor="end")
        doc.rect(left, y, span, row_height - 4, fill="#f4f4f4")
        for seg in rows[key]:
            x0 = left + span * seg.start / total_time
            x1 = left + span * seg.end / total_time
            doc.rect(x0, y, max(x1 - x0, 0.5), row_height - 4,
                     fill=TIMELINE_COLORS.get(kind, "#999"))
    doc.text(left, height - 12, "0 ms", size=10)
    doc.text(right, height - 12, f"{total_time * 1e3:.3f} ms", size=10,
             anchor="end")
    return doc.render()
