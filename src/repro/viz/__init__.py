"""Figure rendering: dependency-free SVG charts for every figure the paper
plots (efficiency trend, MBOI curves, execution timelines, rooflines, GPU
growth)."""

from .charts import LineChart, ScatterChart, timeline_chart
from .figures import (
    render_fig1,
    render_fig10,
    render_fig13,
    render_fig15,
    render_fig16,
    render_all,
)
from .svg import SVGDocument

__all__ = [
    "LineChart",
    "ScatterChart",
    "timeline_chart",
    "SVGDocument",
    "render_fig1",
    "render_fig10",
    "render_fig13",
    "render_fig15",
    "render_fig16",
    "render_all",
]
