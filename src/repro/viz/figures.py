"""The paper's figures as SVG renderers.

Each ``render_figN`` returns an SVG string; :func:`render_all` writes the
whole set into a directory (simulations included where a figure needs
them).
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from ..core.machine import Machine, cambricon_f1, cambricon_f100
from ..cost.survey import ACCELERATOR_EFFICIENCY_TREND, NVIDIA_GPU_TREND
from ..model.gpu import DGX1, GTX1080TI, GPUModel
from ..model.mboi import mboi_curve
from ..model.roofline import ridge_point
from ..sim import FractalSimulator, SimReport
from ..sim.trace import flatten_timeline, merge_segments
from .charts import LineChart, ScatterChart, timeline_chart

MB = 1 << 20


def render_fig1() -> str:
    """Fig 1: accelerator power efficiency, 2012-2018 (log y)."""
    chart = LineChart("Fig 1: ML accelerator power efficiency",
                      "year", "TOPS/W", y_log=True)
    chart.add_series("best of year",
                     [(p.year, p.tops_per_watt)
                      for p in ACCELERATOR_EFFICIENCY_TREND])
    return chart.render()


def render_fig10(sizes=None) -> str:
    """Fig 10: MBOI(M), measured vs theoretical, three algorithms."""
    sizes = sizes or [256 << 10, 512 << 10, MB, 2 * MB, 4 * MB, 8 * MB,
                      16 * MB, 32 * MB]
    chart = LineChart("Fig 10: Memory-Bounded Operational Intensity",
                      "local memory (MB)", "ops / byte",
                      x_log=True, y_log=True)
    for algo in ("MatMul", "Conv2D", "Pool2D"):
        curve = mboi_curve(algo, sizes)
        chart.add_series(f"{algo} measured",
                         [(m / MB, max(meas, 1e-2)) for m, meas, _ in curve])
        chart.add_series(f"{algo} theoretical",
                         [(m / MB, max(theo, 1e-2)) for m, _, theo in curve],
                         marker=False)
    return chart.render()


def render_fig13(report: SimReport, machine: Machine,
                 max_depth: int = 2) -> str:
    """Fig 13: execution timeline of a simulated run."""
    segments = merge_segments(
        flatten_timeline(report.root, max_depth=max_depth),
        gap=report.total_time / 2000)
    names = [lv.name for lv in machine.levels]
    return timeline_chart(segments, report.total_time,
                          f"Fig 13: execution timeline on {machine.name}",
                          level_names=names)


def render_fig15(points: Dict[str, SimReport], machine: Machine,
                 gpu: GPUModel) -> str:
    """Fig 15: roofline with the machine's roofs and both systems' points.

    ``points`` maps benchmark name -> the machine's SimReport.
    """
    chart = ScatterChart(
        f"Fig 15: {machine.name} vs {gpu.name} roofline",
        "operational intensity (ops/B)", "attained ops/s",
        x_log=True, y_log=True)
    chart.add_series(machine.name,
                     [(rep.operational_intensity, rep.attained_ops)
                      for rep in points.values()], color="#d1495b")
    chart.add_series(gpu.name,
                     [(gpu.operational_intensity(name), gpu.attained(name))
                      for name in points], color="#1f6fb2")
    # bandwidth slope + compute roof of the Cambricon-F machine
    ridge = ridge_point(machine.peak_ops, machine.root_bandwidth)
    ois = [rep.operational_intensity for rep in points.values()]
    lo = min(min(ois) / 2, ridge / 4)
    hi = max(max(ois) * 2, ridge * 4)
    chart.add_segment((lo, lo * machine.root_bandwidth),
                      (ridge, machine.peak_ops), color="#c94040")
    chart.add_hline(machine.peak_ops, f"{machine.name} peak", color="#c94040")
    chart.add_hline(gpu.peak_ops, f"{gpu.name} peak", color="#2c6fbb")
    return chart.render()


def render_fig16() -> str:
    """Fig 16: NVIDIA GPU core count and bandwidth growth."""
    chart = LineChart("Fig 16: NVIDIA GPU growth", "year",
                      "cores / bandwidth (GB/s)", y_log=True)
    chart.add_series("CUDA cores",
                     [(p.year, float(p.cores)) for p in NVIDIA_GPU_TREND])
    chart.add_series("bandwidth (GB/s)",
                     [(p.year, p.bandwidth_gb_s) for p in NVIDIA_GPU_TREND])
    return chart.render()


def render_all(directory: str,
               benchmarks: Optional[Dict[str, object]] = None) -> Dict[str, str]:
    """Render every figure into ``directory``; returns {figure: path}.

    Simulation-backed figures (13, 15) run a compact k-NN / benchmark
    sweep; pass ``benchmarks`` (name -> Workload) to override the Fig-15
    set.
    """
    os.makedirs(directory, exist_ok=True)
    out: Dict[str, str] = {}

    def write(name: str, svg: str) -> None:
        path = os.path.join(directory, f"{name}.svg")
        with open(path, "w", encoding="utf-8") as f:
            f.write(svg)
        out[name] = path

    write("fig01_efficiency", render_fig1())
    write("fig10_mboi", render_fig10())
    write("fig16_gpu_growth", render_fig16())

    from ..workloads import knn_workload, paper_benchmark, PAPER_BENCHMARKS

    for machine, gpu in ((cambricon_f1(), GTX1080TI),
                         (cambricon_f100(), DGX1)):
        sim = FractalSimulator(machine, collect_profiles=True)
        knn_rep = sim.simulate(knn_workload().program)
        write(f"fig13_timeline_{machine.name.lower()}",
              render_fig13(knn_rep, machine))

        workloads = benchmarks or {n: paper_benchmark(n)
                                   for n in PAPER_BENCHMARKS
                                   if n != "MATMUL" or "F100" in machine.name}
        points = {}
        for name, w in workloads.items():
            points[name] = FractalSimulator(
                machine, collect_profiles=False).simulate(w.program)
        write(f"fig15_roofline_{machine.name.lower()}",
              render_fig15(points, machine, gpu))
    return out
