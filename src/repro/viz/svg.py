"""Minimal SVG document builder.

No plotting dependency is available offline, so figures are emitted as
hand-rolled SVG: enough primitives (rect, line, polyline, circle, text)
plus axis helpers for the chart layer.  Output is always well-formed XML
(the test suite parses every rendered figure).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape


class SVGDocument:
    """An SVG canvas with a y-down pixel coordinate system."""

    def __init__(self, width: int = 640, height: int = 420,
                 background: str = "#ffffff"):
        self.width = width
        self.height = height
        self._body: List[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # -- primitives ---------------------------------------------------------

    def rect(self, x: float, y: float, w: float, h: float,
             fill: str = "#000", stroke: str = "none",
             opacity: float = 1.0) -> None:
        self._body.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{max(w, 0):.2f}" '
            f'height="{max(h, 0):.2f}" fill="{fill}" stroke="{stroke}" '
            f'opacity="{opacity:.3f}"/>')

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str = "#000", width: float = 1.0,
             dash: Optional[str] = None) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._body.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{stroke}" stroke-width="{width:.2f}"{dash_attr}/>')

    def polyline(self, points: Sequence[Tuple[float, float]],
                 stroke: str = "#000", width: float = 1.5) -> None:
        if len(points) < 2:
            return
        pts = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self._body.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width:.2f}"/>')

    def circle(self, x: float, y: float, r: float = 3.0,
               fill: str = "#000", stroke: str = "none") -> None:
        self._body.append(
            f'<circle cx="{x:.2f}" cy="{y:.2f}" r="{r:.2f}" '
            f'fill="{fill}" stroke="{stroke}"/>')

    def text(self, x: float, y: float, content: str, size: int = 11,
             fill: str = "#222", anchor: str = "start",
             rotate: Optional[float] = None) -> None:
        transform = (f' transform="rotate({rotate:.1f} {x:.2f} {y:.2f})"'
                     if rotate is not None else "")
        self._body.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'font-family="sans-serif" fill="{fill}" '
            f'text-anchor="{anchor}"{transform}>{escape(content)}</text>')

    # -- output ------------------------------------------------------------

    def render(self) -> str:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} '
            f'{self.height}">' + "".join(self._body) + "</svg>"
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.render())


class Scale:
    """Maps data values to pixel coordinates (linear or log10)."""

    def __init__(self, lo: float, hi: float, px_lo: float, px_hi: float,
                 log: bool = False):
        if log and (lo <= 0 or hi <= 0):
            raise ValueError("log scale needs positive bounds")
        if lo >= hi:
            raise ValueError(f"bad scale domain ({lo}, {hi})")
        self.lo, self.hi = lo, hi
        self.px_lo, self.px_hi = px_lo, px_hi
        self.log = log

    def __call__(self, value: float) -> float:
        if self.log:
            t = ((math.log10(value) - math.log10(self.lo))
                 / (math.log10(self.hi) - math.log10(self.lo)))
        else:
            t = (value - self.lo) / (self.hi - self.lo)
        return self.px_lo + t * (self.px_hi - self.px_lo)

    def ticks(self, n: int = 5) -> List[float]:
        if self.log:
            lo_e = math.floor(math.log10(self.lo))
            hi_e = math.ceil(math.log10(self.hi))
            return [10.0 ** e for e in range(int(lo_e), int(hi_e) + 1)
                    if self.lo <= 10.0 ** e <= self.hi]
        step = (self.hi - self.lo) / max(1, n - 1)
        return [self.lo + i * step for i in range(n)]


def fmt_tick(v: float) -> str:
    if v == 0:
        return "0"
    mag = abs(v)
    if mag >= 1e12:
        return f"{v / 1e12:.3g}T"
    if mag >= 1e9:
        return f"{v / 1e9:.3g}G"
    if mag >= 1e6:
        return f"{v / 1e6:.3g}M"
    if mag >= 1e3:
        return f"{v / 1e3:.3g}k"
    if mag < 0.01:
        return f"{v:.1e}"
    return f"{v:.3g}"
