"""FISA text assembler.

The paper programs Cambricon-F with inline assembly (Fig 11's k-NN).  This
module parses an equivalent textual form into a
:class:`~repro.workloads.builder.Workload` runnable on both the functional
executor and the timing simulator.

Grammar (line oriented; ``;`` and ``#`` start comments)::

    tensor  <name> <d0> <d1> ...  [fp16|fp32|int32]
    input   <name> <d0> <d1> ...  [dtype]      ; tensor the host binds
    output  <name>                             ; marks a declared tensor
    <OpName> <dst>[, <dst2>...], <src>, ... [key=value ...]

Operands are tensor names with optional region suffixes
(``dist[0:128, :]``).  The first operand of an instruction is its output
(FISA results are always written to external operands); ``Merge1D`` takes
one output and any number of sorted inputs.  Opcode names match Table 3
case-insensitively (``MatMul``, ``Cv2D``, ``Sort1D``, ...).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..core.isa import Instruction, Opcode, SourceLoc
from ..core.tensor import DType, FP16, FP32, INT32, Region, Tensor
from ..workloads.builder import Workload


class AssemblyError(ValueError):
    """A parse or semantic error, carrying the offending line/column."""

    def __init__(self, lineno: int, message: str,
                 column: Optional[int] = None):
        where = f"line {lineno}"
        if column is not None:
            where += f", col {column}"
        super().__init__(f"{where}: {message}")
        self.lineno = lineno
        self.column = column


_DTYPES: Dict[str, DType] = {"fp16": FP16, "fp32": FP32, "int32": INT32}

_OPCODES: Dict[str, Opcode] = {op.value.lower(): op for op in Opcode}

#: number of *output* operands per opcode (all Table-3 ops have exactly one)
_N_OUTPUTS = {op: 1 for op in Opcode}

_OPERAND_RE = re.compile(r"^([A-Za-z_][\w.]*)(\[(.*)\])?$")
_ATTR_RE = re.compile(r"^(\w+)=([^\s]+)$")


def _parse_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _split_operands(text: str) -> List[str]:
    """Split on commas that are not inside region brackets."""
    parts, depth, cur = [], 0, []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


def _column_of(raw: str, text: str) -> Optional[int]:
    """1-based column of ``text`` in the original source line, if present."""
    pos = raw.find(text)
    return pos + 1 if pos >= 0 else None


def _parse_region(lineno: int, text: str, tensors: Dict[str, Tensor],
                  raw: str = "") -> Region:
    column = _column_of(raw, text)
    m = _OPERAND_RE.match(text)
    if not m:
        raise AssemblyError(lineno, f"bad operand {text!r}", column)
    name, _, slices = m.groups()
    if name not in tensors:
        raise AssemblyError(lineno, f"undeclared tensor {name!r}", column)
    region = tensors[name].region()
    if slices is None or not slices.strip():
        return region
    try:
        for dim, spec in enumerate(s.strip() for s in slices.split(",")):
            if spec == ":":
                continue
            if ":" in spec:
                lo_s, hi_s = spec.split(":", 1)
                lo = int(lo_s) if lo_s else 0
                hi = int(hi_s) if hi_s else region.shape[dim]
                region = region.slice_dim(dim, lo, hi)
            else:
                idx = int(spec)
                region = region.slice_dim(dim, idx, idx + 1)
    except (ValueError, IndexError) as err:
        raise AssemblyError(lineno, f"bad region {text!r}: {err}", column)
    return region


def assemble(source: str, name: str = "asm", lint: bool = True) -> Workload:
    """Assemble FISA text into a Workload.

    With ``lint=True`` (the default) the parsed program is run through the
    static analyzer (:mod:`repro.analysis`) and any analyzer *error* --
    shape mismatch, use-before-write, decomposition hazard -- is raised as
    an :class:`AssemblyError` pointing at the offending source line.
    Warnings never block assembly.  ``repro lint`` passes ``lint=False``
    to collect the diagnostics itself instead of catching exceptions.
    """
    tensors: Dict[str, Tensor] = {}
    inputs: Dict[str, Tensor] = {}
    outputs: Dict[str, Tensor] = {}
    program: List[Instruction] = []

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        head, *rest = line.split(None, 1)
        body = rest[0] if rest else ""
        keyword = head.lower()
        column = len(raw) - len(raw.lstrip()) + 1

        if keyword in ("tensor", "input"):
            tokens = body.split()
            if len(tokens) < 2:
                raise AssemblyError(lineno, "tensor needs a name and dimensions")
            tname = tokens[0]
            if tname in tensors:
                raise AssemblyError(lineno, f"duplicate tensor {tname!r}")
            dtype = FP16
            dims: List[int] = []
            for tok in tokens[1:]:
                if tok in _DTYPES:
                    dtype = _DTYPES[tok]
                else:
                    try:
                        dims.append(int(tok))
                    except ValueError:
                        raise AssemblyError(lineno, f"bad dimension {tok!r}")
            if not dims:
                raise AssemblyError(lineno, "tensor needs at least one dimension")
            t = Tensor(f"{name}.{tname}", tuple(dims), dtype)
            tensors[tname] = t
            if keyword == "input":
                inputs[t.name] = t
            continue

        if keyword == "output":
            tname = body.strip()
            if tname not in tensors:
                raise AssemblyError(lineno, f"undeclared tensor {tname!r}")
            outputs[tensors[tname].name] = tensors[tname]
            continue

        opcode = _OPCODES.get(keyword)
        if opcode is None:
            raise AssemblyError(lineno, f"unknown opcode {head!r}", column)

        # split attrs (key=value tokens at the end) from operands
        attr_text: Dict[str, object] = {}
        operand_text = body
        while True:
            operand_text = operand_text.rstrip()
            tail = operand_text.rsplit(None, 1)
            if len(tail) == 2 and _ATTR_RE.match(tail[1]):
                key, value = _ATTR_RE.match(tail[1]).groups()
                attr_text[key] = _parse_value(value)
                operand_text = tail[0].rstrip(",")
            else:
                break

        operands = [_parse_region(lineno, op, tensors, raw)
                    for op in _split_operands(operand_text)]
        n_out = _N_OUTPUTS[opcode]
        if len(operands) < n_out + 1:
            raise AssemblyError(
                lineno, f"{opcode.value} needs an output and at least one input",
                column)
        outs = tuple(operands[:n_out])
        ins = tuple(operands[n_out:])
        program.append(Instruction(
            opcode, ins, outs, attr_text,
            loc=SourceLoc(file=name, line=lineno, column=column)))

    workload = Workload(name=name, program=program, inputs=inputs,
                        outputs=outputs, params={}, meta={"source": "assembly"})
    if lint:
        _lint(workload)
    return workload


def _lint(workload: Workload) -> None:
    """Run the static analyzer over a freshly parsed program; raise an
    AssemblyError naming the first offending source line on any error."""
    from ..analysis import analyze_workload  # deferred: avoids import cycles

    result = analyze_workload(workload)
    if result.ok:
        return
    first = result.errors[0]
    lineno = first.loc.line if first.loc is not None else 0
    column = first.loc.column if first.loc is not None else None
    listing = "; ".join(d.format() for d in result.errors[:10])
    raise AssemblyError(
        lineno, f"static analysis rejected the program: {listing}", column)
