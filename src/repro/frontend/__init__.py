"""Programming frontends: the FISA text assembler (Fig-11-style inline
assembly programs), the binary encoder/decoder, and the disassembler."""

from .assembler import AssemblyError, assemble
from .encoding import EncodingError, decode_program, disassemble, encode_program

__all__ = [
    "AssemblyError",
    "assemble",
    "EncodingError",
    "decode_program",
    "disassemble",
    "encode_program",
]
