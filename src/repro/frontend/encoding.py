"""FISA binary encoding.

The paper's productivity argument rests on "a same binary code [running]
on platforms from cloud to end".  This module defines that binary: a
compact, versioned serialization of a FISA program (tensor table +
instruction stream) with exact round-tripping.

Layout (all integers little-endian):

``FISA`` magic, u16 version, then the tensor table::

    u32 count
    per tensor: u32 id | str name | u8 dtype | u8 space | u8 ndim | u32 dims...

then the instruction stream::

    u32 count
    per instruction:
        u8 opcode ordinal
        u8 n_inputs | u8 n_outputs | u8 n_attrs
        per operand: u32 tensor id | u8 ndim | per dim (u32 lo, u32 hi)
        per attr: str key | u8 tag | payload  (i: i64, f: f64, s: str, b: u8)

Strings are u16-length-prefixed UTF-8.  Tensor ids are table indices local
to the binary, so encodings are deterministic and position-independent.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from ..core.isa import Instruction, Opcode
from ..core.tensor import DType, FP16, FP32, INT32, Region, Tensor

MAGIC = b"FISA"
VERSION = 1

_OPCODE_LIST = list(Opcode)
_OPCODE_ORDINAL = {op: i for i, op in enumerate(_OPCODE_LIST)}

_DTYPE_LIST = [FP16, FP32, INT32]
_DTYPE_ORDINAL = {d.name: i for i, d in enumerate(_DTYPE_LIST)}

_SPACE_LIST = ["global", "partial"]
_SPACE_ORDINAL = {s: i for i, s in enumerate(_SPACE_LIST)}


class EncodingError(ValueError):
    """Malformed or unsupported FISA binary."""


# -- primitive writers ---------------------------------------------------------


class _Writer:
    def __init__(self):
        self.parts: List[bytes] = []

    def u8(self, v: int) -> None:
        self.parts.append(struct.pack("<B", v))

    def u16(self, v: int) -> None:
        self.parts.append(struct.pack("<H", v))

    def u32(self, v: int) -> None:
        self.parts.append(struct.pack("<I", v))

    def i64(self, v: int) -> None:
        self.parts.append(struct.pack("<q", v))

    def f64(self, v: float) -> None:
        self.parts.append(struct.pack("<d", v))

    def string(self, s: str) -> None:
        raw = s.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise EncodingError("string too long")
        self.u16(len(raw))
        self.parts.append(raw)

    def bytes(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def _take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise EncodingError("truncated FISA binary")
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out

    def u8(self) -> int:
        return struct.unpack("<B", self._take(1))[0]

    def u16(self) -> int:
        return struct.unpack("<H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self._take(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    def string(self) -> str:
        return self._take(self.u16()).decode("utf-8")

    def done(self) -> bool:
        return self.pos == len(self.data)


# -- encoding ------------------------------------------------------------------


def _collect_tensors(program: List[Instruction]) -> List[Tensor]:
    seen: Dict[int, Tensor] = {}
    for inst in program:
        for r in inst.inputs + inst.outputs:
            seen.setdefault(r.tensor.uid, r.tensor)
    return list(seen.values())


def _encode_attr(w: _Writer, key: str, value) -> None:
    w.string(key)
    if isinstance(value, bool):
        w.u8(ord("b"))
        w.u8(1 if value else 0)
    elif isinstance(value, int):
        w.u8(ord("i"))
        w.i64(value)
    elif isinstance(value, float):
        w.u8(ord("f"))
        w.f64(value)
    elif isinstance(value, str):
        w.u8(ord("s"))
        w.string(value)
    elif value is None:
        w.u8(ord("n"))
    else:
        raise EncodingError(f"unencodable attr {key}={value!r}")


def encode_program(program: List[Instruction]) -> bytes:
    """Serialize an instruction list to the FISA binary format."""
    w = _Writer()
    w.parts.append(MAGIC)
    w.u16(VERSION)

    tensors = _collect_tensors(program)
    index = {t.uid: i for i, t in enumerate(tensors)}
    w.u32(len(tensors))
    for t in tensors:
        w.u32(index[t.uid])
        w.string(t.name)
        try:
            w.u8(_DTYPE_ORDINAL[t.dtype.name])
        except KeyError:
            raise EncodingError(f"unencodable dtype {t.dtype.name}")
        w.u8(_SPACE_ORDINAL.get(t.space, 0))
        w.u8(t.ndim)
        for d in t.shape:
            w.u32(d)

    w.u32(len(program))
    for inst in program:
        w.u8(_OPCODE_ORDINAL[inst.opcode])
        attrs = {k: v for k, v in inst.attrs.items() if k != "acc_chain"}
        w.u8(len(inst.inputs))
        w.u8(len(inst.outputs))
        w.u8(len(attrs))
        for region in inst.inputs + inst.outputs:
            w.u32(index[region.tensor.uid])
            w.u8(region.ndim)
            for lo, hi in region.bounds:
                w.u32(lo)
                w.u32(hi)
        for key in sorted(attrs):
            _encode_attr(w, key, attrs[key])
    return w.bytes()


# -- decoding ------------------------------------------------------------------


def decode_program(data: bytes) -> Tuple[List[Tensor], List[Instruction]]:
    """Parse a FISA binary back into (tensor table, instruction list).

    Decoded tensors are fresh objects (new uids) with the original names,
    shapes, dtypes and spaces; regions are rebuilt against them, so a
    decoded program is structurally identical and runnable.
    """
    r = _Reader(data)
    if r._take(4) != MAGIC:
        raise EncodingError("bad magic; not a FISA binary")
    version = r.u16()
    if version != VERSION:
        raise EncodingError(f"unsupported FISA version {version}")

    n_tensors = r.u32()
    table: Dict[int, Tensor] = {}
    for _ in range(n_tensors):
        tid = r.u32()
        name = r.string()
        dtype = _DTYPE_LIST[r.u8()]
        space = _SPACE_LIST[r.u8()]
        ndim = r.u8()
        shape = tuple(r.u32() for _ in range(ndim))
        table[tid] = Tensor(name, shape, dtype, space)

    def read_region() -> Region:
        tid = r.u32()
        if tid not in table:
            raise EncodingError(f"operand references unknown tensor {tid}")
        ndim = r.u8()
        bounds = tuple((r.u32(), r.u32()) for _ in range(ndim))
        return Region(table[tid], bounds)

    n_inst = r.u32()
    program: List[Instruction] = []
    for _ in range(n_inst):
        op_ord = r.u8()
        if op_ord >= len(_OPCODE_LIST):
            raise EncodingError(f"unknown opcode ordinal {op_ord}")
        opcode = _OPCODE_LIST[op_ord]
        n_in, n_out, n_attrs = r.u8(), r.u8(), r.u8()
        inputs = tuple(read_region() for _ in range(n_in))
        outputs = tuple(read_region() for _ in range(n_out))
        attrs = {}
        for _ in range(n_attrs):
            key = r.string()
            tag = chr(r.u8())
            if tag == "b":
                attrs[key] = bool(r.u8())
            elif tag == "i":
                attrs[key] = r.i64()
            elif tag == "f":
                attrs[key] = r.f64()
            elif tag == "s":
                attrs[key] = r.string()
            elif tag == "n":
                attrs[key] = None
            else:
                raise EncodingError(f"unknown attr tag {tag!r}")
        program.append(Instruction(opcode, inputs, outputs, attrs))
    if not r.done():
        raise EncodingError("trailing bytes after instruction stream")
    return list(table.values()), program


# -- disassembly ---------------------------------------------------------------


def _region_text(region: Region) -> str:
    name = region.tensor.name.split(".")[-1]
    if region.is_full():
        return name
    dims = ",".join(f"{lo}:{hi}" for lo, hi in region.bounds)
    return f"{name}[{dims}]"


def disassemble(program: List[Instruction]) -> str:
    """Render a program as assembler text (re-assemblable; see
    :func:`repro.frontend.assembler.assemble`).

    Tensor names are reduced to their final dotted component, so programs
    whose short names collide should be disassembled with care.
    """
    lines = ["; disassembled FISA program"]
    for t in _collect_tensors(program):
        short = t.name.split(".")[-1]
        dims = " ".join(str(d) for d in t.shape)
        suffix = "" if t.dtype.name == "fp16" else f" {t.dtype.name}"
        lines.append(f"tensor {short} {dims}{suffix}")
    for inst in program:
        operands = [_region_text(r) for r in inst.outputs]
        operands += [_region_text(r) for r in inst.inputs]
        attrs = " ".join(
            f"{k}={v}" for k, v in sorted(inst.attrs.items())
            if k not in ("acc_chain",) and v is not None)
        line = f"{inst.opcode.value} " + ", ".join(operands)
        if attrs:
            line += f" {attrs}"
        lines.append(line)
    return "\n".join(lines) + "\n"
