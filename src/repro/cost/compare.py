"""Hardware characteristics comparison (paper Table 8).

GPU/ASIC columns are the published numbers the paper tabulates; the
Cambricon-F columns are computed from our cost model so the bench can show
paper-vs-model deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.machine import Machine, cambricon_f1, cambricon_f100
from .layout import chip_cost

MB = 1 << 20
GB = 1 << 30


@dataclass(frozen=True)
class ChipSpec:
    """One column of Table 8 (chip section)."""

    name: str
    isa_type: str
    technology: str
    kind: str
    memory_type: str
    memory_bytes: int
    peak_tops: float
    area_mm2: Optional[float]
    power_w: Optional[float]

    @property
    def power_efficiency(self) -> Optional[float]:
        if self.power_w:
            return self.peak_tops / self.power_w
        return None

    @property
    def area_efficiency(self) -> Optional[float]:
        if self.area_mm2:
            return self.peak_tops / self.area_mm2
        return None


def _fractal_chip_spec(machine: Machine, chip_level: str, name: str) -> ChipSpec:
    """Build the Cambricon-F column from the cost model."""
    cost = chip_cost(machine, chip_level)
    # on-chip memory: every eDRAM at or below the chip level
    start = next(i for i, lv in enumerate(machine.levels) if lv.name == chip_level)
    mem = 0
    for i in range(start, machine.depth):
        mem += machine.nodes_at(i) // machine.nodes_at(start) * machine.level(i).mem_bytes
    peak = machine.level(start).peak_ops / 1e12
    return ChipSpec(name, "FISA", "45nm", "Cam-F", "eDRAM",
                    mem, peak, cost.area_mm2, cost.power_w)


def fractal_chips() -> List[ChipSpec]:
    return [
        _fractal_chip_spec(cambricon_f1(), "FMP", "Cam-F1"),
        _fractal_chip_spec(cambricon_f100(), "Chip", "Cam-F100"),
    ]


#: published columns of Table 8 (chip section)
ACCELERATOR_CHIPS: Dict[str, ChipSpec] = {
    "1080Ti": ChipSpec("1080Ti", "SIMD", "16nm", "GPU", "SRAM",
                       int(12.8 * MB), 10.6, 471, None),
    "V100": ChipSpec("V100", "SIMD", "12nm", "GPU", "SRAM",
                     int(33.5 * MB), 125, 815, None),
    "DaDN": ChipSpec("DaDN", "VLIW", "28nm", "ASIC", "eDRAM",
                     36 * MB, 5.58, 67, 15.97),
    "TPU": ChipSpec("TPU", "CISC", "28nm", "ASIC", "SRAM",
                    28 * MB, 92, 331, 40),
}

#: card-level rows of Table 8: name -> (dram GB, peak Tops, power W)
CARD_COMPARISON: Dict[str, Dict[str, float]] = {
    "Cam-F1": {"dram_gb": 32, "peak_tops": 14.9, "power_w": 90.19, "dies": 1},
    "Cam-F100": {"dram_gb": 32, "peak_tops": 238, "power_w": 167.22, "dies": 2},
    "1080Ti": {"dram_gb": 11, "peak_tops": 10.6, "power_w": 199.90, "dies": 1},
    "V100": {"dram_gb": 16, "peak_tops": 125, "power_w": 248.32, "dies": 1},
    "TPU": {"dram_gb": 8, "peak_tops": 92, "power_w": float("nan"), "dies": 1},
}


def chip_comparison_table() -> List[str]:
    """Formatted Table-8 chip section, Cambricon-F columns from the model."""
    chips = fractal_chips() + list(ACCELERATOR_CHIPS.values())
    header = (f"{'Chip':10s} {'ISA':5s} {'Tech':5s} {'Mem':>7s} "
              f"{'Peak':>6s} {'Area':>7s} {'Power':>7s} "
              f"{'Tops/W':>7s} {'Tops/mm2':>9s}")
    rows = [header]
    for c in chips:
        pe = f"{c.power_efficiency:7.2f}" if c.power_efficiency else "      -"
        ae = f"{c.area_efficiency:9.2f}" if c.area_efficiency else "        -"
        pw = f"{c.power_w:7.2f}" if c.power_w else "      -"
        ar = f"{c.area_mm2:7.0f}" if c.area_mm2 else "      -"
        rows.append(
            f"{c.name:10s} {c.isa_type:5s} {c.technology:5s} "
            f"{c.memory_bytes / MB:6.1f}M {c.peak_tops:6.1f} {ar} {pw} {pe} {ae}"
        )
    return rows
