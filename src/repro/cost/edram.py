"""eDRAM cost model (a DESTINY-like fit; paper Section 3.6 / Table 4).

The paper simulates local storage with DESTINY [48] at TSMC 45 nm for
capacities up to 256 MB.  We fit simple power laws to the published design
points the paper itself provides:

* the leaf Core's 256 KB macro occupies 201,588 um^2 and draws 16.15 mW
  (Table 7), anchoring the small end;
* chip-level totals (Cambricon-F1: 29.2 mm^2 / 4.94 W with 8 MB;
  Cambricon-F100: 415 mm^2 / 42.9 W with 256 MB) anchor the large end
  after subtracting core and controller contributions.

Area scales slightly sub-linearly with capacity (peripheral amortization),
power more sub-linearly (banking keeps only part of the array active).
"""

from __future__ import annotations

MB = 1 << 20

#: area (mm^2) of a 1 MB eDRAM macro at 45 nm, from the 256 KB anchor:
#: 0.2016 mm^2 / 0.25 MB^0.95
_AREA_COEFF = 0.2016 / (0.25 ** 0.95)
_AREA_EXP = 0.95

#: power (mW) of a 1 MB macro: 16.15 mW / 0.25 MB^0.8
_POWER_COEFF = 16.15 / (0.25 ** 0.8)
_POWER_EXP = 0.8


def edram_area_mm2(capacity_bytes: int) -> float:
    """Die area of an eDRAM macro of the given capacity (45 nm)."""
    if capacity_bytes <= 0:
        return 0.0
    return _AREA_COEFF * (capacity_bytes / MB) ** _AREA_EXP


def edram_power_mw(capacity_bytes: int) -> float:
    """Average power (leakage + refresh + access) of an eDRAM macro."""
    if capacity_bytes <= 0:
        return 0.0
    return _POWER_COEFF * (capacity_bytes / MB) ** _POWER_EXP


def edram_bandwidth(capacity_bytes: int, base: float = 512 * (1 << 30)) -> float:
    """Deliverable bandwidth: wide eDRAM macros sustain the node bus rate
    (512 GB/s in every Cambricon-F level above the core) once they are at
    least a megabyte; tiny macros are port-limited."""
    if capacity_bytes >= MB:
        return base
    return base * capacity_bytes / MB


def edram_access_energy_pj_per_byte(capacity_bytes: int) -> float:
    """Dynamic access energy per byte, growing weakly with capacity
    (longer wires); anchored at ~1 pJ/B for the 256 KB leaf macro."""
    if capacity_bytes <= 0:
        return 0.0
    return 1.0 * (capacity_bytes / (256 << 10)) ** 0.15
