"""Hardware cost models: eDRAM (DESTINY-like), layout/power roll-ups
(Table 7), system comparisons (Table 8, Fig 1, Fig 16) and the Table-4
design-space explorer."""

from .compare import ACCELERATOR_CHIPS, CARD_COMPARISON, chip_comparison_table
from .dse import DesignPoint, explore_design_space, TABLE4_HIERARCHIES
from .edram import edram_area_mm2, edram_bandwidth, edram_power_mw
from .energy import EnergyReport, card_subsystem_power_w, estimate_energy
from .layout import (
    CORE_BREAKDOWN,
    chip_cost,
    core_cost,
    machine_cost,
    LayoutCost,
)
from .survey import (
    ACCELERATOR_EFFICIENCY_TREND,
    NVIDIA_GPU_TREND,
    annual_growth,
)

__all__ = [
    "ACCELERATOR_CHIPS",
    "CARD_COMPARISON",
    "chip_comparison_table",
    "DesignPoint",
    "explore_design_space",
    "TABLE4_HIERARCHIES",
    "edram_area_mm2",
    "edram_bandwidth",
    "edram_power_mw",
    "EnergyReport",
    "card_subsystem_power_w",
    "estimate_energy",
    "CORE_BREAKDOWN",
    "chip_cost",
    "core_cost",
    "machine_cost",
    "LayoutCost",
    "ACCELERATOR_EFFICIENCY_TREND",
    "NVIDIA_GPU_TREND",
    "annual_growth",
]
