"""Layout cost roll-up (paper Table 7).

The paper implements the design in RTL and places-and-routes at TSMC 45 nm
"up to chip level", then exploits the fractal structure to estimate large
designs bottom-up from smaller pieces.  We do the same arithmetic over the
published component characteristics:

* the leaf Core's component breakdown is taken directly from Table 7
  (426,348 um^2 / 75.18 mW split across memory, combinational logic,
  registers and others);
* each non-leaf node adds its local eDRAM (the DESTINY-like fit in
  :mod:`repro.cost.edram`) plus a per-child controller/interconnect slice
  (decoder pipeline, DMA engines, H-tree wiring), calibrated so the F1 and
  F100 chip totals land on the published 29.2 mm^2 / 4.94 W and
  415 mm^2 / 42.9 W.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.machine import Machine
from .edram import edram_area_mm2, edram_power_mw

#: Table 7 leaf-core breakdown: component -> (area um^2, power mW)
CORE_BREAKDOWN: Dict[str, tuple] = {
    "Memory": (201_588, 16.15),
    "Combinational": (176_228, 23.74),
    "Registers": (42_248, 27.38),
    "Others": (6_284, 8.38),
}

CORE_AREA_UM2 = sum(a for a, _ in CORE_BREAKDOWN.values())
CORE_POWER_MW = sum(p for _, p in CORE_BREAKDOWN.values())

#: Controller + interconnect cost of a node grows *superlinearly* with its
#: fan-out (wire congestion -- the paper's Section 2 motivation for limiting
#: connections to father-son links): modelled as coeff * fanout^1.5, i.e. a
#: distribution network between a crossbar (f^2) and a bus (f).  Calibrated
#: against the F1 chip: 29.206 mm^2 total - 32 cores - 8 MB eDRAM - 16 LFUs.
CTRL_AREA_COEFF_MM2 = 0.02
CTRL_POWER_COEFF_MW = 3.6
CTRL_FANOUT_EXP = 1.8
#: per-LFU vector-unit cost (a lightweight 32-lane unit)
LFU_AREA_MM2 = 0.12
LFU_POWER_MW = 25.0


def controller_area_mm2(fanout: int) -> float:
    return CTRL_AREA_COEFF_MM2 * fanout ** CTRL_FANOUT_EXP


def controller_power_mw(fanout: int) -> float:
    return CTRL_POWER_COEFF_MW * fanout ** CTRL_FANOUT_EXP


@dataclass(frozen=True)
class LayoutCost:
    """Area and power of a subtree rooted at some level."""

    name: str
    area_mm2: float
    power_w: float

    @property
    def power_mw(self) -> float:
        return self.power_w * 1e3


def core_cost() -> LayoutCost:
    """The leaf accelerator core (Table 7 top)."""
    return LayoutCost("Core", CORE_AREA_UM2 / 1e6, CORE_POWER_MW / 1e3)


def subtree_cost(machine: Machine, level: int) -> LayoutCost:
    """Silicon cost of one node at ``level`` including everything below."""
    spec = machine.level(level)
    if spec.is_leaf:
        return core_cost()
    child = subtree_cost(machine, level + 1)
    # Node memories of a gigabyte or more are off-chip DRAM (the 32 GB card
    # memory, the 1 TB host memory), not on-die eDRAM.
    on_die = spec.mem_bytes if spec.mem_bytes < (1 << 30) else 0
    area = (spec.fanout * child.area_mm2
            + edram_area_mm2(on_die)
            + controller_area_mm2(spec.fanout)
            + spec.n_lfus * LFU_AREA_MM2)
    power = (spec.fanout * child.power_w
             + edram_power_mw(on_die) / 1e3
             + controller_power_mw(spec.fanout) / 1e3
             + spec.n_lfus * LFU_POWER_MW / 1e3)
    return LayoutCost(spec.name, area, power)


def chip_cost(machine: Machine, chip_level_name: str = "Chip") -> LayoutCost:
    """Cost of the named level's subtree (default: the silicon chip)."""
    for i, spec in enumerate(machine.levels):
        if spec.name == chip_level_name:
            return subtree_cost(machine, i)
    raise KeyError(f"no level named {chip_level_name!r} in {machine.name}")


def machine_cost(machine: Machine) -> LayoutCost:
    """Cost of the whole machine's silicon (excludes host DRAM/CPU)."""
    return subtree_cost(machine, 0)


def table7_rows(machine_f1: Machine, machine_f100: Machine) -> List[str]:
    """Formatted Table-7 reproduction."""
    rows = [f"{'Component':16s} {'Area(um^2)':>12s} {'(%)':>8s} "
            f"{'Power(mW)':>10s} {'(%)':>8s}"]
    rows.append(f"{'Core':16s} {CORE_AREA_UM2:12,d} {'':8s} {CORE_POWER_MW:10.2f}")
    for comp, (area, power) in CORE_BREAKDOWN.items():
        rows.append(
            f"  {comp:14s} {area:12,d} {area / CORE_AREA_UM2:8.2%} "
            f"{power:10.2f} {power / CORE_POWER_MW:8.2%}"
        )
    rows.append("CHIP")
    # The Cambricon-F1 silicon chip is the FMP (Fig 14: "FMP (Cambricon-F1
    # Chip)"); its L0 "Chip" row in Table 6 carries the off-chip 32 GB DRAM.
    f1 = chip_cost(machine_f1, "FMP")
    f100 = chip_cost(machine_f100, "Chip")
    rows.append(f"{'Cambricon-F1':16s} {f1.area_mm2 * 1e6:12,.0f} {'':8s} "
                f"{f1.power_mw:10.2f}")
    rows.append(f"{'Cambricon-F100':16s} {f100.area_mm2 * 1e6:12,.0f} {'':8s} "
                f"{f100.power_mw:10.2f}")
    return rows
