"""Per-benchmark energy and average power (paper Section 5 methodology).

"For energy costs, we dump data movements from our simulator and estimate
memory costs with DESTINY, other parts are estimated based on our layout
characteristics."  This module does the same arithmetic:

* dynamic compute energy: arithmetic ops x per-op energy, calibrated from
  the leaf core's layout row (combinational + register power at its peak
  throughput);
* dynamic memory energy: bytes moved at every level (the simulator's
  traffic counters) x the eDRAM access energy for that level's macro size;
* static energy: the silicon's leakage/idle power (the layout model's
  roll-up, which is dominated by memory retention and clocked registers)
  integrated over the run time, plus the card DRAM interface.

The output is the average card power over a benchmark, comparable to the
paper's nvprof/wall-power measurements (F1 card: 83.1 W average across the
benchmarks; four F100 cards: 614.5 W).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.machine import Machine
from ..sim.simulator import SimReport
from .edram import edram_access_energy_pj_per_byte
from .layout import machine_cost

#: dynamic energy per arithmetic op (J).  Calibrated from the core layout
#: row: combinational + register power (51.1 mW) at 0.466 Tops sustained
#: gives ~0.11 pJ/op at 45 nm.
COMPUTE_PJ_PER_OP = 0.11

#: DRAM (card memory) access energy, ~20 pJ/B at DDR4-class interfaces.
DRAM_PJ_PER_BYTE = 20.0

#: fraction of the silicon's layout power that burns regardless of
#: activity (retention, clocks); the rest is activity-proportional and is
#: covered by the per-op / per-byte terms above.
STATIC_FRACTION = 0.55

#: card DRAM subsystem power: a GDDR-class interface burns roughly 0.135 W
#: per GB/s of provisioned bandwidth (so ~70 W for the 512 GB/s, 32 GB card
#: memory -- which is why the F1 *card* measures 83 W while its chip is
#: under 5 W), plus a small fixed board overhead.
DRAM_W_PER_GBS = 0.135
CARD_BOARD_W = 8.0
GB = 1 << 30


def card_subsystem_power_w(machine: Machine) -> float:
    """Power of the card-level DRAM interfaces and boards.

    Levels holding 1 GB..256 GB are card DRAM; anything larger is host
    memory, powered by the host and excluded (the paper's card-power
    measurements exclude the host too).
    """
    total = 0.0
    for i, spec in enumerate(machine.levels):
        if (1 << 30) <= spec.mem_bytes < (256 << 30):
            nodes = machine.nodes_at(i)
            total += nodes * (DRAM_W_PER_GBS * spec.mem_bandwidth / GB
                              + CARD_BOARD_W)
    return total


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one benchmark run on one machine."""

    machine: str
    benchmark: str
    total_time: float
    compute_j: float
    memory_j: float
    static_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.memory_j + self.static_j

    @property
    def average_power_w(self) -> float:
        return self.total_j / self.total_time if self.total_time else 0.0

    def breakdown(self) -> Dict[str, float]:
        total = self.total_j or 1.0
        return {
            "compute": self.compute_j / total,
            "memory": self.memory_j / total,
            "static": self.static_j / total,
        }


def estimate_energy(machine: Machine, report: SimReport,
                    benchmark: str = "") -> EnergyReport:
    """Energy of one simulated run.

    Memory traffic at level i is approximated from the per-level DMA busy
    time (the simulator's representative-path accounting) scaled by the
    node count at that level, times the level's access energy; the root's
    served traffic (exact) covers level 0.
    """
    compute_j = report.work * COMPUTE_PJ_PER_OP * 1e-12

    memory_j = 0.0
    # exact root-port traffic at DRAM cost
    memory_j += report.root_traffic * DRAM_PJ_PER_BYTE * 1e-12
    # per-level eDRAM traffic: busy seconds x level bandwidth x node count
    for level, busy in report.per_level_busy.items():
        spec = machine.level(level)
        if spec.mem_bytes >= (1 << 30):
            continue  # off-chip levels already covered by the DRAM term
        bytes_moved = busy.get("dma", 0.0) * spec.mem_bandwidth
        bytes_moved *= machine.nodes_at(level)
        pj = edram_access_energy_pj_per_byte(spec.mem_bytes)
        memory_j += bytes_moved * pj * 1e-12

    silicon = machine_cost(machine)
    idle_w = (STATIC_FRACTION * silicon.power_w
              + card_subsystem_power_w(machine))
    static_j = idle_w * report.total_time

    return EnergyReport(machine.name, benchmark, report.total_time,
                        compute_j, memory_j, static_j)
