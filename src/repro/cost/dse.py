"""Design-space exploration (paper Table 4, Section 3.6 "Memory size").

Compares Cambricon-F hierarchies at iso-capability (512 cores x 0.466 Tops
= 238 TFlops) on power, attainable performance, efficiency and area.  Each
design's per-level memory is sized with the MBOI rule:

    Peak/Bandwidth ~= MBOI_ref(M)   =>   M ~= MBOI_ref^-1(Peak/Bandwidth)

where the peak is the subtree's and the bandwidth is the share of the
parent port the subtree actually receives (parent bandwidth / fan-out).
Flat hierarchies hand each core a sliver of bandwidth, forcing enormous
per-node memories -- "the desired memory space to support such a dense
hierarchy is impractically large" -- while the controller/wiring cost of a
wide node grows superlinearly; that combination is what Table 4 shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.machine import CORE_PEAK_OPS, GB, Machine, custom_machine
from ..model.mboi import theoretical_mboi
from .layout import subtree_cost

#: Table 4's rows: node counts per level, top to bottom (512 cores each).
TABLE4_HIERARCHIES: Dict[str, List[int]] = {
    "1-512": [512],
    "1-2-16-512": [2, 8, 32],
    "1-4-16-512": [4, 4, 32],
    "1-4-16-64-512": [4, 4, 4, 8],
}

#: node-level bus bandwidth used throughout (bytes/s), as in Table 6
NODE_BANDWIDTH = 512 * GB


def mboi_ref(m_bytes: float) -> float:
    """The paper's MBOI_Ref: the average MBOI across representative
    algorithms (arithmetic mean of the theoretical MatMul / Conv / Pool
    curves)."""
    algos = ("MatMul", "Conv2D", "Pool2D")
    return sum(theoretical_mboi(a, m_bytes) for a in algos) / len(algos)


def mboi_ref_inverse(target_oi: float, lo: int = 1 << 14, hi: int = 1 << 36) -> int:
    """Smallest memory achieving MBOI_ref(M) >= target (monotone search)."""
    if mboi_ref(hi) < target_oi:
        return hi
    while lo < hi:
        mid = (lo + hi) // 2
        if mboi_ref(mid) >= target_oi:
            hi = mid
        else:
            lo = mid + 1
    return lo


def build_design(name: str, fanouts: Sequence[int],
                 core_peak_ops: float = CORE_PEAK_OPS) -> Machine:
    """Construct a Machine for one Table-4 hierarchy with MBOI-sized
    memories.

    Level i+1's memory is sized for the operational intensity its subtree
    needs given its bandwidth share of level i's port; the root gets the
    full node bandwidth from DRAM.
    """
    depth = len(fanouts) + 1
    cores = 1
    for f in fanouts:
        cores *= f
    mems: List[int] = []
    bandwidths: List[float] = [NODE_BANDWIDTH] * depth
    subtree_cores = cores
    feed_bw = NODE_BANDWIDTH  # what this level receives from above
    for i in range(depth):
        if i == 0:
            # The root buffers the whole working set in DRAM (32 GB, like
            # the shipped instances); MBOI sizes the *on-die* levels below.
            mems.append(32 * GB)
        else:
            peak = subtree_cores * core_peak_ops
            # Design margin: the measured MBOI runs ~2x below the closed
            # forms (Fig 10) and the decomposer pays per-step controller
            # overheads the model ignores, so size 4x past the knee; the
            # leaf never drops below the real core's 256 KB.
            sized = 4 * mboi_ref_inverse(peak / feed_bw)
            if i == depth - 1:
                sized = max(sized, 256 << 10)
            mems.append(sized)
        if i < len(fanouts):
            feed_bw = min(NODE_BANDWIDTH, NODE_BANDWIDTH / fanouts[i])
            subtree_cores //= fanouts[i]
    return custom_machine(name, list(fanouts), mems, bandwidths,
                          core_peak_ops=core_peak_ops)


@dataclass(frozen=True)
class DesignPoint:
    """One Table-4 row."""

    hierarchy: str
    machine: Machine
    power_w: float
    area_mm2: float
    performance_tops: Optional[float]  # None until simulated

    @property
    def efficiency_tops_per_j(self) -> Optional[float]:
        if self.performance_tops is None or not self.power_w:
            return None
        return self.performance_tops / self.power_w


def explore_design_space(
    performance_fn: Optional[Callable[[Machine], float]] = None,
    hierarchies: Optional[Dict[str, List[int]]] = None,
) -> List[DesignPoint]:
    """Build every hierarchy, cost it, and (optionally) measure attained
    performance with the supplied function (ops/s for the benchmark mix)."""
    out: List[DesignPoint] = []
    for name, fanouts in (hierarchies or TABLE4_HIERARCHIES).items():
        machine = build_design(name, fanouts)
        cost = subtree_cost(machine, 0)
        perf = None
        if performance_fn is not None:
            perf = performance_fn(machine) / 1e12
        out.append(DesignPoint(name, machine, cost.power_w, cost.area_mm2, perf))
    return out
