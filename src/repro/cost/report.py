"""Full-machine cost reports: per-level area/power breakdown by component.

Extends the Table-7 roll-up with the detail a designer actually wants --
which level and which component (cores, eDRAM, controllers/wiring, LFUs)
carries the silicon -- for any machine, including DSE candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.machine import Machine
from .edram import edram_area_mm2, edram_power_mw
from .layout import (
    LFU_AREA_MM2,
    LFU_POWER_MW,
    controller_area_mm2,
    controller_power_mw,
    core_cost,
    subtree_cost,
)


@dataclass(frozen=True)
class LevelCost:
    """Machine-wide cost contribution of one hierarchy level."""

    level: int
    name: str
    nodes: int
    memory_area_mm2: float
    memory_power_w: float
    controller_area_mm2: float
    controller_power_w: float
    lfu_area_mm2: float
    lfu_power_w: float
    core_area_mm2: float  # leaf level only
    core_power_w: float

    @property
    def area_mm2(self) -> float:
        return (self.memory_area_mm2 + self.controller_area_mm2
                + self.lfu_area_mm2 + self.core_area_mm2)

    @property
    def power_w(self) -> float:
        return (self.memory_power_w + self.controller_power_w
                + self.lfu_power_w + self.core_power_w)


def machine_cost_report(machine: Machine) -> List[LevelCost]:
    """Per-level cost rows for the whole machine (off-chip DRAM excluded)."""
    rows: List[LevelCost] = []
    for i, spec in enumerate(machine.levels):
        nodes = machine.nodes_at(i)
        on_die = spec.mem_bytes if spec.mem_bytes < (1 << 30) else 0
        if spec.is_leaf:
            leaf = core_cost()
            rows.append(LevelCost(
                level=i, name=spec.name, nodes=nodes,
                memory_area_mm2=0.0, memory_power_w=0.0,
                controller_area_mm2=0.0, controller_power_w=0.0,
                lfu_area_mm2=0.0, lfu_power_w=0.0,
                core_area_mm2=nodes * leaf.area_mm2,
                core_power_w=nodes * leaf.power_w,
            ))
        else:
            rows.append(LevelCost(
                level=i, name=spec.name, nodes=nodes,
                memory_area_mm2=nodes * edram_area_mm2(on_die),
                memory_power_w=nodes * edram_power_mw(on_die) / 1e3,
                controller_area_mm2=nodes * controller_area_mm2(spec.fanout),
                controller_power_w=nodes * controller_power_mw(spec.fanout) / 1e3,
                lfu_area_mm2=nodes * spec.n_lfus * LFU_AREA_MM2,
                lfu_power_w=nodes * spec.n_lfus * LFU_POWER_MW / 1e3,
                core_area_mm2=0.0, core_power_w=0.0,
            ))
    return rows


def format_cost_report(machine: Machine) -> str:
    """Human-readable breakdown; the footer cross-checks the roll-up."""
    rows = machine_cost_report(machine)
    lines = [f"silicon cost breakdown -- {machine.name}",
             f"{'level':10s} {'nodes':>6s} {'memory':>12s} {'ctrl/wire':>12s} "
             f"{'LFUs':>10s} {'cores':>12s} {'total':>12s}"]
    for r in rows:
        lines.append(
            f"L{r.level} {r.name:7s} {r.nodes:6d} "
            f"{r.memory_area_mm2:7.1f}mm2 {r.controller_area_mm2:9.2f}mm2 "
            f"{r.lfu_area_mm2:7.2f}mm2 {r.core_area_mm2:9.1f}mm2 "
            f"{r.area_mm2:9.1f}mm2"
        )
    total_area = sum(r.area_mm2 for r in rows)
    total_power = sum(r.power_w for r in rows)
    rollup = subtree_cost(machine, 0)
    lines.append(f"{'total':10s} {'':6s} {'':12s} {'':12s} {'':10s} {'':12s} "
                 f"{total_area:9.1f}mm2")
    lines.append(f"power: {total_power:.2f} W  "
                 f"(roll-up cross-check: {rollup.area_mm2:.1f} mm2 / "
                 f"{rollup.power_w:.2f} W)")
    return "\n".join(lines)
