"""Published survey data: accelerator power-efficiency trend (Fig 1) and
NVIDIA GPU cores/bandwidth growth (Fig 16), plus growth-rate fits.

These figures are literature summaries, not measurements of the authors'
system; the data points below are the published numbers the paper plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class AcceleratorPoint:
    """One accelerator on the Fig-1 efficiency timeline."""

    year: int
    name: str
    tops_per_watt: float
    technology: str


#: Fig 1: the most efficient accelerator proposed in each year 2012-2018.
ACCELERATOR_EFFICIENCY_TREND: List[AcceleratorPoint] = [
    AcceleratorPoint(2012, "NeuFlow", 0.23, "IBM 45nm"),
    AcceleratorPoint(2013, "QP-Vector", 0.48, "45nm"),
    AcceleratorPoint(2014, "DianNao", 0.93, "65nm"),  # 4.05x over NeuFlow
    AcceleratorPoint(2015, "ShiDianNao", 2.55, "65nm"),
    AcceleratorPoint(2016, "Eyeriss", 3.62, "65nm"),
    AcceleratorPoint(2017, "Envision", 10.0, "28nm FDSOI"),
    AcceleratorPoint(2018, "Conv-RAM", 28.1, "65nm"),  # 1213x over 2012
]


@dataclass(frozen=True)
class GPUPoint:
    """One GPU on the Fig-16 growth chart."""

    year: int
    name: str
    cores: int
    bandwidth_gb_s: float


#: Fig 16: NVIDIA flagship GPUs since 2009.
NVIDIA_GPU_TREND: List[GPUPoint] = [
    GPUPoint(2009, "GTX 285", 240, 159.0),
    GPUPoint(2010, "GTX 480", 480, 177.4),
    GPUPoint(2011, "GTX 580", 512, 192.4),
    GPUPoint(2012, "GTX 680", 1536, 192.3),
    GPUPoint(2013, "GTX 780 Ti", 2880, 336.0),
    GPUPoint(2014, "GTX 980", 2048, 224.0),
    GPUPoint(2015, "GTX 980 Ti", 2816, 336.5),
    GPUPoint(2016, "GTX 1080", 2560, 320.0),
    GPUPoint(2017, "GTX 1080 Ti", 3584, 484.0),
    GPUPoint(2018, "RTX 2080 Ti", 4352, 616.0),
]


def annual_growth(points: Sequence[Tuple[int, float]]) -> float:
    """Geometric-mean annual growth factor of (year, value) samples."""
    if len(points) < 2:
        raise ValueError("need at least two samples")
    pts = sorted(points)
    (y0, v0), (y1, v1) = pts[0], pts[-1]
    if y1 == y0 or v0 <= 0 or v1 <= 0:
        raise ValueError("degenerate samples")
    return (v1 / v0) ** (1.0 / (y1 - y0))


def efficiency_growth() -> float:
    """Fig 1's headline: efficiency grows ~3.2x per year."""
    return annual_growth([(p.year, p.tops_per_watt)
                          for p in ACCELERATOR_EFFICIENCY_TREND])


def gpu_core_growth(first_year: int, last_year: int) -> float:
    """Core-count growth over a year span (67.6%/yr 2009-13; 8.8%/yr after)."""
    pts = [(p.year, float(p.cores)) for p in NVIDIA_GPU_TREND
           if first_year <= p.year <= last_year]
    return annual_growth(pts)


def gpu_bandwidth_growth() -> float:
    """Bandwidth growth over the whole span (~15% annually)."""
    return annual_growth([(p.year, p.bandwidth_gb_s) for p in NVIDIA_GPU_TREND])
