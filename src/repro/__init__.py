"""repro -- a reproduction of Cambricon-F (ISCA 2019).

Cambricon-F is a series of machine-learning computers with a *fractal von
Neumann architecture*: every node is a von Neumann machine whose processing
components are smaller Cambricon-F machines running the same ISA.  This
package rebuilds the whole system in Python:

* :mod:`repro.core` -- FISA (the fractal ISA), region algebra, the Table-2
  decomposition rules, machine configurations and a functional executor.
* :mod:`repro.ops` -- numpy reference semantics for every FISA operation.
* :mod:`repro.sim` -- the 5-stage FISA pipeline timing simulator (TTT,
  broadcasting, pipeline concatenation, the Fig-9 memory allocator).
* :mod:`repro.model` -- roofline, MBOI and GPU baseline analytic models.
* :mod:`repro.cost` -- eDRAM/layout/energy cost models and the Table-4
  design-space explorer.
* :mod:`repro.workloads` -- the seven paper benchmarks compiled to FISA.
* :mod:`repro.frontend` -- a FISA text assembler (Fig-11 style programs).
* :mod:`repro.analysis` -- the FISA static analyzer: shape/dtype
  type-checking, def-use/liveness and decomposition-hazard detection with
  stable ``F0xx`` codes (``python -m repro lint``).
"""

from .analysis import AnalysisError, AnalysisResult, analyze, analyze_workload
from .core import (
    FractalExecutor,
    Instruction,
    Machine,
    Opcode,
    Region,
    SourceLoc,
    Tensor,
    TensorStore,
    cambricon_f1,
    cambricon_f100,
    custom_machine,
)
from .core.verify import verify_program, verify_suite

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "AnalysisResult",
    "analyze",
    "analyze_workload",
    "FractalExecutor",
    "Instruction",
    "Machine",
    "Opcode",
    "Region",
    "SourceLoc",
    "Tensor",
    "TensorStore",
    "cambricon_f1",
    "cambricon_f100",
    "custom_machine",
    "verify_program",
    "verify_suite",
    "__version__",
]
