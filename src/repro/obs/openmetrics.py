"""OpenMetrics/Prometheus text-format rendering of a CounterRegistry.

:func:`render_openmetrics` turns every instrument in a
:class:`repro.telemetry.CounterRegistry` into the Prometheus exposition
format (text/plain; version=0.0.4, OpenMetrics-compatible modulo the
``# EOF`` trailer, which we emit):

* dotted instrument names become ``repro_``-prefixed snake case
  (``sim.sig_cache.hits`` -> ``repro_sim_sig_cache_hits``);
* counters gain the ``_total`` suffix;
* histograms render cumulative ``_bucket{le="..."}`` series from the
  power-of-two buckets plus ``_sum``/``_count``;
* label values are escaped per the spec (backslash, quote, newline);
* non-finite values are refused (rendered as 0 with a ``nonfinite`` note)
  so scrapes never poison downstream rate() math.

:func:`check_openmetrics` is the strict line-format checker the tests (and
any paranoid caller) run over rendered output: it validates HELP/TYPE
lines, metric-name and label grammar, escaping, value finiteness, counter
``_total`` discipline, histogram bucket monotonicity, and the ``# EOF``
trailer.  It returns a list of problems, empty when the text is clean.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from ..telemetry.counters import Counter, CounterRegistry, Gauge, Histogram

#: prefix stamped onto every exported metric family.
METRIC_PREFIX = "repro_"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: one sample line: name{labels} value  (labels optional)
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$")
_LABEL_PAIR_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def metric_name(dotted: str) -> str:
    """``sim.sig_cache.hits`` -> ``repro_sim_sig_cache_hits``."""
    safe = re.sub(r"[^a-zA-Z0-9_]", "_", dotted)
    if not safe or not (safe[0].isalpha() or safe[0] == "_"):
        safe = "_" + safe
    return METRIC_PREFIX + safe


def escape_label_value(value: str) -> str:
    """Escape per the exposition format: backslash, quote, newline."""
    return (value.replace("\\", r"\\")
                 .replace('"', r"\"")
                 .replace("\n", r"\n"))


def _fmt_value(v: float) -> str:
    """Render one sample value; non-finite values are clamped to 0."""
    if isinstance(v, bool):
        v = int(v)
    if not math.isfinite(v):
        return "0"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _label_str(labels: Tuple[Tuple[str, str], ...],
               extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{re.sub(r"[^a-zA-Z0-9_]", "_", k)}="{escape_label_value(str(v))}"'
        for k, v in pairs)
    return "{" + inner + "}"


def render_openmetrics(
    registry: CounterRegistry,
    extra_gauges: Optional[Dict[str, Tuple[float, str]]] = None,
) -> str:
    """Render every instrument (plus ``extra_gauges``) as exposition text.

    ``extra_gauges`` maps an already-exported metric name (no prefix is
    added) to ``(value, help_text)`` -- the server uses it for heartbeat /
    health gauges that live outside the registry.
    """
    families: Dict[str, Dict[str, object]] = {}
    for inst in registry:
        fam = families.setdefault(inst.name, {"kind": None, "series": []})
        if isinstance(inst, Counter):
            kind = "counter"
        elif isinstance(inst, Gauge):
            kind = "gauge"
        elif isinstance(inst, Histogram):
            kind = "histogram"
        else:  # pragma: no cover - registry only holds the three kinds
            continue
        fam["kind"] = kind
        fam["series"].append(inst)

    lines: List[str] = []
    for dotted in sorted(families):
        fam = families[dotted]
        kind = fam["kind"]
        name = metric_name(dotted)
        lines.append(f"# HELP {name} repro instrument {dotted}")
        lines.append(f"# TYPE {name} {kind}")
        for inst in fam["series"]:
            if kind == "counter":
                lines.append(f"{name}_total{_label_str(inst.labels)} "
                             f"{_fmt_value(inst.value)}")
            elif kind == "gauge":
                lines.append(f"{name}{_label_str(inst.labels)} "
                             f"{_fmt_value(inst.value)}")
            else:
                lines.extend(_render_histogram(name, inst))

    for name, (value, help_text) in sorted((extra_gauges or {}).items()):
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt_value(value)}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _render_histogram(name: str, hist: Histogram) -> List[str]:
    """Cumulative le-bucket lines from the power-of-two buckets."""
    out: List[str] = []
    cumulative = 0
    for exponent in sorted(hist.buckets):
        cumulative += hist.buckets[exponent]
        le = _fmt_value(float(2 ** exponent))
        out.append(f"{name}_bucket{_label_str(hist.labels, (('le', le),))} "
                   f"{cumulative}")
    out.append(f"{name}_bucket{_label_str(hist.labels, (('le', '+Inf'),))} "
               f"{hist.count}")
    total = hist.total if math.isfinite(hist.total) else 0.0
    out.append(f"{name}_sum{_label_str(hist.labels)} {_fmt_value(total)}")
    out.append(f"{name}_count{_label_str(hist.labels)} {hist.count}")
    return out


# ---------------------------------------------------------------------------
# Strict line-format checker
# ---------------------------------------------------------------------------


_HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def _family_of(sample_name: str, types: Dict[str, str]) -> Optional[str]:
    """Resolve a sample name back to its declared family."""
    if sample_name in types:
        return sample_name
    if sample_name.endswith("_total") and sample_name[:-6] in types:
        return sample_name[:-6]
    for suffix in _HIST_SUFFIXES:
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in types:
            return sample_name[: -len(suffix)]
    return None


def _parse_labels(raw: str) -> Optional[List[Tuple[str, str]]]:
    """Parse a label body strictly; None on grammar violation."""
    pairs: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(raw):
        m = _LABEL_PAIR_RE.match(raw, pos)
        if m is None:
            return None
        pairs.append((m.group("name"), m.group("value")))
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                return None
            pos += 1
    return pairs


def check_openmetrics(text: str) -> List[str]:
    """Strictly validate exposition text; returns problems (empty = ok)."""
    problems: List[str] = []
    types: Dict[str, str] = {}
    helped: Dict[str, bool] = {}
    bucket_state: Dict[str, int] = {}
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        problems.append("missing '# EOF' trailer")
    body = lines[:-1] if lines and lines[-1].strip() == "# EOF" else lines
    for lineno, line in enumerate(body, 1):
        if not line:
            problems.append(f"line {lineno}: blank line")
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 4 or parts[0] != "#" or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {lineno}: malformed comment {line!r}")
                continue
            _, keyword, name, rest = parts
            if not _NAME_RE.match(name):
                problems.append(f"line {lineno}: bad metric name {name!r}")
                continue
            if keyword == "TYPE":
                if rest not in ("counter", "gauge", "histogram", "summary",
                                "untyped", "info"):
                    problems.append(f"line {lineno}: unknown type {rest!r}")
                if name in types:
                    problems.append(f"line {lineno}: duplicate TYPE for {name}")
                types[name] = rest
            else:
                helped[name] = True
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"line {lineno}: unparsable sample {line!r}")
            continue
        name, raw_labels, raw_value = (m.group("name"), m.group("labels"),
                                       m.group("value"))
        labels: List[Tuple[str, str]] = []
        if raw_labels is not None:
            parsed = _parse_labels(raw_labels)
            if parsed is None:
                problems.append(f"line {lineno}: bad label grammar "
                                f"{{{raw_labels}}}")
                continue
            labels = parsed
            seen = set()
            for label_name, _ in labels:
                if not _LABEL_NAME_RE.match(label_name):
                    problems.append(f"line {lineno}: bad label name "
                                    f"{label_name!r}")
                if label_name in seen:
                    problems.append(f"line {lineno}: duplicate label "
                                    f"{label_name!r}")
                seen.add(label_name)
        le = dict(labels).get("le")
        try:
            value = float(raw_value)
        except ValueError:
            problems.append(f"line {lineno}: unparsable value {raw_value!r}")
            continue
        if not math.isfinite(value):
            problems.append(f"line {lineno}: non-finite value {raw_value!r}")
        family = _family_of(name, types)
        if family is None:
            problems.append(f"line {lineno}: sample {name!r} has no TYPE "
                            f"declaration")
            continue
        kind = types[family]
        if kind == "counter":
            if not name.endswith("_total"):
                problems.append(f"line {lineno}: counter sample {name!r} "
                                f"must end in _total")
            if value < 0:
                problems.append(f"line {lineno}: negative counter {value!r}")
        if kind == "histogram" and name.endswith("_bucket"):
            if le is None:
                problems.append(f"line {lineno}: histogram bucket without "
                                f"an le label")
            key = family + _label_str(
                tuple(p for p in labels if p[0] != "le"))
            prev = bucket_state.get(key, -1)
            if value < prev:
                problems.append(f"line {lineno}: bucket counts not "
                                f"monotonic for {family}")
            bucket_state[key] = value
    for name in types:
        if name not in helped:
            problems.append(f"family {name}: TYPE without HELP")
    return problems
