"""``repro.obs`` -- in-flight and post-mortem observability.

The telemetry layer (:mod:`repro.telemetry`) counts and times; this layer
makes a run **operable**: a schema-versioned structured event log with
propagated run context, a flight recorder that dumps crash bundles when a
run dies, a live ``/metrics`` + ``/healthz`` + ``/events`` + ``/alerts``
HTTP endpoint with a stall watchdog and SLO rule engine, and a
longitudinal layer -- the run ledger, the run-history store and the
perf-trend sentinel -- that remembers runs and flags statistical
regressions across them.  See docs/OBSERVABILITY.md for the event
schema, the crash-bundle layout and the watchdog semantics.

Like the registry and the tracer, everything here is **disabled by
default** and the instrumented hot paths pay a single flag check (the
<5% overhead budget from docs/TELEMETRY.md covers all three subsystems).

Quick start::

    from repro import obs, telemetry

    telemetry.enable()
    obs.get_event_log().enable()
    with obs.observed_run("mm_fc", machine="Cambricon-F1",
                          crash_dir="crash_bundles") as recorder:
        ...run the workload...
"""

from __future__ import annotations

from contextlib import contextmanager

from .events import (
    EVENT_SCHEMA,
    EVENT_SCHEMA_VERSION,
    SEVERITIES,
    SEVERITY_RANK,
    EventLog,
    SubsystemLogger,
    current_context,
    event_context,
    events_summary,
    get_event_log,
    iter_jsonl,
    log_event,
    logger,
)
from .flight import (
    BUNDLE_SCHEMA,
    BUNDLE_SCHEMA_VERSION,
    FlightRecorder,
    crash_scope,
    read_bundle_manifest,
)
from .history import (
    HISTORY_SCHEMA,
    HISTORY_SCHEMA_VERSION,
    RunHistory,
    default_history_dir,
    get_history,
    history_enabled,
    points_from_report,
    points_from_row,
    record_points,
    record_report_history,
    record_row_history,
)
from .ledger import (
    LEDGER_SCHEMA,
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    default_ledger_dir,
    get_ledger,
    ledger_enabled,
    record_report,
    record_run,
)
from .sentinel import (
    SENTINEL_SCHEMA,
    SENTINEL_SCHEMA_VERSION,
    POLARITY_TABLE,
    SentinelConfig,
    SentinelEntry,
    SentinelResult,
    analyze_history,
    detect_series,
    format_table,
    metric_polarity,
    render_trend_html,
    sentinel_document,
)
from .slo import (
    ALERTS_SCHEMA,
    ALERTS_SCHEMA_VERSION,
    SLOEngine,
    SLORule,
    empty_alerts_document,
    parse_slo_rule,
)
from .flame import (
    DEFAULT_DIFF_THRESHOLD,
    FLAME_DIFF_SCHEMA,
    FLAME_DIFF_SCHEMA_VERSION,
    FlameDiffEntry,
    FlameDiffResult,
    diff_profiles,
    format_top_table,
    render_flamegraph_html,
    top_table,
)
from .openmetrics import (
    METRIC_PREFIX,
    check_openmetrics,
    escape_label_value,
    metric_name,
    render_openmetrics,
)
from .server import (
    MetricsServer,
    Watchdog,
    beat,
    get_watchdog,
    install_watchdog,
)
from .prof import (
    PROFILE_SCHEMA,
    PROFILE_SCHEMA_VERSION,
    SamplingProfiler,
    active_profile_summary,
    clear_step,
    collapsed_lines,
    get_profiler,
    merge_profiles,
    profile_summary,
    profiling,
    record_profile,
    set_step,
    step_scope,
    validate_profile,
)
from .tail import (
    filter_events,
    follow_events,
    format_event,
    format_events,
    load_events,
    parse_since,
)
from .top import fetch_metrics, format_top, frame_doc, parse_exposition, run_top
from .trace import (
    TraceContext,
    current_trace,
    current_trace_id,
    ensure_trace,
    new_span_id,
    new_trace_id,
    trace_scope,
)
from .worker import (
    WorkerTelemetry,
    build_wire,
    merge_worker_telemetry,
    worker_capture,
)

__all__ = [
    "EVENT_SCHEMA",
    "EVENT_SCHEMA_VERSION",
    "SEVERITIES",
    "SEVERITY_RANK",
    "EventLog",
    "SubsystemLogger",
    "current_context",
    "event_context",
    "events_summary",
    "get_event_log",
    "iter_jsonl",
    "log_event",
    "logger",
    "BUNDLE_SCHEMA",
    "BUNDLE_SCHEMA_VERSION",
    "FlightRecorder",
    "crash_scope",
    "read_bundle_manifest",
    "LEDGER_SCHEMA",
    "LEDGER_SCHEMA_VERSION",
    "RunLedger",
    "default_ledger_dir",
    "get_ledger",
    "ledger_enabled",
    "record_report",
    "record_run",
    "HISTORY_SCHEMA",
    "HISTORY_SCHEMA_VERSION",
    "RunHistory",
    "default_history_dir",
    "get_history",
    "history_enabled",
    "points_from_report",
    "points_from_row",
    "record_points",
    "record_report_history",
    "record_row_history",
    "SENTINEL_SCHEMA",
    "SENTINEL_SCHEMA_VERSION",
    "POLARITY_TABLE",
    "SentinelConfig",
    "SentinelEntry",
    "SentinelResult",
    "analyze_history",
    "detect_series",
    "format_table",
    "metric_polarity",
    "render_trend_html",
    "sentinel_document",
    "ALERTS_SCHEMA",
    "ALERTS_SCHEMA_VERSION",
    "SLOEngine",
    "SLORule",
    "empty_alerts_document",
    "parse_slo_rule",
    "TraceContext",
    "current_trace",
    "current_trace_id",
    "ensure_trace",
    "new_span_id",
    "new_trace_id",
    "trace_scope",
    "WorkerTelemetry",
    "build_wire",
    "merge_worker_telemetry",
    "worker_capture",
    "PROFILE_SCHEMA",
    "PROFILE_SCHEMA_VERSION",
    "SamplingProfiler",
    "active_profile_summary",
    "clear_step",
    "collapsed_lines",
    "get_profiler",
    "merge_profiles",
    "profile_summary",
    "profiling",
    "record_profile",
    "set_step",
    "step_scope",
    "validate_profile",
    "DEFAULT_DIFF_THRESHOLD",
    "FLAME_DIFF_SCHEMA",
    "FLAME_DIFF_SCHEMA_VERSION",
    "FlameDiffEntry",
    "FlameDiffResult",
    "diff_profiles",
    "format_top_table",
    "render_flamegraph_html",
    "top_table",
    "frame_doc",
    "METRIC_PREFIX",
    "check_openmetrics",
    "escape_label_value",
    "metric_name",
    "render_openmetrics",
    "MetricsServer",
    "Watchdog",
    "beat",
    "get_watchdog",
    "install_watchdog",
    "filter_events",
    "follow_events",
    "format_event",
    "format_events",
    "load_events",
    "parse_since",
    "fetch_metrics",
    "format_top",
    "parse_exposition",
    "run_top",
    "observed_run",
]


@contextmanager
def observed_run(benchmark: str, machine: str = "unknown",
                 crash_dir: str = "crash_bundles", config=None):
    """One-stop scope for an operable run.

    Arms a :class:`FlightRecorder` (crash bundles under ``crash_dir``),
    stamps ``run``-level event context, and marks the registry before and
    after so the bundle's counter deltas bracket the run.  Telemetry and
    the event log keep their caller-chosen enabled states -- this scope
    only wires the pieces together.
    """
    recorder = FlightRecorder()
    recorder.report_context.update({"benchmark": benchmark, "machine": machine})
    with event_context(benchmark=benchmark, machine=machine):
        with crash_scope(crash_dir, reason=f"run-{benchmark}",
                         recorder=recorder, config=config):
            recorder.mark("run.start")
            yield recorder
            recorder.mark("run.end")
