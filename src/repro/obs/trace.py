"""Cross-process trace context: one ``trace_id`` per logical run.

Cambricon-F's fractal isomorphism gives every run a natural hierarchical
trace -- one context decomposed across levels -- and, with
``run_sweep(workers=N)``, across *processes*.  A :class:`TraceContext`
is the correlation key that survives both boundaries:

* ``trace_id`` names the whole logical run (a sweep, a profile, a
  serving request); every span, event, counter bundle and ledger row it
  produces -- in any process -- carries the same id;
* ``span_id`` names the unit of work that *spawned* the current one, so
  a worker's telemetry can be re-attached under its parent;
* ``worker`` is set in pool children (the cell index), ``None`` in the
  parent.

Like the event log's run context the current trace is contextvars-backed
(:func:`trace_scope` / :func:`current_trace`), and :func:`trace_scope`
also pushes ``trace_id`` (plus ``worker`` when set) onto the structured
event context, so every event emitted inside the scope is joinable on
the trace id with zero extra plumbing.  ``to_wire()`` / ``from_wire()``
serialize a context into the plain-dict payload ``run_sweep`` ships to
each ``ProcessPoolExecutor`` worker.
"""

from __future__ import annotations

import contextvars
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Optional

from .events import event_context

#: hex length of a trace id (uuid4) and of a span id (its prefix).
TRACE_ID_HEX = 32
SPAN_ID_HEX = 16


def new_trace_id() -> str:
    """A fresh 32-hex trace id (uuid4, no dashes)."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex span id."""
    return uuid.uuid4().hex[:SPAN_ID_HEX]


@dataclass(frozen=True)
class TraceContext:
    """Immutable correlation key for one logical run (see module doc)."""

    trace_id: str
    span_id: str
    worker: Optional[int] = None

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context (new trace id, new root span id)."""
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    def child(self, worker: Optional[int] = None) -> "TraceContext":
        """A child context: same trace, fresh span id, optional worker."""
        return TraceContext(trace_id=self.trace_id, span_id=new_span_id(),
                            worker=worker)

    # -- wire format (ships across process boundaries) ----------------------

    def to_wire(self) -> Dict[str, object]:
        wire: Dict[str, object] = {"trace_id": self.trace_id,
                                   "span_id": self.span_id}
        if self.worker is not None:
            wire["worker"] = int(self.worker)
        return wire

    @classmethod
    def from_wire(cls, wire: Dict[str, object]) -> "TraceContext":
        worker = wire.get("worker")
        return cls(
            trace_id=str(wire.get("trace_id") or new_trace_id()),
            span_id=str(wire.get("span_id") or new_span_id()),
            worker=int(worker) if worker is not None else None,
        )


#: the trace context active in this task/thread (None outside any scope).
_TRACE: contextvars.ContextVar[Optional[TraceContext]] = \
    contextvars.ContextVar("repro_obs_trace", default=None)


def current_trace() -> Optional[TraceContext]:
    """The trace context active right now, or None."""
    return _TRACE.get()


def current_trace_id() -> Optional[str]:
    """Shorthand for ``current_trace().trace_id`` (None outside a scope)."""
    ctx = _TRACE.get()
    return ctx.trace_id if ctx is not None else None


@contextmanager
def trace_scope(ctx: Optional[TraceContext] = None, **event_fields):
    """Install ``ctx`` (a fresh root context by default) for the block.

    Also pushes ``trace_id`` -- and ``worker`` when the context carries
    one -- onto the structured event context, so every event emitted
    inside the scope is joinable on the trace id.  Extra ``event_fields``
    ride along on the same event-context frame.
    """
    if ctx is None:
        ctx = TraceContext.new()
    token = _TRACE.set(ctx)
    fields: Dict[str, object] = {"trace_id": ctx.trace_id, **event_fields}
    if ctx.worker is not None:
        fields["worker"] = ctx.worker
    try:
        with event_context(**fields):
            yield ctx
    finally:
        _TRACE.reset(token)


@contextmanager
def ensure_trace(**event_fields):
    """Yield the current trace context, entering a fresh root one if none.

    The common entry-point idiom: commands and sweeps correlate under an
    enclosing trace when one is active (e.g. a serving tier wrapping many
    runs), and mint their own otherwise.
    """
    ctx = _TRACE.get()
    if ctx is not None:
        yield ctx
        return
    with trace_scope(**event_fields) as fresh:
        yield fresh
