"""Flamegraph rendering and gated diffing over ``repro.obs.profile`` docs.

Three consumers of the sampling profiler's document (:mod:`repro.obs.prof`):

* :func:`render_flamegraph_html` -- a **self-contained** HTML flamegraph
  (inline CSS, absolutely-positioned divs, hover tooltips; no JavaScript,
  no external assets), so the artifact opens anywhere, including straight
  from a CI artifact download;
* :func:`top_table` / :func:`format_top_table` -- the classic top-N
  self/cumulative frame table;
* :func:`diff_profiles` -- an attribution-share delta between two
  profiles with the same exit-code contract as ``repro diff`` /
  ``tools/perf_gate.py``: **0** pass, **3** gated regression (2 is the
  CLI's usage/IO/validation error).  Shares (fraction of total samples)
  rather than raw counts are compared, so profiles of different lengths
  diff meaningfully; a *regression* is any span/opcode/level/frame whose
  share grew by more than ``threshold`` (absolute share points).
"""

from __future__ import annotations

import html
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .prof import NONE_KEY

FLAME_DIFF_SCHEMA = "repro.obs.profile_diff"
FLAME_DIFF_SCHEMA_VERSION = 1

#: default gate: a share moving more than 5 points fails the diff.
DEFAULT_DIFF_THRESHOLD = 0.05

#: frames narrower than this fraction of the root are omitted from the
#: rendered flamegraph (they would be sub-pixel anyway).
MIN_RENDER_FRACTION = 0.0005

_ROW_PX = 17


# ---------------------------------------------------------------------------
# flamegraph tree + HTML rendering
# ---------------------------------------------------------------------------


class _Node:
    __slots__ = ("name", "value", "children")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.children: Dict[str, _Node] = {}


def _build_tree(doc: Dict[str, object]) -> _Node:
    root = _Node("all")
    for stack in doc.get("stacks") or []:
        count = int(stack.get("count", 0))
        root.value += count
        node = root
        for frame in stack.get("frames") or []:
            name = str(frame)
            child = node.children.get(name)
            if child is None:
                child = node.children[name] = _Node(name)
            child.value += count
            node = child
    return root


def _color(name: str) -> str:
    """Deterministic warm color per frame name (classic flamegraph look)."""
    hue = zlib.crc32(name.encode("utf-8")) % 55  # red..yellow band
    return f"hsl({hue},78%,62%)"


def render_flamegraph_html(doc: Dict[str, object],
                           title: Optional[str] = None) -> str:
    """One self-contained HTML page: header, flamegraph, top table."""
    root = _build_tree(doc)
    total = max(root.value, 1)
    cells: List[Tuple[int, float, float, str, int]] = []
    max_depth = 0
    omitted = 0

    def walk(node: _Node, depth: int, x: float) -> None:
        nonlocal max_depth, omitted
        for name in sorted(node.children):
            child = node.children[name]
            frac = child.value / total
            if frac < MIN_RENDER_FRACTION:
                omitted += child.value
                x += frac
                continue
            cells.append((depth, x, frac, name, child.value))
            max_depth = max(max_depth, depth)
            walk(child, depth + 1, x)
            x += frac

    walk(root, 0, 0.0)

    subject = " / ".join(str(doc[k]) for k in ("benchmark", "machine")
                         if doc.get(k))
    heading = html.escape(title or (f"repro flame -- {subject}" if subject
                                    else "repro flame"))
    hz = doc.get("hz", "?")
    samples = int(doc.get("samples", 0))
    duration = doc.get("duration_s")
    duration_str = (f"{duration:.2f}s" if isinstance(duration, (int, float))
                    else "?")
    meta_bits = [f"{samples} samples", f"{hz} Hz", duration_str]
    if doc.get("trace_id"):
        meta_bits.append(f"trace {str(doc['trace_id'])[:16]}")
    if omitted:
        meta_bits.append(f"{omitted} samples in frames &lt;"
                         f"{MIN_RENDER_FRACTION:.2%} omitted")

    divs: List[str] = []
    for depth, x, frac, name, value in cells:
        pct = 100.0 * value / total
        tip = html.escape(f"{name} — {value} samples ({pct:.2f}%)", quote=True)
        label = html.escape(name) if frac > 0.03 else ""
        divs.append(
            f'<div class="f" title="{tip}" style="left:{x * 100:.4f}%;'
            f'width:{frac * 100:.4f}%;top:{depth * _ROW_PX}px;'
            f'background:{_color(name)}">{label}</div>')

    rows = format_top_table(doc, limit=25)
    attribution = doc.get("attribution") or {}
    attr_rows: List[str] = []
    for key in ("spans", "opcodes", "levels", "workers"):
        table = attribution.get(key)
        if not isinstance(table, dict) or not table:
            continue
        top = sorted(table.items(), key=lambda kv: (-int(kv[1]), kv[0]))[:6]
        cellstr = ", ".join(
            f"{html.escape(str(k))} {100.0 * int(v) / max(samples, 1):.1f}%"
            for k, v in top)
        attr_rows.append(f"<tr><th>{key}</th><td>{cellstr}</td></tr>")

    height = (max_depth + 1) * _ROW_PX
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{heading}</title>
<style>
body {{ font: 13px/1.4 -apple-system, 'Segoe UI', sans-serif; margin: 16px; }}
h1 {{ font-size: 16px; margin: 0 0 4px; }}
.meta {{ color: #666; margin-bottom: 12px; }}
.graph {{ position: relative; height: {height}px; border: 1px solid #ddd;
          background: #fafafa; }}
.f {{ position: absolute; height: {_ROW_PX - 1}px; overflow: hidden;
      white-space: nowrap; font-size: 11px; box-sizing: border-box;
      border-right: 1px solid rgba(255,255,255,.6); padding: 0 2px;
      text-overflow: ellipsis; }}
table {{ border-collapse: collapse; margin-top: 14px; }}
th, td {{ text-align: left; padding: 2px 10px 2px 0; font-size: 12px; }}
pre {{ font-size: 12px; }}
</style></head><body>
<h1>{heading}</h1>
<div class="meta">{' &middot; '.join(meta_bits)}</div>
<div class="graph">
{''.join(divs)}
</div>
<table>{''.join(attr_rows)}</table>
<pre>{html.escape(rows)}</pre>
</body></html>
"""


# ---------------------------------------------------------------------------
# top-N self/cumulative table
# ---------------------------------------------------------------------------


def frame_shares(doc: Dict[str, object]) -> Tuple[Dict[str, int], Dict[str, int]]:
    """``(self_counts, cumulative_counts)`` per frame label.

    Self = samples where the frame is the leaf; cumulative = samples where
    it appears anywhere in the stack (counted once per stack, so recursion
    does not overcount).
    """
    self_counts: Dict[str, int] = {}
    cum_counts: Dict[str, int] = {}
    for stack in doc.get("stacks") or []:
        count = int(stack.get("count", 0))
        frames = [str(f) for f in stack.get("frames") or []]
        if not frames:
            continue
        leaf = frames[-1]
        self_counts[leaf] = self_counts.get(leaf, 0) + count
        for frame in set(frames):
            cum_counts[frame] = cum_counts.get(frame, 0) + count
    return self_counts, cum_counts


def top_table(doc: Dict[str, object], limit: int = 25) -> List[Dict[str, object]]:
    """Top-``limit`` frames by self samples, with cumulative columns."""
    self_counts, cum_counts = frame_shares(doc)
    total = max(int(doc.get("samples", 0)), 1)
    ranked = sorted(cum_counts,
                    key=lambda f: (-self_counts.get(f, 0), -cum_counts[f], f))
    return [
        {"frame": frame,
         "self": self_counts.get(frame, 0),
         "cum": cum_counts[frame],
         "self_frac": self_counts.get(frame, 0) / total,
         "cum_frac": cum_counts[frame] / total}
        for frame in ranked[:limit]
    ]


def format_top_table(doc: Dict[str, object], limit: int = 25) -> str:
    rows = top_table(doc, limit=limit)
    out = [f"{'self':>6s} {'self%':>7s} {'cum':>6s} {'cum%':>7s}  frame"]
    out += [
        f"{r['self']:6d} {r['self_frac']:7.1%} {r['cum']:6d} "
        f"{r['cum_frac']:7.1%}  {r['frame']}"
        for r in rows
    ]
    return "\n".join(out)


# ---------------------------------------------------------------------------
# profile diffing (repro flame-diff)
# ---------------------------------------------------------------------------


@dataclass
class FlameDiffEntry:
    """One attribution-share comparison between two profiles."""

    path: str          # e.g. "spans.executor.replay" or "frames.ops:dispatch"
    base_share: float
    cand_share: float
    status: str = ""   # "regression", "improvement" or ""

    @property
    def delta(self) -> float:
        return self.cand_share - self.base_share

    def to_json_obj(self) -> Dict[str, object]:
        return {"path": self.path, "base_share": self.base_share,
                "cand_share": self.cand_share, "delta": self.delta,
                "status": self.status or "unchanged"}


@dataclass
class FlameDiffResult:
    """Outcome of :func:`diff_profiles`; exit code 0 (pass) or 3 (gated)."""

    baseline: str
    candidate: str
    threshold: float
    base_samples: int
    cand_samples: int
    entries: List[FlameDiffEntry] = field(default_factory=list)

    @property
    def regressions(self) -> List[FlameDiffEntry]:
        return [e for e in self.entries if e.status == "regression"]

    @property
    def improvements(self) -> List[FlameDiffEntry]:
        return [e for e in self.entries if e.status == "improvement"]

    @property
    def exit_code(self) -> int:
        return 3 if self.regressions else 0

    def to_json_obj(self) -> Dict[str, object]:
        return {
            "schema": FLAME_DIFF_SCHEMA,
            "v": FLAME_DIFF_SCHEMA_VERSION,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "threshold": self.threshold,
            "samples": {"baseline": self.base_samples,
                        "candidate": self.cand_samples},
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "exit_code": self.exit_code,
            "entries": [e.to_json_obj() for e in self.entries],
        }

    def format_table(self, limit: int = 20) -> str:
        lines = [
            f"profile diff: {self.baseline} ({self.base_samples} samples) -> "
            f"{self.candidate} ({self.cand_samples} samples), "
            f"gate at {self.threshold * 100:.1f} share points"
        ]
        shown = [e for e in self.entries if abs(e.delta) > 1e-9][:limit]
        for e in shown:
            tag = {"regression": "REGRESSION ", "improvement": "improved   "
                   }.get(e.status, "           ")
            lines.append(
                f"  {tag}{e.path:44s} {e.base_share:7.1%} -> "
                f"{e.cand_share:7.1%}  ({e.delta * 100:+.1f}pp)")
        if not shown:
            lines.append("  (no attribution share moved)")
        lines.append(
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s) -> "
            f"{'FAIL (exit 3)' if self.regressions else 'pass'}")
        return "\n".join(lines)


def _share_table(table: Optional[Dict[str, object]], total: int) -> Dict[str, float]:
    if not isinstance(table, dict) or total <= 0:
        return {}
    return {str(k): int(v) / total for k, v in table.items()
            if isinstance(v, int) and not isinstance(v, bool)}


def diff_profiles(
    base: Dict[str, object],
    cand: Dict[str, object],
    threshold: float = DEFAULT_DIFF_THRESHOLD,
    baseline_name: str = "baseline",
    candidate_name: str = "candidate",
    frame_limit: int = 40,
) -> FlameDiffResult:
    """Compare two profiles by attribution shares; gate on share growth.

    Compared dimensions: the ``attribution`` rollups (spans, opcodes,
    levels, workers) plus the top ``frame_limit`` frames by self-share in
    either profile.  A dimension regresses when the candidate's share
    exceeds the baseline's by more than ``threshold`` (absolute share
    points); shrinking shares are reported as improvements and never gate.
    Samples under the ``(none)`` attribution key are compared like any
    other -- growing *unattributed* time is a regression too.
    """
    base_samples = int(base.get("samples", 0))
    cand_samples = int(cand.get("samples", 0))
    entries: List[FlameDiffEntry] = []

    base_attr = base.get("attribution") or {}
    cand_attr = cand.get("attribution") or {}
    for key in ("spans", "opcodes", "levels", "workers"):
        b = _share_table(base_attr.get(key), base_samples)
        c = _share_table(cand_attr.get(key), cand_samples)
        for name in sorted(set(b) | set(c)):
            entries.append(FlameDiffEntry(
                path=f"{key}.{name}",
                base_share=b.get(name, 0.0),
                cand_share=c.get(name, 0.0)))

    base_self, _ = frame_shares(base)
    cand_self, _ = frame_shares(cand)
    b_shares = {f: n / base_samples for f, n in base_self.items()
                if base_samples > 0}
    c_shares = {f: n / cand_samples for f, n in cand_self.items()
                if cand_samples > 0}
    ranked = sorted(set(b_shares) | set(c_shares),
                    key=lambda f: (-max(b_shares.get(f, 0.0),
                                        c_shares.get(f, 0.0)), f))
    entries.extend(
        FlameDiffEntry(path=f"frames.{frame}",
                       base_share=b_shares.get(frame, 0.0),
                       cand_share=c_shares.get(frame, 0.0))
        for frame in ranked[:frame_limit]
    )

    for entry in entries:
        if entry.delta > threshold:
            entry.status = "regression"
        elif entry.delta < -threshold:
            entry.status = "improvement"
    entries.sort(key=lambda e: (-abs(e.delta), e.path))
    return FlameDiffResult(
        baseline=baseline_name,
        candidate=candidate_name,
        threshold=threshold,
        base_samples=base_samples,
        cand_samples=cand_samples,
        entries=entries,
    )


__all__ = [
    "FLAME_DIFF_SCHEMA",
    "FLAME_DIFF_SCHEMA_VERSION",
    "DEFAULT_DIFF_THRESHOLD",
    "FlameDiffEntry",
    "FlameDiffResult",
    "diff_profiles",
    "format_top_table",
    "frame_shares",
    "render_flamegraph_html",
    "top_table",
    "NONE_KEY",
]
