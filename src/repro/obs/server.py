"""Live observability endpoint: /metrics, /healthz and /events over HTTP.

A :class:`MetricsServer` runs a stdlib ``ThreadingHTTPServer`` on a
daemon thread next to an in-flight run:

* ``GET /metrics``  -- the counter registry rendered as OpenMetrics text
  (:func:`repro.obs.openmetrics.render_openmetrics`) plus heartbeat
  gauges: uptime, heartbeat age, healthiness, event totals;
* ``GET /healthz``  -- JSON liveness; **HTTP 200** while the stall
  watchdog sees progress, **HTTP 503** once the run stops beating;
* ``GET /events``   -- the newest structured events as a JSON array
  (``?n=``, ``?severity=``, ``?subsystem=`` filters);
* ``GET /alerts``   -- the live SLO alert document
  (``repro.obs.alerts`` v1, :mod:`repro.obs.slo`); the engine is
  evaluated on every ``/metrics`` and ``/alerts`` request, so the alert
  path needs no extra thread.

The :class:`Watchdog` is the progress contract: instrumented hot paths
call :func:`beat` (one global load + None check when no watchdog is
installed), and the server flips unhealthy when the last beat is older
than ``stall_after_s``.  Binding defaults to loopback, port 0 (ephemeral)
so tests and parallel runs never collide.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .. import telemetry
from .events import EventLog, get_event_log
from .openmetrics import render_openmetrics


class Watchdog:
    """Stall detector: healthy while beats arrive faster than the budget."""

    def __init__(self, stall_after_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        self.stall_after_s = stall_after_s
        self._clock = clock
        self._lock = threading.Lock()
        self._last_beat = clock()
        self._started = self._last_beat
        self._sources: Dict[str, float] = {}
        self.beats = 0

    def beat(self, source: Optional[str] = None, n: int = 1) -> None:
        """Record ``n`` units of forward progress (optionally per-source).

        ``n > 1`` is the bulk form used by batched plan replay: one lock
        acquisition accounts for a whole lane group, keeping the
        beats-per-step invariant without a per-lane call.
        """
        with self._lock:
            self._last_beat = self._clock()
            self.beats += n
            if source is not None:
                self._sources[source] = self._last_beat

    @property
    def heartbeat_age_s(self) -> float:
        with self._lock:
            return max(0.0, self._clock() - self._last_beat)

    @property
    def uptime_s(self) -> float:
        with self._lock:
            return max(0.0, self._clock() - self._started)

    @property
    def healthy(self) -> bool:
        return self.heartbeat_age_s <= self.stall_after_s

    def status(self) -> Dict[str, object]:
        """The /healthz document (see docs/OBSERVABILITY.md).

        ``uptime_s`` and per-source ``last_beat_age_s`` let consumers
        (the perf-trend sentinel, a human with curl) tell "just started"
        from "stalled": a young uptime with no beats is warming up, an
        old uptime with one silent source names the stalled subsystem.
        The 200/503 contract is unchanged -- only the global heartbeat
        age decides health.
        """
        age = self.heartbeat_age_s
        with self._lock:
            now = self._clock()
            sources = {
                name: {"last_beat_age_s": max(0.0, now - last)}
                for name, last in sorted(self._sources.items())
            }
        return {
            "status": "ok" if age <= self.stall_after_s else "stalled",
            "healthy": age <= self.stall_after_s,
            "heartbeat_age_s": age,
            "stall_after_s": self.stall_after_s,
            "beats": self.beats,
            "uptime_s": self.uptime_s,
            "sources": sources,
        }

    def health_section(self) -> Dict[str, object]:
        """The RunReport v3 ``health`` section."""
        doc = self.status()
        doc.pop("status", None)
        return doc


#: the process-wide watchdog (None until a serving run installs one).
_WATCHDOG: Optional[Watchdog] = None


def install_watchdog(watchdog: Optional[Watchdog]) -> Optional[Watchdog]:
    """Install (or clear, with None) the global watchdog; returns it."""
    global _WATCHDOG
    _WATCHDOG = watchdog
    return watchdog


def get_watchdog() -> Optional[Watchdog]:
    return _WATCHDOG


def beat(source: Optional[str] = None, n: int = 1) -> None:
    """Progress beat from instrumented hot paths (no-op when unarmed)."""
    wd = _WATCHDOG
    if wd is not None:
        wd.beat(source, n)


class MetricsServer:
    """Background HTTP server exposing one run's live telemetry."""

    def __init__(
        self,
        registry=None,
        event_log: Optional[EventLog] = None,
        watchdog: Optional[Watchdog] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        slo=None,
    ):
        self.registry = registry if registry is not None else telemetry.get_registry()
        self.event_log = event_log if event_log is not None else get_event_log()
        self.watchdog = watchdog if watchdog is not None else Watchdog()
        #: optional :class:`repro.obs.slo.SLOEngine`; evaluated on every
        #: scrape so the alert path needs no extra thread.
        self.slo = slo
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # noqa: ARG002 - silence stdlib
                pass

            def do_GET(self):  # noqa: N802 - stdlib naming
                try:
                    status, content_type, body = server._route(self.path)
                except Exception as err:  # noqa: BLE001 - keep serving
                    status, content_type = 500, "text/plain; charset=utf-8"
                    body = f"internal error: {err}\n".encode()
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-obs-metrics:{self.port}", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- routing ------------------------------------------------------------

    def _route(self, path: str) -> Tuple[int, str, bytes]:
        parsed = urlparse(path)
        route = parsed.path.rstrip("/") or "/"
        if route == "/metrics":
            self._evaluate_slo()
            return (200, "text/plain; version=0.0.4; charset=utf-8",
                    self._metrics_body().encode("utf-8"))
        if route == "/healthz":
            doc = self.watchdog.status()
            status = 200 if doc["healthy"] else 503
            return (status, "application/json; charset=utf-8",
                    (json.dumps(doc, indent=2) + "\n").encode("utf-8"))
        if route == "/events":
            return (200, "application/json; charset=utf-8",
                    self._events_body(parse_qs(parsed.query)))
        if route == "/alerts":
            self._evaluate_slo()
            from .slo import empty_alerts_document
            doc = (self.slo.document() if self.slo is not None
                   else empty_alerts_document())
            return (200, "application/json; charset=utf-8",
                    (json.dumps(doc, indent=2, default=repr) + "\n")
                    .encode("utf-8"))
        if route == "/":
            index = {"endpoints": ["/metrics", "/healthz", "/events",
                                   "/alerts"]}
            return (200, "application/json; charset=utf-8",
                    (json.dumps(index) + "\n").encode("utf-8"))
        return 404, "text/plain; charset=utf-8", b"not found\n"

    def _evaluate_slo(self) -> None:
        if self.slo is None:
            return
        try:
            self.slo.evaluate()
        except Exception:  # alert evaluation must never break a scrape
            pass

    def _metrics_body(self) -> str:
        wd = self.watchdog
        log = self.event_log
        extra = {
            "repro_obs_uptime_seconds": (wd.uptime_s, "seconds since the "
                                                      "watchdog was armed"),
            "repro_obs_heartbeat_age_seconds": (
                wd.heartbeat_age_s, "seconds since the last progress beat"),
            "repro_obs_healthy": (1.0 if wd.healthy else 0.0,
                                  "1 while the stall watchdog sees progress"),
            "repro_obs_events": (float(log.total),
                                 "structured events accepted"),
            "repro_obs_events_dropped": (float(log.dropped),
                                         "events evicted from the ring"),
        }
        return render_openmetrics(self.registry, extra_gauges=extra)

    def _events_body(self, query: Dict[str, list]) -> bytes:
        try:
            last = int(query.get("n", ["100"])[0])
        except ValueError:
            last = 100
        severity = query.get("severity", [None])[0]
        subsystem = query.get("subsystem", [None])[0]
        events = self.event_log.events()
        if severity:
            events = [e for e in events if e.get("severity") == severity]
        if subsystem:
            events = [e for e in events if e.get("subsystem") == subsystem]
        events = events[-max(0, last):]
        return (json.dumps(events, indent=2, default=repr) + "\n").encode("utf-8")
