"""``repro top``: a curses-free live view over the ``/metrics`` endpoint.

Polls a running :class:`repro.obs.MetricsServer`'s exposition text on an
interval and renders a compact, in-place-refreshing dashboard (plain
ANSI clear-home; no curses, no dependencies): server health, per-level
busy/idle breakdowns (the Cambricon-F pipeline-stage and stall-cause
taxonomies already exported as ``sim.busy_seconds{level,stage}`` and
``sim.idle_seconds{level,cause}``), per-worker series merged back from
sweep pool children, and whichever counters moved since the previous
sample.

Everything here is pure-functional over exposition text so tests can
feed canned scrapes: :func:`parse_exposition` -> samples,
:func:`format_top` -> the rendered frame, with the tiny
:func:`run_top` loop on top.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

from .openmetrics import _LABEL_PAIR_RE, _SAMPLE_RE

#: clear screen + cursor home (the whole "in-place refresh" machinery).
ANSI_CLEAR = "\x1b[H\x1b[J"

TOP_SCHEMA = "repro.obs.top"
TOP_SCHEMA_VERSION = 1

#: {(name, ((k, v), ...)): value} -- one scrape's worth of samples.
Samples = Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]


def parse_exposition(text: str) -> Samples:
    """Parse exposition text into ``{(name, labels): value}`` samples.

    Comment lines and unparsable lines are skipped -- ``repro top`` is a
    viewer, not a validator (that's :func:`check_openmetrics`).
    """
    out: Samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            continue
        labels: List[Tuple[str, str]] = []
        raw = m.group("labels")
        if raw:
            labels = [(p.group("name"), p.group("value"))
                      for p in _LABEL_PAIR_RE.finditer(raw)]
        try:
            value = float(m.group("value"))
        except ValueError:
            continue
        out[(m.group("name"), tuple(labels))] = value
    return out


def fetch_metrics(url: str, timeout: float = 2.0) -> str:
    """One scrape of the exposition endpoint (raises URLError on failure)."""
    if "://" not in url:
        url = "http://" + url
    if not url.rstrip("/").endswith("/metrics"):
        url = url.rstrip("/") + "/metrics"
    with urllib.request.urlopen(url, timeout=timeout) as resp:  # noqa: S310 - local scrape
        return resp.read().decode("utf-8", "replace")


def _by_name(samples: Samples, name: str) -> List[Tuple[Dict[str, str], float]]:
    return [(dict(labels), value) for (n, labels), value in samples.items()
            if n == name]


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _fmt(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def format_top(samples: Samples, prev: Optional[Samples] = None,
               interval: Optional[float] = None) -> str:
    """Render one dashboard frame from a scrape (and optionally the last).

    Sections degrade gracefully: a scrape with no simulator counters
    still shows health and whatever series exist.
    """
    lines: List[str] = []

    # -- health strip -------------------------------------------------------
    uptime = samples.get(("repro_obs_uptime_seconds", ()))
    healthy = samples.get(("repro_obs_healthy", ()))
    beat_age = samples.get(("repro_obs_heartbeat_age_seconds", ()))
    events = samples.get(("repro_obs_events", ()))
    strip = []
    if healthy is not None:
        strip.append("health=OK" if healthy else "health=STALLED")
    if beat_age is not None:
        strip.append(f"beat_age={beat_age:.1f}s")
    if uptime is not None:
        strip.append(f"uptime={uptime:.0f}s")
    if events is not None:
        strip.append(f"events={int(events)}")
    lines.append("repro top -- " + (" ".join(strip) if strip else "no health gauges"))
    lines.append("")

    # -- alerts strip (live SLO engine, repro.obs.slo) ----------------------
    active = samples.get(("repro_alerts_active", ()))
    if active:
        firing = sorted(lab.get("rule", "?")
                        for lab, value in _by_name(samples, "repro_alerts_firing")
                        if value)
        lines.append(f"ALERTS ({int(active)} firing): "
                     + (", ".join(firing) if firing else "?"))
        lines.append("")

    # -- per-level utilization (busy stages + idle causes) ------------------
    busy = _by_name(samples, "repro_sim_busy_seconds_total")
    idle = _by_name(samples, "repro_sim_idle_seconds_total")
    levels = sorted({lab.get("level", "?") for lab, _ in busy + idle},
                    key=str)
    if levels:
        lines.append(f"{'level':>5s}  {'utilization':<22s} {'busy_s':>10s}  "
                     f"stall causes")
        for level in levels:
            busy_here = [(lab, v) for lab, v in busy
                         if lab.get("level") == level and "worker" not in lab]
            idle_here = [(lab, v) for lab, v in idle
                         if lab.get("level") == level and "worker" not in lab]
            busy_s = sum(v for _, v in busy_here)
            idle_s = sum(v for _, v in idle_here)
            wall = busy_s + idle_s
            util = busy_s / wall if wall > 0 else 0.0
            causes = sorted(idle_here, key=lambda item: -item[1])[:3]
            cause_str = " ".join(
                f"{lab.get('cause', '?')}={v:.3g}s" for lab, v in causes
                if v > 0)
            lines.append(f"{level:>5s}  [{_bar(util)}] {busy_s:10.4f}  "
                         f"{cause_str or '-'}")
        lines.append("")

    # -- per-worker series (merged back from sweep pool children) -----------
    worker_rows: Dict[str, Dict[str, float]] = {}
    for (name, labels), value in samples.items():
        lab = dict(labels)
        worker = lab.get("worker")
        if worker is None:
            continue
        row = worker_rows.setdefault(worker, {})
        if name == "repro_worker_wall_seconds_total":
            row["wall_s"] = row.get("wall_s", 0.0) + value
        elif name == "repro_worker_events_total":
            row["events"] = row.get("events", 0.0) + value
        elif name == "repro_executor_instructions_total":
            row["instructions"] = row.get("instructions", 0.0) + value
        else:
            row["series"] = row.get("series", 0.0) + 1
    if worker_rows:
        lines.append(f"{'worker':>6s} {'wall_s':>10s} {'instructions':>13s} "
                     f"{'events':>8s} {'series':>7s}")
        for worker in sorted(worker_rows, key=str):
            row = worker_rows[worker]
            lines.append(
                f"{worker:>6s} {row.get('wall_s', 0.0):10.4f} "
                f"{int(row.get('instructions', 0)):13d} "
                f"{int(row.get('events', 0)):8d} "
                f"{int(row.get('series', 0)):7d}")
        lines.append("")

    # -- movers: counters that changed since the previous frame -------------
    if prev is not None:
        movers = []
        for key, value in samples.items():
            delta = value - prev.get(key, 0.0)
            if delta > 0 and key[0].endswith("_total"):
                movers.append((delta, key))
        movers.sort(key=lambda item: -item[0])
        if movers:
            per = f"/{interval:.0f}s" if interval else ""
            lines.append(f"top movers{per}:")
            for delta, (name, labels) in movers[:8]:
                lab = ",".join(f"{k}={v}" for k, v in labels)
                series = f"{name}{{{lab}}}" if lab else name
                lines.append(f"  +{_fmt(delta):>10s}  {series}")
        else:
            lines.append("top movers: (idle)")
    return "\n".join(lines) + "\n"


def frame_doc(samples: Samples, prev: Optional[Samples] = None,
              interval: Optional[float] = None,
              url: Optional[str] = None) -> Dict[str, object]:
    """One machine-readable frame (``repro top --json``).

    The same scrape :func:`format_top` renders, as a schema-versioned JSON
    object: every sample keyed by its flat ``name{k=v}`` series string,
    plus the positive ``*_total`` deltas since ``prev`` under ``movers``.
    Scripts and CI scrape this instead of parsing the ANSI dashboard.
    """
    from ..telemetry.counters import format_series
    doc: Dict[str, object] = {
        "schema": TOP_SCHEMA,
        "v": TOP_SCHEMA_VERSION,
        "samples": {
            format_series(name, labels): value
            for (name, labels), value in sorted(samples.items())
        },
    }
    if url:
        doc["url"] = url
    if interval is not None:
        doc["interval_s"] = interval
    if prev is not None:
        movers = {}
        for (name, labels), value in sorted(samples.items()):
            delta = value - prev.get((name, labels), 0.0)
            if delta > 0 and name.endswith("_total"):
                movers[format_series(name, labels)] = delta
        doc["movers"] = movers
    return doc


def run_top(url: str, interval: float = 2.0,
            iterations: Optional[int] = None, clear: bool = True,
            out=None, _sleep=time.sleep, json_mode: bool = False) -> int:
    """The ``repro top`` loop; returns a process exit code.

    ``iterations`` bounds the frame count (tests use 1); None runs until
    Ctrl-C.  The first failed scrape exits 2 with a diagnostic -- after a
    first success, transient failures are shown in-frame and retried.
    With ``json_mode`` each frame is one :func:`frame_doc` JSON line (no
    ANSI, no screen clearing) -- ``--json --iterations 1`` is the
    scriptable one-shot.
    """
    import sys
    out = out or sys.stdout
    prev: Optional[Samples] = None
    frames = 0
    try:
        while iterations is None or frames < iterations:
            try:
                text = fetch_metrics(url)
            except (urllib.error.URLError, OSError, ValueError) as exc:
                if prev is None:
                    out.write(f"repro top: cannot scrape {url}: {exc}\n")
                    return 2
                out.write(f"[scrape failed: {exc}; retrying]\n")
                _sleep(interval)
                continue
            samples = parse_exposition(text)
            if json_mode:
                doc = frame_doc(samples, prev=prev,
                                interval=interval if prev is not None else None,
                                url=url)
                frame = json.dumps(doc, sort_keys=True) + "\n"
            else:
                frame = format_top(
                    samples, prev=prev,
                    interval=interval if prev is not None else None)
                if clear:
                    out.write(ANSI_CLEAR)
            out.write(frame)
            out.flush()
            prev = samples
            frames += 1
            if iterations is None or frames < iterations:
                _sleep(interval)
    except KeyboardInterrupt:
        out.write("\n")
    return 0
